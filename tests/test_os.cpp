// Kernel layout (KASLR / KPTI / FLARE / FGKASLR) and Machine facade tests.
#include <gtest/gtest.h>

#include "os/kernel_layout.h"
#include "os/machine.h"

namespace whisper::os {
namespace {

TEST(KernelLayoutTest, KaslrBaseIsSlotAlignedAndInWindow) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 99ull}) {
    mem::PhysicalMemory phys;
    KernelLayout k(phys, {.seed = seed});
    EXPECT_GE(k.kernel_base(), kKaslrRegionStart);
    EXPECT_LT(k.kernel_base() + kKernelImageBytes, kKaslrRegionEnd);
    EXPECT_EQ(k.kernel_base() % kKaslrSlotBytes, 0u);
    EXPECT_EQ(k.kernel_base(),
              kKaslrRegionStart +
                  static_cast<std::uint64_t>(k.slot()) * kKaslrSlotBytes);
  }
}

TEST(KernelLayoutTest, DifferentSeedsGiveDifferentSlots) {
  mem::PhysicalMemory phys;
  std::set<int> slots;
  for (std::uint64_t seed = 1; seed <= 16; ++seed)
    slots.insert(KernelLayout(phys, {.seed = seed}).slot());
  EXPECT_GT(slots.size(), 8u) << "KASLR entropy looks broken";
}

TEST(KernelLayoutTest, ExplicitSlotIsHonoured) {
  mem::PhysicalMemory phys;
  KernelLayout k(phys, {.kaslr_slot = 123});
  EXPECT_EQ(k.slot(), 123);
}

TEST(KernelLayoutTest, NonKptiUserViewContainsSupervisorImage) {
  mem::PhysicalMemory phys;
  KernelLayout k(phys, {.kpti = false, .kaslr_slot = 50});
  mem::PageTable kview, uview;
  k.install(kview, uview);
  const auto r = uview.walk(k.kernel_base());
  EXPECT_EQ(r.status, mem::WalkStatus::Ok);
  EXPECT_FALSE(r.flags.user);  // mapped, but supervisor-only
}

TEST(KernelLayoutTest, KptiUserViewKeepsOnlyTrampoline) {
  mem::PhysicalMemory phys;
  KernelLayout k(phys, {.kpti = true, .kaslr_slot = 50});
  mem::PageTable kview, uview;
  k.install(kview, uview);
  EXPECT_EQ(uview.walk(k.kernel_base()).status,
            mem::WalkStatus::NotPresent);
  EXPECT_EQ(uview.walk(k.trampoline_vaddr()).status, mem::WalkStatus::Ok);
  // The kernel's own view still has everything.
  EXPECT_EQ(kview.walk(k.kernel_base()).status, mem::WalkStatus::Ok);
}

TEST(KernelLayoutTest, FlareCoversEverySlotInUserView) {
  mem::PhysicalMemory phys;
  KernelLayout k(phys, {.kpti = true, .flare = true, .kaslr_slot = 50});
  mem::PageTable kview, uview;
  k.install(kview, uview);
  int reserved = 0, ok = 0, not_present = 0;
  for (int s = 0; s < kKaslrSlots; ++s) {
    const std::uint64_t va =
        kKaslrRegionStart + static_cast<std::uint64_t>(s) * kKaslrSlotBytes;
    switch (uview.walk(va).status) {
      case mem::WalkStatus::Ok: ++ok; break;
      case mem::WalkStatus::ReservedBit: ++reserved; break;
      case mem::WalkStatus::NotPresent: ++not_present; break;
    }
  }
  EXPECT_EQ(not_present, 0) << "FLARE must leave no timing-visible hole";
  EXPECT_EQ(ok, 1);  // exactly the real trampoline slot
  EXPECT_EQ(reserved, kKaslrSlots - 1);
}

TEST(KernelLayoutTest, TrampolineOffsetMatchesPaper) {
  mem::PhysicalMemory phys;
  KernelLayout k(phys, {.kaslr_slot = 10});
  EXPECT_EQ(k.trampoline_vaddr() - k.kernel_base(), 0xe00000u);
}

TEST(KernelLayoutTest, SecretPlantingIsReadableAtReturnedAddress) {
  mem::PhysicalMemory phys;
  KernelLayout k(phys, {.kaslr_slot = 20});
  const std::uint8_t secret[] = {'a', 'b', 'c'};
  const std::uint64_t va = k.plant_secret(secret);
  EXPECT_GE(va, k.kernel_base());
  mem::PageTable kview, uview;
  k.install(kview, uview);
  const auto r = kview.walk(va);
  ASSERT_EQ(r.status, mem::WalkStatus::Ok);
  EXPECT_EQ(phys.read8(r.paddr), 'a');
  EXPECT_EQ(phys.read8(r.paddr + 2), 'c');
}

TEST(KernelLayoutTest, SymbolsFixedWithoutFgkaslr) {
  mem::PhysicalMemory phys;
  KernelLayout k(phys, {.fgkaslr = false, .kaslr_slot = 30});
  for (const auto& s : k.symbols())
    EXPECT_EQ(k.symbol_addr(s.name), k.symbol_guess(s.name));
}

TEST(KernelLayoutTest, FgkaslrShufflesAllButEntryPoint) {
  mem::PhysicalMemory phys;
  KernelLayout k(phys, {.fgkaslr = true, .kaslr_slot = 30, .seed = 7});
  int moved = 0;
  for (const auto& s : k.symbols()) {
    if (s.name == "entry_SYSCALL_64") {
      EXPECT_EQ(k.symbol_addr(s.name), k.symbol_guess(s.name));
    } else if (k.symbol_addr(s.name) != k.symbol_guess(s.name)) {
      ++moved;
    }
  }
  EXPECT_GE(moved, 4);
  EXPECT_THROW((void)k.symbol_addr("no_such_symbol"), std::out_of_range);
}

TEST(MachineTest, UserRegionsAreMappedAndWritable) {
  Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  m.poke64(Machine::kDataBase, 0x1122);
  EXPECT_EQ(m.peek64(Machine::kDataBase), 0x1122u);
  m.poke8(Machine::kSharedBase, 0x7f);
  EXPECT_EQ(m.peek8(Machine::kSharedBase), 0x7f);
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 4};
  m.poke_bytes(Machine::kStackBase, bytes);
  EXPECT_EQ(m.peek_bytes(Machine::kStackBase, 4), bytes);
}

TEST(MachineTest, EvictTlbsFlushesAndChargesTime) {
  Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  // Warm a TLB entry.
  (void)m.memsys().access({.vaddr = Machine::kDataBase,
                           .type = mem::AccessType::Read,
                           .user_mode = true,
                           .size = 8});
  ASSERT_TRUE(m.memsys().dtlb().contains(Machine::kDataBase));
  const std::uint64_t before = m.core().cycle();
  m.evict_tlbs();
  EXPECT_FALSE(m.memsys().dtlb().contains(Machine::kDataBase));
  EXPECT_GE(m.core().cycle() - before,
            static_cast<std::uint64_t>(m.config().tlb_eviction_cycles));
}

TEST(MachineTest, SimulateSyscallWarmsTrampolineTranslation) {
  Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
             .kernel = {.kpti = true}});
  m.evict_tlbs();
  const std::uint64_t tramp = m.kernel().trampoline_vaddr();
  EXPECT_FALSE(m.memsys().dtlb().contains(tramp));
  m.simulate_syscall();
  EXPECT_TRUE(m.memsys().dtlb().contains(tramp));
}

TEST(MachineTest, SecondsConversionUsesModelFrequency) {
  Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});  // 3.6 GHz
  EXPECT_NEAR(m.seconds(3'600'000'000ull), 1.0, 1e-9);
}

TEST(MachineTest, SeedOverrideChangesKaslrSlot) {
  Machine a({.model = uarch::CpuModel::KabyLakeI7_7700, .seed = 111});
  Machine b({.model = uarch::CpuModel::KabyLakeI7_7700, .seed = 222});
  Machine c({.model = uarch::CpuModel::KabyLakeI7_7700, .seed = 111});
  EXPECT_EQ(a.kernel().slot(), c.kernel().slot());
  // Different seeds *almost certainly* differ; tolerate rare collision by
  // checking a third seed too.
  Machine d({.model = uarch::CpuModel::KabyLakeI7_7700, .seed = 333});
  EXPECT_TRUE(a.kernel().slot() != b.kernel().slot() ||
              a.kernel().slot() != d.kernel().slot());
}

TEST(MachineTest, VictimTouchStagesLfbData) {
  Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
  m.victim_touch(0xCD);
  EXPECT_EQ(*m.memsys().lfb().stale_byte(0), 0xCD);
}

TEST(MachineTest, UnmappedUserAddressReallyIsUnmapped) {
  Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  const auto r = m.memsys().access({.vaddr = m.unmapped_user_address(),
                                    .type = mem::AccessType::Read,
                                    .user_mode = true,
                                    .size = 8});
  EXPECT_EQ(r.fault, mem::Fault::NotPresent);
}

}  // namespace
}  // namespace whisper::os
