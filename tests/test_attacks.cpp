// End-to-end attack tests: the Table 2 ✓/✗ pattern, the §4.5 KASLR ladder
// (plain / KPTI / FLARE / Docker), and the baselines they are compared to.
#include <gtest/gtest.h>

#include <string>

#include "baseline/flush_reload.h"
#include "baseline/prefetch_kaslr.h"
#include "core/attacks/kaslr.h"
#include "core/attacks/meltdown.h"
#include "core/attacks/smt_channel.h"
#include "core/attacks/spectre_rsb.h"
#include "core/attacks/zombieload.h"
#include "core/covert_channel.h"

namespace whisper {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(TetMeltdownAttack, LeaksKernelSecretOnVulnerableCpu) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  const auto secret = bytes_of("WHISPER");
  const std::uint64_t kaddr = m.plant_kernel_secret(secret);

  core::TetMeltdown atk(m);
  const auto leaked = atk.leak(kaddr, secret.size());
  EXPECT_EQ(leaked, secret);
}

TEST(TetMeltdownAttack, FailsOnFixedCpu) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
  const auto secret = bytes_of("WHISPER");
  const std::uint64_t kaddr = m.plant_kernel_secret(secret);

  core::TetMeltdown atk(m, {{.batches = 3}});
  const auto leaked = atk.leak(kaddr, secret.size());
  EXPECT_NE(leaked, secret);  // fixed silicon forwards nothing
}

TEST(TetMeltdownAttack, KptiMitigates) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700,
                 .kernel = {.kpti = true}});
  const auto secret = bytes_of("KPTI");
  const std::uint64_t kaddr = m.plant_kernel_secret(secret);

  core::TetMeltdown atk(m, {{.batches = 3}});
  const auto leaked = atk.leak(kaddr, secret.size());
  EXPECT_NE(leaked, secret);  // secret is simply unmapped now
}

TEST(TetZombieloadAttack, LeaksVictimStreamOnVulnerableCpu) {
  os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
  const auto stream = bytes_of("MDS!");
  core::TetZombieload atk(m);
  EXPECT_EQ(atk.leak(stream), stream);
}

TEST(TetZombieloadAttack, FailsOnFixedCpu) {
  os::Machine m({.model = uarch::CpuModel::RaptorLakeI9_13900K});
  const auto stream = bytes_of("MDS!");
  core::TetZombieload atk(m, {{.batches = 3}});
  EXPECT_NE(atk.leak(stream), stream);
}

TEST(TetSpectreRsbAttack, LeaksSandboxedSecret) {
  os::Machine m({.model = uarch::CpuModel::RaptorLakeI9_13900K});
  const auto secret = bytes_of("RSB-SECRET");
  m.poke_bytes(os::Machine::kDataBase + 0x1000, secret);

  core::TetSpectreRsb atk(m);
  EXPECT_EQ(atk.leak(os::Machine::kDataBase + 0x1000, secret.size()), secret);
}

TEST(TetCovertChannelTest, TransmitsWithLowErrorRate) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  std::vector<std::uint8_t> payload;
  stats::Xoshiro256 rng(42);
  for (int i = 0; i < 64; ++i)
    payload.push_back(static_cast<std::uint8_t>(rng.next_below(256)));

  core::TetCovertChannel cc(m);
  const auto report = cc.transmit(payload);
  EXPECT_LT(report.byte_error_rate, 0.05) << report.to_string();
  EXPECT_GT(report.bytes_per_second, 0.0);
}

TEST(SmtChannelTest, BitsAreSeparable) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  core::SmtCovertChannel ch(m);
  std::uint64_t ones = 0, zeros = 0;
  for (int i = 0; i < 8; ++i) {
    ones += ch.measure_bit(true);
    zeros += ch.measure_bit(false);
  }
  EXPECT_GT(ones, zeros + 8 * 50);
}

TEST(SmtChannelTest, TransmitsBytes) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  core::SmtCovertChannel ch(m);
  const auto payload = bytes_of("smt-channel");
  const auto report = ch.transmit(payload);
  EXPECT_LT(report.byte_error_rate, 0.30) << report.to_string();
}

// --- KASLR ladder (§4.5) ----------------------------------------------------

TEST(TetKaslrAttack, BreaksPlainKaslr) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
  core::TetKaslr atk(m);
  const auto r = atk.run();
  EXPECT_TRUE(r.success) << "found slot " << r.found_slot << " true base 0x"
                         << std::hex << r.true_base;
}

TEST(TetKaslrAttack, BreaksKaslrUnderKpti) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
                 .kernel = {.kpti = true}});
  core::TetKaslr atk(m);
  const auto r = atk.run();
  EXPECT_TRUE(r.success);
}

TEST(TetKaslrAttack, BreaksKaslrUnderKptiPlusFlare) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
                 .kernel = {.kpti = true, .flare = true}});
  core::TetKaslr atk(m);
  const auto r = atk.run();
  EXPECT_TRUE(r.success);
}

TEST(TetKaslrAttack, WorksInsideDocker) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
                 .kernel = {.kpti = true},
                 .docker = true});
  core::TetKaslr atk(m);
  EXPECT_TRUE(atk.run().success);
}

TEST(TetKaslrAttack, FailsOnZen3) {
  os::Machine m({.model = uarch::CpuModel::Zen3Ryzen5_5600G});
  core::TetKaslr atk(m);
  EXPECT_FALSE(atk.run().success);
}

TEST(TetKaslrAttack, FgkaslrLimitsExploitability) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
                 .kernel = {.fgkaslr = true}});
  core::TetKaslr atk(m);
  const auto r = atk.run();
  // The base still leaks...
  EXPECT_TRUE(r.success);
  // ...but function-granular shuffling breaks offset-based targeting (§6.2).
  EXPECT_NE(m.kernel().symbol_addr("commit_creds"),
            m.kernel().symbol_guess("commit_creds"));
}

// --- Baselines ---------------------------------------------------------------

TEST(BaselineFlushReload, ChannelAndMeltdownWork) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  baseline::FlushReloadChannel ch(m);
  const auto payload = bytes_of("cache");
  const auto report = ch.transmit(payload);
  EXPECT_LT(report.byte_error_rate, 0.05) << report.to_string();

  const auto secret = bytes_of("FR");
  const std::uint64_t kaddr = m.plant_kernel_secret(secret);
  baseline::MeltdownFlushReload md(m);
  EXPECT_EQ(md.leak(kaddr, secret.size()), secret);
}

TEST(BaselinePrefetchKaslr, WorksWithoutFlareFailsWithFlare) {
  {
    os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
                   .kernel = {.kpti = true}});
    baseline::PrefetchKaslr atk(m);
    EXPECT_TRUE(atk.run().success);
  }
  {
    os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
                   .kernel = {.kpti = true, .flare = true}});
    baseline::PrefetchKaslr atk(m);
    EXPECT_FALSE(atk.run().success)
        << "FLARE should defeat walk-timing probes";
  }
}

}  // namespace
}  // namespace whisper
