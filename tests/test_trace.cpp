// Pipeline-trace tests: the trace must expose exactly the transient
// life-cycle the channel exploits — instructions that allocate and execute
// but never retire.
#include <gtest/gtest.h>

#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "isa/builder.h"
#include "os/machine.h"
#include "uarch/trace.h"

namespace whisper {
namespace {

using isa::Cond;
using isa::ProgramBuilder;
using isa::Reg;
using uarch::PipelineTrace;
using uarch::TraceEvent;

TEST(TraceTest, StraightLineLifecycle) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  PipelineTrace trace;
  m.core().set_trace(&trace);

  ProgramBuilder b;
  b.mov(Reg::RAX, 1).add(Reg::RAX, 2).halt();
  (void)m.run_user(b.build());
  m.core().set_trace(nullptr);

  // Every instruction allocates, issues, completes, retires exactly once.
  for (std::int32_t pc = 0; pc < 3; ++pc) {
    EXPECT_EQ(trace.count(TraceEvent::Alloc, pc), 1u) << "pc " << pc;
    EXPECT_EQ(trace.count(TraceEvent::Issue, pc), 1u) << "pc " << pc;
    EXPECT_EQ(trace.count(TraceEvent::Retire, pc), 1u) << "pc " << pc;
  }
  EXPECT_EQ(trace.count(TraceEvent::MachineClear), 0u);
  EXPECT_EQ(trace.count(TraceEvent::Mispredict), 0u);
}

TEST(TraceTest, TransientInstructionsNeverRetire) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  PipelineTrace trace;
  m.core().set_trace(&trace);

  ProgramBuilder b;
  b.mov(Reg::RCX, 0)
      .load(Reg::RAX, Reg::RCX)   // pc 1: faults
      .mov(Reg::RBX, 7)           // pc 2: transient
      .label("handler")
      .halt();
  const auto p = b.build();
  (void)m.run_user(p, {}, p.label("handler"));
  m.core().set_trace(nullptr);

  EXPECT_GE(trace.count(TraceEvent::Alloc, 2), 1u)
      << "transient mov must enter the ROB";
  EXPECT_EQ(trace.count(TraceEvent::Retire, 2), 0u)
      << "transient mov must never retire";
  EXPECT_EQ(trace.count(TraceEvent::MachineClear), 1u);
  EXPECT_EQ(trace.count(TraceEvent::SignalRedirect), 1u);
}

TEST(TraceTest, TetGadgetShowsTheWhisperSequence) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  m.poke8(os::Machine::kSharedBase, 'S');
  const auto g = core::make_tet_gadget(
      {.window = core::WindowKind::Tsx,
       .source = core::SecretSource::SharedMemory});
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(Reg::RCX)] = core::kNullProbeAddress;
  regs[static_cast<std::size_t>(Reg::RDX)] = os::Machine::kSharedBase;

  // Warm the shared-secret line (a cold DRAM load would outlive the
  // window and the Jcc would never resolve — as in a real attack loop,
  // the sweep keeps it hot).
  regs[static_cast<std::size_t>(Reg::RBX)] = 'T';
  (void)core::run_tote(m, g, regs);

  PipelineTrace trace;
  m.core().set_trace(&trace);
  regs[static_cast<std::size_t>(Reg::RBX)] = 'S';  // trigger
  (void)core::run_tote(m, g, regs);
  m.core().set_trace(nullptr);

  // The trigger probe must show: transient mispredict -> resteer ->
  // machine clear -> TSX abort, in that order.
  const auto recs = trace.records();
  int misp = -1, clear = -1, abort_ev = -1;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (recs[i].event == TraceEvent::Mispredict && misp < 0)
      misp = static_cast<int>(i);
    if (recs[i].event == TraceEvent::MachineClear && clear < 0)
      clear = static_cast<int>(i);
    if (recs[i].event == TraceEvent::TsxAbort && abort_ev < 0)
      abort_ev = static_cast<int>(i);
  }
  ASSERT_GE(misp, 0) << trace.to_string();
  ASSERT_GE(clear, 0);
  ASSERT_GE(abort_ev, 0);
  EXPECT_LT(misp, clear) << "the transient mispredict precedes the clear";
  EXPECT_LE(clear, abort_ev);
  EXPECT_GE(trace.count(TraceEvent::SquashYounger), 1u);
}

TEST(TraceTest, NonTriggerProbeHasNoMispredict) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  m.poke8(os::Machine::kSharedBase, 'S');
  const auto g = core::make_tet_gadget(
      {.window = core::WindowKind::Tsx,
       .source = core::SecretSource::SharedMemory});
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(Reg::RCX)] = core::kNullProbeAddress;
  regs[static_cast<std::size_t>(Reg::RDX)] = os::Machine::kSharedBase;
  regs[static_cast<std::size_t>(Reg::RBX)] = 'T';  // no trigger

  // Train first so the branch is predictable, then trace one probe.
  for (int i = 0; i < 4; ++i) (void)core::run_tote(m, g, regs);
  PipelineTrace trace;
  m.core().set_trace(&trace);
  (void)core::run_tote(m, g, regs);
  m.core().set_trace(nullptr);

  EXPECT_EQ(trace.count(TraceEvent::Mispredict), 0u);
  EXPECT_EQ(trace.count(TraceEvent::MachineClear), 1u);
}

TEST(TraceTest, RingBufferWraps) {
  PipelineTrace trace(8);
  for (std::uint64_t i = 0; i < 20; ++i)
    trace.record({.cycle = i, .event = TraceEvent::Alloc, .seq = i});
  EXPECT_TRUE(trace.wrapped());
  const auto recs = trace.records();
  ASSERT_EQ(recs.size(), 8u);
  EXPECT_EQ(recs.front().cycle, 12u);  // oldest surviving
  EXPECT_EQ(recs.back().cycle, 19u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_FALSE(trace.wrapped());
}

TEST(TraceTest, ToStringIsReadable) {
  PipelineTrace trace;
  trace.record({.cycle = 5,
                .thread = 0,
                .event = TraceEvent::Retire,
                .seq = 3,
                .pc = 2,
                .op = isa::Opcode::AddRI});
  const std::string s = trace.to_string();
  EXPECT_NE(s.find("retire"), std::string::npos);
  EXPECT_NE(s.find("pc=2"), std::string::npos);
  EXPECT_NE(s.find("add"), std::string::npos);
}

}  // namespace
}  // namespace whisper
