// Fast-forward subsystem coverage that the identity suites don't pin: the
// content-keyed decode cache (reuse across trials, content invalidation,
// survival across Machine::reset) and determinism of the fast-forward path
// across runner worker counts. Byte-identity of fast-forward itself lives
// in tests/test_machine_reset.cpp (FastForwardIdentityTest) and
// tests/test_differential.cpp (FastForwardDifferentialTest).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "isa/builder.h"
#include "os/machine.h"
#include "runner/runner.h"
#include "uarch/core.h"

namespace whisper {
namespace {

using isa::ProgramBuilder;
using isa::Reg;

isa::Program tiny_program(std::uint64_t k) {
  ProgramBuilder b;
  b.mov(Reg::RAX, k).add(Reg::RAX, 1).halt();
  return b.build();
}

/// Hits/misses accumulated by `body`, independent of whatever the machine
/// decoded before the probe started.
template <typename Fn>
uarch::Core::DecodeCacheStats delta(os::Machine& m, Fn&& body) {
  const auto before = m.core().decode_cache_stats();
  body();
  const auto after = m.core().decode_cache_stats();
  return {after.hits - before.hits, after.misses - before.misses};
}

TEST(DecodeCache, RerunningAProgramHitsTheCache) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  const isa::Program prog = tiny_program(5);

  const auto first = delta(m, [&] { (void)m.run_user(prog, {}, -1, 10'000); });
  EXPECT_EQ(first.misses, 1u);
  EXPECT_EQ(first.hits, 0u);

  const auto reruns = delta(m, [&] {
    for (int i = 0; i < 4; ++i) (void)m.run_user(prog, {}, -1, 10'000);
  });
  EXPECT_EQ(reruns.misses, 0u);
  EXPECT_EQ(reruns.hits, 4u);
}

TEST(DecodeCache, KeyIsContentNotObjectIdentity) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});

  // Two builds of the same source: distinct Program objects, same bytes.
  const isa::Program a = tiny_program(5);
  const isa::Program b = tiny_program(5);
  const auto same = delta(m, [&] {
    (void)m.run_user(a, {}, -1, 10'000);
    (void)m.run_user(b, {}, -1, 10'000);
  });
  EXPECT_EQ(same.misses, 1u) << "identical content decoded twice";
  EXPECT_EQ(same.hits, 1u);

  // A program that differs in one immediate is a different key.
  const isa::Program c = tiny_program(6);
  const auto changed = delta(m, [&] { (void)m.run_user(c, {}, -1, 10'000); });
  EXPECT_EQ(changed.misses, 1u) << "changed program served stale decode";
  EXPECT_EQ(changed.hits, 0u);
}

TEST(DecodeCache, SurvivesMachineReset) {
  // The cache is keyed by content, not by trial state, so the pooled-reset
  // trial path must keep it warm: that is where the cross-trial win comes
  // from.
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700, .seed = 0x11ull});
  const isa::Program prog = tiny_program(9);
  (void)m.run_user(prog, {}, -1, 10'000);
  m.snapshot();

  const auto across_resets = delta(m, [&] {
    for (int trial = 0; trial < 3; ++trial) {
      m.reset(0x20ull + static_cast<std::uint64_t>(trial));
      (void)m.run_user(prog, {}, -1, 10'000);
    }
  });
  EXPECT_EQ(across_resets.misses, 0u) << "reset() evicted the decode cache";
  EXPECT_EQ(across_resets.hits, 3u);
}

TEST(DecodeCache, AttackTrialsAreCacheBoundAfterTheFirst) {
  // A full registry attack compiles a handful of distinct gadget programs
  // and then reruns them thousands of times; after a first trial has warmed
  // the cache, later trials on the same machine must decode nothing new.
  runner::RunSpec spec;
  spec.attack = "cc";
  spec.trials = 1;
  spec.base_seed = 0xdecdeull;
  spec.payload_bytes = 1;

  os::Machine m(runner::machine_options(spec, 0x1ull));
  m.snapshot();
  (void)runner::run_trial(spec, 0x1ull, m);  // warm-up trial

  const auto warm = delta(m, [&] {
    for (std::uint64_t t = 2; t < 5; ++t) {
      (void)runner::run_trial(spec, t, m);
    }
  });
  EXPECT_EQ(warm.misses, 0u)
      << "attack re-decoded a program on a warm machine";
  EXPECT_GT(warm.hits, 0u);
}

TEST(FastForwardDeterminism, WorkerCountDoesNotChangeResults) {
  // Each runner worker owns a pooled machine and with it a private decode
  // cache; fanning the same spec across more workers must not perturb a
  // single trial bit. (Runs with fast_forward at its default: on.)
  runner::RunSpec spec;
  spec.model = uarch::CpuModel::SkylakeI7_6700;
  spec.attack = "cc";
  spec.trials = 6;
  spec.base_seed = 0x1f2f3ull;
  spec.payload_bytes = 2;
  ASSERT_TRUE(spec.fast_forward);

  const runner::RunResult one = runner::run(spec, /*jobs=*/1);
  const runner::RunResult two = runner::run(spec, /*jobs=*/2);
  ASSERT_EQ(one.trials.size(), two.trials.size());
  for (std::size_t i = 0; i < one.trials.size(); ++i) {
    const runner::TrialResult& a = one.trials[i];
    const runner::TrialResult& b = two.trials[i];
    EXPECT_EQ(a.seed, b.seed) << "trial " << i;
    EXPECT_EQ(a.success, b.success) << "trial " << i;
    EXPECT_EQ(a.cycles, b.cycles) << "trial " << i;
    EXPECT_EQ(a.bytes, b.bytes) << "trial " << i;
    EXPECT_EQ(a.probes, b.probes) << "trial " << i;
    EXPECT_EQ(a.tote.buckets(), b.tote.buckets()) << "trial " << i;
    EXPECT_EQ(a.pmu, b.pmu) << "trial " << i;
  }
}

TEST(FastForwardKnob, StickyAcrossResetAndReadable) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  EXPECT_TRUE(m.core().fast_forward());  // default on
  m.core().set_fast_forward(false);
  m.snapshot();
  m.reset(0x5ull);
  EXPECT_FALSE(m.core().fast_forward())
      << "reset() must not flip the knob — the runner stamps it per spec";
  m.core().set_fast_forward(true);
  EXPECT_TRUE(m.core().fast_forward());
}

}  // namespace
}  // namespace whisper
