// Shared test support: the seeded random-program generator used by the
// differential suite (tests/test_differential.cpp) and the machine
// snapshot/reset identity suite (tests/test_machine_reset.cpp). Programs
// are terminating by construction; memory traffic stays inside the mapped
// attacker data window.
#pragma once

#include <array>
#include <cstdint>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "isa/builder.h"
#include "isa/program.h"
#include "os/machine.h"
#include "stats/rng.h"

namespace whisper::test_support {

// Registers the generator plays with (avoids RSP, which the Machine
// initialises, and R8/R9, reserved for rdtsc in other tests).
inline constexpr isa::Reg kPool[] = {
    isa::Reg::RAX, isa::Reg::RBX, isa::Reg::RCX, isa::Reg::RDX,
    isa::Reg::RSI, isa::Reg::RDI, isa::Reg::R10, isa::Reg::R11,
    isa::Reg::R12, isa::Reg::R13};

class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  /// Generate a terminating program: straight-line blocks with forward
  /// branches, bounded counted backward loops (R15 is the loop counter),
  /// TSX begin/end pairs, cache-line flushes, and memory traffic confined
  /// to the data window. Control-flow units are emitted atomically, so
  /// forward branches always land on unit boundaries — never inside a loop
  /// body or a TSX region — and every program halts.
  isa::Program generate(int length) {
    isa::ProgramBuilder b;
    int label_id = 0;
    std::vector<std::string> pending;  // forward labels not yet placed

    // Pin the memory base so loads/stores stay in the mapped data region.
    b.mov(isa::Reg::R14, static_cast<std::int64_t>(os::Machine::kDataBase));

    for (int i = 0; i < length; ++i) {
      // Place a pending forward label with some probability.
      if (!pending.empty() && rng_.next_bool(0.35)) {
        b.label(pending.back());
        pending.pop_back();
      }
      emit_random(b, pending, label_id);
    }
    // Close all remaining forward labels, then stop.
    while (!pending.empty()) {
      b.label(pending.back());
      pending.pop_back();
    }
    b.halt();
    return b.build();
  }

  std::array<std::uint64_t, isa::kNumRegs> random_regs() {
    std::array<std::uint64_t, isa::kNumRegs> regs{};
    for (isa::Reg r : kPool) regs[static_cast<std::size_t>(r)] = rng_.next();
    return regs;
  }

 private:
  isa::Reg pick() { return kPool[rng_.next_below(std::size(kPool))]; }
  std::int64_t small_imm() {
    return static_cast<std::int64_t>(rng_.next_in(-128, 127));
  }
  /// Offset within the mapped data region (R14-relative, 8-byte aligned).
  std::int64_t mem_disp() {
    return static_cast<std::int64_t>(rng_.next_below(0x1000)) * 8;
  }

  /// A short run of flag-safe ALU ops (loop/TSX bodies — nothing that can
  /// fault or touch R14/R15).
  void emit_alu_body(isa::ProgramBuilder& b) {
    const int n = static_cast<int>(rng_.next_below(3)) + 1;
    for (int i = 0; i < n; ++i) {
      switch (rng_.next_below(4)) {
        case 0: b.add(pick(), small_imm()); break;
        case 1: b.xor_(pick(), pick()); break;
        case 2: b.not_(pick()); break;
        default:
          b.shl(pick(), static_cast<std::int64_t>(rng_.next_below(4)));
          break;
      }
    }
  }

  void emit_random(isa::ProgramBuilder& b, std::vector<std::string>& pending,
                   int& label_id) {
    using isa::Cond;
    using isa::Reg;
    switch (rng_.next_below(23)) {
      case 0: b.mov(pick(), small_imm()); break;
      case 1: b.mov(pick(), pick()); break;
      case 2: b.add(pick(), small_imm()); break;
      case 3: b.add(pick(), pick()); break;
      case 4: b.sub(pick(), pick()); break;
      case 5: b.xor_(pick(), pick()); break;
      case 6: b.and_(pick(), small_imm()); break;
      case 7: b.shl(pick(), static_cast<std::int64_t>(rng_.next_below(8)));
              break;
      case 8: b.imul(pick(), pick()); break;
      case 9: b.neg(pick()); break;
      case 10: b.not_(pick()); break;
      case 11: b.cmp(pick(), pick()); break;
      case 12: {  // cmov after a fresh cmp so flags are deterministic
        b.cmp(pick(), small_imm());
        b.cmov(static_cast<Cond>(rng_.next_below(8)), pick(), pick());
        break;
      }
      case 13: b.store(Reg::R14, pick(), mem_disp()); break;
      case 14: b.load(pick(), Reg::R14, mem_disp()); break;
      case 15: b.store_byte(Reg::R14, pick(), mem_disp()); break;
      case 16: b.load_byte(pick(), Reg::R14, mem_disp()); break;
      case 17: {  // forward conditional branch
        b.cmp(pick(), small_imm());
        std::string l = "L" + std::to_string(label_id++);
        b.jcc(static_cast<Cond>(rng_.next_below(8)), l);
        pending.push_back(std::move(l));
        break;
      }
      case 18: {  // counted backward loop: R15 counts 0..trip, always taken
                  // trip-1 times then falls through — bounded by
                  // construction, exercising BPU backward prediction and
                  // loop-carried flags in both engines
        const std::int64_t trip =
            static_cast<std::int64_t>(rng_.next_below(7)) + 1;
        const std::string top = "B" + std::to_string(label_id++);
        b.mov(Reg::R15, 0);
        b.label(top);
        emit_alu_body(b);
        b.add(Reg::R15, 1);
        b.cmp(Reg::R15, trip);
        b.jcc(Cond::NZ, top);
        break;
      }
      case 19: {  // TSX region: begin/end pair around a flag-safe body; no
                  // fault can occur here, so the abort path never runs and
                  // both engines must agree on the committed body
        const std::string abort_to = "T" + std::to_string(label_id++);
        b.tsx_begin(abort_to);
        emit_alu_body(b);
        b.tsx_end();
        b.label(abort_to);
        break;
      }
      case 20: b.clflush(Reg::R14, mem_disp()); break;
      case 21: b.fdiv(pick(), pick()); break;  // occupies the divider port
      case 22: {  // back-to-back divides: serialized on the one divider,
                  // exercising the busy-until latch in both engines
        b.fdiv(pick(), pick());
        b.fdiv(pick(), pick());
        break;
      }
    }
  }

  stats::Xoshiro256 rng_;
};

}  // namespace whisper::test_support
