// Tests for whisper::runner — the parallel experiment executor.
//
// The load-bearing property is the determinism contract: fanning trials out
// across a thread pool must be *bit-identical* to running them sequentially
// (--jobs 1), because every trial is a pure function of (spec, index) and
// the merge step folds results in index order. These tests pin that down,
// plus the merge arithmetic and the degenerate one-job path.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "core/attacks/registry.h"
#include "runner/executor.h"
#include "runner/json_writer.h"
#include "runner/runner.h"
#include "stats/summary.h"

namespace whisper::runner {
namespace {

// A spec cheap enough to run dozens of trials in a unit test.
RunSpec cheap_kaslr_spec(int trials) {
  RunSpec spec;
  spec.model = uarch::CpuModel::CometLakeI9_10980XE;
  spec.attack = "kaslr";
  spec.trials = trials;
  spec.base_seed = 0xfeedULL;
  spec.rounds = 1;
  return spec;
}

RunSpec cheap_channel_spec(const std::string& attack) {
  RunSpec spec;
  spec.model = uarch::CpuModel::KabyLakeI7_7700;
  spec.attack = attack;
  spec.trials = 2;
  spec.base_seed = 0xabcULL;
  spec.batches = 2;
  spec.payload_bytes = 2;
  spec.payload_seed = 0x11;
  return spec;
}

void expect_identical(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.seconds, b.seconds);  // bit-identical, not approximately
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.byte_errors, b.byte_errors);
  EXPECT_EQ(a.found_slot, b.found_slot);
  EXPECT_EQ(a.confidence, b.confidence);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.tote.buckets(), b.tote.buckets());
}

TEST(TrialSeed, DeterministicNonZeroAndDistinct) {
  EXPECT_EQ(trial_seed(42, 7), trial_seed(42, 7));
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_NE(trial_seed(42, i), 0u) << "0 means 'use the CPU preset'";
    if (i > 0) {
      EXPECT_NE(trial_seed(42, i), trial_seed(42, 0));
    }
  }
  EXPECT_NE(trial_seed(1, 0), trial_seed(2, 0));
}

TEST(Executor, MapPreservesIndexOrder) {
  Executor ex(4);
  const auto out = ex.map(100, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(Executor, SingleJobIsDegenerateSequential) {
  Executor ex(1);
  EXPECT_EQ(ex.jobs(), 1);
  // With one job the calls must happen inline and in order.
  std::vector<std::size_t> order;
  const auto out = ex.map(8, [&order](std::size_t i) {
    order.push_back(i);
    return i;
  });
  std::vector<std::size_t> expect(8);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
  EXPECT_EQ(out, expect);
}

TEST(Executor, ZeroRequestsResolveToHardwareConcurrency) {
  EXPECT_EQ(resolve_jobs(0), default_jobs());
  EXPECT_EQ(resolve_jobs(-3), default_jobs());
  EXPECT_EQ(resolve_jobs(5), 5);
  EXPECT_GE(default_jobs(), 1);
}

TEST(Runner, ParallelBitIdenticalToSequential) {
  const RunSpec spec = cheap_kaslr_spec(8);
  const RunResult seq = run(spec, /*jobs=*/1);
  const RunResult par = run(spec, /*jobs=*/4);
  ASSERT_EQ(seq.trials.size(), par.trials.size());
  for (std::size_t i = 0; i < seq.trials.size(); ++i)
    expect_identical(seq.trials[i], par.trials[i]);
  // The merged view must match too — including the folded histogram.
  EXPECT_EQ(seq.successes, par.successes);
  EXPECT_EQ(seq.total_probes, par.total_probes);
  EXPECT_EQ(seq.seconds.mean, par.seconds.mean);
  EXPECT_EQ(seq.seconds.stdev, par.seconds.stdev);
  EXPECT_EQ(seq.tote.buckets(), par.tote.buckets());
  EXPECT_EQ(seq.jobs, 1);
  EXPECT_EQ(par.jobs, 4);
}

TEST(Runner, ChannelTrialsAreDeterministicAcrossJobs) {
  for (const char* a : {"md", "rsb"}) {
    const RunSpec spec = cheap_channel_spec(a);
    const RunResult seq = run(spec, 1);
    const RunResult par = run(spec, 3);
    ASSERT_EQ(seq.trials.size(), 2u);
    for (std::size_t i = 0; i < seq.trials.size(); ++i)
      expect_identical(seq.trials[i], par.trials[i]);
    EXPECT_EQ(seq.total_bytes, 4u);
  }
}

TEST(Runner, TrialsUseDistinctSeedsAndPayloads) {
  const RunSpec spec = cheap_kaslr_spec(4);
  const RunResult r = run(spec, 2);
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    EXPECT_EQ(r.trials[i].seed, trial_seed(spec.base_seed, i));
    for (std::size_t j = i + 1; j < r.trials.size(); ++j)
      EXPECT_NE(r.trials[i].seed, r.trials[j].seed);
  }
}

TEST(Runner, MergeFoldsTrialStatistics) {
  const RunSpec spec = cheap_kaslr_spec(5);
  const RunResult r = run(spec, 2);
  ASSERT_EQ(r.trials.size(), 5u);

  std::size_t successes = 0, probes = 0;
  std::uint64_t tote_total = 0;
  std::vector<double> secs;
  for (const TrialResult& t : r.trials) {
    successes += t.success ? 1 : 0;
    probes += t.probes;
    tote_total += t.tote.total();
    secs.push_back(t.seconds);
  }
  EXPECT_EQ(r.successes, successes);
  EXPECT_EQ(r.total_probes, probes);
  EXPECT_EQ(r.tote.total(), tote_total);
  const stats::Summary expect =
      stats::summarize(std::span<const double>(secs));
  EXPECT_DOUBLE_EQ(r.seconds.mean, expect.mean);
  EXPECT_DOUBLE_EQ(r.seconds.stdev, expect.stdev);
  EXPECT_EQ(static_cast<std::size_t>(r.cycles.n()), r.trials.size());
}

TEST(Runner, RunManyGroupsResultsInSpecOrder) {
  std::vector<RunSpec> specs = {cheap_kaslr_spec(3), cheap_kaslr_spec(1)};
  specs[1].base_seed = 0x5117ULL;
  Executor ex(4);
  const auto results = run_many(specs, ex);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].trials.size(), 3u);
  EXPECT_EQ(results[1].trials.size(), 1u);
  // Each group must equal what a standalone run of its spec produces.
  const RunResult solo = run(specs[1], 1);
  ASSERT_EQ(solo.trials.size(), 1u);
  expect_identical(results[1].trials[0], solo.trials[0]);
}

TEST(Runner, AttackNamesComeFromTheRegistry) {
  for (const std::string& name : core::attack_names())
    EXPECT_NE(core::find_attack(name), nullptr);
  EXPECT_EQ(core::find_attack("prefetch"), nullptr);
  RunSpec spec = cheap_kaslr_spec(1);
  spec.attack = "prefetch";
  EXPECT_THROW((void)run(spec, 1), std::invalid_argument);
  Executor ex(2);
  EXPECT_THROW((void)run_many({spec}, ex), std::invalid_argument);
}

TEST(JsonWriter, EmitsValidStructure) {
  const RunSpec spec = cheap_kaslr_spec(2);
  const RunResult r = run(spec, 2);
  const std::string j = to_json(r);
  // Balanced braces/brackets and the load-bearing keys present.
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_EQ(std::count(j.begin(), j.end(), '['),
            std::count(j.begin(), j.end(), ']'));
  EXPECT_NE(j.find("\"attack\":\"kaslr\""), std::string::npos);
  EXPECT_NE(j.find("\"trials\":2"), std::string::npos);
  EXPECT_NE(j.find("\"trials_detail\":["), std::string::npos);
  EXPECT_NE(j.find("\"tote\":"), std::string::npos);
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("k");
  w.value(std::string("a\"b\\c\nd"));
  w.end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, DeterministicAcrossJobs) {
  const RunSpec spec = cheap_kaslr_spec(3);
  RunResult seq = run(spec, 1);
  RunResult par = run(spec, 4);
  // wall_seconds and jobs legitimately differ; normalise those fields.
  par.wall_seconds = seq.wall_seconds;
  par.jobs = seq.jobs;
  EXPECT_EQ(to_json(seq), to_json(par));
}

}  // namespace
}  // namespace whisper::runner
