// Tests for the runner's fault-tolerance layer and whisper::fault.
//
// The load-bearing property: a faulted sweep with enough retries is
// *bit-identical* to the unfaulted run — retries replay the trial's own
// (trial_seed, payload_seed) coordinates, and reset() ≡ fresh construction
// (tests/test_machine_reset.cpp) makes the fresh-machine fallback after a
// quarantine indistinguishable from the pooled path. On top of that, every
// failure class must end as data (TrialError records in the RunResult),
// never as an escaped exception or a terminated process — including a run
// where every single trial degrades.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/attacks/registry.h"
#include "fault/fault.h"
#include "os/machine.h"
#include "runner/executor.h"
#include "runner/json_writer.h"
#include "runner/runner.h"
#include "stats/json.h"

namespace whisper::runner {
namespace {

// A channel spec cheap enough to run with retries in a unit test.
RunSpec cheap_cc_spec(int trials) {
  RunSpec spec;
  spec.model = uarch::CpuModel::KabyLakeI7_7700;
  spec.attack = "cc";
  spec.trials = trials;
  spec.base_seed = 0xabcULL;
  spec.batches = 2;
  spec.payload_bytes = 2;
  spec.payload_seed = 0x11;
  return spec;
}

void expect_identical(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.seconds, b.seconds);  // bit-identical, not approximately
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.byte_errors, b.byte_errors);
  EXPECT_EQ(a.found_slot, b.found_slot);
  EXPECT_EQ(a.confidence, b.confidence);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.tote.buckets(), b.tote.buckets());
}

std::size_t count_errors(const RunResult& r, TrialErrorKind kind) {
  return r.error_counts[static_cast<std::size_t>(kind)];
}

// ---------------------------------------------------------------------------
// whisper::fault — the plan grammar and its determinism.

TEST(FaultPlan, ParsesDeterministicPoints) {
  const auto plan = fault::FaultPlan::parse("throw@2;corrupt@5,stall@8");
  ASSERT_EQ(plan.points().size(), 3u);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.uses(fault::Kind::kThrow));
  EXPECT_TRUE(plan.uses(fault::Kind::kCorrupt));
  EXPECT_TRUE(plan.uses(fault::Kind::kStall));
  EXPECT_FALSE(plan.uses(fault::Kind::kSleep));

  // The bare form fires on the first attempt only.
  EXPECT_TRUE(plan.fires(fault::Kind::kThrow, 2, 0));
  EXPECT_FALSE(plan.fires(fault::Kind::kThrow, 2, 1));
  EXPECT_FALSE(plan.fires(fault::Kind::kThrow, 3, 0));
  EXPECT_FALSE(plan.fires(fault::Kind::kCorrupt, 2, 0));
  EXPECT_TRUE(plan.fires(fault::Kind::kCorrupt, 5, 0));
  EXPECT_TRUE(plan.fires(fault::Kind::kStall, 8, 0));
}

TEST(FaultPlan, AttemptAndEveryAttemptForms) {
  const auto at = fault::FaultPlan::parse("throw@3.1");
  EXPECT_FALSE(at.fires(fault::Kind::kThrow, 3, 0));
  EXPECT_TRUE(at.fires(fault::Kind::kThrow, 3, 1));
  EXPECT_FALSE(at.fires(fault::Kind::kThrow, 3, 2));

  const auto star = fault::FaultPlan::parse("sleep@4*");
  for (int attempt : {0, 1, 2, 7})
    EXPECT_TRUE(star.fires(fault::Kind::kSleep, 4, attempt));
  EXPECT_FALSE(star.fires(fault::Kind::kSleep, 5, 0));
}

TEST(FaultPlan, RandomFormIsSeededAndFirstAttemptOnly) {
  const auto a = fault::FaultPlan::parse("throw~500@99");
  const auto b = fault::FaultPlan::parse("throw~500@99");
  std::size_t fires = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.fires(fault::Kind::kThrow, i, 0),
              b.fires(fault::Kind::kThrow, i, 0))
        << "same spec must fire at the same trials";
    if (a.fires(fault::Kind::kThrow, i, 0)) ++fires;
    EXPECT_FALSE(a.fires(fault::Kind::kThrow, i, 1))
        << "random points fire on the first attempt only";
  }
  // ~50% rate: loose bounds, the point is "neither never nor always".
  EXPECT_GT(fires, 60u);
  EXPECT_LT(fires, 140u);
  // A different seed picks a different trial set.
  const auto c = fault::FaultPlan::parse("throw~500@100");
  bool any_difference = false;
  for (std::uint64_t i = 0; i < 200 && !any_difference; ++i)
    any_difference = a.fires(fault::Kind::kThrow, i, 0) !=
                     c.fires(fault::Kind::kThrow, i, 0);
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, EmptyAndMalformedSpecs) {
  EXPECT_TRUE(fault::FaultPlan::parse("").empty());
  EXPECT_TRUE(fault::FaultPlan::parse("  ").empty());
  for (const char* bad : {"bogus@1", "throw", "throw@", "throw@x", "@2",
                          "throw~@3", "throw~1200@3", "throw@1."}) {
    EXPECT_THROW((void)fault::FaultPlan::parse(bad), std::invalid_argument)
        << "spec: " << bad;
  }
  // Empty segments between separators are tolerated, not an error.
  EXPECT_EQ(fault::FaultPlan::parse("throw@1;;corrupt@2").points().size(),
            2u);
  // The original spec string survives for labels/JSON.
  EXPECT_EQ(fault::FaultPlan::parse("throw@1").spec(), "throw@1");
}

// ---------------------------------------------------------------------------
// validate(): bad specs fail before the fan-out, with actionable messages.

TEST(Validate, UnknownAttackListsTheRegistry) {
  RunSpec spec = cheap_cc_spec(1);
  spec.attack = "prefetch";
  try {
    validate(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("prefetch"), std::string::npos);
    // Every registered key must appear in the message.
    for (const std::string& name : core::attack_names())
      EXPECT_NE(what.find(name), std::string::npos) << "missing: " << name;
  }
  EXPECT_THROW((void)run(spec, 1), std::invalid_argument);
}

TEST(Validate, RejectsBadFaultConfigurations) {
  RunSpec spec = cheap_cc_spec(1);
  spec.retries = -1;
  EXPECT_THROW(validate(spec), std::invalid_argument);

  spec = cheap_cc_spec(1);
  spec.fault_plan = "nope@1";
  EXPECT_THROW(validate(spec), std::invalid_argument);

  // stall/sleep injections demand a budget that would actually trip.
  spec = cheap_cc_spec(1);
  spec.fault_plan = "stall@0";
  EXPECT_THROW(validate(spec), std::invalid_argument);
  spec.trial_cycle_budget = 1'000'000'000;
  EXPECT_NO_THROW(validate(spec));

  spec = cheap_cc_spec(1);
  spec.fault_plan = "sleep@0";
  EXPECT_THROW(validate(spec), std::invalid_argument);
  spec.trial_wall_budget = 0.5;
  EXPECT_NO_THROW(validate(spec));
}

// ---------------------------------------------------------------------------
// Recovery: each error class is recorded, retried, and the recovered run is
// bit-identical to one that never failed.

TEST(FaultRecovery, InjectedThrowRetriesToBitIdentical) {
  RunSpec faulted = cheap_cc_spec(4);
  faulted.fault_plan = "throw@1";
  faulted.retries = 1;
  RunSpec clean = faulted;
  clean.fault_plan.clear();

  const RunResult f = run(faulted, 1);
  const RunResult c = run(clean, 1);

  EXPECT_TRUE(f.all_completed());
  EXPECT_EQ(f.failed, 0u);
  EXPECT_EQ(f.attempted, 4u);
  EXPECT_EQ(f.completed, 4u);
  EXPECT_EQ(f.retried, 1u);
  EXPECT_EQ(f.total_attempts, 5u);
  EXPECT_EQ(count_errors(f, TrialErrorKind::kException), 1u);
  EXPECT_EQ(count_errors(f, TrialErrorKind::kDegraded), 0u);

  ASSERT_EQ(f.outcomes.size(), 4u);
  EXPECT_TRUE(f.outcomes[1].ok);
  EXPECT_EQ(f.outcomes[1].attempts, 2);
  ASSERT_EQ(f.outcomes[1].errors.size(), 1u);
  EXPECT_EQ(f.outcomes[1].errors[0].kind, TrialErrorKind::kException);
  EXPECT_EQ(f.outcomes[1].errors[0].attempt, 0);
  EXPECT_NE(f.outcomes[1].errors[0].what.find("injected throw"),
            std::string::npos);
  EXPECT_EQ(f.outcomes[0].attempts, 1);

  ASSERT_EQ(f.trials.size(), c.trials.size());
  for (std::size_t i = 0; i < f.trials.size(); ++i)
    expect_identical(f.trials[i], c.trials[i]);
  EXPECT_EQ(f.tote.buckets(), c.tote.buckets());
  EXPECT_EQ(f.successes, c.successes);
}

TEST(FaultRecovery, CorruptQuarantinesAndFallsBackFresh) {
  RunSpec faulted = cheap_cc_spec(3);
  faulted.fault_plan = "corrupt@1";
  faulted.retries = 1;
  RunSpec clean = faulted;
  clean.fault_plan.clear();

  const RunResult f = run(faulted, 1);
  const RunResult c = run(clean, 1);

  EXPECT_EQ(f.failed, 0u);
  EXPECT_EQ(f.quarantined, 1u);
  EXPECT_EQ(count_errors(f, TrialErrorKind::kResetDrift), 1u);
  ASSERT_EQ(f.outcomes.size(), 3u);
  EXPECT_TRUE(f.outcomes[1].quarantined);
  EXPECT_TRUE(f.outcomes[1].ok);
  EXPECT_EQ(f.outcomes[1].attempts, 2);
  ASSERT_EQ(f.outcomes[1].errors.size(), 1u);
  EXPECT_EQ(f.outcomes[1].errors[0].kind, TrialErrorKind::kResetDrift);

  // The trial after the quarantine rebuilds a pooled machine from scratch;
  // every slot must still match the unfaulted run.
  for (std::size_t i = 0; i < f.trials.size(); ++i)
    expect_identical(f.trials[i], c.trials[i]);
}

TEST(FaultRecovery, StallTripsTheCycleBudgetThenRecovers) {
  RunSpec faulted = cheap_cc_spec(3);
  faulted.fault_plan = "stall@2";
  faulted.trial_cycle_budget = 1'000'000'000;  // generous: clean trials pass
  faulted.retries = 1;
  RunSpec clean = faulted;
  clean.fault_plan.clear();

  const RunResult f = run(faulted, 1);
  const RunResult c = run(clean, 1);

  EXPECT_EQ(f.failed, 0u);
  EXPECT_EQ(count_errors(f, TrialErrorKind::kCycleBudget), 1u);
  ASSERT_EQ(f.outcomes.size(), 3u);
  EXPECT_TRUE(f.outcomes[2].ok);
  EXPECT_EQ(f.outcomes[2].attempts, 2);
  ASSERT_EQ(f.outcomes[2].errors.size(), 1u);
  EXPECT_EQ(f.outcomes[2].errors[0].kind, TrialErrorKind::kCycleBudget);

  for (std::size_t i = 0; i < f.trials.size(); ++i)
    expect_identical(f.trials[i], c.trials[i]);
}

TEST(FaultRecovery, SleepTripsTheWatchdogThenRecovers) {
  RunSpec faulted = cheap_cc_spec(2);
  faulted.fault_plan = "sleep@0";
  faulted.trial_wall_budget = 0.5;  // injected sleep is budget + 0.05 s;
                                    // clean attempts finish far below this
  faulted.retries = 1;
  RunSpec clean = cheap_cc_spec(2);  // no wall budget: no flake risk

  const RunResult f = run(faulted, 1);
  const RunResult c = run(clean, 1);

  EXPECT_EQ(f.failed, 0u);
  EXPECT_EQ(count_errors(f, TrialErrorKind::kWatchdog), 1u);
  ASSERT_EQ(f.outcomes.size(), 2u);
  EXPECT_TRUE(f.outcomes[0].ok);
  EXPECT_EQ(f.outcomes[0].attempts, 2);
  ASSERT_EQ(f.outcomes[0].errors.size(), 1u);
  EXPECT_EQ(f.outcomes[0].errors[0].kind, TrialErrorKind::kWatchdog);

  // The watchdog is host wall-clock, but the trial *results* live on the
  // simulated clock — recovery must still be bit-identical.
  for (std::size_t i = 0; i < f.trials.size(); ++i)
    expect_identical(f.trials[i], c.trials[i]);
}

// The acceptance sweep: three error classes in one plan, exact per-class
// accounting, full recovery, and bit-identity both to the clean run and
// across --jobs.
TEST(FaultRecovery, ThreeClassSweepIsBitIdenticalAcrossJobs) {
  RunSpec faulted = cheap_cc_spec(6);
  faulted.fault_plan = "throw@1;corrupt@3;stall@4";
  faulted.trial_cycle_budget = 1'000'000'000;
  faulted.retries = 2;
  RunSpec clean = faulted;
  clean.fault_plan.clear();

  const RunResult seq = run(faulted, 1);
  const RunResult par = run(faulted, 4);
  const RunResult c = run(clean, 1);

  for (const RunResult* r : {&seq, &par}) {
    EXPECT_EQ(r->failed, 0u);
    EXPECT_EQ(r->completed, 6u);
    EXPECT_EQ(r->retried, 3u);
    EXPECT_EQ(r->quarantined, 1u);
    EXPECT_EQ(r->total_attempts, 9u);
    EXPECT_EQ(count_errors(*r, TrialErrorKind::kException), 1u);
    EXPECT_EQ(count_errors(*r, TrialErrorKind::kResetDrift), 1u);
    EXPECT_EQ(count_errors(*r, TrialErrorKind::kCycleBudget), 1u);
    EXPECT_EQ(count_errors(*r, TrialErrorKind::kWatchdog), 0u);
    EXPECT_EQ(count_errors(*r, TrialErrorKind::kDegraded), 0u);
  }

  ASSERT_EQ(seq.trials.size(), par.trials.size());
  for (std::size_t i = 0; i < seq.trials.size(); ++i) {
    expect_identical(seq.trials[i], par.trials[i]);
    expect_identical(seq.trials[i], c.trials[i]);
  }
  // Outcome accounting is schedule-independent too: fires() is a pure
  // function of (trial, attempt).
  for (std::size_t i = 0; i < seq.outcomes.size(); ++i) {
    EXPECT_EQ(seq.outcomes[i].ok, par.outcomes[i].ok);
    EXPECT_EQ(seq.outcomes[i].attempts, par.outcomes[i].attempts);
    EXPECT_EQ(seq.outcomes[i].quarantined, par.outcomes[i].quarantined);
    EXPECT_EQ(seq.outcomes[i].errors.size(), par.outcomes[i].errors.size());
  }
  // Whole-trajectory check, wall-clock fields normalised.
  RunResult p = par;
  p.wall_seconds = seq.wall_seconds;
  p.jobs = seq.jobs;
  EXPECT_EQ(to_json(seq), to_json(p));
}

TEST(FaultRecovery, EveryAttemptFaultDegradesJustThatTrial) {
  RunSpec spec = cheap_cc_spec(3);
  spec.fault_plan = "throw@2*";  // retries cannot save trial 2
  spec.retries = 2;
  RunSpec clean = cheap_cc_spec(3);

  const RunResult r = run(spec, 1);
  EXPECT_FALSE(r.all_completed());
  EXPECT_EQ(r.failed, 1u);
  EXPECT_EQ(r.completed, 2u);
  EXPECT_EQ(count_errors(r, TrialErrorKind::kException), 3u);
  EXPECT_EQ(count_errors(r, TrialErrorKind::kDegraded), 1u);
  ASSERT_EQ(r.outcomes.size(), 3u);
  EXPECT_FALSE(r.outcomes[2].ok);
  EXPECT_EQ(r.outcomes[2].attempts, 3);
  ASSERT_EQ(r.outcomes[2].errors.size(), 4u);
  EXPECT_EQ(r.outcomes[2].errors.back().kind, TrialErrorKind::kDegraded);

  // The degraded slot keeps its seed but contributes nothing to the merge.
  EXPECT_EQ(r.trials[2].seed, trial_seed(spec.base_seed, 2));
  EXPECT_FALSE(r.trials[2].success);
  EXPECT_EQ(r.trials[2].tote.total(), 0u);
  const RunResult c = run(clean, 1);
  expect_identical(r.trials[0], c.trials[0]);
  expect_identical(r.trials[1], c.trials[1]);
  EXPECT_EQ(r.seconds.n, 2u);
  EXPECT_EQ(r.total_bytes, c.total_bytes - c.trials[2].bytes);
}

TEST(FaultRecovery, AllTrialsFailedIsStillAValidRunResult) {
  RunSpec spec = cheap_cc_spec(3);
  spec.trial_cycle_budget = 1;  // every attempt breaches immediately
  spec.retries = 1;

  const RunResult r = run(spec, 2);
  EXPECT_EQ(r.attempted, 3u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.failed, 3u);
  EXPECT_EQ(r.total_attempts, 6u);
  EXPECT_EQ(r.successes, 0u);
  EXPECT_EQ(count_errors(r, TrialErrorKind::kCycleBudget), 6u);
  EXPECT_EQ(count_errors(r, TrialErrorKind::kDegraded), 3u);
  EXPECT_FALSE(r.all_completed());

  // Merged statistics are zeroed, not a throw from empty accessors.
  EXPECT_EQ(r.seconds.n, 0u);
  EXPECT_EQ(r.tote.total(), 0u);

  // The trajectory and metrics exports must survive the degenerate run.
  const std::string j = to_json(r);
  EXPECT_TRUE(stats::json_is_valid(j)) << j.substr(0, 200);
  EXPECT_NE(j.find("\"failed\":3"), std::string::npos);
  EXPECT_NE(j.find("\"cycle_budget\":6"), std::string::npos);
  EXPECT_NE(j.find("\"degraded\":3"), std::string::npos);
  const obs::MetricsRegistry reg = to_metrics(r);
  EXPECT_TRUE(stats::json_is_valid(reg.to_json()));
}

// ---------------------------------------------------------------------------
// The post-reset() digest itself, at the Machine level.

TEST(ResetDigest, DetectsSilentCorruptionAcrossReset) {
  const RunSpec spec = cheap_cc_spec(1);
  const std::uint64_t seed = trial_seed(spec.base_seed, 0);
  os::Machine m(machine_options(spec, seed));
  EXPECT_EQ(m.baseline_digest(), 0u) << "no snapshot yet";
  m.snapshot();
  const std::uint64_t baseline = m.baseline_digest();
  EXPECT_NE(baseline, 0u);
  EXPECT_EQ(m.state_digest(), baseline);

  // A normal trial + reset() round-trips to the baseline...
  (void)run_trial(spec, seed, m);
  m.reset(seed);
  EXPECT_EQ(m.state_digest(), baseline);

  // ...but a write that bypasses the undo log survives reset(): exactly the
  // drift the digest exists to catch.
  m.memsys().phys().corrupt_frame_for_test();
  EXPECT_NE(m.state_digest(), baseline);
  m.reset(seed);
  EXPECT_NE(m.state_digest(), baseline);
}

TEST(ResetDigest, IsSeedIndependentAfterReset) {
  // The pooled path resets with a *different* seed each trial; the digest
  // must still match the snapshot baseline (KASLR reseeding moves virtual
  // mappings, not physical frames).
  const RunSpec spec = cheap_cc_spec(1);
  os::Machine m(machine_options(spec, trial_seed(spec.base_seed, 0)));
  m.snapshot();
  const std::uint64_t baseline = m.baseline_digest();
  for (std::uint64_t i = 1; i < 4; ++i) {
    m.reset(trial_seed(spec.base_seed, i));
    EXPECT_EQ(m.state_digest(), baseline) << "trial " << i;
  }
}

// ---------------------------------------------------------------------------
// Executor: exceptions never cross the ThreadPool boundary.

struct CapturingSlot {
  int value = 0;
  std::string error;
  void capture_unhandled(const std::string& what) { error = what; }
};

TEST(ExecutorFaults, CapturesEscapedExceptionsIntoSlots) {
  Executor ex(4);
  const auto out = ex.map(16, [](std::size_t i) -> CapturingSlot {
    if (i % 3 == 0)
      throw std::runtime_error("boom " + std::to_string(i));
    return CapturingSlot{static_cast<int>(i), ""};
  });
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(out[i].error, "boom " + std::to_string(i));
      EXPECT_EQ(out[i].value, 0);
    } else {
      EXPECT_TRUE(out[i].error.empty());
      EXPECT_EQ(out[i].value, static_cast<int>(i));
    }
  }
}

TEST(ExecutorFaults, NonCapturableResultsRunAllItemsThenRethrowOnce) {
  for (int jobs : {1, 4}) {
    Executor ex(jobs);
    std::atomic<int> ran{0};
    try {
      (void)ex.map(12, [&ran](std::size_t i) -> int {
        ran.fetch_add(1);
        if (i == 5 || i == 7) throw std::runtime_error("task died");
        return static_cast<int>(i);
      });
      FAIL() << "expected std::runtime_error (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("2 task(s) threw"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find("task died"), std::string::npos);
    }
    EXPECT_EQ(ran.load(), 12) << "every item still runs (jobs=" << jobs
                              << ")";
    // The pool survives the failed map — workers were not terminated.
    const auto again = ex.map(6, [](std::size_t i) {
      return static_cast<int>(i * 2);
    });
    ASSERT_EQ(again.size(), 6u);
    EXPECT_EQ(again[5], 10);
  }
}

// run_many: the fault plan (and its accounting) stays per-spec when trials
// from several specs interleave through one pool.
TEST(FaultRecovery, RunManyKeepsFaultAccountingPerSpec) {
  RunSpec faulted = cheap_cc_spec(3);
  faulted.fault_plan = "throw@0";
  faulted.retries = 1;
  RunSpec clean = cheap_cc_spec(2);
  clean.base_seed = 0x5117ULL;

  Executor ex(4);
  const auto results = run_many({faulted, clean}, ex);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(count_errors(results[0], TrialErrorKind::kException), 1u);
  EXPECT_EQ(results[0].retried, 1u);
  EXPECT_EQ(results[0].failed, 0u);
  EXPECT_EQ(count_errors(results[1], TrialErrorKind::kException), 0u);
  EXPECT_EQ(results[1].total_attempts, 2u);

  const RunResult solo = run(clean, 1);
  for (std::size_t i = 0; i < solo.trials.size(); ++i)
    expect_identical(results[1].trials[i], solo.trials[i]);
}

}  // namespace
}  // namespace whisper::runner
