// Unit tests for the 4-level page-table walker — including the walk-depth
// and termination semantics the KASLR experiments rely on.
#include <gtest/gtest.h>

#include "mem/page_table.h"

namespace whisper::mem {
namespace {

PteFlags user_rw() {
  return {.present = true, .writable = true, .user = true};
}
PteFlags kernel_ro() {
  return {.present = true, .writable = false, .user = false, .global = true};
}

TEST(PageTableTest, MapAndWalk4K) {
  PageTable pt;
  pt.map(0x400000, 0x1000000, 0x3000, user_rw());
  const WalkResult r = pt.walk(0x401234);
  EXPECT_EQ(r.status, WalkStatus::Ok);
  EXPECT_EQ(r.paddr, 0x1001234u);
  EXPECT_EQ(r.page_size, PageSize::k4K);
  EXPECT_TRUE(r.flags.user);
}

TEST(PageTableTest, MapAndWalk2M) {
  PageTable pt;
  pt.map(0x40000000, 0x80000000, 2ull << 20, kernel_ro(), PageSize::k2M);
  const WalkResult r = pt.walk(0x40012345);
  EXPECT_EQ(r.status, WalkStatus::Ok);
  EXPECT_EQ(r.paddr, 0x80012345u);
  EXPECT_EQ(r.page_size, PageSize::k2M);
  EXPECT_FALSE(r.flags.user);
}

TEST(PageTableTest, MisalignedMappingThrows) {
  PageTable pt;
  EXPECT_THROW(pt.map(0x1001, 0x2000, 0x1000, user_rw()),
               std::invalid_argument);
  EXPECT_THROW(pt.map(0x1000, 0x2000, 0x800, user_rw()),
               std::invalid_argument);
  EXPECT_THROW(pt.map(0x100000, 0x200000, 2ull << 20, user_rw(),
                      PageSize::k2M),
               std::invalid_argument);
  EXPECT_THROW(pt.map(0x1000, 0x2000, 0, user_rw()), std::invalid_argument);
}

TEST(PageTableTest, UnmapRemovesRange) {
  PageTable pt;
  pt.map(0x400000, 0x1000000, 0x4000, user_rw());
  pt.unmap(0x401000, 0x2000);
  EXPECT_EQ(pt.walk(0x400000).status, WalkStatus::Ok);
  EXPECT_EQ(pt.walk(0x401000).status, WalkStatus::NotPresent);
  EXPECT_EQ(pt.walk(0x402fff).status, WalkStatus::NotPresent);
  EXPECT_EQ(pt.walk(0x403000).status, WalkStatus::Ok);
}

TEST(PageTableTest, ReservedLeafReportsReservedBit) {
  PageTable pt;
  PteFlags dummy = kernel_ro();
  dummy.reserved = true;
  pt.map(0x40000000, 0x80000000, 2ull << 20, dummy, PageSize::k2M);
  const WalkResult r = pt.walk(0x40000100);
  EXPECT_EQ(r.status, WalkStatus::ReservedBit);
  // A reserved walk still fetched the full depth of a 2M mapping.
  EXPECT_EQ(r.levels_fetched, 3);
}

TEST(PageTableTest, NonPresentLeafFlag) {
  PageTable pt;
  PteFlags np = user_rw();
  np.present = false;
  pt.map(0x400000, 0x1000000, 0x1000, np);
  EXPECT_EQ(pt.walk(0x400000).status, WalkStatus::NotPresent);
}

TEST(PageTableTest, UnmappedWalkDepthFollowsNeighbors) {
  PageTable pt;
  // Nothing mapped at all: walk dies at the PML4.
  EXPECT_EQ(pt.walk(0x1234000).miss_level, 1);

  // Map a 2M kernel page; a slot 2 MiB away shares PML4+PDPT+PD tables, so
  // the walker reaches level 3 before finding a non-present PDE.
  pt.map(0xffffffff80000000ull, 0x100000000ull, 2ull << 20, kernel_ro(),
         PageSize::k2M);
  const WalkResult near = pt.walk(0xffffffff80000000ull + (2ull << 20));
  EXPECT_EQ(near.status, WalkStatus::NotPresent);
  EXPECT_EQ(near.miss_level, 3);

  // An address in a different PML4 region dies at level 1.
  const WalkResult far = pt.walk(0x00007f0000000000ull);
  EXPECT_EQ(far.miss_level, 1);
}

TEST(PageTableTest, PscHitsReduceFetchedLevels) {
  PageTable pt;
  pt.map(0x400000, 0x1000000, 0x1000, user_rw());
  EXPECT_EQ(pt.walk(0x400000, 0).levels_fetched, 4);
  EXPECT_EQ(pt.walk(0x400000, 2).levels_fetched, 2);
  EXPECT_EQ(pt.walk(0x400000, 3).levels_fetched, 1);
  // Never less than one fetch.
  EXPECT_EQ(pt.walk(0x400000, 7).levels_fetched, 1);
}

TEST(PageTableTest, LookupReturnsOnlyPresentLeaves) {
  PageTable pt;
  pt.map(0x400000, 0x1000000, 0x1000, user_rw());
  EXPECT_TRUE(pt.lookup(0x400800).has_value());
  EXPECT_FALSE(pt.lookup(0x500000).has_value());
}

TEST(PageTableTest, OverlapWithDifferentPageSizeThrows) {
  PageTable pt;
  pt.map(0x40000000, 0x80000000, 2ull << 20, kernel_ro(), PageSize::k2M);
  EXPECT_THROW(pt.map(0x40000000, 0x90000000, 0x1000, user_rw()),
               std::invalid_argument);
}

TEST(PageTableTest, ForEachVisitsAscending) {
  PageTable pt;
  pt.map(0x600000, 0x3000000, 0x1000, user_rw());
  pt.map(0x400000, 0x1000000, 0x1000, user_rw());
  std::vector<std::uint64_t> vaddrs;
  pt.for_each([&](std::uint64_t v, std::uint64_t, const PteFlags&, PageSize) {
    vaddrs.push_back(v);
  });
  ASSERT_EQ(vaddrs.size(), 2u);
  EXPECT_EQ(vaddrs[0], 0x400000u);
  EXPECT_EQ(vaddrs[1], 0x600000u);
}

TEST(FirstDivergentLevelTest, Boundaries) {
  const std::uint64_t a = 0xffffffff80000000ull;
  EXPECT_EQ(first_divergent_level(a, a), 5);                   // same page
  EXPECT_EQ(first_divergent_level(a, a + (1ull << 12)), 4);    // same PT? no: different PTE
  EXPECT_EQ(first_divergent_level(a, a + (1ull << 21)), 3);    // different PDE
  EXPECT_EQ(first_divergent_level(a, a + (1ull << 30)), 2);    // different PDPTE
  EXPECT_EQ(first_divergent_level(a, a + (1ull << 39)), 1);    // different PML4E
}

}  // namespace
}  // namespace whisper::mem
