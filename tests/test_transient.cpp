// Transient-execution semantics: what must roll back (architectural state)
// and what must not (caches, predictors) — the substrate contracts for both
// the TET channel and the Flush+Reload baseline.
#include <gtest/gtest.h>

#include "isa/builder.h"
#include "os/machine.h"

namespace whisper {
namespace {

using isa::Cond;
using isa::ProgramBuilder;
using isa::Reg;

class TransientTest : public ::testing::Test {
 protected:
  TransientTest() : m_({.model = uarch::CpuModel::KabyLakeI7_7700}) {}

  std::uint64_t reg(const uarch::RunResult& r, Reg rr) {
    return r.t0().regs[static_cast<std::size_t>(rr)];
  }

  os::Machine m_;
};

TEST_F(TransientTest, TransientRegisterWritesNeverRetire) {
  ProgramBuilder b;
  b.mov(Reg::RCX, 0)
      .load(Reg::RAX, Reg::RCX)   // faults
      .mov(Reg::RBX, 0x42)        // transient
      .add(Reg::RBX, 1)           // transient
      .label("handler")
      .halt();
  const auto p = b.build();
  const auto r = m_.run_user(p, {}, p.label("handler"));
  EXPECT_EQ(reg(r, Reg::RBX), 0u);
}

TEST_F(TransientTest, TransientStoresAreUndone) {
  m_.poke64(os::Machine::kDataBase, 0x1111);
  ProgramBuilder b;
  b.mov(Reg::RCX, 0)
      .mov(Reg::RDI, static_cast<std::int64_t>(os::Machine::kDataBase))
      .mov(Reg::RSI, 0x2222)
      .load(Reg::RAX, Reg::RCX)   // faults; store below is transient
      .store(Reg::RDI, Reg::RSI)
      .label("handler")
      .halt();
  const auto p = b.build();
  (void)m_.run_user(p, {}, p.label("handler"));
  EXPECT_EQ(m_.peek64(os::Machine::kDataBase), 0x1111u)
      << "transient store leaked into architectural memory";
}

TEST_F(TransientTest, SquashedWrongPathStoresAreUndone) {
  // A mispredicted (non-transient) branch's wrong-path store must also
  // disappear.
  m_.poke64(os::Machine::kDataBase + 8, 0xAAAA);
  ProgramBuilder b;
  b.mov(Reg::RDI, static_cast<std::int64_t>(os::Machine::kDataBase + 8))
      .mov(Reg::RSI, 0xBBBB)
      .mov(Reg::RAX, 1)
      .cmp(Reg::RAX, 1)
      .jcc(Cond::Z, "taken")      // actually taken; cold predictor says no
      .store(Reg::RDI, Reg::RSI)  // wrong-path store
      .label("taken")
      .halt();
  (void)m_.run_user(b.build());
  EXPECT_EQ(m_.peek64(os::Machine::kDataBase + 8), 0xAAAAu);
}

TEST_F(TransientTest, TransientLoadsLeaveCacheFootprint) {
  // The Flush+Reload baseline depends on this; the TET channel does not.
  const std::uint64_t probe_line = os::Machine::kDataBase + 0x4000;
  m_.memsys().clflush(probe_line);
  const std::uint64_t paddr = m_.memsys().translate_or_throw(probe_line);
  ASSERT_FALSE(m_.memsys().l1().contains(paddr));

  ProgramBuilder b;
  b.mov(Reg::RCX, 0)
      .mov(Reg::RDI, static_cast<std::int64_t>(probe_line))
      .load(Reg::RAX, Reg::RCX)   // faults
      .load(Reg::RBX, Reg::RDI)   // transient load fills the cache
      .label("handler")
      .halt();
  const auto p = b.build();
  (void)m_.run_user(p, {}, p.label("handler"));
  EXPECT_TRUE(m_.memsys().l1().contains(paddr))
      << "transient fills must persist (cache side channels exist)";
}

TEST_F(TransientTest, ForwardedSecretReachesTransientDependents) {
  // Plant a kernel secret, leak it into a transient store address, and
  // verify via the cache footprint — i.e., Meltdown's forwarding works.
  const std::uint8_t secret[] = {3};
  const std::uint64_t kaddr = m_.plant_kernel_secret(secret);
  const std::uint64_t arr = os::Machine::kDataBase;
  for (int i = 0; i < 8; ++i)
    m_.memsys().clflush(arr + static_cast<std::uint64_t>(i) * 64);

  ProgramBuilder b;
  b.mov(Reg::RCX, static_cast<std::int64_t>(kaddr))
      .mov(Reg::RDI, static_cast<std::int64_t>(arr))
      .load_byte(Reg::RAX, Reg::RCX)  // faulting load forwards 3
      .shl(Reg::RAX, 6)
      .add(Reg::RAX, Reg::RDI)
      .load_byte(Reg::RBX, Reg::RAX)  // touches arr + 3*64
      .label("handler")
      .halt();
  const auto p = b.build();
  (void)m_.run_user(p, {}, p.label("handler"));
  const std::uint64_t hot = m_.memsys().translate_or_throw(arr + 3 * 64);
  const std::uint64_t cold = m_.memsys().translate_or_throw(arr + 5 * 64);
  EXPECT_TRUE(m_.memsys().l1().contains(hot));
  EXPECT_FALSE(m_.memsys().l1().contains(cold));
}

TEST_F(TransientTest, FixedCpuForwardsZeroes) {
  os::Machine fixed({.model = uarch::CpuModel::CometLakeI9_10980XE});
  const std::uint8_t secret[] = {3};
  const std::uint64_t kaddr = fixed.plant_kernel_secret(secret);
  const std::uint64_t arr = os::Machine::kDataBase;
  for (int i = 0; i < 8; ++i)
    fixed.memsys().clflush(arr + static_cast<std::uint64_t>(i) * 64);

  ProgramBuilder b;
  b.mov(Reg::RCX, static_cast<std::int64_t>(kaddr))
      .mov(Reg::RDI, static_cast<std::int64_t>(arr))
      .load_byte(Reg::RAX, Reg::RCX)
      .shl(Reg::RAX, 6)
      .add(Reg::RAX, Reg::RDI)
      .load_byte(Reg::RBX, Reg::RAX)
      .label("handler")
      .halt();
  const auto p = b.build();
  (void)fixed.run_user(p, {}, p.label("handler"));
  const std::uint64_t line3 = fixed.memsys().translate_or_throw(arr + 3 * 64);
  EXPECT_FALSE(fixed.memsys().l1().contains(line3))
      << "fixed silicon must not forward the secret";
}

TEST_F(TransientTest, NestedFaultOnlyOuterHandled) {
  // Two faulting loads: the older one's machine clear squashes the younger
  // before its fault can retire — exactly one clear, one redirect.
  const auto clears_before =
      m_.core().pmu().value(uarch::PmuEvent::MACHINE_CLEARS_COUNT);
  ProgramBuilder b;
  b.mov(Reg::RCX, 0)
      .load(Reg::RAX, Reg::RCX)   // fault #1
      .load(Reg::RBX, Reg::RCX)   // transient fault #2
      .label("handler")
      .halt();
  const auto p = b.build();
  const auto r = m_.run_user(p, {}, p.label("handler"));
  EXPECT_TRUE(r.t0().halted);
  EXPECT_FALSE(r.t0().killed_by_fault);
  const auto clears_after =
      m_.core().pmu().value(uarch::PmuEvent::MACHINE_CLEARS_COUNT);
  EXPECT_EQ(clears_after - clears_before, 1u);
}

TEST_F(TransientTest, LfenceOrdersRdtscAroundWindow) {
  // Without fences the second rdtsc could execute before the slow load
  // resolves; the gadget's fences force it after.
  ProgramBuilder b;
  b.mov(Reg::RCX, static_cast<std::int64_t>(os::Machine::kDataBase))
      .rdtsc(Reg::R8)
      .lfence()
      .load(Reg::RAX, Reg::RCX)  // DRAM-cold load, ~200 cycles
      .lfence()
      .rdtsc(Reg::R9)
      .halt();
  m_.memsys().clflush(os::Machine::kDataBase);
  const auto r = m_.run_user(b.build());
  ASSERT_EQ(r.t0().tsc.size(), 2u);
  EXPECT_GT(r.t0().tsc[1] - r.t0().tsc[0],
            static_cast<std::uint64_t>(m_.config().mem.dram_latency / 2));
}

TEST_F(TransientTest, MispredictInsideWindowStillResteers) {
  // The Whisper root cause (§5.2.2): a transient branch misprediction
  // resteers the front end even though the branch never retires.
  const auto resteer_before =
      m_.core().pmu().value(uarch::PmuEvent::INT_MISC_CLEAR_RESTEER_CYCLES);
  ProgramBuilder b;
  b.mov(Reg::RCX, 0)
      .mov(Reg::RBX, 5)
      .load(Reg::RAX, Reg::RCX)  // open the window
      .cmp(Reg::RBX, 5)
      .jcc(Cond::Z, "hit")       // actually taken; predicted not-taken
      .nop(8)
      .label("hit")
      .nop()
      .label("handler")
      .halt();
  const auto p = b.build();
  (void)m_.run_user(p, {}, p.label("handler"));
  const auto resteer_after =
      m_.core().pmu().value(uarch::PmuEvent::INT_MISC_CLEAR_RESTEER_CYCLES);
  EXPECT_GT(resteer_after, resteer_before);
}

}  // namespace
}  // namespace whisper
