// Tests for the access-based TLB eviction mechanism and the Prime+Probe
// baseline channel.
#include <gtest/gtest.h>

#include "baseline/prime_probe.h"
#include "core/attacks/kaslr.h"
#include "os/machine.h"

namespace whisper {
namespace {

TEST(TlbEvictionTest, AccessEvictionDisplacesWarmEntries) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
  // Warm a translation for the data page.
  (void)m.memsys().access({.vaddr = os::Machine::kDataBase,
                           .type = mem::AccessType::Read,
                           .user_mode = true,
                           .size = 8});
  ASSERT_TRUE(m.memsys().dtlb().contains(os::Machine::kDataBase) ||
              m.memsys().stlb().contains(os::Machine::kDataBase));

  m.evict_tlbs_via_access();

  EXPECT_FALSE(m.memsys().dtlb().contains(os::Machine::kDataBase));
  EXPECT_FALSE(m.memsys().stlb().contains(os::Machine::kDataBase));
}

TEST(TlbEvictionTest, AccessEvictionCostsRealSimulatedTime) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
  m.evict_tlbs_via_access();  // warm the eviction buffer itself
  const std::uint64_t before = m.core().cycle();
  m.evict_tlbs_via_access();
  const std::uint64_t cost = m.core().cycle() - before;
  // ~2k loads whose TLB-miss walks overlap across the load ports: still
  // thousands of cycles, more than the flat flush estimate (1500).
  EXPECT_GT(cost, 2'500u);
}

TEST(TlbEvictionTest, KaslrStillBreaksWithUnprivilegedEviction) {
  // The §4.2 threat model needs no privileged TLB flush: run the full
  // TET-KASLR scan with access-based eviction only.
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE, .seed = 77});
  core::TetKaslr atk(m, {.rounds = 2});
  // Warm the eviction buffer once, then scan with per-probe eviction.
  m.evict_tlbs_via_access();

  const std::uint64_t probe_offset = 0;
  std::vector<std::uint64_t> scores(os::kKaslrSlots, ~0ull);
  for (int s = 0; s < os::kKaslrSlots; ++s) {
    const std::uint64_t target = os::kKaslrRegionStart +
                                 static_cast<std::uint64_t>(s) *
                                     os::kKaslrSlotBytes +
                                 probe_offset;
    std::uint64_t best = ~0ull;
    for (int round = 0; round < 2; ++round) {
      m.evict_tlbs_via_access();
      best = std::min(best, atk.probe_once(target, /*evict=*/false));
    }
    scores[static_cast<std::size_t>(s)] = best;
  }
  // First-mapped-slot rule, as in TetKaslr::run().
  std::vector<std::uint64_t> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t thresh = sorted.front() +
                               (sorted[sorted.size() / 2] - sorted.front()) / 2;
  int found = 0;
  for (int s = 0; s < os::kKaslrSlots; ++s)
    if (scores[static_cast<std::size_t>(s)] <= thresh) {
      found = s;
      break;
    }
  EXPECT_EQ(found, m.kernel().slot());
}

TEST(PrimeProbeTest, SymbolRoundtrip) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  baseline::PrimeProbeChannel ch(m);
  for (int sym : {0, 1, 7, 15}) {
    ch.prime();
    ch.send_symbol(sym);
    EXPECT_EQ(ch.receive_symbol(), sym) << "symbol " << sym;
  }
}

TEST(PrimeProbeTest, NoSendNoDetection) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  baseline::PrimeProbeChannel ch(m);
  ch.prime();
  EXPECT_EQ(ch.receive_symbol(), -1) << "quiet sets must not decode";
}

TEST(PrimeProbeTest, TransmitsBytes) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  baseline::PrimeProbeChannel ch(m);
  const std::vector<std::uint8_t> payload = {0x00, 0x5a, 0xf0, 0x0f, 0xff};
  const auto rep = ch.transmit(payload);
  EXPECT_EQ(rep.byte_errors, 0u) << rep.to_string();
}

TEST(PrimeProbeTest, WorksAcrossModels) {
  for (uarch::CpuModel model : {uarch::CpuModel::SkylakeI7_6700,
                                uarch::CpuModel::Zen3Ryzen5_5600G}) {
    os::Machine m({.model = model});
    baseline::PrimeProbeChannel ch(m);
    ch.prime();
    ch.send_symbol(9);
    EXPECT_EQ(ch.receive_symbol(), 9) << uarch::to_string(model);
  }
}

}  // namespace
}  // namespace whisper
