// whisper::noise + the unified Attack API: determinism of every
// interference source, the observer-effect guarantee (a disabled profile
// cannot perturb a run), the adaptive escalation loop, and the attack
// registry round-trip.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/attacks/registry.h"
#include "noise/noise.h"
#include "os/machine.h"
#include "runner/runner.h"

namespace whisper {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

noise::NoiseProfile single_source(noise::NoiseKind kind, double intensity) {
  noise::NoiseProfile p;
  p.name = std::string("only-") + noise::to_string(kind);
  p.sources = {{kind, intensity}};
  return p;
}

// ---------------------------------------------------------------------------
// Profiles and presets
// ---------------------------------------------------------------------------

TEST(NoiseProfile, PresetsParseAndScale) {
  for (const std::string& name : noise::NoiseProfile::preset_names()) {
    const auto p = noise::NoiseProfile::by_name(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_EQ(p->name, name);
  }
  EXPECT_FALSE(noise::NoiseProfile::by_name("datacenter").has_value());
  EXPECT_FALSE(noise::NoiseProfile::off().enabled());

  const noise::NoiseProfile desktop = noise::NoiseProfile::desktop();
  EXPECT_TRUE(desktop.enabled());
  const noise::NoiseProfile half = desktop.scaled(0.5);
  for (const noise::NoiseSource& s : desktop.sources)
    EXPECT_DOUBLE_EQ(half.intensity(s.kind), s.intensity * 0.5);
  EXPECT_FALSE(desktop.scaled(0.0).enabled());
}

// ---------------------------------------------------------------------------
// Determinism: every source is a pure function of (profile, seed, stream)
// ---------------------------------------------------------------------------

TEST(NoiseDeterminism, EachSourceIsSeedDeterministicAndActuallyFires) {
  const std::vector<std::uint8_t> payload = bytes_of("det!");
  for (std::size_t k = 0; k < noise::kNumNoiseKinds; ++k) {
    const auto kind = static_cast<noise::NoiseKind>(k);
    const noise::NoiseProfile profile = single_source(kind, 0.8);

    auto run_once = [&](noise::NoiseStats* stats_out) {
      os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700,
                     .seed = 77,
                     .noise = profile});
      const auto atk = core::make_attack("cc", m);
      const core::AttackResult r = atk->run(payload);
      if (stats_out != nullptr) {
        EXPECT_NE(m.noise(), nullptr);
        if (m.noise() != nullptr) *stats_out = m.noise()->stats();
      }
      return r;
    };

    noise::NoiseStats stats;
    core::AttackResult a;
    run_once(&stats);
    a = run_once(nullptr);
    const core::AttackResult b = run_once(nullptr);

    EXPECT_EQ(a.bytes, b.bytes) << noise::to_string(kind);
    EXPECT_EQ(a.cycles, b.cycles) << noise::to_string(kind);
    EXPECT_EQ(a.probes, b.probes) << noise::to_string(kind);
    EXPECT_EQ(a.confidence, b.confidence) << noise::to_string(kind);

    // The source must have injected something, or the test is vacuous.
    std::uint64_t fired = 0;
    switch (kind) {
      case noise::NoiseKind::SmtContention: fired = stats.contended_accesses; break;
      case noise::NoiseKind::TimerInterrupt: fired = stats.timer_interrupts; break;
      case noise::NoiseKind::Dvfs: fired = stats.dvfs_steps; break;
      case noise::NoiseKind::Prefetcher: fired = stats.prefetch_fills; break;
      case noise::NoiseKind::TlbShootdown: fired = stats.tlb_shootdowns; break;
    }
    EXPECT_GT(fired, 0u) << noise::to_string(kind);
  }
}

TEST(NoiseDeterminism, DifferentSeedsDifferentStreams) {
  const std::vector<std::uint8_t> payload = bytes_of("seed");
  const noise::NoiseProfile profile = noise::NoiseProfile::desktop();
  auto cycles_with_seed = [&](std::uint64_t seed) {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700,
                   .seed = seed,
                   .noise = profile});
    return core::make_attack("cc", m)->run(payload).cycles;
  };
  EXPECT_NE(cycles_with_seed(1), cycles_with_seed(2));
}

// ---------------------------------------------------------------------------
// Observer effect: a disabled profile is never attached, so it cannot
// change a single cycle.
// ---------------------------------------------------------------------------

TEST(NoiseObserverEffect, DisabledProfileChangesNoCycle) {
  const std::vector<std::uint8_t> payload = bytes_of("quiet");
  noise::NoiseProfile zeroed = noise::NoiseProfile::desktop().scaled(0.0);
  ASSERT_FALSE(zeroed.enabled());

  auto run_with = [&](const noise::NoiseProfile& p) {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700,
                   .seed = 99,
                   .noise = p});
    EXPECT_EQ(m.noise(), nullptr);  // never even constructed
    return core::make_attack("md", m)->run(payload);
  };
  const core::AttackResult off = run_with(noise::NoiseProfile::off());
  const core::AttackResult zero = run_with(zeroed);
  EXPECT_EQ(off.cycles, zero.cycles);
  EXPECT_EQ(off.probes, zero.probes);
  EXPECT_EQ(off.bytes, zero.bytes);
}

// ---------------------------------------------------------------------------
// Adaptive escalation
// ---------------------------------------------------------------------------

TEST(ArgmaxAnalyzer, ConfidenceGrowsMonotonicallyWithAgreeingBatches) {
  core::ArgmaxAnalyzer an(core::Polarity::Max);
  EXPECT_DOUBLE_EQ(an.confidence(), 0.0);  // no batches yet

  // Two disagreeing batches: a tie, margin 0.
  an.add(10, 500);
  an.add(20, 100);
  an.end_batch();
  an.add(20, 500);
  an.add(10, 100);
  an.end_batch();
  EXPECT_DOUBLE_EQ(an.confidence(), 0.0);

  // Consistent batches for value 10: margin climbs monotonically.
  double last = an.confidence();
  for (int i = 0; i < 6; ++i) {
    an.add(10, 500);
    an.add(20, 100);
    an.end_batch();
    EXPECT_GT(an.confidence(), last);
    last = an.confidence();
  }
  EXPECT_EQ(an.decode(), 10);
}

TEST(AdaptiveDecoding, BudgetCapsEscalationAndReportsGaveUp) {
  // An unreachable threshold (> 1, the margin's maximum) forces the loop to
  // its budget on every byte: probes are exactly budget × 256 per byte and
  // every byte is flagged, not silently wrong.
  const std::vector<std::uint8_t> payload = bytes_of("AB");
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700, .seed = 5});
  core::AttackOptions opt;
  opt.adaptive = true;
  opt.confidence_threshold = 1.5;
  opt.batch_budget = 4;
  const auto atk = core::make_attack("cc", m, opt);
  const core::AttackResult r = atk->run(payload);
  EXPECT_EQ(r.probes, payload.size() * 4u * 256u);
  EXPECT_EQ(r.gave_up, payload.size());
  EXPECT_TRUE(r.success);  // decode is still right; gave_up is the caveat
}

TEST(AdaptiveDecoding, CleanChannelStopsAtInitialBatches) {
  // rsb decodes with margin 1.0 on a quiet machine, so the adaptive loop
  // must not spend a single extra batch over the fixed configuration.
  const std::vector<std::uint8_t> payload = bytes_of("XY");
  auto probes_with = [&](bool adaptive) {
    os::Machine m({.model = uarch::CpuModel::RaptorLakeI9_13900K, .seed = 5});
    core::AttackOptions opt;
    opt.adaptive = adaptive;
    return core::make_attack("rsb", m, opt)->run(payload).probes;
  };
  EXPECT_EQ(probes_with(false), probes_with(true));
}

TEST(AdaptiveDecoding, RecoversCovertChannelUnderDesktopNoise) {
  // The acceptance scenario: at half desktop intensity the fixed batch
  // count mis-decodes a large fraction of bytes; the adaptive loop buys
  // enough extra batches to decode cleanly.
  runner::RunSpec spec;
  spec.attack = "cc";
  spec.trials = 2;
  spec.base_seed = 0x5109eULL;
  spec.noise = noise::NoiseProfile::desktop().scaled(0.5);
  spec.payload_bytes = 8;
  spec.payload_seed = 0xbeefULL;

  runner::RunSpec adaptive = spec;
  adaptive.adaptive = true;

  const runner::RunResult fixed_r = runner::run(spec, 2);
  const runner::RunResult adaptive_r = runner::run(adaptive, 2);
  ASSERT_GT(fixed_r.total_bytes, 0u);
  const double fixed_err =
      static_cast<double>(fixed_r.total_byte_errors) /
      static_cast<double>(fixed_r.total_bytes);
  const double adaptive_err =
      static_cast<double>(adaptive_r.total_byte_errors) /
      static_cast<double>(adaptive_r.total_bytes);
  EXPECT_GT(fixed_err, 0.20);
  EXPECT_LT(adaptive_err, 0.05);
  EXPECT_GT(adaptive_r.total_probes, fixed_r.total_probes);
}

// ---------------------------------------------------------------------------
// Registry round-trip
// ---------------------------------------------------------------------------

TEST(AttackRegistry, AllSevenAttacksRoundTrip) {
  const std::vector<std::string> expect = {"cc", "md",     "zbl",  "rsb",
                                           "v1", "rewind", "kaslr"};
  EXPECT_EQ(core::attack_names(), expect);

  const std::vector<std::uint8_t> payload = bytes_of("R");
  for (const core::AttackInfo& info : core::attack_registry()) {
    // Vulnerable model so every attack exercises its full decode path.
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700, .seed = 3});
    const auto atk = core::make_attack(info.name, m);
    ASSERT_NE(atk, nullptr) << info.name;
    EXPECT_EQ(atk->name(), info.name);
    const core::AttackResult r =
        atk->run(info.channel ? std::span<const std::uint8_t>(payload)
                              : std::span<const std::uint8_t>());
    EXPECT_EQ(r.attack, info.name);
    EXPECT_GT(r.cycles, 0u) << info.name;
    EXPECT_GT(r.seconds, 0.0) << info.name;  // the V1/RSB timing fix
    EXPECT_GT(r.probes, 0u) << info.name;
    if (info.channel) {
      EXPECT_EQ(r.bytes.size(), payload.size()) << info.name;
    }
  }
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  EXPECT_THROW((void)core::make_attack("prefetch", m),
               std::invalid_argument);
}

}  // namespace
}  // namespace whisper
