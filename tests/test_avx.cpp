// AVX power-gating model and the AVX-timing KASLR baseline (§2.1/§6.1).
#include <gtest/gtest.h>

#include "baseline/avx_kaslr.h"
#include "core/attacks/kaslr.h"
#include "isa/builder.h"
#include "os/machine.h"

namespace whisper {
namespace {

using isa::ProgramBuilder;
using isa::Reg;

std::uint64_t timed_avx(os::Machine& m) {
  ProgramBuilder b;
  b.rdtsc(Reg::R8).lfence().avx().lfence().rdtsc(Reg::R9).halt();
  const auto r = m.run_user(b.build());
  return r.t0().tsc.at(1) - r.t0().tsc.at(0);
}

TEST(AvxPowerGatingTest, ColdOpPaysPowerUpWarmOpDoesNot) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
  const std::uint64_t cold = timed_avx(m);
  const std::uint64_t warm = timed_avx(m);  // within the warm window
  EXPECT_GT(cold, warm + static_cast<std::uint64_t>(
                             m.config().avx_power_up_cycles) / 2);
}

TEST(AvxPowerGatingTest, UnitPowersDownAfterWarmWindow) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
  (void)timed_avx(m);
  const std::uint64_t warm = timed_avx(m);
  m.advance_time(static_cast<std::uint64_t>(m.config().avx_warm_cycles) + 1);
  const std::uint64_t recold = timed_avx(m);
  EXPECT_GT(recold, warm + 100);
}

TEST(AvxPowerGatingTest, GatingOffRemovesTheTimingDifference) {
  uarch::CpuConfig cfg = uarch::make_config(uarch::CpuModel::CometLakeI9_10980XE);
  cfg.avx_power_gating = false;
  os::Machine m({.model = cfg.model, .config = cfg});
  const std::uint64_t first = timed_avx(m);
  const std::uint64_t second = timed_avx(m);
  EXPECT_NEAR(static_cast<double>(first), static_cast<double>(second), 4.0);
}

TEST(AvxPowerGatingTest, TransientAvxWarmsPersistently) {
  // The side effect of a squashed AVX op survives — the transmitter of the
  // AVX-timing channel (and the analogue of a transient cache fill).
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
  m.advance_time(static_cast<std::uint64_t>(m.config().avx_warm_cycles) + 1);

  ProgramBuilder b;
  b.mov(Reg::RCX, 0)
      .load(Reg::RAX, Reg::RCX)  // faults: everything below is transient
      .avx()
      .label("handler")
      .halt();
  const auto p = b.build();
  (void)m.run_user(p, {}, p.label("handler"));

  EXPECT_LT(timed_avx(m), 60u) << "the transiently-warmed unit must be hot";
}

TEST(AvxKaslrBaseline, BreaksKaslrWithGatingOn) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE, .seed = 5});
  baseline::AvxKaslr atk(m);
  const auto r = atk.run();
  EXPECT_TRUE(r.success) << "found " << r.found_slot << " true "
                         << m.kernel().slot();
}

TEST(AvxKaslrBaseline, MitigatedByRemovingAvxTimingButTetSurvives) {
  // §6.1: replacing/fixing AVX timing stops the AVX probe — not TET.
  uarch::CpuConfig cfg = uarch::make_config(uarch::CpuModel::CometLakeI9_10980XE);
  cfg.avx_power_gating = false;
  {
    os::Machine m({.model = cfg.model, .seed = 6, .config = cfg});
    baseline::AvxKaslr atk(m);
    EXPECT_FALSE(atk.run().success);
  }
  {
    os::Machine m({.model = cfg.model, .seed = 6, .config = cfg});
    core::TetKaslr atk(m, {.rounds = 2});
    EXPECT_TRUE(atk.run().success);
  }
}

}  // namespace
}  // namespace whisper
