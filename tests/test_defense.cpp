// The composable defense API (src/defense): the parse/format/hash
// round-trip every surface shares (CLI string → DefenseSpec → JSON → serve
// wire → machine options), the legacy kpti/flare/fgkaslr aliasing, and —
// the part that guards the simulator's contracts — identity of every NEW
// defense under snapshot/reset (invariant 8) and fast-forward
// (invariant 10): a defense that perturbs either would silently corrupt
// the pooled trial path for the whole defense_matrix grid.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/attacks/registry.h"
#include "defense/defense.h"
#include "os/machine.h"
#include "runner/json_writer.h"
#include "runner/machine_pool.h"
#include "runner/runner.h"
#include "serve/protocol.h"
#include "uarch/config.h"
#include "uarch/pmu.h"

namespace whisper {
namespace {

// ---------------------------------------------------------------------------
// Grammar round-trip: parse/format are exact inverses on canonical text.
// ---------------------------------------------------------------------------

TEST(DefenseSpecGrammar, ParseFormatRoundTripsCanonicalText) {
  for (const char* text :
       {"kpti", "window:depth=8", "flushclear:levels=2",
        "window:depth=4:depth=4"}) {
    EXPECT_EQ(defense::format(defense::parse(text)), text) << text;
  }
}

TEST(DefenseSpecGrammar, ParseListFormatListRoundTripsCombos) {
  for (const char* text :
       {"none", "kpti", "kpti+flare", "kpti+window:depth=8+retpoline"}) {
    EXPECT_EQ(defense::format_list(defense::parse_list(text)), text) << text;
  }
  EXPECT_TRUE(defense::parse_list("").empty());
  EXPECT_TRUE(defense::parse_list("none").empty());
}

TEST(DefenseSpecGrammar, ParseExtractsNameAndOrderedParams) {
  const defense::DefenseSpec d = defense::parse("window:depth=8:foo=bar");
  EXPECT_EQ(d.name, "window");
  ASSERT_EQ(d.params.size(), 2u);
  EXPECT_EQ(d.params[0].first, "depth");
  EXPECT_EQ(d.params[0].second, "8");
  EXPECT_EQ(*d.param("foo"), "bar");
  EXPECT_EQ(d.param("absent"), nullptr);
}

TEST(DefenseSpecGrammar, RejectsMalformedText) {
  for (const char* bad : {"", ":", "KPTI", "kpti:", "kpti:depth",
                          "kpti:=8", "kpti:depth=", "a b", "kpti:k=v,w=x"}) {
    EXPECT_THROW((void)defense::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(DefenseSpecGrammar, HashFollowsTheCanonicalListString) {
  const auto a = defense::parse_list("kpti+window:depth=8");
  const auto b = defense::parse_list("kpti+window:depth=8");
  const auto c = defense::parse_list("kpti+window:depth=4");
  EXPECT_EQ(defense::hash_list(a), defense::hash_list(b));
  EXPECT_NE(defense::hash_list(a), defense::hash_list(c));
  EXPECT_NE(defense::hash_list(a), defense::hash_list({}));
}

// ---------------------------------------------------------------------------
// Registry contract: the seven shipped defenses, the unknown-name message.
// ---------------------------------------------------------------------------

TEST(DefenseRegistry, ShipsTheSystematizationAxes) {
  const std::vector<std::string> names = defense::defense_names();
  const std::vector<std::string> want = {
      "kpti", "flare", "fgkaslr", "lfence", "window", "retpoline",
      "flushclear"};
  EXPECT_EQ(names, want);
  for (const std::string& n : names)
    EXPECT_NE(defense::find_defense(n), nullptr) << n;
  EXPECT_EQ(defense::find_defense("nope"), nullptr);
}

TEST(DefenseRegistry, ValidateListsRegisteredNamesOnUnknown) {
  try {
    defense::validate({defense::parse("ktpi")});
    FAIL() << "accepted unknown defense";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown defense 'ktpi'"), std::string::npos) << what;
    EXPECT_NE(what.find("registered: kpti, flare, fgkaslr, lfence, window, "
                        "retpoline, flushclear"),
              std::string::npos)
        << what;
  }
}

TEST(DefenseRegistry, ValidateRejectsDuplicatesAndBadParams) {
  EXPECT_THROW(defense::validate({defense::parse("kpti"),
                                  defense::parse("kpti")}),
               std::invalid_argument);
  EXPECT_THROW(defense::validate({defense::parse("window:depth=0")}),
               std::invalid_argument);
  EXPECT_THROW(defense::validate({defense::parse("window:depth=abc")}),
               std::invalid_argument);
  EXPECT_THROW(defense::validate({defense::parse("window:width=8")}),
               std::invalid_argument);
  EXPECT_THROW(defense::validate({defense::parse("flushclear:levels=4")}),
               std::invalid_argument);
  EXPECT_NO_THROW(defense::validate({defense::parse("flushclear:levels=3"),
                                     defense::parse("window")}));
}

// ---------------------------------------------------------------------------
// apply(): each hook lands on the exact machine-option field it claims.
// ---------------------------------------------------------------------------

TEST(DefenseApply, KernelDefensesRewriteKernelOptionsOnly) {
  os::MachineOptions mo;
  defense::apply(defense::parse_list("kpti+flare+fgkaslr"), mo);
  EXPECT_TRUE(mo.kernel.kpti);
  EXPECT_TRUE(mo.kernel.flare);
  EXPECT_TRUE(mo.kernel.fgkaslr);
  EXPECT_FALSE(mo.config.has_value());  // no uarch knob touched
}

TEST(DefenseApply, UarchDefensesMaterializeTheConfigOverride) {
  os::MachineOptions mo;
  defense::apply(defense::parse_list("lfence+window:depth=4+retpoline+"
                                     "flushclear:levels=2"),
                 mo);
  ASSERT_TRUE(mo.config.has_value());
  EXPECT_TRUE(mo.config->lfence_after_branch);
  EXPECT_EQ(mo.config->speculation_window_limit, 4);
  EXPECT_FALSE(mo.config->rsb_speculates);
  EXPECT_TRUE(mo.config->flush_on_clear);
  EXPECT_EQ(mo.config->flush_on_clear_levels, 2);
  EXPECT_FALSE(mo.kernel.kpti);
}

TEST(DefenseApply, ParamDefaultsComeFromTheRegistry) {
  os::MachineOptions mo;
  defense::apply(defense::parse_list("window+flushclear"), mo);
  EXPECT_EQ(mo.config->speculation_window_limit, 8);
  EXPECT_EQ(mo.config->flush_on_clear_levels, 1);
}

TEST(DefenseApply, EmptyStackLeavesOptionsUntouched) {
  os::MachineOptions mo;
  defense::apply({}, mo);
  EXPECT_FALSE(mo.config.has_value());
  EXPECT_FALSE(mo.kernel.kpti);
}

// ---------------------------------------------------------------------------
// Runner integration: normalization of the legacy bools, the label fix,
// the pool key, validation and the JSON trajectory emission.
// ---------------------------------------------------------------------------

TEST(RunnerDefenses, LegacyBoolsAndDefenseSpecsNormalizeIdentically) {
  runner::RunSpec bools;
  bools.kernel.kpti = true;
  bools.kernel.fgkaslr = true;
  runner::RunSpec specs;
  specs.defenses = defense::parse_list("kpti+fgkaslr");
  EXPECT_EQ(runner::normalized_defenses(bools),
            runner::normalized_defenses(specs));
  EXPECT_EQ(runner::machine_key(bools), runner::machine_key(specs));
  EXPECT_EQ(bools.label(), specs.label());
}

TEST(RunnerDefenses, LabelDerivesFromTheFullDefenseList) {
  // The old hand-rolled label dropped +FGKASLR; the derived one cannot.
  runner::RunSpec spec;
  spec.attack = "kaslr";
  spec.kernel.kpti = true;
  spec.kernel.fgkaslr = true;
  spec.defenses = defense::parse_list("window:depth=4");
  const std::string label = spec.label();
  EXPECT_NE(label.find("+KPTI"), std::string::npos) << label;
  EXPECT_NE(label.find("+FGKASLR"), std::string::npos) << label;
  EXPECT_NE(label.find("+WINDOW:DEPTH=4"), std::string::npos) << label;
}

TEST(RunnerDefenses, MachineKeySeparatesDefenseStacks) {
  runner::RunSpec none;
  runner::RunSpec kpti;
  kpti.defenses = defense::parse_list("kpti");
  runner::RunSpec window4;
  window4.defenses = defense::parse_list("window:depth=4");
  runner::RunSpec window8;
  window8.defenses = defense::parse_list("window:depth=8");
  EXPECT_NE(runner::machine_key(none), runner::machine_key(kpti));
  EXPECT_NE(runner::machine_key(window4), runner::machine_key(window8));
}

TEST(RunnerDefenses, ValidateRejectsUnknownAndDuplicateDefenses) {
  runner::RunSpec spec;
  spec.attack = "cc";
  spec.defenses = {defense::parse("ktpi")};
  EXPECT_THROW(runner::validate(spec), std::invalid_argument);
  spec.defenses = defense::parse_list("kpti");
  spec.defenses.push_back(defense::parse("kpti"));
  EXPECT_THROW(runner::validate(spec), std::invalid_argument);
  // Spelling kpti via the legacy bool AND the spec is the documented
  // aliasing, not an error.
  spec.defenses = defense::parse_list("kpti");
  spec.kernel.kpti = true;
  EXPECT_NO_THROW(runner::validate(spec));
}

TEST(RunnerDefenses, TrajectoryJsonEmitsTheDefensesArray) {
  runner::RunSpec spec;
  spec.attack = "cc";
  spec.trials = 1;
  spec.payload_bytes = 1;
  spec.batches = 1;
  spec.kernel.kpti = true;
  spec.defenses = defense::parse_list("window:depth=8");
  const runner::RunResult r = runner::run(spec, /*jobs=*/1);
  const std::string json = runner::to_json(r);
  EXPECT_NE(json.find("\"defenses\":[\"kpti\",\"window:depth=8\"]"),
            std::string::npos)
      << json;
  // The three hand-rolled spec keys are gone for good (the names may still
  // appear as *values* inside the defenses array, hence the ':' probes).
  EXPECT_EQ(json.find("\"kpti\":"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"flare\":"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"fgkaslr\":"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Wire round-trip: CLI string → DefenseSpec → JSON array → parse_request →
// RunSpec, byte-identical both directions through format_list.
// ---------------------------------------------------------------------------

TEST(ServeDefenses, RunRequestDefensesArrayLandsOnTheSpec) {
  const serve::Request req = serve::parse_request(
      R"({"id":4,"verb":"run","attack":"cc","trials":1,)"
      R"("defenses":["kpti","window:depth=4"]})");
  EXPECT_EQ(defense::format_list(req.spec.defenses), "kpti+window:depth=4");
  EXPECT_EQ(defense::format_list(runner::normalized_defenses(req.spec)),
            "kpti+window:depth=4");
}

TEST(ServeDefenses, LegacyBoolFieldsStillParseAsAliases) {
  const serve::Request req = serve::parse_request(
      R"({"id":4,"verb":"run","attack":"kaslr","kpti":true,"flare":true,)"
      R"("fgkaslr":true})");
  EXPECT_EQ(defense::format_list(runner::normalized_defenses(req.spec)),
            "kpti+flare+fgkaslr");
}

TEST(ServeDefenses, WireAndCliSpellingsAreByteIdenticalBothWays) {
  // CLI text → specs → wire JSON → parsed request → canonical text.
  const std::string cli = "retpoline+flushclear:levels=3";
  const std::vector<defense::DefenseSpec> specs = defense::parse_list(cli);
  std::string wire = R"({"id":1,"verb":"run","attack":"rsb","defenses":[)";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i) wire += ',';
    wire += '"' + defense::format(specs[i]) + '"';
  }
  wire += "]}";
  const serve::Request req = serve::parse_request(wire);
  EXPECT_EQ(req.spec.defenses, specs);
  EXPECT_EQ(defense::format_list(req.spec.defenses), cli);
}

TEST(ServeDefenses, MalformedDefenseStringsAreProtocolErrors) {
  EXPECT_THROW((void)serve::parse_request(
                   R"({"id":1,"verb":"run","defenses":["KPTI"]})"),
               serve::ProtocolError);
  EXPECT_THROW((void)serve::parse_request(
                   R"({"id":1,"verb":"run","defenses":"kpti"})"),
               serve::ProtocolError);
  EXPECT_THROW((void)serve::parse_request(
                   R"({"id":1,"verb":"run","defenses":[7]})"),
               serve::ProtocolError);
}

// ---------------------------------------------------------------------------
// Identity: every new defense must leave invariants 8 (reset ≡ fresh) and
// 10 (fast-forward ≡ structural) intact. Same idiom as
// tests/test_machine_reset.cpp, parameterized over the defense stacks.
// ---------------------------------------------------------------------------

void expect_identical(const core::AttackResult& a, const core::AttackResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.success, b.success) << what;
  EXPECT_EQ(a.bytes, b.bytes) << what;
  EXPECT_EQ(a.byte_errors, b.byte_errors) << what;
  EXPECT_EQ(a.probes, b.probes) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.seconds, b.seconds) << what;
  EXPECT_EQ(a.confidence, b.confidence) << what;
  EXPECT_EQ(a.gave_up, b.gave_up) << what;
  EXPECT_EQ(a.tote.buckets(), b.tote.buckets()) << what;
  EXPECT_EQ(a.found_slot, b.found_slot) << what;
  EXPECT_EQ(a.found_base, b.found_base) << what;
  EXPECT_EQ(a.true_base, b.true_base) << what;
  EXPECT_EQ(a.slot_scores, b.slot_scores) << what;
}

struct AttackRun {
  core::AttackResult result;
  uarch::PmuSnapshot pmu;
};

AttackRun run_attack(os::Machine& m, const core::AttackInfo& info) {
  core::AttackOptions opt;
  opt.batches = 1;  // smallest possible cell; identity, not accuracy
  const std::vector<std::uint8_t> payload = {0xa5, 0x3c};
  const uarch::PmuSnapshot before = m.core().pmu().snapshot();
  AttackRun out;
  out.result = core::make_attack(info.name, m, opt)
                   ->run(info.channel ? std::span<const std::uint8_t>(payload)
                                      : std::span<const std::uint8_t>());
  out.pmu = uarch::pmu_delta(before, m.core().pmu().snapshot());
  return out;
}

/// The four defenses the legacy bools could not express — the ones whose
/// hooks live inside the core and therefore carry the invariant risk.
const char* kNewDefenseStacks[] = {"lfence", "window:depth=6", "retpoline",
                                   "flushclear:levels=3",
                                   "lfence+window:depth=6+retpoline+"
                                   "flushclear:levels=2"};

class DefenseIdentityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DefenseIdentityTest, ResetMachineMatchesFreshForEveryAttack) {
  constexpr std::uint64_t kSeed = 0x777ull;
  os::MachineOptions opts;
  opts.model = uarch::CpuModel::KabyLakeI7_7700;
  defense::apply(defense::parse_list(GetParam()), opts);

  os::MachineOptions dirty_opts = opts;
  dirty_opts.seed = 0x31337ull;
  os::Machine reused(dirty_opts);
  reused.snapshot();

  for (const core::AttackInfo& info : core::attack_registry()) {
    const std::string what =
        info.name + std::string(" under ") + GetParam() + " [reset]";

    opts.seed = kSeed;
    os::Machine fresh(opts);
    const AttackRun a = run_attack(fresh, info);

    reused.reset(0x31337ull);  // dirty pass under the other seed
    (void)run_attack(reused, info);
    reused.reset(kSeed);
    const AttackRun b = run_attack(reused, info);

    expect_identical(a.result, b.result, what);
    EXPECT_EQ(a.pmu, b.pmu) << "PMU deltas diverged: " << what;
  }
}

TEST_P(DefenseIdentityTest, FastForwardMatchesStructuralForEveryAttack) {
  os::MachineOptions opts;
  opts.model = uarch::CpuModel::KabyLakeI7_7700;
  opts.seed = 0x777ull;
  defense::apply(defense::parse_list(GetParam()), opts);

  for (const core::AttackInfo& info : core::attack_registry()) {
    const std::string what =
        info.name + std::string(" under ") + GetParam() + " [fast-forward]";

    os::Machine structural(opts);
    structural.core().set_fast_forward(false);
    const AttackRun a = run_attack(structural, info);

    os::Machine fast(opts);
    ASSERT_TRUE(fast.core().fast_forward());
    const AttackRun b = run_attack(fast, info);

    expect_identical(a.result, b.result, what);
    EXPECT_EQ(a.pmu, b.pmu) << "PMU deltas diverged: " << what;
  }
}

std::string stack_name(const ::testing::TestParamInfo<const char*>& info) {
  std::string out;
  for (const char* p = info.param; *p; ++p)
    out += (std::isalnum(static_cast<unsigned char>(*p))) ? *p : '_';
  return out;
}

INSTANTIATE_TEST_SUITE_P(NewDefenses, DefenseIdentityTest,
                         ::testing::ValuesIn(kNewDefenseStacks), stack_name);

// ---------------------------------------------------------------------------
// The defenses defend: each new mechanism measurably perturbs the attack it
// targets (the matrix's whole point). Deterministic — same seeds, so the
// comparison is exact, not statistical.
// ---------------------------------------------------------------------------

runner::TrialResult one_trial(const std::string& attack,
                              const std::string& stack) {
  runner::RunSpec spec;
  spec.model = uarch::CpuModel::KabyLakeI7_7700;
  spec.attack = attack;
  spec.defenses = defense::parse_list(stack);
  spec.payload_bytes = 2;
  spec.batches = 1;
  return runner::run_trial(spec, runner::trial_seed(1, 0));
}

TEST(DefenseEffect, RetpolineKillsTheRsbChannel) {
  const runner::TrialResult open = one_trial("rsb", "none");
  const runner::TrialResult hard = one_trial("rsb", "retpoline");
  EXPECT_TRUE(open.success);
  // No RSB speculation → the transient gadget never runs → the ToTE deltas
  // carry no signal and decoding degrades to errors.
  EXPECT_GT(hard.byte_errors, open.byte_errors);
}

TEST(DefenseEffect, LfenceKillsTheConditionalBranchWindow) {
  // v1 leaks through the window behind a mispredicted Jcc — exactly the
  // window lfence serializes. The fault/assist channels don't use it.
  const runner::TrialResult open = one_trial("v1", "none");
  const runner::TrialResult hard = one_trial("v1", "lfence");
  EXPECT_TRUE(open.success);
  EXPECT_GT(hard.byte_errors, open.byte_errors);
}

TEST(DefenseEffect, WindowClampNarrowsTheJccSpeculationWindow) {
  const runner::TrialResult open = one_trial("v1", "none");
  const runner::TrialResult hard = one_trial("v1", "window:depth=4");
  EXPECT_TRUE(open.success);
  EXPECT_GT(hard.byte_errors, open.byte_errors);
}

TEST(DefenseEffect, FlushOnClearPerturbsTheMachineClearChannel) {
  // md's transient window ends in a machine clear; flushing the hierarchy
  // on every clear must change its timing even when decoding still limps.
  const runner::TrialResult open = one_trial("md", "none");
  const runner::TrialResult hard = one_trial("md", "flushclear:levels=3");
  EXPECT_NE(open.cycles, hard.cycles);
}

TEST(DefenseEffect, DefensesAreSelective) {
  // The systematization's other half: a defense that doesn't target the
  // channel leaves it BIT-identical — retpoline doesn't touch v1's Jcc
  // window, lfence doesn't touch rsb's return window.
  const runner::TrialResult v1_open = one_trial("v1", "none");
  const runner::TrialResult v1_ret = one_trial("v1", "retpoline");
  EXPECT_EQ(v1_open.cycles, v1_ret.cycles);
  EXPECT_EQ(v1_open.byte_errors, v1_ret.byte_errors);
  const runner::TrialResult rsb_open = one_trial("rsb", "none");
  const runner::TrialResult rsb_lf = one_trial("rsb", "lfence");
  EXPECT_EQ(rsb_open.cycles, rsb_lf.cycles);
  EXPECT_EQ(rsb_open.byte_errors, rsb_lf.byte_errors);
}

}  // namespace
}  // namespace whisper
