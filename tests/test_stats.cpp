// Unit tests for whisper::stats — histogram, summaries, channel accounting,
// and the deterministic RNG everything else seeds from.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/error_rate.h"
#include "stats/histogram.h"
#include "stats/rng.h"
#include "stats/summary.h"

namespace whisper::stats {
namespace {

TEST(Rng, SplitMix64IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroStreamsDifferBySeed) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextInIsInclusive) {
  Xoshiro256 r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_in(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(r.next_in(9, 9), 9);
  EXPECT_EQ(r.next_in(9, 2), 9);  // degenerate range clamps to lo
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 r(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(Histogram, BasicCountsAndStats) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  h.add(10, 3);
  h.add(20);
  h.add(15);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(10), 3u);
  EXPECT_EQ(h.count(11), 0u);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 20);
  EXPECT_EQ(h.mode(), 10);
  EXPECT_DOUBLE_EQ(h.mean(), (30 + 20 + 15) / 5.0);
}

TEST(Histogram, PercentilesAreMonotone) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.percentile(0.0), 1);
  EXPECT_EQ(h.percentile(0.5), 50);
  EXPECT_EQ(h.percentile(1.0), 100);
  std::int64_t prev = h.percentile(0.0);
  for (double p = 0.1; p <= 1.0; p += 0.1) {
    const std::int64_t v = h.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.add(1, 2);
  b.add(1, 3);
  b.add(2, 1);
  a.merge(b);
  EXPECT_EQ(a.count(1), 5u);
  EXPECT_EQ(a.count(2), 1u);
  EXPECT_EQ(a.total(), 6u);
}

TEST(Histogram, EmptyThrowsAndAsciiIsSafe) {
  Histogram h;
  EXPECT_THROW((void)h.min(), std::logic_error);
  EXPECT_THROW((void)h.mean(), std::logic_error);
  EXPECT_THROW((void)h.percentile(0.5), std::logic_error);
  EXPECT_NE(h.ascii().find("empty"), std::string::npos);
  h.add(42, 7);
  const std::string art = h.ascii(4, 10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Histogram, ZeroCountAddIsIgnored) {
  Histogram h;
  h.add(5, 0);
  EXPECT_TRUE(h.empty());
}

TEST(Summary, MatchesHandComputedValues) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stdev, std::sqrt(2.5), 1e-12);
}

TEST(Summary, EvenLengthMedianAveragesMiddle) {
  const std::vector<std::int64_t> xs = {4, 1, 3, 2};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Summary, EmptyInputIsZeroed) {
  const Summary s = summarize(std::span<const double>{});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(OnlineStatsTest, AgreesWithBatchSummary) {
  Xoshiro256 r(5);
  std::vector<double> xs;
  OnlineStats os;
  for (int i = 0; i < 500; ++i) {
    const double x = r.next_double() * 100;
    xs.push_back(x);
    os.add(x);
  }
  const Summary s = summarize(xs);
  EXPECT_EQ(os.n(), s.n);
  EXPECT_NEAR(os.mean(), s.mean, 1e-9);
  EXPECT_NEAR(os.stdev(), s.stdev, 1e-9);
  EXPECT_DOUBLE_EQ(os.min(), s.min);
  EXPECT_DOUBLE_EQ(os.max(), s.max);
}

TEST(OnlineStatsTest, MergeEqualsSequentialAdd) {
  // Chan et al. parallel variance: splitting a stream across accumulators
  // and merging must agree with one accumulator seeing everything — the
  // runner's merge step depends on this.
  Xoshiro256 r(17);
  OnlineStats whole, left, right, empty;
  for (int i = 0; i < 400; ++i) {
    const double x = r.next_double() * 50 - 25;
    whole.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  OnlineStats merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.n(), whole.n());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  // Merging with an empty accumulator is the identity, both ways.
  merged.merge(empty);
  EXPECT_EQ(merged.n(), whole.n());
  OnlineStats from_empty;
  from_empty.merge(whole);
  EXPECT_EQ(from_empty.n(), whole.n());
  EXPECT_NEAR(from_empty.stdev(), whole.stdev(), 1e-12);
}

TEST(OnlineStatsTest, SummarySnapshot) {
  OnlineStats os;
  os.add(1.0);
  os.add(3.0);
  const Summary s = os.summary();
  EXPECT_EQ(s.n, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_EQ(OnlineStats{}.summary().n, 0u);
}

TEST(ChannelReportTest, CountsByteAndBitErrors) {
  const std::vector<std::uint8_t> sent = {0x00, 0xff, 0x0f, 0xaa};
  const std::vector<std::uint8_t> recv = {0x00, 0xfe, 0x0f, 0x55};
  const ChannelReport r = evaluate_channel(sent, recv, 1'000'000, 1.0);
  EXPECT_EQ(r.bytes, 4u);
  EXPECT_EQ(r.byte_errors, 2u);
  EXPECT_EQ(r.bit_errors, 1u + 8u);
  EXPECT_DOUBLE_EQ(r.byte_error_rate, 0.5);
  EXPECT_NEAR(r.seconds, 1e-3, 1e-12);
  EXPECT_NEAR(r.bytes_per_second, 4000.0, 1e-6);
}

TEST(ChannelReportTest, MissingReceivedBytesCountAsErrors) {
  const std::vector<std::uint8_t> sent = {1, 2, 3};
  const std::vector<std::uint8_t> recv = {1};
  const ChannelReport r = evaluate_channel(sent, recv, 100, 1.0);
  EXPECT_EQ(r.byte_errors, 2u);
  EXPECT_EQ(r.bit_errors, 16u);
}

TEST(ChannelReportTest, RateFormatting) {
  EXPECT_EQ(format_rate(500.0), "500.0 B/s");
  EXPECT_EQ(format_rate(21'500.0), "21.5 KB/s");
  EXPECT_EQ(format_rate(2'500'000.0), "2.5 MB/s");
}

}  // namespace
}  // namespace whisper::stats
