// The snapshot/reset contract: a reset() Machine is bit-identical to a
// freshly constructed one. This is the guard rail under the runner's trial
// fast path — if any microarchitectural structure (cache set, TLB way, LFB
// entry, BPU table, PMU counter, RNG stream) leaks state across reset, the
// pooled-machine path silently stops reproducing the paper's numbers. The
// suites here pin identity at every layer: raw PhysicalMemory pool
// semantics, full AttackResult equality for every registry attack on every
// CPU preset with and without interference, trace/metrics byte streams
// through the runner, and the per-trial seed schedule itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/attacks/registry.h"
#include "mem/phys_mem.h"
#include "noise/noise.h"
#include "obs/chrome_trace.h"
#include "os/machine.h"
#include "runner/runner.h"
#include "uarch/config.h"
#include "uarch/pmu.h"

namespace whisper {
namespace {

// ---------------------------------------------------------------------------
// PhysicalMemory pool semantics: the layer everything above leans on.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kFrame = mem::PhysicalMemory::kFrameSize;

TEST(PhysMemPool, UnwrittenFramesReadZero) {
  mem::PhysicalMemory pm;
  EXPECT_EQ(pm.read8(0x0), 0u);
  EXPECT_EQ(pm.read64(0x123456789), 0u);
  EXPECT_EQ(pm.allocated_frames(), 0u);  // reads never allocate
}

TEST(PhysMemPool, Write64AcrossFrameBoundary) {
  mem::PhysicalMemory pm;
  const std::uint64_t addr = kFrame - 4;  // straddles frames 0 and 1
  pm.write64(addr, 0x1122334455667788ull);
  EXPECT_EQ(pm.read64(addr), 0x1122334455667788ull);
  EXPECT_EQ(pm.allocated_frames(), 2u);
  EXPECT_EQ(pm.read8(kFrame - 1), 0x55u);  // little-endian byte 3
  EXPECT_EQ(pm.read8(kFrame), 0x44u);      // byte 4, first of frame 1
}

TEST(PhysMemPool, ResetRestoresBaselineAndFreesNewFrames) {
  mem::PhysicalMemory pm;
  pm.write64(0x1000, 0xaaaaull);
  pm.write64(0x5000, 0xbbbbull);
  const std::size_t baseline_frames = pm.allocated_frames();
  pm.snapshot();
  EXPECT_TRUE(pm.snapshotted());
  EXPECT_EQ(pm.dirty_frames(), 0u);

  pm.write64(0x1000, 0xdeadull);      // dirty a baseline frame
  pm.write64(0x900000, 0xbeefull);    // allocate a new one
  EXPECT_EQ(pm.dirty_frames(), 2u);

  pm.reset();
  EXPECT_EQ(pm.read64(0x1000), 0xaaaaull);
  EXPECT_EQ(pm.read64(0x5000), 0xbbbbull);
  EXPECT_EQ(pm.read64(0x900000), 0u);  // freed and reads as never-written
  EXPECT_EQ(pm.allocated_frames(), baseline_frames);
  EXPECT_EQ(pm.dirty_frames(), 0u);
}

TEST(PhysMemPool, DirtyFrameCountingIsPerFrame) {
  mem::PhysicalMemory pm;
  pm.write8(0x0, 1);
  pm.snapshot();
  pm.write8(0x1, 2);
  pm.write8(0x2, 3);  // same frame: still one dirty frame
  EXPECT_EQ(pm.dirty_frames(), 1u);
  pm.write8(kFrame, 4);  // second frame (freshly allocated)
  EXPECT_EQ(pm.dirty_frames(), 2u);
  pm.reset();
  EXPECT_EQ(pm.dirty_frames(), 0u);
}

TEST(PhysMemPool, FreedSlotsAreReusedAndZeroed) {
  mem::PhysicalMemory pm;
  pm.write8(0x0, 1);
  pm.snapshot();

  // Repeated trial cycles allocating the same transient frames: the arena
  // must stop growing after the first cycle (slot reuse), and every reused
  // slot must read as zero-filled.
  std::size_t pool_after_first = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (std::uint64_t f = 1; f <= 8; ++f) {
      EXPECT_EQ(pm.read64(f * kFrame + 8), 0u)
          << "reused slot leaked bytes (cycle " << cycle << " frame " << f
          << ")";
      pm.write64(f * kFrame + 8, 0xf00d0000ull + f);
    }
    pm.reset();
    if (cycle == 0) pool_after_first = pm.pool_frames();
    EXPECT_EQ(pm.pool_frames(), pool_after_first)
        << "arena grew on cycle " << cycle;
  }
}

TEST(PhysMemPool, ResetBeforeSnapshotThrows) {
  mem::PhysicalMemory pm;
  EXPECT_THROW(pm.reset(), std::logic_error);
}

TEST(PhysMemPool, ReSnapshotMovesTheBaseline) {
  mem::PhysicalMemory pm;
  pm.write8(0x0, 1);
  pm.snapshot();
  pm.write8(0x0, 2);
  pm.snapshot();  // re-baseline: the value 2 is now what reset restores
  pm.write8(0x0, 3);
  pm.reset();
  EXPECT_EQ(pm.read8(0x0), 2u);
}

// ---------------------------------------------------------------------------
// Attack-level byte identity: every registry attack × every CPU preset ×
// noise {off, desktop}. The reset machine is deliberately constructed with a
// DIFFERENT seed and dirtied with a full attack run first — reset(seed) must
// erase all of that.
// ---------------------------------------------------------------------------

void expect_identical(const core::AttackResult& a, const core::AttackResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.success, b.success) << what;
  EXPECT_EQ(a.bytes, b.bytes) << what;
  EXPECT_EQ(a.byte_errors, b.byte_errors) << what;
  EXPECT_EQ(a.probes, b.probes) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.seconds, b.seconds) << what;  // bit-identical, not approximate
  EXPECT_EQ(a.confidence, b.confidence) << what;
  EXPECT_EQ(a.gave_up, b.gave_up) << what;
  EXPECT_EQ(a.tote.buckets(), b.tote.buckets()) << what;
  EXPECT_EQ(a.found_slot, b.found_slot) << what;
  EXPECT_EQ(a.found_base, b.found_base) << what;
  EXPECT_EQ(a.true_base, b.true_base) << what;
  EXPECT_EQ(a.slot_scores, b.slot_scores) << what;
}

struct AttackRun {
  core::AttackResult result;
  uarch::PmuSnapshot pmu;  // delta over the attack phase
};

AttackRun run_attack(os::Machine& m, const core::AttackInfo& info) {
  core::AttackOptions opt;
  opt.batches = 1;  // smallest possible cell; identity, not accuracy
  const std::vector<std::uint8_t> payload = {0xa5, 0x3c};
  const uarch::PmuSnapshot before = m.core().pmu().snapshot();
  AttackRun out;
  out.result = core::make_attack(info.name, m, opt)
                   ->run(info.channel ? std::span<const std::uint8_t>(payload)
                                      : std::span<const std::uint8_t>());
  out.pmu = uarch::pmu_delta(before, m.core().pmu().snapshot());
  return out;
}

using Cell = std::tuple<uarch::CpuModel, bool>;  // (preset, noise on)

class ResetIdentityTest : public ::testing::TestWithParam<Cell> {};

TEST_P(ResetIdentityTest, ResetMachineMatchesFreshForEveryAttack) {
  const auto [model, noisy] = GetParam();
  constexpr std::uint64_t kSeed = 0x777ull;

  os::MachineOptions opts;
  opts.model = model;
  opts.noise = noisy ? noise::NoiseProfile::desktop()
                     : noise::NoiseProfile::off();

  // One pooled machine per cell, the way the runner holds it: constructed
  // once (with a different seed, to prove reset overrides it), snapshotted,
  // then dirtied + reset before each comparison.
  os::MachineOptions dirty_opts = opts;
  dirty_opts.seed = 0x31337ull;
  os::Machine reused(dirty_opts);
  reused.snapshot();

  for (const core::AttackInfo& info : core::attack_registry()) {
    const std::string what =
        info.name + " on model " + std::to_string(static_cast<int>(model)) +
        (noisy ? " (desktop noise)" : " (no noise)");

    opts.seed = kSeed;
    os::Machine fresh(opts);
    const AttackRun a = run_attack(fresh, info);

    reused.reset(0x31337ull);        // dirty pass under the other seed
    (void)run_attack(reused, info);
    reused.reset(kSeed);
    const AttackRun b = run_attack(reused, info);

    expect_identical(a.result, b.result, what);
    EXPECT_EQ(a.pmu, b.pmu) << "PMU deltas diverged: " << what;
  }
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  const auto [model, noisy] = info.param;
  static const char* kModels[] = {"SkylakeI7_6700", "KabyLakeI7_7700",
                                  "CometLakeI9_10980XE", "RaptorLakeI9_13900K",
                                  "Zen3Ryzen5_5600G"};
  return std::string(kModels[static_cast<int>(model)]) +
         (noisy ? "_DesktopNoise" : "_NoNoise");
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, ResetIdentityTest,
    ::testing::Combine(::testing::Values(uarch::CpuModel::SkylakeI7_6700,
                                         uarch::CpuModel::KabyLakeI7_7700,
                                         uarch::CpuModel::CometLakeI9_10980XE,
                                         uarch::CpuModel::RaptorLakeI9_13900K,
                                         uarch::CpuModel::Zen3Ryzen5_5600G),
                       ::testing::Bool()),
    cell_name);

// ---------------------------------------------------------------------------
// Fast-forward exactness (invariant 10, docs/ARCHITECTURE.md): the
// fast-forward core may skip provably inert cycle spans, but every
// observable — AttackResult, PMU delta, traces, metrics — must be
// byte-identical to the cycle-by-cycle structural pipeline. Same coverage
// grid as the reset suite: every registry attack × every CPU preset ×
// noise {off, desktop}.
// ---------------------------------------------------------------------------

class FastForwardIdentityTest : public ::testing::TestWithParam<Cell> {};

TEST_P(FastForwardIdentityTest, FastForwardMatchesStructuralForEveryAttack) {
  const auto [model, noisy] = GetParam();

  os::MachineOptions opts;
  opts.model = model;
  opts.noise = noisy ? noise::NoiseProfile::desktop()
                     : noise::NoiseProfile::off();
  opts.seed = 0x777ull;

  for (const core::AttackInfo& info : core::attack_registry()) {
    const std::string what =
        info.name + " on model " + std::to_string(static_cast<int>(model)) +
        (noisy ? " (desktop noise)" : " (no noise)") + " [fast-forward]";

    os::Machine structural(opts);
    structural.core().set_fast_forward(false);
    const AttackRun a = run_attack(structural, info);

    os::Machine fast(opts);
    ASSERT_TRUE(fast.core().fast_forward());  // the shipping default is on
    const AttackRun b = run_attack(fast, info);

    expect_identical(a.result, b.result, what);
    EXPECT_EQ(a.pmu, b.pmu) << "PMU deltas diverged: " << what;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, FastForwardIdentityTest,
    ::testing::Combine(::testing::Values(uarch::CpuModel::SkylakeI7_6700,
                                         uarch::CpuModel::KabyLakeI7_7700,
                                         uarch::CpuModel::CometLakeI9_10980XE,
                                         uarch::CpuModel::RaptorLakeI9_13900K,
                                         uarch::CpuModel::Zen3Ryzen5_5600G),
                       ::testing::Bool()),
    cell_name);

// ---------------------------------------------------------------------------
// Runner-level byte identity: the two trial paths (fresh construction vs
// pooled reset) must yield identical results, traces and metrics.
// ---------------------------------------------------------------------------

runner::RunSpec fig1_spec() {
  runner::RunSpec spec;
  spec.model = uarch::CpuModel::KabyLakeI7_7700;
  spec.attack = "cc";
  spec.trials = 2;
  spec.base_seed = 0xf161ull;
  spec.batches = 2;
  spec.payload_bytes = 2;
  spec.collect_trace = true;
  return spec;
}

void expect_identical(const runner::TrialResult& a,
                      const runner::TrialResult& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.byte_errors, b.byte_errors);
  EXPECT_EQ(a.confidence, b.confidence);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.tote.buckets(), b.tote.buckets());
  EXPECT_EQ(a.pmu, b.pmu);
}

TEST(RunnerResetPath, TrialPathsAreBitIdentical) {
  runner::RunSpec reused = fig1_spec();
  reused.reuse_machine = true;
  runner::RunSpec fresh = fig1_spec();
  fresh.reuse_machine = false;

  const runner::RunResult a = runner::run(reused, /*jobs=*/1);
  const runner::RunResult b = runner::run(fresh, /*jobs=*/1);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i)
    expect_identical(a.trials[i], b.trials[i]);
}

TEST(RunnerResetPath, TraceAndMetricsBytesAreIdentical) {
  // The Fig. 1 pipeline view and the metrics export are the two observable
  // byte streams the obs layer produces; both must be indifferent to which
  // trial path ran.
  runner::RunSpec reused = fig1_spec();
  runner::RunSpec fresh = fig1_spec();
  fresh.reuse_machine = false;

  const runner::RunResult a = runner::run(reused, /*jobs=*/1);
  const runner::RunResult b = runner::run(fresh, /*jobs=*/1);
  ASSERT_GT(a.events.size(), 0u);
  EXPECT_EQ(obs::to_chrome_trace(a.events), obs::to_chrome_trace(b.events));
  EXPECT_EQ(runner::to_metrics(a).to_json(), runner::to_metrics(b).to_json());
}

TEST(RunnerFastForward, TrialsTracesAndMetricsMatchStructuralRun) {
  // The RunSpec knob end to end: a fast-forward run and a structural run of
  // the Fig. 1 spec must agree on every trial field and on both observable
  // byte streams (Chrome trace, metrics export).
  runner::RunSpec on = fig1_spec();  // fast_forward defaults to true
  runner::RunSpec off = fig1_spec();
  off.fast_forward = false;

  const runner::RunResult a = runner::run(on, /*jobs=*/1);
  const runner::RunResult b = runner::run(off, /*jobs=*/1);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i)
    expect_identical(a.trials[i], b.trials[i]);
  ASSERT_GT(a.events.size(), 0u);
  EXPECT_EQ(obs::to_chrome_trace(a.events), obs::to_chrome_trace(b.events));
  EXPECT_EQ(runner::to_metrics(a).to_json(), runner::to_metrics(b).to_json());
}

TEST(RunnerResetPath, RunTrialOverloadsAgree) {
  const runner::RunSpec spec = fig1_spec();
  const std::uint64_t seed = runner::trial_seed(spec.base_seed, 0);
  const runner::TrialResult fresh = runner::run_trial(spec, seed);

  os::Machine m(runner::machine_options(spec, 0xABCDull));
  m.snapshot();
  (void)runner::run_trial(spec, 0xABCDull, m);  // dirty the machine first
  const runner::TrialResult reused = runner::run_trial(spec, seed, m);
  expect_identical(fresh, reused);
}

// ---------------------------------------------------------------------------
// Seed schedule: the per-trial seeds are part of the reproducibility
// contract (documented runs name base seeds). Lock the derivation so a
// refactor that silently reseeds differently — fresh or reused — fails here.
// ---------------------------------------------------------------------------

TEST(SeedSchedule, TrialSeedValuesAreLocked) {
  EXPECT_EQ(runner::trial_seed(0xfeedull, 0), 0x3365e73ff6c1e17bull);
  EXPECT_EQ(runner::trial_seed(0xfeedull, 1), 0x9e730d94c590c83full);
  EXPECT_EQ(runner::trial_seed(0xfeedull, 2), 0x91773e19077212ecull);
  EXPECT_EQ(runner::trial_seed(0xfeedull, 3), 0x189d6c4441f889cbull);
  EXPECT_EQ(runner::trial_seed(1, 0), 0x910a2dec89025cc1ull);
}

TEST(SeedSchedule, MachineOptionsPassSeedThroughVerbatim) {
  runner::RunSpec spec = fig1_spec();
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::uint64_t s = runner::trial_seed(spec.base_seed, i);
    EXPECT_EQ(runner::machine_options(spec, s).seed, s);
  }
}

TEST(SeedSchedule, SameSeedsFreshOrReused) {
  runner::RunSpec reused = fig1_spec();
  runner::RunSpec fresh = fig1_spec();
  fresh.reuse_machine = false;
  const runner::RunResult a = runner::run(reused, 1);
  const runner::RunResult b = runner::run(fresh, 1);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].seed, runner::trial_seed(reused.base_seed, i));
    EXPECT_EQ(a.trials[i].seed, b.trials[i].seed);
  }
}

// ---------------------------------------------------------------------------
// Machine-level state probes: targeted checks for state that the attack
// matrix might not exercise on every preset.
// ---------------------------------------------------------------------------

TEST(MachineReset, ThrowsBeforeSnapshot) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  EXPECT_FALSE(m.snapshotted());
  EXPECT_THROW(m.reset(1), std::logic_error);
}

TEST(MachineReset, RestoresMemoryCyclesAndKaslrSlot) {
  os::MachineOptions opts;
  opts.model = uarch::CpuModel::CometLakeI9_10980XE;
  opts.seed = 0x51a7ull;
  os::Machine fresh(opts);
  const int fresh_slot = fresh.kernel().slot();
  const std::uint64_t fresh_word = fresh.peek64(os::Machine::kDataBase);

  os::MachineOptions other = opts;
  other.seed = 0x909ull;
  os::Machine m(other);
  m.snapshot();
  m.poke64(os::Machine::kDataBase, 0x1234ull);
  m.advance_time(5000);
  m.evict_tlbs();
  m.flush_caches();

  m.reset(0x51a7ull);
  EXPECT_EQ(m.kernel().slot(), fresh_slot);
  EXPECT_EQ(m.peek64(os::Machine::kDataBase), fresh_word);
  EXPECT_EQ(m.core().cycle(), fresh.core().cycle());
  EXPECT_EQ(m.core().pmu().snapshot(), fresh.core().pmu().snapshot());
}

TEST(MachineReset, SeedZeroRederivesThePresetSeed) {
  // MachineOptions::seed == 0 means "use the CPU preset's seed"; reset(0)
  // must mean the same thing, not "keep whatever seed was last set".
  os::Machine fresh({.model = uarch::CpuModel::SkylakeI7_6700});
  os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700, .seed = 0xbadull});
  m.snapshot();
  m.reset(0);
  EXPECT_EQ(m.config().seed, fresh.config().seed);
}

}  // namespace
}  // namespace whisper
