// Unit tests for the branch predictor and the PMU event plumbing.
#include <gtest/gtest.h>

#include "uarch/branch_predictor.h"
#include "uarch/pmu.h"

namespace whisper::uarch {
namespace {

CpuConfig test_cfg() { return make_config(CpuModel::KabyLakeI7_7700); }

TEST(BranchPredictorTest, ColdBranchPredictsNotTaken) {
  BranchPredictor bpu(test_cfg());
  EXPECT_FALSE(bpu.predict_cond(10, 20).taken);
}

TEST(BranchPredictorTest, LearnsTakenAfterTwoUpdates) {
  BranchPredictor bpu(test_cfg());
  bpu.update_cond(10, true);
  bpu.update_cond(10, true);
  // Note gshare history: query with the same history state.
  // After two taken updates from the same context the counter saturates up.
  BranchPrediction p = bpu.predict_cond(10, 20);
  // History changed between updates; accept either, but after many updates
  // with a stable pattern prediction must settle to taken.
  for (int i = 0; i < 64; ++i) bpu.update_cond(10, true);
  p = bpu.predict_cond(10, 20);
  EXPECT_TRUE(p.taken);
}

TEST(BranchPredictorTest, RareTakenStaysNotTaken) {
  // The TET gadget's training pattern: 255 not-taken per 1 taken.
  BranchPredictor bpu(test_cfg());
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 255; ++i) bpu.update_cond(10, false);
    bpu.update_cond(10, true);
  }
  int predicted_taken = 0;
  for (int i = 0; i < 100; ++i) {
    if (bpu.predict_cond(10, 20).taken) ++predicted_taken;
    bpu.update_cond(10, false);
  }
  EXPECT_LT(predicted_taken, 10);
}

TEST(BranchPredictorTest, RsbLifoOrder) {
  BranchPredictor bpu(test_cfg());
  bpu.rsb_push(100);
  bpu.rsb_push(200);
  EXPECT_EQ(bpu.predict_ret().target, 200);
  EXPECT_EQ(bpu.predict_ret().target, 100);
  // Empty RSB: no prediction.
  const BranchPrediction p = bpu.predict_ret();
  EXPECT_EQ(p.target, -1);
  EXPECT_FALSE(p.taken);
}

TEST(BranchPredictorTest, RsbWrapsAtCapacity) {
  CpuConfig cfg = test_cfg();
  cfg.rsb_entries = 4;
  BranchPredictor bpu(cfg);
  for (int i = 1; i <= 6; ++i) bpu.rsb_push(i * 10);
  // Entries 10,20 were overwritten by 50,60.
  EXPECT_EQ(bpu.predict_ret().target, 60);
  EXPECT_EQ(bpu.predict_ret().target, 50);
  EXPECT_EQ(bpu.predict_ret().target, 40);
  EXPECT_EQ(bpu.predict_ret().target, 30);
  EXPECT_EQ(bpu.predict_ret().target, -1);
}

TEST(BranchPredictorTest, RsbDisabledGivesNoPrediction) {
  CpuConfig cfg = test_cfg();
  cfg.rsb_speculates = false;
  BranchPredictor bpu(cfg);
  bpu.rsb_push(100);
  EXPECT_EQ(bpu.predict_ret().target, -1);
}

TEST(BranchPredictorTest, BtbRecordsTargets) {
  BranchPredictor bpu(test_cfg());
  EXPECT_FALSE(bpu.btb_hit(5, 42));
  bpu.btb_record(5, 42);
  EXPECT_TRUE(bpu.btb_hit(5, 42));
  EXPECT_FALSE(bpu.btb_hit(5, 43));
}

TEST(BranchPredictorTest, ResetForgetsEverything) {
  BranchPredictor bpu(test_cfg());
  for (int i = 0; i < 10; ++i) bpu.update_cond(7, true);
  bpu.rsb_push(123);
  bpu.reset();
  EXPECT_FALSE(bpu.predict_cond(7, 9).taken);
  EXPECT_EQ(bpu.predict_ret().target, -1);
}

TEST(PmuTest, EveryEventHasAUniqueName) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kNumPmuEvents; ++i) {
    const std::string n = to_string(static_cast<PmuEvent>(i));
    EXPECT_NE(n, "unknown_event") << "event " << i;
    EXPECT_TRUE(names.insert(n).second) << "duplicate name " << n;
  }
}

TEST(PmuTest, VendorTaggingMatchesPaperTables) {
  EXPECT_EQ(event_vendor(PmuEvent::BR_MISP_EXEC_INDIRECT), Vendor::Intel);
  EXPECT_EQ(event_vendor(PmuEvent::IDQ_DSB_UOPS), Vendor::Intel);
  EXPECT_EQ(event_vendor(PmuEvent::BP_L1_BTB_CORRECT), Vendor::Amd);
  EXPECT_EQ(event_vendor(PmuEvent::IC_FW32), Vendor::Amd);
}

TEST(PmuTest, SnapshotDeltaSemantics) {
  Pmu pmu(Vendor::Intel);
  pmu.inc(PmuEvent::UOPS_ISSUED_ANY, 10);
  const PmuSnapshot a = pmu.snapshot();
  pmu.inc(PmuEvent::UOPS_ISSUED_ANY, 5);
  pmu.inc(PmuEvent::MACHINE_CLEARS_COUNT);
  const PmuSnapshot b = pmu.snapshot();
  const PmuSnapshot d = pmu_delta(a, b);
  EXPECT_EQ(d[static_cast<std::size_t>(PmuEvent::UOPS_ISSUED_ANY)], 5u);
  EXPECT_EQ(d[static_cast<std::size_t>(PmuEvent::MACHINE_CLEARS_COUNT)], 1u);
  EXPECT_EQ(d[static_cast<std::size_t>(PmuEvent::CORE_CYCLES)], 0u);
}

TEST(PmuTest, ResetZeroesCounters) {
  Pmu pmu(Vendor::Amd);
  pmu.inc(PmuEvent::IC_FW32, 100);
  pmu.reset();
  EXPECT_EQ(pmu.value(PmuEvent::IC_FW32), 0u);
}

TEST(PmuTest, MemCounterWindowMapsToNamedEvents) {
  Pmu pmu(Vendor::Intel);
  std::uint64_t* win = pmu.mem_counter_window();
  win[static_cast<std::size_t>(mem::MemCounter::kDtlbMissWalks)] += 2;
  win[static_cast<std::size_t>(mem::MemCounter::kDtlbWalkCycles)] += 62;
  win[static_cast<std::size_t>(mem::MemCounter::kItlbWalkCycles)] += 19;
  win[static_cast<std::size_t>(mem::MemCounter::kStlbHits)] += 1;
  win[static_cast<std::size_t>(mem::MemCounter::kL1Hit)] += 1;
  win[static_cast<std::size_t>(mem::MemCounter::kL3Hit)] += 1;
  win[static_cast<std::size_t>(mem::MemCounter::kDram)] += 1;
  EXPECT_EQ(pmu.value(PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK), 2u);
  EXPECT_EQ(pmu.value(PmuEvent::DTLB_LOAD_MISSES_WALK_ACTIVE), 62u);
  EXPECT_EQ(pmu.value(PmuEvent::ITLB_MISSES_WALK_ACTIVE), 19u);
  EXPECT_EQ(pmu.value(PmuEvent::DTLB_LOAD_MISSES_STLB_HIT), 1u);
  EXPECT_EQ(pmu.value(PmuEvent::MEM_LOAD_RETIRED_L1_HIT), 1u);
  EXPECT_EQ(pmu.value(PmuEvent::MEM_LOAD_RETIRED_L3_HIT), 1u);
  EXPECT_EQ(pmu.value(PmuEvent::MEM_LOAD_RETIRED_DRAM), 1u);
}

TEST(ConfigTest, Table2ModelPresets) {
  // The vulnerability flags must reproduce the Table 2 check pattern.
  const CpuConfig skl = make_config(CpuModel::SkylakeI7_6700);
  EXPECT_TRUE(skl.meltdown_vulnerable());
  EXPECT_TRUE(skl.mds_vulnerable());
  EXPECT_TRUE(skl.tlb_fills_on_fault());
  EXPECT_TRUE(skl.has_tsx);

  const CpuConfig cml = make_config(CpuModel::CometLakeI9_10980XE);
  EXPECT_FALSE(cml.meltdown_vulnerable());
  EXPECT_FALSE(cml.mds_vulnerable());
  EXPECT_TRUE(cml.tlb_fills_on_fault());

  const CpuConfig rpl = make_config(CpuModel::RaptorLakeI9_13900K);
  EXPECT_FALSE(rpl.meltdown_vulnerable());
  EXPECT_TRUE(rpl.rsb_speculates);
  EXPECT_FALSE(rpl.has_tsx);

  const CpuConfig zen = make_config(CpuModel::Zen3Ryzen5_5600G);
  EXPECT_EQ(zen.vendor, Vendor::Amd);
  EXPECT_FALSE(zen.tlb_fills_on_fault());
  EXPECT_EQ(zen.mem.not_present_replays, 1);
}

TEST(ConfigTest, AllModelsAreDistinctAndNamed) {
  std::set<std::string> names;
  for (CpuModel m : all_models()) {
    const CpuConfig c = make_config(m);
    EXPECT_TRUE(names.insert(c.name).second);
    EXPECT_GT(c.ghz, 0.0);
    EXPECT_GT(c.rob_size, 0);
    EXPECT_FALSE(c.uarch_name.empty());
    EXPECT_FALSE(c.microcode.empty());
  }
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace whisper::uarch
