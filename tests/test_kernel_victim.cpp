// Mechanistic Zombieload staging: a kernel-mode victim program loads its
// secret from (cache-cold) kernel memory; the DRAM fill moves the line
// through the fill buffers, and the attacker's assisted load samples it —
// no victim_touch() helper involved.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "isa/builder.h"
#include "os/machine.h"
#include "stats/rng.h"

namespace whisper {
namespace {

using isa::ProgramBuilder;
using isa::Reg;

isa::Program make_victim_loop(std::uint64_t secret_kvaddr) {
  // The victim (a syscall handler, say) reads its secret once per entry.
  ProgramBuilder b;
  b.mov(Reg::RCX, static_cast<std::int64_t>(secret_kvaddr));
  b.clflush(Reg::RCX);           // keep the line DRAM-resident so every
  b.load_byte(Reg::RAX, Reg::RCX);  // read moves it through the LFB
  b.halt();
  return b.build();
}

TEST(KernelVictimTest, KernelModeRunUsesKernelView) {
  os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700,
                 .kernel = {.kpti = true}});
  const std::uint8_t secret[] = {0x42};
  const std::uint64_t kaddr = m.plant_kernel_secret(secret);

  // Under KPTI the secret is unreachable from the user view...
  const auto user_probe = m.memsys().access(
      {.vaddr = kaddr, .type = mem::AccessType::Read, .user_mode = true});
  EXPECT_EQ(user_probe.fault, mem::Fault::NotPresent);

  // ...but a kernel-mode victim reads it fine.
  const isa::Program victim = make_victim_loop(kaddr);
  const auto r = m.run_kernel_victim(victim);
  EXPECT_TRUE(r.t0().halted);
  EXPECT_FALSE(r.t0().killed_by_fault);
  EXPECT_EQ(r.t0().regs[static_cast<std::size_t>(Reg::RAX)], 0x42u);
}

TEST(KernelVictimTest, VictimLoadStagesLfbForZombieload) {
  os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
  const std::uint8_t secret[] = {0x9d};
  const std::uint64_t kaddr = m.plant_kernel_secret(secret);
  const isa::Program victim = make_victim_loop(kaddr);

  // Secret planting is 2 MiB-page interior; the line offset within the LFB
  // entry equals kaddr % 64, so sample at the same offset.
  const std::uint64_t sample_addr =
      core::kNullProbeAddress + (kaddr % 64);

  const auto g = core::make_tet_gadget(
      {.window = core::WindowKind::Tsx,
       .source = core::SecretSource::FaultingLoad});
  core::ArgmaxAnalyzer analyzer(core::Polarity::Min);
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(Reg::RCX)] = sample_addr;

  for (int batch = 0; batch < 6; ++batch) {
    for (int tv = 0; tv <= 255; ++tv) {
      (void)m.run_kernel_victim(victim);  // victim touches its secret
      regs[static_cast<std::size_t>(Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      analyzer.add(tv, core::run_tote(m, g, regs));
    }
    analyzer.end_batch();
  }
  EXPECT_EQ(analyzer.decode(), 0x9d)
      << "attacker should sample the victim's in-flight secret";
}

TEST(KernelVictimTest, FixedSiliconStagesNothingUseful) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
  const std::uint8_t secret[] = {0x9d};
  const std::uint64_t kaddr = m.plant_kernel_secret(secret);
  const isa::Program victim = make_victim_loop(kaddr);
  const std::uint64_t sample_addr =
      core::kNullProbeAddress + (kaddr % 64);

  const auto g = core::make_tet_gadget(
      {.window = core::WindowKind::Tsx,
       .source = core::SecretSource::FaultingLoad});
  core::ArgmaxAnalyzer analyzer(core::Polarity::Min);
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(Reg::RCX)] = sample_addr;
  for (int batch = 0; batch < 3; ++batch) {
    for (int tv = 0; tv <= 255; ++tv) {
      (void)m.run_kernel_victim(victim);
      regs[static_cast<std::size_t>(Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      analyzer.add(tv, core::run_tote(m, g, regs));
    }
    analyzer.end_batch();
  }
  EXPECT_NE(analyzer.decode(), 0x9d) << "no stale forwarding on fixed parts";
}

TEST(KernelVictimTest, SmtCoResidentVictimSampledConcurrently) {
  // The real Zombieload topology: attacker and victim share the physical
  // core, and the victim's own loads stage the LFB *while* the attacker
  // probes. The victim's secret lives in memory the attacker never reads
  // architecturally (a separate process in the real attack; a private
  // buffer here).
  os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
  const std::uint64_t victim_secret_addr = os::Machine::kSharedBase + 0x2000;
  m.poke8(victim_secret_addr, 0x3c);

  // Victim: reload the secret from DRAM repeatedly (clflush keeps the line
  // in flight). Unrolled rather than a loop: a branching victim hammers the
  // *shared* gshare history and PHT from the sibling thread, which is a
  // real SMT noise source but not what this test isolates.
  ProgramBuilder vb;
  vb.mov(Reg::RCX, static_cast<std::int64_t>(victim_secret_addr));
  for (int i = 0; i < 40; ++i) {
    vb.clflush(Reg::RCX);
    vb.load_byte(Reg::RAX, Reg::RCX);
  }
  vb.halt();
  const isa::Program victim = vb.build();

  const auto g = core::make_tet_gadget(
      {.window = core::WindowKind::Tsx,
       .source = core::SecretSource::FaultingLoad});
  core::ArgmaxAnalyzer analyzer(core::Polarity::Min);
  // Sample at the same line offset the victim's secret occupies.
  const std::uint64_t sample_addr =
      core::kNullProbeAddress + (victim_secret_addr % 64);

  for (int batch = 0; batch < 6; ++batch) {
    for (int tv = 0; tv <= 255; ++tv) {
      std::array<std::uint64_t, isa::kNumRegs> a{};
      a[static_cast<std::size_t>(Reg::RCX)] = sample_addr;
      a[static_cast<std::size_t>(Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      const auto r = m.run_smt(g.prog, a, victim, {}, g.signal_handler, -1,
                               2'000'000);
      const auto& tsc = r.thread[0].tsc;
      if (tsc.size() >= 2 && tsc[1] > tsc[0])
        analyzer.add(tv, tsc[1] - tsc[0]);
    }
    analyzer.end_batch();
  }
  // Mean-based decode: occasional taken-trained follower values also clear
  // early (see ArgmaxAnalyzer::decode_by_mean), but only the secret is
  // consistently short.
  EXPECT_EQ(analyzer.decode_by_mean(), 0x3c);
}

}  // namespace
}  // namespace whisper
