// Parameterised property tests: sweeps over CPU models, seeds and gadget
// shapes. These pin down the Table 2 success/failure matrix and the
// determinism guarantees of the simulator.
#include <gtest/gtest.h>

#include "core/attacks/kaslr.h"
#include "core/attacks/meltdown.h"
#include "core/attacks/zombieload.h"
#include "core/covert_channel.h"
#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper {
namespace {

using core::SecretSource;
using core::WindowKind;

// ---------------------------------------------------------------------------
// Per-model expectations (Table 2). '?' cells in the paper are recorded as
// the model's prediction in DESIGN.md.
// ---------------------------------------------------------------------------

struct ModelExpectation {
  uarch::CpuModel model;
  bool meltdown;  // TET-MD
  bool zbl;       // TET-ZBL
  bool kaslr;     // TET-KASLR
};

class ModelMatrixTest : public ::testing::TestWithParam<ModelExpectation> {};

TEST_P(ModelMatrixTest, MeltdownMatchesTable2) {
  const auto& exp = GetParam();
  os::Machine m({.model = exp.model});
  const std::vector<std::uint8_t> secret = {'K', 'e', 'y'};
  const std::uint64_t kaddr = m.plant_kernel_secret(secret);
  core::TetMeltdown atk(m, {{.batches = 4}});
  const bool ok = atk.leak(kaddr, secret.size()) == secret;
  EXPECT_EQ(ok, exp.meltdown) << uarch::to_string(exp.model);
}

TEST_P(ModelMatrixTest, ZombieloadMatchesTable2) {
  const auto& exp = GetParam();
  os::Machine m({.model = exp.model});
  const std::vector<std::uint8_t> stream = {0x5a, 0xa5};
  core::TetZombieload atk(m, {{.batches = 4}});
  const bool ok = atk.leak(stream) == stream;
  EXPECT_EQ(ok, exp.zbl) << uarch::to_string(exp.model);
}

TEST_P(ModelMatrixTest, KaslrMatchesTable2) {
  const auto& exp = GetParam();
  os::Machine m({.model = exp.model});
  core::TetKaslr atk(m, {.rounds = 3});
  EXPECT_EQ(atk.run().success, exp.kaslr) << uarch::to_string(exp.model);
}

TEST_P(ModelMatrixTest, CovertChannelWorksEverywhere) {
  // Table 2: TET-CC is ✓ on every machine.
  const auto& exp = GetParam();
  os::Machine m({.model = exp.model});
  core::TetCovertChannel cc(m, {{.batches = 3}});
  const std::vector<std::uint8_t> payload = {'c', 'c', '!'};
  const auto report = cc.transmit(payload);
  EXPECT_EQ(report.byte_errors, 0u) << uarch::to_string(exp.model);
}

INSTANTIATE_TEST_SUITE_P(
    Table2, ModelMatrixTest,
    ::testing::Values(
        ModelExpectation{uarch::CpuModel::SkylakeI7_6700, true, true, true},
        ModelExpectation{uarch::CpuModel::KabyLakeI7_7700, true, true, true},
        ModelExpectation{uarch::CpuModel::CometLakeI9_10980XE, false, false,
                         true},
        ModelExpectation{uarch::CpuModel::RaptorLakeI9_13900K, false, false,
                         true},
        ModelExpectation{uarch::CpuModel::Zen3Ryzen5_5600G, false, false,
                         false}),
    [](const auto& info) {
      std::string name = uarch::make_config(info.param.model).uarch_name;
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

// ---------------------------------------------------------------------------
// Gadget program properties across window kinds and secret sources.
// ---------------------------------------------------------------------------

class GadgetShapeTest
    : public ::testing::TestWithParam<std::tuple<WindowKind, SecretSource>> {
};

TEST_P(GadgetShapeTest, BuildsValidatesAndRuns) {
  const auto [window, source] = GetParam();
  const core::GadgetProgram g =
      core::make_tet_gadget({.window = window, .source = source});
  EXPECT_NO_THROW(g.prog.validate());
  EXPECT_GE(g.signal_handler, 0);
  EXPECT_FALSE(g.prog.disassemble().empty());

  os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
  m.poke8(os::Machine::kSharedBase, 'S');
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] =
      source == SecretSource::None ? m.kernel().kernel_base() : 0;
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = os::Machine::kSharedBase;
  regs[static_cast<std::size_t>(isa::Reg::RBX)] = 'S';
  EXPECT_GT(core::run_tote(m, g, regs), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, GadgetShapeTest,
    ::testing::Combine(::testing::Values(WindowKind::Tsx,
                                         WindowKind::Signal),
                       ::testing::Values(SecretSource::FaultingLoad,
                                         SecretSource::SharedMemory,
                                         SecretSource::None)),
    [](const auto& info) {
      const WindowKind w = std::get<0>(info.param);
      const SecretSource s = std::get<1>(info.param);
      std::string name = w == WindowKind::Tsx ? "Tsx" : "Signal";
      name += s == SecretSource::FaultingLoad    ? "FaultingLoad"
              : s == SecretSource::SharedMemory ? "SharedMemory"
                                                : "None";
      return name;
    });

// ---------------------------------------------------------------------------
// Determinism and KASLR-entropy properties over seeds.
// ---------------------------------------------------------------------------

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, SameSeedSameOutcome) {
  const std::uint64_t seed = GetParam();
  auto run_once = [&] {
    os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
                   .seed = seed});
    core::TetKaslr atk(m, {.rounds = 2});
    const auto r = atk.run();
    return std::make_tuple(r.found_slot, r.cycles, r.success);
  };
  EXPECT_EQ(run_once(), run_once()) << "simulation must be replayable";
}

TEST_P(SeedSweepTest, KaslrAttackFindsRandomisedSlot) {
  const std::uint64_t seed = GetParam();
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
                 .seed = seed});
  core::TetKaslr atk(m, {.rounds = 2});
  const auto r = atk.run();
  EXPECT_TRUE(r.success) << "seed " << seed << " found slot " << r.found_slot
                         << " true slot " << m.kernel().slot();
}

TEST_P(SeedSweepTest, KptiKaslrAttackAcrossSeeds) {
  const std::uint64_t seed = GetParam();
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
                 .kernel = {.kpti = true},
                 .seed = seed});
  core::TetKaslr atk(m, {.rounds = 2});
  EXPECT_TRUE(atk.run().success) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(11ull, 222ull, 3333ull, 44444ull,
                                           555555ull, 0xdeadbeefull));

// ---------------------------------------------------------------------------
// Meltdown byte-value sweep: the decode must work for arbitrary byte values,
// including 0x00 and 0xff.
// ---------------------------------------------------------------------------

class ByteValueTest : public ::testing::TestWithParam<int> {};

TEST_P(ByteValueTest, MeltdownLeaksExactByte) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  const std::uint8_t secret[] = {static_cast<std::uint8_t>(GetParam())};
  const std::uint64_t kaddr = m.plant_kernel_secret(secret);
  core::TetMeltdown atk(m, {{.batches = 4}});
  EXPECT_EQ(atk.leak_byte(kaddr), secret[0]);
}

INSTANTIATE_TEST_SUITE_P(Bytes, ByteValueTest,
                         ::testing::Values(0x00, 0x01, 0x53, 0x7f, 0x80,
                                           0xaa, 0xfe, 0xff));

// ---------------------------------------------------------------------------
// Both suppression mechanisms (the paper's transient_begin alternatives)
// must carry the channel end to end.
// ---------------------------------------------------------------------------

class WindowKindTest : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowKindTest, MeltdownLeaksUnderEitherSuppression) {
  os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
  const std::vector<std::uint8_t> secret = {'w', 'k'};
  const std::uint64_t kaddr = m.plant_kernel_secret(secret);
  core::TetMeltdown atk(m, {{.batches = 4, .window = GetParam()}});
  EXPECT_EQ(atk.leak(kaddr, secret.size()), secret);
}

TEST_P(WindowKindTest, CovertChannelWorksUnderEitherSuppression) {
  os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
  core::TetCovertChannel cc(m, {{.batches = 3, .window = GetParam()}});
  const std::vector<std::uint8_t> payload = {0x12, 0xef};
  EXPECT_EQ(cc.transmit(payload).byte_errors, 0u);
}

TEST_P(WindowKindTest, SignalWindowCostsMoreThanTsx) {
  // Throughput rationale of §4.1: the per-probe suppression cost.
  os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
  m.poke8(os::Machine::kSharedBase, 'S');
  const auto g = core::make_tet_gadget(
      {.window = GetParam(), .source = core::SecretSource::SharedMemory});
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = core::kNullProbeAddress;
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = os::Machine::kSharedBase;
  regs[static_cast<std::size_t>(isa::Reg::RBX)] = 'T';
  std::uint64_t total = 0;
  for (int i = 0; i < 8; ++i) total += core::run_tote(m, g, regs);
  if (GetParam() == WindowKind::Signal)
    EXPECT_GT(total / 8, 2'000u);  // kernel #PF + signal delivery dominates
  else
    EXPECT_LT(total / 8, 400u);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowKindTest,
                         ::testing::Values(WindowKind::Tsx,
                                           WindowKind::Signal),
                         [](const auto& info) {
                           return info.param == WindowKind::Tsx ? "Tsx"
                                                                : "Signal";
                         });

}  // namespace
}  // namespace whisper
