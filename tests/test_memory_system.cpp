// MemorySystem behaviour tests — fault classification, latency composition,
// the paper-critical TLB fill and walk-replay policies, and transient data
// forwarding (Meltdown / MDS).
#include <gtest/gtest.h>

#include "mem/memory_system.h"

namespace whisper::mem {
namespace {

class MemorySystemTest : public ::testing::Test {
 protected:
  MemorySystemTest() {
    cfg_.jitter_amp = 0;  // deterministic latencies for exact assertions
    ms_ = std::make_unique<MemorySystem>(cfg_);
    pt_.map(0x400000, 0x1000000, 0x10000,
            {.present = true, .writable = true, .user = true});
    pt_.map(0xffffffff80000000ull, 0x100000000ull, 16ull << 20,
            {.present = true, .writable = true, .user = false,
             .global = true},
            PageSize::k2M);
    PteFlags ro{.present = true, .writable = false, .user = true};
    pt_.map(0x500000, 0x2000000, 0x1000, ro);
    PteFlags dummy{.present = true, .writable = false, .user = false,
                   .reserved = true};
    pt_.map(0xffffffff90000000ull, 0x0ffe00000ull, 2ull << 20, dummy,
            PageSize::k2M);
    ms_->set_page_table(&pt_);
  }

  AccessResult read(std::uint64_t vaddr, bool user = true) {
    return ms_->access({.vaddr = vaddr,
                        .type = AccessType::Read,
                        .user_mode = user,
                        .size = 8});
  }

  MemConfig cfg_;
  PageTable pt_;
  std::unique_ptr<MemorySystem> ms_;
};

TEST_F(MemorySystemTest, PlainReadAndWriteRoundtrip) {
  const AccessResult w = ms_->access({.vaddr = 0x400100,
                                      .type = AccessType::Write,
                                      .user_mode = true,
                                      .size = 8,
                                      .store_value = 0xdeadbeef});
  EXPECT_EQ(w.fault, Fault::None);
  const AccessResult r = read(0x400100);
  EXPECT_EQ(r.fault, Fault::None);
  EXPECT_EQ(r.data, 0xdeadbeefu);
}

TEST_F(MemorySystemTest, WriteReturnsOldValueForUndoLog) {
  (void)ms_->access({.vaddr = 0x400200, .type = AccessType::Write,
                     .user_mode = true, .size = 8, .store_value = 111});
  const AccessResult w2 =
      ms_->access({.vaddr = 0x400200, .type = AccessType::Write,
                   .user_mode = true, .size = 8, .store_value = 222});
  EXPECT_EQ(w2.data, 111u);
}

TEST_F(MemorySystemTest, CacheHierarchyLatencies) {
  const AccessResult cold = read(0x400300);
  EXPECT_EQ(cold.cache_level, 4);  // DRAM
  const AccessResult warm = read(0x400300);
  EXPECT_EQ(warm.cache_level, 1);  // L1
  EXPECT_LT(warm.latency, cold.latency);
  EXPECT_EQ(warm.latency, cfg_.l1_latency);  // TLB hit: pure L1 load-to-use
}

TEST_F(MemorySystemTest, ClflushForcesNextAccessToDram) {
  (void)read(0x400400);
  ms_->clflush(0x400400);
  EXPECT_EQ(read(0x400400).cache_level, 4);
}

TEST_F(MemorySystemTest, TlbMissCostsWalkThenHitIsFree) {
  ms_->flush_tlbs();
  const AccessResult miss = read(0x400500);
  EXPECT_GT(miss.walk_cycles, 0);
  const AccessResult hit = read(0x400500);
  EXPECT_TRUE(hit.tlb_hit);
  EXPECT_EQ(hit.walk_cycles, 0);
}

TEST_F(MemorySystemTest, UserAccessToKernelIsPermissionFault) {
  const AccessResult r = read(0xffffffff80000000ull);
  EXPECT_EQ(r.fault, Fault::Permission);
  // Pre-fix default config: the real data still forwards transiently.
  EXPECT_TRUE(r.data_forwarded);
}

TEST_F(MemorySystemTest, KernelModeAccessToKernelSucceeds) {
  const AccessResult r = read(0xffffffff80000000ull, /*user=*/false);
  EXPECT_EQ(r.fault, Fault::None);
}

TEST_F(MemorySystemTest, WriteToReadOnlyIsProtectionFault) {
  const AccessResult r = ms_->access({.vaddr = 0x500000,
                                      .type = AccessType::Write,
                                      .user_mode = true,
                                      .size = 8,
                                      .store_value = 1});
  EXPECT_EQ(r.fault, Fault::Protection);
}

TEST_F(MemorySystemTest, UnmappedIsNotPresentWithReplayedWalks) {
  ms_->flush_tlbs();
  const AccessResult r = read(0x00dead0000ull);
  EXPECT_EQ(r.fault, Fault::NotPresent);
  EXPECT_EQ(r.walks, cfg_.not_present_replays);
  EXPECT_GT(r.walk_cycles, 0);
}

TEST_F(MemorySystemTest, PermissionFaultFillsTlbOnIntelPolicy) {
  ASSERT_TRUE(cfg_.tlb_fill_on_permission_fault);
  ms_->flush_tlbs();
  const AccessResult first = read(0xffffffff80000000ull);
  EXPECT_TRUE(first.tlb_filled);
  const AccessResult second = read(0xffffffff80000000ull);
  EXPECT_TRUE(second.tlb_hit);
  EXPECT_LT(second.latency, first.latency);
}

TEST_F(MemorySystemTest, PermissionFaultDoesNotFillTlbOnAmdPolicy) {
  MemConfig amd = cfg_;
  amd.tlb_fill_on_permission_fault = false;
  MemorySystem ms(amd);
  ms.set_page_table(&pt_);
  const AccessResult first = ms.access({.vaddr = 0xffffffff80000000ull,
                                        .type = AccessType::Read,
                                        .user_mode = true,
                                        .size = 8});
  EXPECT_EQ(first.fault, Fault::Permission);
  EXPECT_FALSE(first.tlb_filled);
  const AccessResult second = ms.access({.vaddr = 0xffffffff80000000ull,
                                         .type = AccessType::Read,
                                         .user_mode = true,
                                         .size = 8});
  EXPECT_FALSE(second.tlb_hit);
}

TEST_F(MemorySystemTest, ReservedDummyNeverFillsTlb) {
  ms_->flush_tlbs();
  const AccessResult first = read(0xffffffff90000000ull);
  EXPECT_EQ(first.fault, Fault::ReservedBit);
  EXPECT_FALSE(first.tlb_filled);
  const AccessResult second = read(0xffffffff90000000ull);
  EXPECT_FALSE(second.tlb_hit);
  EXPECT_GT(second.walk_cycles, 0);
}

TEST_F(MemorySystemTest, NotPresentNeverFillsTlb) {
  ms_->flush_tlbs();
  (void)read(0x00dead0000ull);
  EXPECT_FALSE(ms_->dtlb().contains(0x00dead0000ull));
}

TEST_F(MemorySystemTest, MeltdownForwardingPolicyGate) {
  ms_->phys().write64(0x100000000ull + 0x100, 0x5345435245545321ull);
  const AccessResult vuln = read(0xffffffff80000100ull);
  EXPECT_TRUE(vuln.data_forwarded);
  EXPECT_EQ(vuln.data, 0x5345435245545321ull);

  MemConfig fixed = cfg_;
  fixed.meltdown_forwards_data = false;
  MemorySystem ms(fixed);
  ms.set_page_table(&pt_);
  ms.phys().write64(0x100000000ull + 0x100, 0x5345435245545321ull);
  const AccessResult safe = ms.access({.vaddr = 0xffffffff80000100ull,
                                       .type = AccessType::Read,
                                       .user_mode = true,
                                       .size = 8});
  EXPECT_FALSE(safe.data_forwarded);
  EXPECT_EQ(safe.data, 0u);
}

TEST_F(MemorySystemTest, LfbStaleForwardingPolicyGate) {
  ms_->victim_touch(0x40000000, 0x77, 1);
  const AccessResult vuln = ms_->access({.vaddr = 0x00dead0000ull,
                                         .type = AccessType::Read,
                                         .user_mode = true,
                                         .size = 1});
  EXPECT_TRUE(vuln.from_lfb_stale);
  EXPECT_EQ(vuln.data, 0x77u);

  MemConfig fixed = cfg_;
  fixed.lfb_forwards_stale = false;
  MemorySystem ms(fixed);
  ms.set_page_table(&pt_);
  ms.victim_touch(0x40000000, 0x77, 1);
  const AccessResult safe = ms.access({.vaddr = 0x00dead0000ull,
                                       .type = AccessType::Read,
                                       .user_mode = true,
                                       .size = 1});
  EXPECT_FALSE(safe.from_lfb_stale);
}

TEST_F(MemorySystemTest, FaultConfirmationAddsFixedCost) {
  // Probe twice so the second access is a TLB hit; its latency must be
  // exactly the confirmation cost (translation itself is free).
  ms_->flush_tlbs();
  (void)read(0xffffffff80000000ull);
  const AccessResult hit = read(0xffffffff80000000ull);
  EXPECT_TRUE(hit.tlb_hit);
  // Data forwarding adds cache latency on vulnerable config.
  EXPECT_GE(hit.latency, cfg_.fault_confirm_min_cycles);
}

TEST_F(MemorySystemTest, PrefetchNeverFaultsButExposesWalkTime) {
  ms_->flush_tlbs();
  const AccessResult mapped = ms_->access({.vaddr = 0xffffffff80000000ull,
                                           .type = AccessType::Prefetch,
                                           .user_mode = true});
  EXPECT_EQ(mapped.fault, Fault::Permission);  // classified, not raised
  ms_->flush_tlbs();
  const AccessResult unmapped = ms_->access({.vaddr = 0x00dead0000ull,
                                             .type = AccessType::Prefetch,
                                             .user_mode = true});
  EXPECT_GT(unmapped.walk_cycles, 0);
}

TEST_F(MemorySystemTest, DebugAccessorsBypassTiming) {
  ms_->debug_write64(0x400800, 0xabcdef);
  EXPECT_EQ(ms_->debug_read64(0x400800), 0xabcdefu);
  ms_->debug_write8(0x400808, 0x99);
  EXPECT_EQ(ms_->debug_read8(0x400808), 0x99);
  EXPECT_THROW((void)ms_->debug_read64(0x00dead0000ull), std::runtime_error);
}

TEST_F(MemorySystemTest, CounterWindowReceivesWalkEvents) {
  std::uint64_t counters[kNumMemCounters] = {};
  ms_->set_counter_window(counters);
  ms_->flush_tlbs();
  (void)read(0x00dead0000ull);
  EXPECT_EQ(counters[static_cast<std::size_t>(MemCounter::kDtlbMissWalks)],
            static_cast<std::uint64_t>(cfg_.not_present_replays));
  EXPECT_GT(counters[static_cast<std::size_t>(MemCounter::kDtlbWalkCycles)],
            0u);
  (void)read(0x400000);
  EXPECT_EQ(counters[static_cast<std::size_t>(MemCounter::kDram)], 1u);
}

}  // namespace
}  // namespace whisper::mem
