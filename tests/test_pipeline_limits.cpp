// Structural-limit tests for the core: buffer capacities, port caps, and
// width limits must actually bind — these are the resources whose stalls
// the PMU reports and the paper's Table 3 analyses.
#include <gtest/gtest.h>

#include "isa/builder.h"
#include "os/machine.h"

namespace whisper {
namespace {

using isa::Cond;
using isa::ProgramBuilder;
using isa::Reg;

os::Machine machine_with(uarch::CpuConfig cfg) {
  return os::Machine({.model = cfg.model, .config = cfg});
}

TEST(PipelineLimitsTest, TinyRobCausesResourceStalls) {
  uarch::CpuConfig cfg = uarch::make_config(uarch::CpuModel::KabyLakeI7_7700);
  cfg.rob_size = 8;  // absurdly small: long-latency load blocks retirement
  auto m = machine_with(cfg);
  m.memsys().clflush(os::Machine::kDataBase);

  ProgramBuilder b;
  b.mov(Reg::RCX, static_cast<std::int64_t>(os::Machine::kDataBase))
      .load(Reg::RAX, Reg::RCX);  // DRAM-cold: occupies the ROB head
  b.nop(40);                      // wants 40 more entries, has 6
  b.halt();

  const auto before =
      m.core().pmu().value(uarch::PmuEvent::RESOURCE_STALLS_ANY);
  (void)m.run_user(b.build());
  const auto stalls =
      m.core().pmu().value(uarch::PmuEvent::RESOURCE_STALLS_ANY) - before;
  EXPECT_GT(stalls, 50u) << "a 8-entry ROB must back-pressure allocation";
}

TEST(PipelineLimitsTest, BiggerRobBuysMemoryLevelParallelism) {
  // Two DRAM loads separated by 40 nops: a big ROB overlaps their misses;
  // a tiny ROB cannot even allocate the second until the first retires.
  auto run = [&](int rob) {
    uarch::CpuConfig cfg =
        uarch::make_config(uarch::CpuModel::KabyLakeI7_7700);
    cfg.rob_size = rob;
    auto m = machine_with(cfg);
    m.memsys().clflush(os::Machine::kDataBase);
    m.memsys().clflush(os::Machine::kDataBase + 0x1000);
    ProgramBuilder b;
    b.mov(Reg::RCX, static_cast<std::int64_t>(os::Machine::kDataBase))
        .load(Reg::RAX, Reg::RCX);
    b.nop(40);
    b.load(Reg::RBX, Reg::RCX, 0x1000);
    b.halt();
    return m.run_user(b.build()).cycles();
  };
  const auto big = run(224);
  const auto tiny = run(8);
  const auto dram = static_cast<std::uint64_t>(
      uarch::make_config(uarch::CpuModel::KabyLakeI7_7700).mem.dram_latency);
  EXPECT_GT(tiny, big + dram / 2)
      << "a tiny ROB must serialise the two misses";
}

TEST(PipelineLimitsTest, LoadPortsBoundThroughput) {
  // 32 independent L1-hit loads: with 2 load ports they need >= 16 cycles
  // of issue; with an (ablated) single port, twice that.
  auto run = [&](int ports) {
    uarch::CpuConfig cfg =
        uarch::make_config(uarch::CpuModel::KabyLakeI7_7700);
    cfg.load_ports = ports;
    auto m = machine_with(cfg);
    ProgramBuilder b;
    b.mov(Reg::RCX, static_cast<std::int64_t>(os::Machine::kDataBase));
    for (int i = 0; i < 32; ++i) b.load(Reg::RAX, Reg::RCX, i * 8);
    b.halt();
    const auto p = b.build();
    (void)m.run_user(p);         // warm caches/TLB
    return m.run_user(p).cycles();
  };
  const auto two = run(2);
  const auto one = run(1);
  EXPECT_GT(one, two + 10);
}

TEST(PipelineLimitsTest, RetireWidthBoundsIpc) {
  auto run = [&](int width) {
    uarch::CpuConfig cfg =
        uarch::make_config(uarch::CpuModel::KabyLakeI7_7700);
    cfg.retire_width = width;
    auto m = machine_with(cfg);
    ProgramBuilder b;
    b.nop(200).halt();
    const auto p = b.build();
    (void)m.run_user(p);
    return m.run_user(p).cycles();
  };
  EXPECT_GT(run(1), run(4) + 100) << "200 nops at 1/cycle vs 4/cycle";
}

TEST(PipelineLimitsTest, IdqFullThrottlesFetchWithoutDeadlock) {
  uarch::CpuConfig cfg = uarch::make_config(uarch::CpuModel::KabyLakeI7_7700);
  cfg.idq_size = 4;
  cfg.alloc_width = 1;
  auto m = machine_with(cfg);
  ProgramBuilder b;
  b.nop(100).halt();
  const auto r = m.run_user(b.build(), {}, -1, 100'000);
  EXPECT_TRUE(r.t0().halted) << "tiny IDQ must not deadlock";
  EXPECT_EQ(r.t0().instructions_retired, 101u);
}

TEST(PipelineLimitsTest, StoreBufferOrderingUnderPressure) {
  // Many stores then loads of the same addresses: conservative ordering
  // must still produce correct values.
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  ProgramBuilder b;
  b.mov(Reg::RDI, static_cast<std::int64_t>(os::Machine::kDataBase));
  for (int i = 0; i < 12; ++i) {
    b.mov(Reg::RSI, 100 + i);
    b.store(Reg::RDI, Reg::RSI, i * 8);
  }
  b.mov(Reg::RAX, 0);
  for (int i = 0; i < 12; ++i) {
    b.load(Reg::RBX, Reg::RDI, i * 8);
    b.add(Reg::RAX, Reg::RBX);
  }
  b.halt();
  const auto r = m.run_user(b.build());
  std::uint64_t expect = 0;
  for (int i = 0; i < 12; ++i) expect += 100 + static_cast<std::uint64_t>(i);
  EXPECT_EQ(r.t0().regs[static_cast<std::size_t>(Reg::RAX)], expect);
}

TEST(PipelineLimitsTest, SmtSharesFrontendBandwidth) {
  // The same nop program runs slower per-thread under SMT than alone.
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  ProgramBuilder b;
  b.nop(300).halt();
  const auto p = b.build();
  const auto solo = m.run_user(p).cycles();
  ProgramBuilder b2;
  b2.nop(300).halt();
  const auto p2 = b2.build();
  const auto both = m.run_smt(p, {}, p2, {}).cycles();
  EXPECT_GT(both, solo + solo / 4) << "SMT siblings share fetch slots";
}

TEST(PipelineLimitsTest, DeepSpeculationIsBoundedByRob) {
  // A never-resolving (DRAM-dependent) branch cannot let the front end run
  // unboundedly ahead: allocation stops at the ROB limit.
  uarch::CpuConfig cfg = uarch::make_config(uarch::CpuModel::KabyLakeI7_7700);
  cfg.rob_size = 16;
  auto m = machine_with(cfg);
  m.memsys().clflush(os::Machine::kDataBase);
  ProgramBuilder b;
  b.mov(Reg::RCX, static_cast<std::int64_t>(os::Machine::kDataBase))
      .load(Reg::RAX, Reg::RCX)
      .cmp(Reg::RAX, 0)
      .jcc(Cond::Z, "t")
      .nop(100)
      .label("t")
      .halt();
  const auto before = m.core().pmu().value(uarch::PmuEvent::UOPS_ISSUED_ANY);
  const auto r = m.run_user(b.build(), {}, -1, 50'000);
  const auto alloc =
      m.core().pmu().value(uarch::PmuEvent::UOPS_ISSUED_ANY) - before;
  EXPECT_TRUE(r.t0().halted);
  // Allocated uops within any window are bounded by ROB size + refills,
  // far below the 100-nop wrong path times many replays.
  EXPECT_LT(alloc, 200u);
}

}  // namespace
}  // namespace whisper
