// Unit tests for whisper::isa — instruction metadata, the program builder's
// label resolution, validation, and disassembly.
#include <gtest/gtest.h>

#include "isa/builder.h"
#include "isa/isa.h"
#include "isa/program.h"

namespace whisper::isa {
namespace {

TEST(Isa, CondEvaluation) {
  Flags f;
  f.zf = true;
  EXPECT_TRUE(eval_cond(Cond::Z, f));
  EXPECT_FALSE(eval_cond(Cond::NZ, f));
  f.zf = false;
  f.cf = true;
  EXPECT_TRUE(eval_cond(Cond::C, f));
  EXPECT_FALSE(eval_cond(Cond::NC, f));
  f.cf = false;
  f.sf = true;
  EXPECT_TRUE(eval_cond(Cond::S, f));
  f.sf = false;
  f.of = true;
  EXPECT_TRUE(eval_cond(Cond::O, f));
  EXPECT_FALSE(eval_cond(Cond::NO, f));
}

TEST(Isa, InstructionClassPredicates) {
  Instruction jcc{.op = Opcode::Jcc};
  EXPECT_TRUE(jcc.is_branch());
  EXPECT_TRUE(jcc.is_cond_branch());
  EXPECT_TRUE(jcc.reads_flags());
  EXPECT_FALSE(jcc.writes_flags());

  Instruction ret{.op = Opcode::Ret};
  EXPECT_TRUE(ret.is_branch());
  EXPECT_TRUE(ret.is_load());   // pops the return address
  EXPECT_TRUE(ret.is_mem());

  Instruction call{.op = Opcode::Call};
  EXPECT_TRUE(call.is_store());  // pushes the return address

  Instruction cmp{.op = Opcode::CmpRI};
  EXPECT_TRUE(cmp.writes_flags());
  EXPECT_FALSE(cmp.is_mem());

  Instruction lf{.op = Opcode::Lfence};
  EXPECT_TRUE(lf.is_fence());
}

TEST(Isa, UopCounts) {
  EXPECT_EQ(Instruction{.op = Opcode::Nop}.uops(), 1);
  EXPECT_EQ(Instruction{.op = Opcode::Call}.uops(), 2);
  EXPECT_EQ(Instruction{.op = Opcode::Ret}.uops(), 2);
  EXPECT_EQ(Instruction{.op = Opcode::Mfence}.uops(), 3);
  EXPECT_EQ(Instruction{.op = Opcode::Rdtsc}.uops(), 2);
}

TEST(Builder, ResolvesForwardAndBackwardLabels) {
  ProgramBuilder b;
  b.label("top").nop().jcc(Cond::Z, "bottom").jmp("top").label("bottom").halt();
  const Program p = b.build();
  EXPECT_EQ(p.at(1).target, p.label("bottom"));
  EXPECT_EQ(p.at(2).target, 0);
}

TEST(Builder, ThrowsOnUnresolvedLabel) {
  ProgramBuilder b;
  b.jmp("nowhere");
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Builder, ThrowsOnDuplicateLabel) {
  ProgramBuilder b;
  b.label("x").nop();
  EXPECT_THROW(b.label("x"), std::invalid_argument);
}

TEST(Builder, MovLabelMaterialisesInstructionIndex) {
  ProgramBuilder b;
  b.mov_label(Reg::R11, "landing").nop().label("landing").halt();
  const Program p = b.build();
  EXPECT_EQ(p.at(0).op, Opcode::MovRI);
  EXPECT_EQ(p.at(0).imm, p.label("landing"));
}

TEST(Builder, HereTracksNextIndex) {
  ProgramBuilder b;
  EXPECT_EQ(b.here(), 0);
  b.nop(3);
  EXPECT_EQ(b.here(), 3);
}

TEST(Builder, NopCountEmitsExactly) {
  ProgramBuilder b;
  b.nop(5).halt();
  EXPECT_EQ(b.build().size(), 6u);
}

TEST(ProgramTest, ValidateRejectsOutOfRangeTargets) {
  std::vector<Instruction> code = {
      {.op = Opcode::Jmp, .target = 5},
      {.op = Opcode::Halt},
  };
  EXPECT_THROW(Program(code, {}), std::invalid_argument);
  code[0].target = -1;
  EXPECT_THROW(Program(code, {}), std::invalid_argument);
  code[0].target = 1;
  EXPECT_NO_THROW(Program(code, {}));
}

TEST(ProgramTest, LabelLookup) {
  ProgramBuilder b;
  b.nop().label("mid").nop().halt();
  const Program p = b.build();
  EXPECT_TRUE(p.has_label("mid"));
  EXPECT_EQ(p.label("mid"), 1);
  EXPECT_FALSE(p.has_label("nope"));
  EXPECT_THROW((void)p.label("nope"), std::out_of_range);
}

TEST(ProgramTest, DisassemblyContainsLabelsAndMnemonics) {
  ProgramBuilder b;
  b.mov(Reg::RAX, 0x42)
      .label("loop")
      .load(Reg::RBX, Reg::RAX, 8)
      .cmp(Reg::RBX, 0)
      .jcc(Cond::NZ, "loop")
      .clflush(Reg::RAX)
      .mfence()
      .rdtsc(Reg::R8)
      .halt();
  const std::string d = b.build().disassemble();
  EXPECT_NE(d.find("loop:"), std::string::npos);
  EXPECT_NE(d.find("mov rax, 0x42"), std::string::npos);
  EXPECT_NE(d.find("jnz"), std::string::npos);
  EXPECT_NE(d.find("clflush"), std::string::npos);
  EXPECT_NE(d.find("mfence"), std::string::npos);
  EXPECT_NE(d.find("rdtsc"), std::string::npos);
  EXPECT_NE(d.find("hlt"), std::string::npos);
}

TEST(ProgramTest, ToStringCoversEveryOpcode) {
  // Every opcode must print something other than "?".
  for (int op = 0; op <= static_cast<int>(Opcode::Halt); ++op) {
    Instruction in{.op = static_cast<Opcode>(op)};
    in.dst = Reg::RAX;
    in.src = Reg::RBX;
    in.base = Reg::RCX;
    in.target = 0;
    EXPECT_NE(in.to_string(), "?") << "opcode " << op;
    EXPECT_FALSE(in.to_string().empty());
  }
}

TEST(ProgramTest, RegisterNames) {
  EXPECT_EQ(to_string(Reg::RAX), "rax");
  EXPECT_EQ(to_string(Reg::RSP), "rsp");
  EXPECT_EQ(to_string(Reg::R15), "r15");
}

}  // namespace
}  // namespace whisper::isa
