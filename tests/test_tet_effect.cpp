// The load-bearing behavioural contracts of the Whisper channel
// (DESIGN.md §1): the sign and separability of the ToTE deltas that every
// attack builds on.
#include <gtest/gtest.h>

#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper {
namespace {

using core::GadgetProgram;
using core::SecretSource;
using core::TetGadgetSpec;
using core::WindowKind;

std::array<std::uint64_t, isa::kNumRegs> regs_with(
    std::initializer_list<std::pair<isa::Reg, std::uint64_t>> kv) {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  for (const auto& [r, v] : kv) regs[static_cast<std::size_t>(r)] = v;
  return regs;
}

double mean_tote(os::Machine& m, const GadgetProgram& g,
                 const std::array<std::uint64_t, isa::kNumRegs>& regs,
                 int samples = 20) {
  double sum = 0;
  int n = 0;
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t t = core::run_tote(m, g, regs);
    if (t != 0) {
      sum += static_cast<double>(t);
      ++n;
    }
  }
  EXPECT_GT(n, samples / 2) << "too many failed probes";
  return n ? sum / n : 0.0;
}

// Fig. 1: a triggered Jcc inside an exception-terminated transient window
// lengthens ToTE, on every modelled CPU.
TEST(TetEffect, TriggerLengthensExceptionWindow) {
  for (uarch::CpuModel model : uarch::all_models()) {
    os::Machine m({.model = model});
    m.poke8(os::Machine::kSharedBase, 'S');
    const GadgetProgram g = core::make_tet_gadget(
        {.window = core::preferred_window(m.config()),
         .source = SecretSource::SharedMemory});

    auto regs = regs_with({{isa::Reg::RCX, core::kNullProbeAddress},
                           {isa::Reg::RDX, os::Machine::kSharedBase}});
    regs[static_cast<std::size_t>(isa::Reg::RBX)] = 'S';
    const double trig = mean_tote(m, g, regs);
    regs[static_cast<std::size_t>(isa::Reg::RBX)] = 'T';
    const double no_trig = mean_tote(m, g, regs);

    EXPECT_GT(trig, no_trig + 4.0)
        << "no TET signal on " << uarch::to_string(model);
  }
}

// §4.3.2: for an MDS/assist window the relationship flips — a triggered
// (stale-data-dependent) Jcc shortens ToTE.
TEST(TetEffect, TriggerShortensAssistWindow) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  const GadgetProgram g = core::make_tet_gadget(
      {.window = WindowKind::Tsx, .source = SecretSource::FaultingLoad});

  auto regs = regs_with({{isa::Reg::RCX, core::kNullProbeAddress}});
  auto probe = [&](int tv) {
    m.victim_touch('Z');  // stale LFB byte the faulting load samples
    regs[static_cast<std::size_t>(isa::Reg::RBX)] =
        static_cast<std::uint64_t>(tv);
    return core::run_tote(m, g, regs);
  };
  double trig = 0, no_trig = 0;
  for (int i = 0; i < 20; ++i) {
    trig += static_cast<double>(probe('Z'));
    no_trig += static_cast<double>(probe('Q'));
  }
  EXPECT_LT(trig + 20 * 4.0, no_trig)
      << "assist window should squash early on trigger";
}

// §4.3.3: same sign for the RSB window, and no fault is ever raised.
TEST(TetEffect, TriggerShortensRsbWindow) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  m.poke8(os::Machine::kSharedBase, 'R');
  const GadgetProgram g = core::make_rsb_gadget();

  auto regs = regs_with({{isa::Reg::RDX, os::Machine::kSharedBase}});
  regs[static_cast<std::size_t>(isa::Reg::RBX)] = 'R';
  const double trig = mean_tote(m, g, regs);
  regs[static_cast<std::size_t>(isa::Reg::RBX)] = 'X';
  const double no_trig = mean_tote(m, g, regs);

  EXPECT_LT(trig + 20.0, no_trig);
}

// §4.5: mapped (supervisor) targets probe shorter than unmapped ones on
// Intel; on the Zen 3 model the signal is absent.
TEST(TetEffect, MappedVsUnmappedKaslrSignal) {
  {
    os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
    const GadgetProgram g =
        core::make_kaslr_gadget(core::preferred_window(m.config()));
    const std::uint64_t mapped = m.kernel().kernel_base();
    const std::uint64_t unmapped = m.kernel().unmapped_probe_address();

    double mapped_sum = 0, unmapped_sum = 0;
    for (int i = 0; i < 16; ++i) {
      m.evict_tlbs();
      mapped_sum += static_cast<double>(core::run_tote(
          m, g, regs_with({{isa::Reg::RCX, mapped}})));
      m.evict_tlbs();
      unmapped_sum += static_cast<double>(core::run_tote(
          m, g, regs_with({{isa::Reg::RCX, unmapped}})));
    }
    EXPECT_LT(mapped_sum + 16 * 8.0, unmapped_sum);
  }
  {
    os::Machine m({.model = uarch::CpuModel::Zen3Ryzen5_5600G});
    const GadgetProgram g =
        core::make_kaslr_gadget(core::preferred_window(m.config()));
    const std::uint64_t mapped = m.kernel().kernel_base();
    const std::uint64_t unmapped = m.kernel().unmapped_probe_address();

    double mapped_sum = 0, unmapped_sum = 0;
    for (int i = 0; i < 16; ++i) {
      m.evict_tlbs();
      mapped_sum += static_cast<double>(core::run_tote(
          m, g, regs_with({{isa::Reg::RCX, mapped}})));
      m.evict_tlbs();
      unmapped_sum += static_cast<double>(core::run_tote(
          m, g, regs_with({{isa::Reg::RCX, unmapped}})));
    }
    const double gap = (unmapped_sum - mapped_sum) / 16.0;
    EXPECT_LT(std::abs(gap), 6.0)
        << "Zen 3 should not expose a mapped/unmapped ToTE gap";
  }
}

}  // namespace
}  // namespace whisper
