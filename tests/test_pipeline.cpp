// Architectural correctness of the out-of-order core: programs must compute
// the same results as a sequential interpreter would, regardless of the
// microarchitectural reordering underneath.
#include <gtest/gtest.h>

#include "isa/builder.h"
#include "os/machine.h"

namespace whisper {
namespace {

using isa::Cond;
using isa::ProgramBuilder;
using isa::Reg;

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : m_({.model = uarch::CpuModel::KabyLakeI7_7700}) {}

  std::uint64_t reg(const uarch::RunResult& r, Reg rr) {
    return r.t0().regs[static_cast<std::size_t>(rr)];
  }

  os::Machine m_;
};

TEST_F(PipelineTest, ArithmeticChain) {
  ProgramBuilder b;
  b.mov(Reg::RAX, 10)
      .add(Reg::RAX, 5)
      .mov(Reg::RBX, Reg::RAX)
      .sub(Reg::RBX, 3)
      .add(Reg::RAX, Reg::RBX)   // 15 + 12 = 27
      .xor_(Reg::RCX, Reg::RCX)
      .or_(Reg::RCX, 0xf0)
      .and_(Reg::RCX, 0x3c)      // 0x30
      .shl(Reg::RCX, 2)          // 0xc0
      .shr(Reg::RCX, 1)          // 0x60
      .halt();
  const auto r = m_.run_user(b.build());
  EXPECT_TRUE(r.t0().halted);
  EXPECT_EQ(reg(r, Reg::RAX), 27u);
  EXPECT_EQ(reg(r, Reg::RCX), 0x60u);
}

TEST_F(PipelineTest, LoopSumsCorrectly) {
  // sum = 1 + 2 + ... + 10 = 55
  ProgramBuilder b;
  b.mov(Reg::RAX, 0)
      .mov(Reg::RBX, 1)
      .label("loop")
      .add(Reg::RAX, Reg::RBX)
      .add(Reg::RBX, 1)
      .cmp(Reg::RBX, 11)
      .jcc(Cond::NZ, "loop")
      .halt();
  const auto r = m_.run_user(b.build());
  EXPECT_EQ(reg(r, Reg::RAX), 55u);
}

TEST_F(PipelineTest, FlagsSemantics) {
  ProgramBuilder b;
  b.mov(Reg::RAX, 5)
      .cmp(Reg::RAX, 5)
      .jcc(Cond::Z, "eq")
      .mov(Reg::RBX, 1)
      .jmp("next")
      .label("eq")
      .mov(Reg::RBX, 2)
      .label("next")
      .mov(Reg::RCX, 3)
      .cmp(Reg::RCX, 10)  // 3 - 10 borrows: CF set, SF set
      .jcc(Cond::C, "below")
      .mov(Reg::RDX, 1)
      .jmp("done")
      .label("below")
      .mov(Reg::RDX, 2)
      .label("done")
      .halt();
  const auto r = m_.run_user(b.build());
  EXPECT_EQ(reg(r, Reg::RBX), 2u);
  EXPECT_EQ(reg(r, Reg::RDX), 2u);
}

TEST_F(PipelineTest, StoreLoadRoundtripThroughMemory) {
  ProgramBuilder b;
  b.mov(Reg::RDI, static_cast<std::int64_t>(os::Machine::kDataBase))
      .mov(Reg::RAX, 0x1234567890ll)
      .store(Reg::RDI, Reg::RAX)
      .load(Reg::RBX, Reg::RDI)
      .store_byte(Reg::RDI, Reg::RAX, 0x100)
      .load_byte(Reg::RCX, Reg::RDI, 0x100)
      .halt();
  const auto r = m_.run_user(b.build());
  EXPECT_EQ(reg(r, Reg::RBX), 0x1234567890ull);
  EXPECT_EQ(reg(r, Reg::RCX), 0x90u);
  EXPECT_EQ(m_.peek64(os::Machine::kDataBase), 0x1234567890ull);
}

TEST_F(PipelineTest, CallAndReturn) {
  ProgramBuilder b;
  b.mov(Reg::RAX, 1)
      .call("fn")
      .add(Reg::RAX, 100)  // executes after return: 1+10+100
      .halt();
  b.label("fn").add(Reg::RAX, 10).ret();
  const auto r = m_.run_user(b.build());
  EXPECT_EQ(reg(r, Reg::RAX), 111u);
}

TEST_F(PipelineTest, NestedCalls) {
  ProgramBuilder b;
  b.mov(Reg::RAX, 0).call("f1").halt();
  b.label("f1").add(Reg::RAX, 1).call("f2").add(Reg::RAX, 4).ret();
  b.label("f2").add(Reg::RAX, 2).ret();
  const auto r = m_.run_user(b.build());
  EXPECT_EQ(reg(r, Reg::RAX), 7u);
  EXPECT_TRUE(r.t0().halted);
}

TEST_F(PipelineTest, RdtscPairsAreMonotone) {
  ProgramBuilder b;
  b.rdtsc(Reg::R8).lfence().nop(20).lfence().rdtsc(Reg::R9).halt();
  const auto r = m_.run_user(b.build());
  ASSERT_EQ(r.t0().tsc.size(), 2u);
  EXPECT_GT(r.t0().tsc[1], r.t0().tsc[0]);
}

TEST_F(PipelineTest, TscPersistsAcrossRuns) {
  ProgramBuilder b;
  b.rdtsc(Reg::R8).halt();
  const auto p = b.build();
  const auto r1 = m_.run_user(p);
  const auto r2 = m_.run_user(p);
  ASSERT_EQ(r1.t0().tsc.size(), 1u);
  ASSERT_EQ(r2.t0().tsc.size(), 1u);
  EXPECT_GT(r2.t0().tsc[0], r1.t0().tsc[0]);
}

TEST_F(PipelineTest, BranchPredictorLearnsLoopBranch) {
  // A long loop should settle into correct prediction; verify via PMU.
  ProgramBuilder b;
  b.mov(Reg::RBX, 0)
      .label("loop")
      .add(Reg::RBX, 1)
      .cmp(Reg::RBX, 200)
      .jcc(Cond::NZ, "loop")
      .halt();
  const auto before =
      m_.core().pmu().value(uarch::PmuEvent::BR_MISP_EXEC_ALL_BRANCHES);
  (void)m_.run_user(b.build());
  const auto after =
      m_.core().pmu().value(uarch::PmuEvent::BR_MISP_EXEC_ALL_BRANCHES);
  // gshare warms one PHT counter per distinct history pattern (~index
  // width) and then predicts correctly — far fewer than one miss per
  // iteration.
  EXPECT_LT(after - before, 30u);
}

TEST_F(PipelineTest, CycleLimitIsReported) {
  ProgramBuilder b;
  b.label("forever").jmp("forever");
  const auto r = m_.run_user(b.build(), {}, -1, 2'000);
  EXPECT_TRUE(r.cycle_limit_hit);
  EXPECT_FALSE(r.t0().halted);
}

TEST_F(PipelineTest, RunOffEndHaltsThread) {
  ProgramBuilder b;
  b.nop(3);  // no halt: falls off the end
  const auto r = m_.run_user(b.build(), {}, -1, 50'000);
  // The fetch unit stops; the thread never halts architecturally, so the
  // run ends via the cycle limit.
  EXPECT_TRUE(r.cycle_limit_hit);
}

TEST_F(PipelineTest, FaultWithoutHandlerKillsThread) {
  ProgramBuilder b;
  b.mov(Reg::RCX, 0).load(Reg::RAX, Reg::RCX).halt();
  const auto r = m_.run_user(b.build(), {}, /*signal_handler=*/-1);
  EXPECT_TRUE(r.t0().killed_by_fault);
}

TEST_F(PipelineTest, SignalHandlerSuppressesFault) {
  ProgramBuilder b;
  b.mov(Reg::RCX, 0)
      .load(Reg::RAX, Reg::RCX)
      .mov(Reg::RBX, 111)  // skipped: fault redirects to handler
      .label("handler")
      .mov(Reg::RDX, 222)
      .halt();
  const auto p = b.build();
  const auto r = m_.run_user(p, {}, p.label("handler"));
  EXPECT_FALSE(r.t0().killed_by_fault);
  EXPECT_TRUE(r.t0().halted);
  EXPECT_EQ(reg(r, Reg::RBX), 0u);
  EXPECT_EQ(reg(r, Reg::RDX), 222u);
}

TEST_F(PipelineTest, TsxAbortsToFallbackOnFault) {
  ProgramBuilder b;
  b.mov(Reg::RCX, 0)
      .tsx_begin("abort")
      .load(Reg::RAX, Reg::RCX)
      .mov(Reg::RBX, 1)  // transient only
      .tsx_end()
      .mov(Reg::RDX, 1)  // skipped via abort path? no: fallthrough reaches it
      .label("abort")
      .mov(Reg::RSI, 77)
      .halt();
  const auto r = m_.run_user(b.build());
  EXPECT_FALSE(r.t0().killed_by_fault);
  EXPECT_EQ(reg(r, Reg::RBX), 0u);   // transient write rolled back
  EXPECT_EQ(reg(r, Reg::RDX), 0u);   // post-xend code never retired
  EXPECT_EQ(reg(r, Reg::RSI), 77u);  // abort handler ran
}

TEST_F(PipelineTest, TsxCommitsWhenNoFault) {
  ProgramBuilder b;
  b.mov(Reg::RCX, static_cast<std::int64_t>(os::Machine::kDataBase))
      .tsx_begin("abort")
      .load(Reg::RAX, Reg::RCX)
      .mov(Reg::RBX, 42)
      .tsx_end()
      .label("abort")  // fallthrough reaches this label's code either way
      .halt();
  const auto r = m_.run_user(b.build());
  EXPECT_EQ(reg(r, Reg::RBX), 42u);
}

TEST_F(PipelineTest, SmtRunsBothThreadsToCompletion) {
  ProgramBuilder b0;
  b0.mov(Reg::RAX, 0)
      .label("l")
      .add(Reg::RAX, 1)
      .cmp(Reg::RAX, 50)
      .jcc(Cond::NZ, "l")
      .halt();
  ProgramBuilder b1;
  b1.mov(Reg::RBX, 7).add(Reg::RBX, 8).halt();
  const auto r = m_.run_smt(b0.build(), {}, b1.build(), {});
  EXPECT_TRUE(r.thread[0].halted);
  EXPECT_TRUE(r.thread[1].halted);
  EXPECT_EQ(r.thread[0].regs[static_cast<std::size_t>(Reg::RAX)], 50u);
  EXPECT_EQ(r.thread[1].regs[static_cast<std::size_t>(Reg::RBX)], 15u);
}

TEST_F(PipelineTest, RetiredInstructionCountsAreSane) {
  ProgramBuilder b;
  b.nop(10).halt();
  const auto r = m_.run_user(b.build());
  EXPECT_EQ(r.t0().instructions_retired, 11u);
}

}  // namespace
}  // namespace whisper
