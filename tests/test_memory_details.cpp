// Second-level memory-system details: STLB promotion, paging-structure
// caches, global entries across CR3-style flushes, mixed page sizes, LFB
// recording via DRAM fills.
#include <gtest/gtest.h>

#include "mem/memory_system.h"

namespace whisper::mem {
namespace {

class MemoryDetailsTest : public ::testing::Test {
 protected:
  MemoryDetailsTest() {
    cfg_.jitter_amp = 0;
    ms_ = std::make_unique<MemorySystem>(cfg_);
    pt_.map(0x400000, 0x1000000, 0x40000,
            {.present = true, .writable = true, .user = true});
    pt_.map(0xffffffff80000000ull, 0x100000000ull, 4ull << 21,
            {.present = true, .writable = true, .user = false,
             .global = true},
            PageSize::k2M);
    ms_->set_page_table(&pt_);
  }

  AccessResult read(std::uint64_t vaddr, bool user = true) {
    return ms_->access({.vaddr = vaddr,
                        .type = AccessType::Read,
                        .user_mode = user,
                        .size = 8});
  }

  MemConfig cfg_;
  PageTable pt_;
  std::unique_ptr<MemorySystem> ms_;
};

TEST_F(MemoryDetailsTest, StlbServesAfterDtlbEviction) {
  // Warm both levels, then displace only the DTLB: the next access must be
  // an STLB hit (cheap) rather than a full walk.
  (void)read(0x400000);
  ASSERT_TRUE(ms_->stlb().contains(0x400000));
  ms_->dtlb().flush_all();

  const AccessResult r = read(0x400000);
  EXPECT_FALSE(r.tlb_hit);          // missed the first level
  EXPECT_EQ(r.walk_cycles, 0);      // ...but never engaged the walker
  EXPECT_GT(r.latency, cfg_.l1_latency);  // paid the STLB latency
  EXPECT_LE(r.latency, cfg_.l1_latency + cfg_.stlb_latency);
  // Promotion: the first level is warm again.
  EXPECT_TRUE(ms_->dtlb().contains(0x400000));
}

TEST_F(MemoryDetailsTest, PagingStructureCachesShortenNearbyWalks) {
  ms_->flush_tlbs();
  const AccessResult far_walk = read(0x400000);      // cold: full depth
  // A different page in the same region shares upper levels via the PSC.
  ms_->dtlb().flush_all();
  ms_->stlb().flush_all();  // TLBs cold, PSC deliberately kept warm
  const AccessResult near_walk = read(0x410000);
  EXPECT_GT(near_walk.walk_cycles, 0);
  EXPECT_LT(near_walk.walk_cycles, far_walk.walk_cycles);
}

TEST_F(MemoryDetailsTest, GlobalEntriesSurviveNonGlobalFlush) {
  (void)read(0xffffffff80000000ull, /*user=*/false);  // kernel, global
  (void)read(0x400000);                               // user, non-global
  ASSERT_TRUE(ms_->dtlb().contains(0xffffffff80000000ull));
  ASSERT_TRUE(ms_->dtlb().contains(0x400000));

  ms_->flush_tlbs_non_global();  // the CR3-switch flush
  EXPECT_TRUE(ms_->dtlb().contains(0xffffffff80000000ull));
  EXPECT_FALSE(ms_->dtlb().contains(0x400000));
}

TEST_F(MemoryDetailsTest, MixedPageSizesResolveIndependently) {
  const AccessResult small = read(0x400000);
  const AccessResult big = read(0xffffffff80123456ull, /*user=*/false);
  EXPECT_EQ(small.fault, Fault::None);
  EXPECT_EQ(big.fault, Fault::None);
  EXPECT_EQ(big.paddr, 0x100000000ull + 0x123456);
  // Both sizes coexist in the TLB.
  EXPECT_TRUE(ms_->dtlb().contains(0x400000));
  EXPECT_TRUE(ms_->dtlb().contains(0xffffffff80000000ull + 0x100000));
}

TEST_F(MemoryDetailsTest, DramFillRecordsLineInLfb) {
  ms_->phys().write64(0x1000040, 0xfeedfacecafef00dull);
  ASSERT_EQ(ms_->lfb().occupancy(), 0u);
  (void)read(0x400040);  // DRAM-cold: the fill transits the LFB
  EXPECT_GT(ms_->lfb().occupancy(), 0u);
  EXPECT_EQ(*ms_->lfb().stale_qword(0x40), 0xfeedfacecafef00dull);
}

TEST_F(MemoryDetailsTest, CacheHitDoesNotTouchLfb) {
  (void)read(0x400080);  // fill
  ms_->lfb().clear();
  (void)read(0x400080);  // L1 hit
  EXPECT_EQ(ms_->lfb().occupancy(), 0u);
}

TEST_F(MemoryDetailsTest, InvalidateSinglePageLeavesNeighbours) {
  (void)read(0x400000);
  (void)read(0x401000);
  ms_->invalidate_tlb_page(0x400000);
  EXPECT_FALSE(ms_->dtlb().contains(0x400000));
  EXPECT_TRUE(ms_->dtlb().contains(0x401000));
}

TEST_F(MemoryDetailsTest, WalkCyclesScaleWithReplayCount) {
  for (int replays : {1, 2, 4}) {
    MemConfig cfg = cfg_;
    cfg.not_present_replays = replays;
    MemorySystem ms(cfg);
    ms.set_page_table(&pt_);
    const AccessResult r = ms.access({.vaddr = 0x00dead0000ull,
                                      .type = AccessType::Read,
                                      .user_mode = true,
                                      .size = 8});
    EXPECT_EQ(r.walks, replays);
    EXPECT_EQ(r.walk_cycles % replays, 0)
        << "each replay walks the same depth at zero jitter";
  }
}

TEST_F(MemoryDetailsTest, TranslateOrThrowMatchesAccessPath) {
  EXPECT_EQ(ms_->translate_or_throw(0x400123), 0x1000123u);
  EXPECT_THROW((void)ms_->translate_or_throw(0xdead0000ull),
               std::runtime_error);
}

}  // namespace
}  // namespace whisper::mem
