// Tests for the whisper_serve stack: protocol goldens, the loopback
// round-trip for every registered attack, the concurrent machine pool, the
// fair scheduler, and the daemon's wire-level determinism contract
// (invariant 11, docs/ARCHITECTURE.md):
//
//   the response stream of a run request is a pure function of its request
//   line — byte-identical whatever the server's worker count and however
//   clients interleave.
//
// The strongest form checked here: serving a spec produces *exactly* the
// lines you would assemble by hand from runner::run()'s results — the wire
// and the library are the same computation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/attacks/registry.h"
#include "runner/machine_pool.h"
#include "runner/runner.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/transport_loopback.h"
#include "stats/json.h"

namespace whisper::serve {
namespace {

// ---------------------------------------------------------------------------
// Harness: a loopback server plus a transcript helper.

/// Send `requests` on one connection, half-close, and collect every
/// response line until the server delivers EOF (which it does only after
/// every queued response has been written — drain-then-close).
std::vector<std::string> transact(LoopbackTransport& transport,
                                  const std::vector<std::string>& requests) {
  auto client = transport.connect();
  for (const auto& r : requests) client->send(r);
  client->close_send();
  std::vector<std::string> lines;
  std::string line;
  while (client->recv(line)) lines.push_back(line);
  return lines;
}

/// Group response lines by their "id" member, preserving per-id order.
std::map<std::uint64_t, std::vector<std::string>> by_id(
    const std::vector<std::string>& lines) {
  std::map<std::uint64_t, std::vector<std::string>> out;
  for (const auto& line : lines) {
    const JsonValue doc = json_parse(line);
    const JsonValue* id = doc.get("id");
    EXPECT_NE(id, nullptr) << line;
    out[static_cast<std::uint64_t>(id->number)].push_back(line);
  }
  return out;
}

/// A run request cheap enough to appear dozens of times in one test.
std::string run_request(std::uint64_t id, const std::string& attack,
                        std::uint64_t seed, int trials,
                        const std::string& extra = "") {
  return "{\"id\":" + std::to_string(id) + ",\"verb\":\"run\",\"attack\":\"" +
         attack + "\",\"seed\":" + std::to_string(seed) +
         ",\"trials\":" + std::to_string(trials) +
         ",\"batches\":2,\"payload_bytes\":2,\"rounds\":1" + extra + "}";
}

// ---------------------------------------------------------------------------
// JSON parser.

TEST(ServeJson, ParsesScalarsObjectsAndArrays) {
  const JsonValue v = json_parse(
      R"({"a":1,"b":-2.5e2,"c":"x\ny","d":[true,false,null],"e":{"f":0}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get("a")->number, 1.0);
  EXPECT_EQ(v.get("b")->number, -250.0);
  EXPECT_EQ(v.get("c")->string, "x\ny");
  ASSERT_TRUE(v.get("d")->is_array());
  ASSERT_EQ(v.get("d")->array.size(), 3u);
  EXPECT_TRUE(v.get("d")->array[0].boolean);
  EXPECT_TRUE(v.get("d")->array[2].is_null());
  EXPECT_EQ(v.get("e")->get("f")->number, 0.0);
  EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(ServeJson, DecodesUnicodeEscapes) {
  EXPECT_EQ(json_parse(R"("Aé")").string, "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(json_parse(R"("😀")").string, "\xf0\x9f\x98\x80");
  EXPECT_THROW((void)json_parse(R"("\ud83d")"), ProtocolError);
}

TEST(ServeJson, RejectsMalformedDocuments) {
  for (const char* bad :
       {"{nope", "{\"a\":}", "[1,]", "{\"a\":1} trailing", "01", "1.",
        "+1", "\"unterminated", "{\"a\" 1}", "tru", ""}) {
    EXPECT_THROW((void)json_parse(bad), ProtocolError) << bad;
  }
}

TEST(ServeJson, DuplicateKeysKeepTheLastValue) {
  EXPECT_EQ(json_parse(R"({"a":1,"a":2})").get("a")->number, 2.0);
}

// ---------------------------------------------------------------------------
// Request schema.

TEST(ServeProtocol, ParsesARunRequestOntoTheSpec) {
  const Request req = parse_request(
      R"({"id":9,"verb":"run","attack":"md","cpu":2,"trials":5,"seed":77,)"
      R"("noise":"quiet","kpti":true,"fault_plan":"throw@1","retries":2})");
  EXPECT_EQ(req.id, 9u);
  EXPECT_EQ(req.verb, "run");
  EXPECT_EQ(req.spec.attack, "md");
  EXPECT_EQ(req.spec.model, uarch::CpuModel::CometLakeI9_10980XE);
  EXPECT_EQ(req.spec.trials, 5);
  EXPECT_EQ(req.spec.base_seed, 77u);
  EXPECT_EQ(req.spec.noise.name, "quiet");
  EXPECT_TRUE(req.spec.kernel.kpti);
  EXPECT_EQ(req.spec.fault_plan, "throw@1");
  EXPECT_EQ(req.spec.retries, 2);
}

TEST(ServeProtocol, RejectsSchemaViolations) {
  const std::pair<const char*, const char*> cases[] = {
      {R"({"verb":"ping"})", "missing numeric 'id'"},
      {R"({"id":0,"verb":"ping"})", "must be positive"},
      {R"({"id":1})", "missing 'verb'"},
      {R"({"id":1,"verb":"dance"})",
       "unknown verb 'dance' (verbs: run, ping, list, metrics, shutdown)"},
      {R"({"id":1,"verb":"run","attack":"cc","trails":3})",
       "unknown field 'trails' in run request"},
      {R"({"id":1,"verb":"ping","attack":"cc"})",
       "field 'attack' not allowed with verb 'ping'"},
      {R"({"id":1,"verb":"run","attack":7})", "field 'attack' must be a string"},
      {R"({"id":1,"verb":"run","attack":"cc","trials":1.5})",
       "field 'trials' must be an integer"},
      {R"({"id":1,"verb":"run","attack":"cc","cpu":99})",
       "field 'cpu' out of range"},
      {R"({"id":1,"verb":"run","attack":"cc","noise":"hurricane"})",
       "unknown noise preset 'hurricane'"},
  };
  for (const auto& [line, want] : cases) {
    try {
      (void)parse_request(line);
      FAIL() << "accepted: " << line;
    } catch (const ProtocolError& e) {
      EXPECT_NE(std::string(e.what()).find(want), std::string::npos)
          << e.what();
    }
  }
}

TEST(ServeProtocol, RejectsOversizedRequestLines) {
  std::string huge = R"({"id":1,"verb":"ping",)";
  huge.append(kMaxRequestBytes, ' ');
  try {
    (void)parse_request(huge);
    FAIL() << "accepted an oversized request";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("request line exceeds"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Golden transcripts: exact response bytes for the fixed verbs and the
// error paths. These strings are the wire contract — update deliberately.

TEST(ServeGolden, PingPongExactBytes) {
  LoopbackTransport transport;
  Server server(transport, {});
  server.start();
  const auto lines = transact(transport, {R"({"id":5,"verb":"ping"})"});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], R"({"id":5,"type":"pong"})");
  server.stop();
}

TEST(ServeGolden, ListNamesEveryRegisteredAttackAndDefenseInRegistryOrder) {
  LoopbackTransport transport;
  Server server(transport, {});
  server.start();
  const auto lines = transact(transport, {R"({"id":3,"verb":"list"})"});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(
      lines[0],
      R"x({"id":3,"type":"attacks","attacks":["cc","md","zbl","rsb","v1",)x"
      R"x("rewind","kaslr"],)x"
      R"x("defenses":[{"name":"kpti","description":"kernel page-table isolation: )x"
      R"x(user view keeps only the trampoline mapped (paper section 6.2)",)x"
      R"x("params":[]},{"name":"flare","description":"dummy mappings over the )x"
      R"x(unmapped kernel gaps so mapped and unmapped probes fault alike",)x"
      R"x("params":[]},{"name":"fgkaslr","description":"function-grained KASLR: )x"
      R"x(shuffle offsets inside the kernel image at boot","params":[]},)x"
      R"x({"name":"lfence","description":"compiler serialization: dispatch )x"
      R"x(stalls after every unresolved conditional branch, as if an LFENCE )x"
      R"x(followed each Jcc","params":[]},{"name":"window","description":)x"
      R"x("speculation-window narrowing: clamp how many uops may allocate past )x"
      R"x(the oldest unresolved branch/fault","params":[{"name":"depth",)x"
      R"x("default":"8","description":"max uops allocated past an unresolved )x"
      R"x(opener"}]},{"name":"retpoline","description":"retpoline-style RSB )x"
      R"x(hygiene: returns never speculate from the RSB; the front end waits )x"
      R"x(for the real target","params":[]},{"name":"flushclear","description":)x"
      R"x("flush-on-clear: every machine clear also flushes the caches and )x"
      R"x(drains the line-fill buffer","params":[{"name":"levels","default":)x"
      R"x("1","description":"cache levels flushed on each clear (1-3)"}]}]})x");
  server.stop();
}

TEST(ServeGolden, UnknownAttackKeepsTheRunnerMessageContract) {
  LoopbackTransport transport;
  Server server(transport, {});
  server.start();
  const auto lines = transact(
      transport, {R"({"id":7,"verb":"run","attack":"kalsr","trials":1})"});
  ASSERT_EQ(lines.size(), 1u);
  // The registry keys must be listed, exactly as runner::validate() words
  // it — the serve layer forwards the runner's diagnostics untouched.
  EXPECT_EQ(lines[0],
            R"x({"id":7,"type":"error","error":"runner: unknown attack )x"
            R"x('kalsr' (registered: cc, md, zbl, rsb, v1, rewind, kaslr)"})x");
  server.stop();
}

TEST(ServeGolden, MalformedJsonAnswersWithErrorIdZero) {
  LoopbackTransport transport;
  Server server(transport, {});
  server.start();
  const auto lines =
      transact(transport, {"{nope", R"({"id":4,"verb":"ping"})"});
  ASSERT_EQ(lines.size(), 2u);
  // Unattributable request: id 0. The connection survives — the next
  // request on the same connection is answered normally.
  EXPECT_NE(lines[0].find(R"("id":0,"type":"error")"), std::string::npos);
  EXPECT_NE(lines[0].find("bad JSON"), std::string::npos);
  EXPECT_EQ(lines[1], R"({"id":4,"type":"pong"})");
  server.stop();
}

TEST(ServeGolden, OversizedRequestIsRejectedNotServed) {
  LoopbackTransport transport;
  Server server(transport, {});
  server.start();
  std::string huge = R"({"id":8,"verb":"run","attack":"cc","pad":")";
  huge.append(2 * kMaxRequestBytes, 'x');
  huge += R"("})";
  const auto lines = transact(transport, {huge});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find(R"("id":0,"type":"error")"), std::string::npos);
  EXPECT_NE(lines[0].find("request line exceeds"), std::string::npos);
  server.stop();
}

TEST(ServeGolden, MetricsVerbReturnsAValidRegistryDocument) {
  LoopbackTransport transport;
  Server server(transport, {});
  server.start();
  const auto lines = transact(
      transport, {run_request(1, "cc", 7, 1), R"({"id":2,"verb":"metrics"})"});
  ASSERT_GE(lines.size(), 3u);  // trial, done, metrics
  const auto groups = by_id(lines);
  ASSERT_EQ(groups.at(2).size(), 1u);
  const std::string& m = groups.at(2)[0];
  EXPECT_TRUE(stats::json_is_valid(m)) << m;
  const JsonValue doc = json_parse(m);
  const JsonValue* metrics = doc.get("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* counters = metrics->get("counters");
  ASSERT_NE(counters, nullptr);
  // Pool and queue accounting are folded into the registry snapshot.
  EXPECT_NE(counters->get("serve.requests"), nullptr);
  EXPECT_NE(counters->get("serve.pool.created"), nullptr);
  EXPECT_NE(counters->get("serve.queue.pushed"), nullptr);
  ASSERT_NE(metrics->get("gauges"), nullptr);
  EXPECT_NE(metrics->get("gauges")->get("serve.pool.capacity"), nullptr);
  server.stop();
}

TEST(ServeGolden, ShutdownVerbAnswersByeAndWakesWaiters) {
  LoopbackTransport transport;
  Server server(transport, {});
  server.start();
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    server.wait_shutdown();
    woke = true;
  });
  auto client = transport.connect();
  client->send(R"({"id":6,"verb":"shutdown"})");
  std::string line;
  ASSERT_TRUE(client->recv(line));
  EXPECT_EQ(line, R"({"id":6,"type":"bye"})");
  waiter.join();
  EXPECT_TRUE(woke);
  server.stop();
}

// ---------------------------------------------------------------------------
// Loopback round-trip: every attack in the registry is servable.

TEST(ServeRoundTrip, EveryRegisteredAttackRunsOverTheWire) {
  LoopbackTransport transport;
  Server server(transport, {.jobs = 2, .pool_capacity = 2});
  server.start();
  std::vector<std::string> requests;
  std::uint64_t id = 1;
  for (const std::string& attack : core::attack_names())
    requests.push_back(run_request(id++, attack, 0x5eed, 1));
  const auto groups = by_id(transact(transport, requests));
  ASSERT_EQ(groups.size(), core::attack_names().size());
  for (const auto& [rid, lines] : groups) {
    ASSERT_EQ(lines.size(), 2u) << "request " << rid;  // 1 trial + done
    EXPECT_NE(lines[0].find(R"("type":"trial","index":0,"ok":true)"),
              std::string::npos)
        << lines[0];
    EXPECT_NE(lines[1].find(R"("type":"done")"), std::string::npos);
    EXPECT_NE(lines[1].find(R"("completed":1,"failed":0)"), std::string::npos)
        << lines[1];
  }
  server.stop();
}

// ---------------------------------------------------------------------------
// Invariant 11: the wire is the library. A served request's lines equal
// the lines assembled by hand from runner::run()'s result — same seeds,
// same cycles, same fault accounting, byte for byte.

TEST(ServeDeterminism, WireStreamEqualsRunnerRunByteForByte) {
  runner::RunSpec spec;
  spec.attack = "cc";
  spec.trials = 3;
  spec.base_seed = 0xf00d;
  spec.batches = 2;
  spec.payload_bytes = 2;
  spec.retries = 1;
  spec.fault_plan = "throw@1";
  const runner::RunResult reference = runner::run(spec, /*jobs=*/1);

  LoopbackTransport transport;
  Server server(transport, {.jobs = 2, .pool_capacity = 2});
  server.start();
  const auto lines = transact(
      transport, {run_request(11, "cc", 0xf00d, 3,
                              R"(,"retries":1,"fault_plan":"throw@1")")});
  server.stop();

  ASSERT_EQ(lines.size(), 4u);  // 3 trials + done
  ASSERT_EQ(reference.trials.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const runner::ScheduledTrial st{reference.trials[i],
                                    reference.outcomes[i]};
    EXPECT_EQ(lines[i], response_trial(11, i, st)) << "trial " << i;
  }
  EXPECT_EQ(lines[3], response_done(11, reference));
  // The injected fault really fired and really was retried — this is not
  // a vacuous comparison of two clean runs.
  EXPECT_EQ(reference.retried, 1u);
}

// Satellite 2: the same batch through 1 and 8 workers produces
// byte-identical per-request response streams (grouped by request id).
TEST(ServeDeterminism, WorkerCountCannotChangeResponseBytes) {
  // 4 clients × 3 requests, mixed attacks/seeds/faults, globally unique ids.
  const auto batch_for = [](std::uint64_t client) {
    std::vector<std::string> reqs;
    const std::uint64_t base = (client + 1) * 100;
    reqs.push_back(run_request(base + 0, "cc", 0xc0 + client, 2));
    reqs.push_back(run_request(base + 1, "kaslr", 0xaa + client, 1));
    reqs.push_back(run_request(base + 2, "v1", 0x51 + client, 2,
                               R"(,"retries":1,"fault_plan":"throw@0")"));
    return reqs;
  };

  const auto serve_batch = [&](int jobs) {
    LoopbackTransport transport;
    Server server(transport, {.jobs = jobs, .pool_capacity = 3});
    server.start();
    // All clients connect and send before anything is drained, so with
    // jobs=8 the requests genuinely interleave across workers.
    std::vector<std::unique_ptr<LoopbackClient>> clients;
    for (std::uint64_t c = 0; c < 4; ++c) {
      clients.push_back(transport.connect());
      for (const auto& r : batch_for(c)) clients.back()->send(r);
      clients.back()->close_send();
    }
    std::map<std::uint64_t, std::vector<std::string>> groups;
    for (auto& client : clients) {
      std::string line;
      while (client->recv(line)) {
        const auto g = by_id({line});
        for (const auto& [id, ls] : g)
          groups[id].insert(groups[id].end(), ls.begin(), ls.end());
      }
    }
    server.stop();
    return groups;
  };

  const auto one = serve_batch(1);
  const auto eight = serve_batch(8);
  ASSERT_EQ(one.size(), 12u);
  ASSERT_EQ(eight.size(), 12u);
  for (const auto& [id, lines] : one) {
    ASSERT_TRUE(eight.count(id)) << "request " << id;
    EXPECT_EQ(lines, eight.at(id)) << "request " << id;
  }
}

// ---------------------------------------------------------------------------
// Satellite 3: MachinePool semantics at unit level — no sockets.

runner::RunSpec pool_spec(uarch::CpuModel model) {
  runner::RunSpec spec;
  spec.model = model;
  spec.attack = "cc";
  return spec;
}

TEST(MachinePool, KeyedReuseServesTheCachedMachine) {
  runner::MachinePool pool(2);
  const auto spec = pool_spec(uarch::CpuModel::KabyLakeI7_7700);
  { auto lease = pool.acquire(spec, 1); }
  { auto lease = pool.acquire(spec, 2); }
  const auto s = pool.stats();
  EXPECT_EQ(s.created, 1u);
  EXPECT_EQ(s.reused, 1u);
  EXPECT_EQ(s.evicted, 0u);
}

TEST(MachinePool, DifferentKeysDoNotAlias) {
  runner::MachinePool pool(2);
  { auto a = pool.acquire(pool_spec(uarch::CpuModel::KabyLakeI7_7700), 1); }
  { auto b = pool.acquire(pool_spec(uarch::CpuModel::SkylakeI7_6700), 1); }
  const auto s = pool.stats();
  EXPECT_EQ(s.created, 2u);
  EXPECT_EQ(s.reused, 0u);
}

TEST(MachinePool, AdmissionCapBlocksUntilARelease) {
  runner::MachinePool pool(2);
  const auto spec = pool_spec(uarch::CpuModel::KabyLakeI7_7700);
  auto a = pool.acquire(spec, 1);
  auto b = pool.acquire(spec, 2);
  EXPECT_EQ(pool.stats().in_use, 2u);

  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    auto c = pool.acquire(spec, 3);
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(acquired) << "third acquire must block at capacity 2";
  a = runner::MachinePool::Lease{};  // release one slot
  blocked.join();
  EXPECT_TRUE(acquired);
  EXPECT_GE(pool.stats().waited, 1u);
}

TEST(MachinePool, EvictsLeastRecentlyReleasedIdleMachine) {
  runner::MachinePool pool(2);
  const auto a = pool_spec(uarch::CpuModel::SkylakeI7_6700);
  const auto b = pool_spec(uarch::CpuModel::KabyLakeI7_7700);
  const auto c = pool_spec(uarch::CpuModel::CometLakeI9_10980XE);
  { auto l = pool.acquire(a, 1); }  // idle: [a]
  { auto l = pool.acquire(b, 1); }  // idle: [a, b]
  { auto l = pool.acquire(c, 1); }  // full: evict a (oldest release)
  EXPECT_EQ(pool.stats().evicted, 1u);
  { auto l = pool.acquire(b, 2); }  // b survived the eviction
  EXPECT_EQ(pool.stats().reused, 1u);
  { auto l = pool.acquire(a, 2); }  // a did not: rebuilt (evicting again)
  const auto s = pool.stats();
  EXPECT_EQ(s.created, 4u);
  EXPECT_EQ(s.evicted, 2u);
}

TEST(MachinePool, QuarantinedMachineIsNeverReissued) {
  runner::MachinePool pool(2);
  const auto spec = pool_spec(uarch::CpuModel::KabyLakeI7_7700);
  {
    auto lease = pool.acquire(spec, 1);
    lease.quarantine();
    EXPECT_FALSE(lease.valid());
  }
  auto s = pool.stats();
  EXPECT_EQ(s.quarantined, 1u);
  EXPECT_EQ(s.idle, 0u) << "a quarantined machine must not return to idle";
  // The next acquire for the same key must construct fresh, not reuse.
  { auto lease = pool.acquire(spec, 2); }
  s = pool.stats();
  EXPECT_EQ(s.created, 2u);
  EXPECT_EQ(s.reused, 0u);
}

TEST(MachinePool, StatsStayMonotonicAndGaugesBounded) {
  runner::MachinePool pool(2);
  runner::MachinePoolStats prev = pool.stats();
  EXPECT_EQ(prev.capacity, 2u);
  const uarch::CpuModel models[] = {uarch::CpuModel::SkylakeI7_6700,
                                    uarch::CpuModel::KabyLakeI7_7700,
                                    uarch::CpuModel::CometLakeI9_10980XE};
  for (int round = 0; round < 6; ++round) {
    auto lease = pool.acquire(pool_spec(models[round % 3]), round);
    if (round % 4 == 3) lease.quarantine();
    const auto s = pool.stats();
    EXPECT_GE(s.created, prev.created);
    EXPECT_GE(s.reused, prev.reused);
    EXPECT_GE(s.evicted, prev.evicted);
    EXPECT_GE(s.quarantined, prev.quarantined);
    EXPECT_GE(s.waited, prev.waited);
    EXPECT_LE(s.in_use + s.idle, s.capacity);
    prev = s;
  }
}

TEST(MachinePool, ThisThreadIsPerThread) {
  runner::MachinePool* here = &runner::MachinePool::this_thread();
  EXPECT_EQ(here, &runner::MachinePool::this_thread());
  runner::MachinePool* there = nullptr;
  std::thread t([&] { there = &runner::MachinePool::this_thread(); });
  t.join();
  EXPECT_NE(here, there);
}

// ---------------------------------------------------------------------------
// FairScheduler: round-robin across clients, drain-then-stop shutdown.

TEST(FairScheduler, StarvedClientIsServedWithinOneRotation) {
  FairScheduler<int> sched;
  // Client 0 floods 10 jobs before client 1 submits a single one.
  for (int j = 0; j < 10; ++j) ASSERT_TRUE(sched.push(0, j));
  ASSERT_TRUE(sched.push(1, 100));
  std::vector<int> order;
  int job = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sched.pop(job));
    order.push_back(job);
  }
  // Rotation: c0, c1, then back to c0's backlog — the lone job waits
  // behind at most one job of the flooding client, not ten.
  EXPECT_EQ(order, (std::vector<int>{0, 100, 1, 2}));
}

TEST(FairScheduler, CloseRefusesNewJobsButDrainsQueuedOnes) {
  FairScheduler<int> sched;
  ASSERT_TRUE(sched.push(0, 1));
  ASSERT_TRUE(sched.push(0, 2));
  sched.close();
  EXPECT_FALSE(sched.push(0, 3));  // refused, not queued
  int job = 0;
  EXPECT_TRUE(sched.pop(job));
  EXPECT_EQ(job, 1);
  EXPECT_TRUE(sched.pop(job));
  EXPECT_EQ(job, 2);
  EXPECT_FALSE(sched.pop(job)) << "closed and drained: end of queue";
  const auto s = sched.stats();
  EXPECT_EQ(s.pushed, 2u);
  EXPECT_EQ(s.popped, 2u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.depth, 0u);
}

// A late run request (after stop() closed the scheduler) is answered with
// an explicit error line — refused loudly, never dropped silently. Here
// the whole server is already stopped, so we assert at the scheduler
// level plus the protocol error text used by the server path.
TEST(FairScheduler, StatsDepthTracksQueuedJobs) {
  FairScheduler<int> sched;
  sched.push(0, 1);
  sched.push(1, 2);
  sched.push(1, 3);
  EXPECT_EQ(sched.stats().depth, 3u);
  int job;
  sched.pop(job);
  EXPECT_EQ(sched.stats().depth, 2u);
}

}  // namespace
}  // namespace whisper::serve
