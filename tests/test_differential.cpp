// Differential testing: the out-of-order core must commit exactly what the
// sequential reference interpreter computes, for arbitrary programs. A
// seeded generator (tests/support/program_generator.h, shared with the
// snapshot/reset suite) produces random terminating programs; both engines
// run them; architectural registers and memory must agree.
#include <gtest/gtest.h>

#include "isa/builder.h"
#include "isa/interpreter.h"
#include "os/machine.h"
#include "stats/rng.h"
#include "support/program_generator.h"
#include "uarch/pmu.h"

namespace whisper {
namespace {

using isa::Cond;
using isa::ProgramBuilder;
using isa::Reg;
using test_support::kPool;
using test_support::ProgramGenerator;

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, CoreMatchesReferenceInterpreter) {
  ProgramGenerator gen(GetParam());
  for (int round = 0; round < 6; ++round) {
    const isa::Program prog = gen.generate(60);
    const auto init = gen.random_regs();

    // Reference execution against a flat memory image.
    isa::RefMemory ref_mem;
    const auto ref = isa::interpret(prog, init, ref_mem, 50'000);
    ASSERT_NE(ref.status, isa::InterpStatus::StepLimit);
    ASSERT_NE(ref.status, isa::InterpStatus::Faulted);

    // Pipeline execution on a fresh machine.
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    const auto run = m.run_user(prog, init, -1, 400'000);
    ASSERT_FALSE(run.cycle_limit_hit);

    for (Reg r : kPool) {
      EXPECT_EQ(run.t0().regs[static_cast<std::size_t>(r)],
                ref.regs[static_cast<std::size_t>(r)])
          << "register " << isa::to_string(r) << " diverged (seed "
          << GetParam() << " round " << round << ")\n"
          << prog.disassemble();
    }
    // Every byte the reference wrote must match the machine's memory.
    bool mem_ok = true;
    ref_mem.for_each([&](std::uint64_t addr, std::uint8_t value) {
      if (m.peek8(addr) != value) mem_ok = false;
    });
    EXPECT_TRUE(mem_ok) << "memory diverged (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DifferentialTest,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull, 55ull,
                                           89ull));

// Reset-path differential: the same programs, but run a second time on the
// same Machine after reset(). Both the first run (snapshotted machine) and
// the rerun must match the reference interpreter, and the rerun must be
// cycle-identical to the first — the snapshot/reset fast path may not leave
// any residue the pipeline can observe.
class ResetDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ResetDifferentialTest, RerunAfterResetMatchesReferenceBothTimes) {
  ProgramGenerator gen(GetParam() ^ 0x5e5e7ull);
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700,
                 .seed = GetParam() + 100});
  m.snapshot();
  for (int round = 0; round < 3; ++round) {
    const isa::Program prog = gen.generate(60);
    const auto init = gen.random_regs();

    isa::RefMemory ref_mem;
    const auto ref = isa::interpret(prog, init, ref_mem, 50'000);
    ASSERT_NE(ref.status, isa::InterpStatus::StepLimit);
    ASSERT_NE(ref.status, isa::InterpStatus::Faulted);

    const std::uint64_t seed = GetParam() + 100 + round;
    m.reset(seed);
    const auto first = m.run_user(prog, init, -1, 400'000);
    ASSERT_FALSE(first.cycle_limit_hit);
    m.reset(seed);
    const auto rerun = m.run_user(prog, init, -1, 400'000);
    ASSERT_FALSE(rerun.cycle_limit_hit);

    EXPECT_EQ(rerun.cycles(), first.cycles())
        << "reset left timing residue (seed " << GetParam() << " round "
        << round << ")";
    for (Reg r : kPool) {
      const auto idx = static_cast<std::size_t>(r);
      EXPECT_EQ(first.t0().regs[idx], ref.regs[idx])
          << "first run diverged from reference in " << isa::to_string(r)
          << " (seed " << GetParam() << " round " << round << ")\n"
          << prog.disassemble();
      EXPECT_EQ(rerun.t0().regs[idx], ref.regs[idx])
          << "rerun after reset diverged from reference in "
          << isa::to_string(r) << " (seed " << GetParam() << " round "
          << round << ")\n"
          << prog.disassemble();
    }
    bool mem_ok = true;
    ref_mem.for_each([&](std::uint64_t addr, std::uint8_t value) {
      if (m.peek8(addr) != value) mem_ok = false;
    });
    EXPECT_TRUE(mem_ok) << "memory diverged after reset rerun (seed "
                        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, ResetDifferentialTest,
                         ::testing::Values(3ull, 17ull, 29ull, 41ull));

// Fast-forward differential: the same random programs on two machines that
// differ only in the fast-forward knob. Cycle counts, architectural
// registers and the full PMU image must be identical — invariant 10's
// random-program leg (docs/ARCHITECTURE.md), covering instruction mixes no
// attack gadget exercises.
class FastForwardDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastForwardDifferentialTest, FastForwardIsCycleIdenticalToStructural) {
  ProgramGenerator gen(GetParam() ^ 0xffa57ull);
  for (int round = 0; round < 3; ++round) {
    const isa::Program prog = gen.generate(60);
    const auto init = gen.random_regs();

    os::Machine structural({.model = uarch::CpuModel::KabyLakeI7_7700,
                            .seed = GetParam() + 7});
    structural.core().set_fast_forward(false);
    const auto slow = structural.run_user(prog, init, -1, 400'000);
    ASSERT_FALSE(slow.cycle_limit_hit);

    os::Machine forwarded({.model = uarch::CpuModel::KabyLakeI7_7700,
                           .seed = GetParam() + 7});
    ASSERT_TRUE(forwarded.core().fast_forward());  // the shipping default
    const auto fast = forwarded.run_user(prog, init, -1, 400'000);
    ASSERT_FALSE(fast.cycle_limit_hit);

    EXPECT_EQ(fast.cycles(), slow.cycles())
        << "fast-forward skipped a non-inert span (seed " << GetParam()
        << " round " << round << ")\n"
        << prog.disassemble();
    for (Reg r : kPool) {
      const auto idx = static_cast<std::size_t>(r);
      EXPECT_EQ(fast.t0().regs[idx], slow.t0().regs[idx])
          << "register " << isa::to_string(r) << " diverged (seed "
          << GetParam() << " round " << round << ")\n"
          << prog.disassemble();
    }
    EXPECT_EQ(forwarded.core().pmu().snapshot(),
              structural.core().pmu().snapshot())
        << "PMU image diverged (seed " << GetParam() << " round " << round
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, FastForwardDifferentialTest,
                         ::testing::Values(3ull, 17ull, 29ull, 41ull));

// Hand-written loop programs — fixed trip counts the generator's random
// loops don't guarantee to hit.
TEST(DifferentialLoopTest, CountedLoopsAgree) {
  for (int trip : {1, 7, 63, 200}) {
    ProgramBuilder b;
    b.mov(Reg::RAX, 0).mov(Reg::RBX, 0);
    b.label("loop");
    b.add(Reg::RAX, 3);
    b.imul(Reg::RAX, Reg::RAX);  // nonlinear accumulator
    b.and_(Reg::RAX, 0xffff);
    b.add(Reg::RBX, 1);
    b.cmp(Reg::RBX, trip);
    b.jcc(Cond::NZ, "loop");
    b.halt();
    const isa::Program prog = b.build();

    isa::RefMemory ref_mem;
    const auto ref = isa::interpret(prog, {}, ref_mem);
    os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
    const auto run = m.run_user(prog, {}, -1, 1'000'000);
    EXPECT_EQ(run.t0().regs[static_cast<std::size_t>(Reg::RAX)],
              ref.regs[static_cast<std::size_t>(Reg::RAX)])
        << "trip count " << trip;
  }
}

TEST(DifferentialLoopTest, NestedCallsAgree) {
  ProgramBuilder b;
  b.mov(Reg::RAX, 1).call("f1").halt();
  b.label("f1").shl(Reg::RAX, 1).call("f2").add(Reg::RAX, 1).ret();
  b.label("f2").shl(Reg::RAX, 2).add(Reg::RAX, 5).ret();
  const isa::Program prog = b.build();

  isa::RefMemory ref_mem;
  std::array<std::uint64_t, isa::kNumRegs> init{};
  init[static_cast<std::size_t>(Reg::RSP)] = os::Machine::kStackTop;
  const auto ref = isa::interpret(prog, init, ref_mem);

  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  const auto run = m.run_user(prog, {}, -1, 100'000);
  EXPECT_EQ(run.t0().regs[static_cast<std::size_t>(Reg::RAX)],
            ref.regs[static_cast<std::size_t>(Reg::RAX)]);
}

// ---------------------------------------------------------------------------
// Fault-semantics differential: programs with occasional faulting loads.
// Nothing younger than the fault may commit; the architectural state the
// pipeline delivers to the signal handler must equal the interpreter's
// state at the fault point.
// ---------------------------------------------------------------------------

class FaultDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FaultDifferentialTest, HandlerStateMatchesInterpreterFaultState) {
  stats::Xoshiro256 rng(GetParam() ^ 0xfa17);
  for (int round = 0; round < 4; ++round) {
    // Straight-line ALU program with a faulting load at a random position
    // and a tail that must never commit.
    ProgramBuilder b;
    const int prefix = static_cast<int>(rng.next_below(20)) + 2;
    for (int i = 0; i < prefix; ++i) {
      const Reg r = kPool[rng.next_below(std::size(kPool))];
      switch (rng.next_below(3)) {
        case 0: b.add(r, static_cast<std::int64_t>(rng.next_below(99))); break;
        case 1: b.not_(r); break;
        default: b.shl(r, 1); break;
      }
    }
    b.mov(Reg::R15, 0);
    b.load(Reg::RAX, Reg::R15);  // faulting: null deref
    const int suffix = static_cast<int>(rng.next_below(10)) + 1;
    for (int i = 0; i < suffix; ++i)
      b.add(kPool[rng.next_below(std::size(kPool))], 1);  // transient only
    b.label("handler").halt();
    const isa::Program prog = b.build();
    const auto init = [&] {
      std::array<std::uint64_t, isa::kNumRegs> regs{};
      for (Reg r : kPool)
        regs[static_cast<std::size_t>(r)] = rng.next_below(1000);
      return regs;
    }();

    isa::RefMemory ref_mem;
    const auto ref =
        isa::interpret(prog, init, ref_mem, 50'000, /*fault_below=*/0x1000);
    ASSERT_EQ(ref.status, isa::InterpStatus::Faulted);
    ASSERT_EQ(ref.fault_pc, prefix + 1);

    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    const auto run = m.run_user(prog, init, prog.label("handler"), 400'000);
    ASSERT_TRUE(run.t0().halted);
    ASSERT_FALSE(run.t0().killed_by_fault);

    for (Reg r : kPool) {
      EXPECT_EQ(run.t0().regs[static_cast<std::size_t>(r)],
                ref.regs[static_cast<std::size_t>(r)])
          << "register " << isa::to_string(r)
          << " diverged at the fault boundary (seed " << GetParam()
          << " round " << round << ")\n"
          << prog.disassemble();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FaultingPrograms, FaultDifferentialTest,
                         ::testing::Values(7ull, 77ull, 777ull, 7777ull));

TEST(InterpreterTest, StatusReporting) {
  {
    ProgramBuilder b;
    b.nop().halt();
    isa::RefMemory mem;
    EXPECT_EQ(isa::interpret(b.build(), {}, mem).status,
              isa::InterpStatus::Halted);
  }
  {
    ProgramBuilder b;
    b.nop(3);  // no halt
    isa::RefMemory mem;
    EXPECT_EQ(isa::interpret(b.build(), {}, mem).status,
              isa::InterpStatus::RanOffEnd);
  }
  {
    ProgramBuilder b;
    b.label("x").jmp("x");
    isa::RefMemory mem;
    EXPECT_EQ(isa::interpret(b.build(), {}, mem, 100).status,
              isa::InterpStatus::StepLimit);
  }
  {
    ProgramBuilder b;
    b.mov(Reg::RCX, 0x10).load(Reg::RAX, Reg::RCX).halt();
    isa::RefMemory mem;
    const auto r = isa::interpret(b.build(), {}, mem, 100, /*fault_below=*/
                                  0x1000);
    EXPECT_EQ(r.status, isa::InterpStatus::Faulted);
    EXPECT_EQ(r.fault_addr, 0x10u);
    EXPECT_EQ(r.fault_pc, 1);
  }
}

}  // namespace
}  // namespace whisper
