// Differential testing: the out-of-order core must commit exactly what the
// sequential reference interpreter computes, for arbitrary programs. A
// seeded generator produces random (terminating) programs; both engines run
// them; architectural registers and memory must agree.
#include <gtest/gtest.h>

#include "isa/builder.h"
#include "isa/interpreter.h"
#include "os/machine.h"
#include "stats/rng.h"

namespace whisper {
namespace {

using isa::Cond;
using isa::ProgramBuilder;
using isa::Reg;

// Registers the generator plays with (avoids RSP, which the Machine
// initialises, and R8/R9, reserved for rdtsc in other tests).
constexpr Reg kPool[] = {Reg::RAX, Reg::RBX, Reg::RCX, Reg::RDX,
                         Reg::RSI, Reg::RDI, Reg::R10, Reg::R11,
                         Reg::R12, Reg::R13};

class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  /// Generate a terminating program: straight-line blocks with forward
  /// branches, bounded counted backward loops (R15 is the loop counter),
  /// TSX begin/end pairs, cache-line flushes, and memory traffic confined
  /// to the data window. Control-flow units are emitted atomically, so
  /// forward branches always land on unit boundaries — never inside a loop
  /// body or a TSX region — and every program halts.
  isa::Program generate(int length) {
    ProgramBuilder b;
    int label_id = 0;
    std::vector<std::string> pending;  // forward labels not yet placed

    // Pin the memory base so loads/stores stay in the mapped data region.
    b.mov(Reg::R14, static_cast<std::int64_t>(os::Machine::kDataBase));

    for (int i = 0; i < length; ++i) {
      // Place a pending forward label with some probability.
      if (!pending.empty() && rng_.next_bool(0.35)) {
        b.label(pending.back());
        pending.pop_back();
      }
      emit_random(b, pending, label_id);
    }
    // Close all remaining forward labels, then stop.
    while (!pending.empty()) {
      b.label(pending.back());
      pending.pop_back();
    }
    b.halt();
    return b.build();
  }

  std::array<std::uint64_t, isa::kNumRegs> random_regs() {
    std::array<std::uint64_t, isa::kNumRegs> regs{};
    for (Reg r : kPool)
      regs[static_cast<std::size_t>(r)] = rng_.next();
    return regs;
  }

 private:
  Reg pick() {
    return kPool[rng_.next_below(std::size(kPool))];
  }
  std::int64_t small_imm() {
    return static_cast<std::int64_t>(rng_.next_in(-128, 127));
  }
  /// Offset within the mapped data region (R14-relative, 8-byte aligned).
  std::int64_t mem_disp() {
    return static_cast<std::int64_t>(rng_.next_below(0x1000)) * 8;
  }

  /// A short run of flag-safe ALU ops (loop/TSX bodies — nothing that can
  /// fault or touch R14/R15).
  void emit_alu_body(ProgramBuilder& b) {
    const int n = static_cast<int>(rng_.next_below(3)) + 1;
    for (int i = 0; i < n; ++i) {
      switch (rng_.next_below(4)) {
        case 0: b.add(pick(), small_imm()); break;
        case 1: b.xor_(pick(), pick()); break;
        case 2: b.not_(pick()); break;
        default: b.shl(pick(), static_cast<std::int64_t>(rng_.next_below(4)));
                 break;
      }
    }
  }

  void emit_random(ProgramBuilder& b, std::vector<std::string>& pending,
                   int& label_id) {
    switch (rng_.next_below(21)) {
      case 0: b.mov(pick(), small_imm()); break;
      case 1: b.mov(pick(), pick()); break;
      case 2: b.add(pick(), small_imm()); break;
      case 3: b.add(pick(), pick()); break;
      case 4: b.sub(pick(), pick()); break;
      case 5: b.xor_(pick(), pick()); break;
      case 6: b.and_(pick(), small_imm()); break;
      case 7: b.shl(pick(), static_cast<std::int64_t>(rng_.next_below(8)));
              break;
      case 8: b.imul(pick(), pick()); break;
      case 9: b.neg(pick()); break;
      case 10: b.not_(pick()); break;
      case 11: b.cmp(pick(), pick()); break;
      case 12: {  // cmov after a fresh cmp so flags are deterministic
        b.cmp(pick(), small_imm());
        b.cmov(static_cast<Cond>(rng_.next_below(8)), pick(), pick());
        break;
      }
      case 13: b.store(Reg::R14, pick(), mem_disp()); break;
      case 14: b.load(pick(), Reg::R14, mem_disp()); break;
      case 15: b.store_byte(Reg::R14, pick(), mem_disp()); break;
      case 16: b.load_byte(pick(), Reg::R14, mem_disp()); break;
      case 17: {  // forward conditional branch
        b.cmp(pick(), small_imm());
        std::string l = "L" + std::to_string(label_id++);
        b.jcc(static_cast<Cond>(rng_.next_below(8)), l);
        pending.push_back(std::move(l));
        break;
      }
      case 18: {  // counted backward loop: R15 counts 0..trip, always taken
                  // trip-1 times then falls through — bounded by
                  // construction, exercising BPU backward prediction and
                  // loop-carried flags in both engines
        const std::int64_t trip =
            static_cast<std::int64_t>(rng_.next_below(7)) + 1;
        const std::string top = "B" + std::to_string(label_id++);
        b.mov(Reg::R15, 0);
        b.label(top);
        emit_alu_body(b);
        b.add(Reg::R15, 1);
        b.cmp(Reg::R15, trip);
        b.jcc(Cond::NZ, top);
        break;
      }
      case 19: {  // TSX region: begin/end pair around a flag-safe body; no
                  // fault can occur here, so the abort path never runs and
                  // both engines must agree on the committed body
        const std::string abort_to = "T" + std::to_string(label_id++);
        b.tsx_begin(abort_to);
        emit_alu_body(b);
        b.tsx_end();
        b.label(abort_to);
        break;
      }
      case 20: b.clflush(Reg::R14, mem_disp()); break;
    }
  }

  stats::Xoshiro256 rng_;
};

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, CoreMatchesReferenceInterpreter) {
  ProgramGenerator gen(GetParam());
  for (int round = 0; round < 6; ++round) {
    const isa::Program prog = gen.generate(60);
    const auto init = gen.random_regs();

    // Reference execution against a flat memory image.
    isa::RefMemory ref_mem;
    const auto ref = isa::interpret(prog, init, ref_mem, 50'000);
    ASSERT_NE(ref.status, isa::InterpStatus::StepLimit);
    ASSERT_NE(ref.status, isa::InterpStatus::Faulted);

    // Pipeline execution on a fresh machine.
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    const auto run = m.run_user(prog, init, -1, 400'000);
    ASSERT_FALSE(run.cycle_limit_hit);

    for (Reg r : kPool) {
      EXPECT_EQ(run.t0().regs[static_cast<std::size_t>(r)],
                ref.regs[static_cast<std::size_t>(r)])
          << "register " << isa::to_string(r) << " diverged (seed "
          << GetParam() << " round " << round << ")\n"
          << prog.disassemble();
    }
    // Every byte the reference wrote must match the machine's memory.
    bool mem_ok = true;
    ref_mem.for_each([&](std::uint64_t addr, std::uint8_t value) {
      if (m.peek8(addr) != value) mem_ok = false;
    });
    EXPECT_TRUE(mem_ok) << "memory diverged (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DifferentialTest,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull, 55ull,
                                           89ull));

// Hand-written loop programs — fixed trip counts the generator's random
// loops don't guarantee to hit.
TEST(DifferentialLoopTest, CountedLoopsAgree) {
  for (int trip : {1, 7, 63, 200}) {
    ProgramBuilder b;
    b.mov(Reg::RAX, 0).mov(Reg::RBX, 0);
    b.label("loop");
    b.add(Reg::RAX, 3);
    b.imul(Reg::RAX, Reg::RAX);  // nonlinear accumulator
    b.and_(Reg::RAX, 0xffff);
    b.add(Reg::RBX, 1);
    b.cmp(Reg::RBX, trip);
    b.jcc(Cond::NZ, "loop");
    b.halt();
    const isa::Program prog = b.build();

    isa::RefMemory ref_mem;
    const auto ref = isa::interpret(prog, {}, ref_mem);
    os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
    const auto run = m.run_user(prog, {}, -1, 1'000'000);
    EXPECT_EQ(run.t0().regs[static_cast<std::size_t>(Reg::RAX)],
              ref.regs[static_cast<std::size_t>(Reg::RAX)])
        << "trip count " << trip;
  }
}

TEST(DifferentialLoopTest, NestedCallsAgree) {
  ProgramBuilder b;
  b.mov(Reg::RAX, 1).call("f1").halt();
  b.label("f1").shl(Reg::RAX, 1).call("f2").add(Reg::RAX, 1).ret();
  b.label("f2").shl(Reg::RAX, 2).add(Reg::RAX, 5).ret();
  const isa::Program prog = b.build();

  isa::RefMemory ref_mem;
  std::array<std::uint64_t, isa::kNumRegs> init{};
  init[static_cast<std::size_t>(Reg::RSP)] = os::Machine::kStackTop;
  const auto ref = isa::interpret(prog, init, ref_mem);

  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  const auto run = m.run_user(prog, {}, -1, 100'000);
  EXPECT_EQ(run.t0().regs[static_cast<std::size_t>(Reg::RAX)],
            ref.regs[static_cast<std::size_t>(Reg::RAX)]);
}

// ---------------------------------------------------------------------------
// Fault-semantics differential: programs with occasional faulting loads.
// Nothing younger than the fault may commit; the architectural state the
// pipeline delivers to the signal handler must equal the interpreter's
// state at the fault point.
// ---------------------------------------------------------------------------

class FaultDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FaultDifferentialTest, HandlerStateMatchesInterpreterFaultState) {
  stats::Xoshiro256 rng(GetParam() ^ 0xfa17);
  for (int round = 0; round < 4; ++round) {
    // Straight-line ALU program with a faulting load at a random position
    // and a tail that must never commit.
    ProgramBuilder b;
    const int prefix = static_cast<int>(rng.next_below(20)) + 2;
    for (int i = 0; i < prefix; ++i) {
      const Reg r = kPool[rng.next_below(std::size(kPool))];
      switch (rng.next_below(3)) {
        case 0: b.add(r, static_cast<std::int64_t>(rng.next_below(99))); break;
        case 1: b.not_(r); break;
        default: b.shl(r, 1); break;
      }
    }
    b.mov(Reg::R15, 0);
    b.load(Reg::RAX, Reg::R15);  // faulting: null deref
    const int suffix = static_cast<int>(rng.next_below(10)) + 1;
    for (int i = 0; i < suffix; ++i)
      b.add(kPool[rng.next_below(std::size(kPool))], 1);  // transient only
    b.label("handler").halt();
    const isa::Program prog = b.build();
    const auto init = [&] {
      std::array<std::uint64_t, isa::kNumRegs> regs{};
      for (Reg r : kPool)
        regs[static_cast<std::size_t>(r)] = rng.next_below(1000);
      return regs;
    }();

    isa::RefMemory ref_mem;
    const auto ref =
        isa::interpret(prog, init, ref_mem, 50'000, /*fault_below=*/0x1000);
    ASSERT_EQ(ref.status, isa::InterpStatus::Faulted);
    ASSERT_EQ(ref.fault_pc, prefix + 1);

    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    const auto run = m.run_user(prog, init, prog.label("handler"), 400'000);
    ASSERT_TRUE(run.t0().halted);
    ASSERT_FALSE(run.t0().killed_by_fault);

    for (Reg r : kPool) {
      EXPECT_EQ(run.t0().regs[static_cast<std::size_t>(r)],
                ref.regs[static_cast<std::size_t>(r)])
          << "register " << isa::to_string(r)
          << " diverged at the fault boundary (seed " << GetParam()
          << " round " << round << ")\n"
          << prog.disassemble();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FaultingPrograms, FaultDifferentialTest,
                         ::testing::Values(7ull, 77ull, 777ull, 7777ull));

TEST(InterpreterTest, StatusReporting) {
  {
    ProgramBuilder b;
    b.nop().halt();
    isa::RefMemory mem;
    EXPECT_EQ(isa::interpret(b.build(), {}, mem).status,
              isa::InterpStatus::Halted);
  }
  {
    ProgramBuilder b;
    b.nop(3);  // no halt
    isa::RefMemory mem;
    EXPECT_EQ(isa::interpret(b.build(), {}, mem).status,
              isa::InterpStatus::RanOffEnd);
  }
  {
    ProgramBuilder b;
    b.label("x").jmp("x");
    isa::RefMemory mem;
    EXPECT_EQ(isa::interpret(b.build(), {}, mem, 100).status,
              isa::InterpStatus::StepLimit);
  }
  {
    ProgramBuilder b;
    b.mov(Reg::RCX, 0x10).load(Reg::RAX, Reg::RCX).halt();
    isa::RefMemory mem;
    const auto r = isa::interpret(b.build(), {}, mem, 100, /*fault_below=*/
                                  0x1000);
    EXPECT_EQ(r.status, isa::InterpStatus::Faulted);
    EXPECT_EQ(r.fault_addr, 0x10u);
    EXPECT_EQ(r.fault_pc, 1);
  }
}

}  // namespace
}  // namespace whisper
