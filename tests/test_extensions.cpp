// Tests for the extension modules: TET-Spectre-V1, the branchless (CMOV)
// mitigation, the PMU attack detector, and the repetition-coded SMT
// channel. Plus unit tests for the new ISA instructions they rely on.
#include <gtest/gtest.h>

#include "baseline/flush_reload.h"
#include "core/attacks/meltdown.h"
#include "core/attacks/smt_channel.h"
#include "core/attacks/spectre_rsb.h"
#include "core/attacks/spectre_v1.h"
#include "core/detector.h"
#include "core/gadgets.h"
#include "isa/builder.h"
#include "os/machine.h"

namespace whisper {
namespace {

using isa::Cond;
using isa::ProgramBuilder;
using isa::Reg;

// --- new ISA instructions ----------------------------------------------------

class NewIsaTest : public ::testing::Test {
 protected:
  NewIsaTest() : m_({.model = uarch::CpuModel::KabyLakeI7_7700}) {}
  std::uint64_t reg(const uarch::RunResult& r, Reg rr) {
    return r.t0().regs[static_cast<std::size_t>(rr)];
  }
  os::Machine m_;
};

TEST_F(NewIsaTest, ImulNegNotLea) {
  ProgramBuilder b;
  b.mov(Reg::RAX, 6)
      .mov(Reg::RBX, 7)
      .imul(Reg::RAX, Reg::RBX)  // 42
      .mov(Reg::RCX, 5)
      .neg(Reg::RCX)             // -5
      .mov(Reg::RDX, 0)
      .not_(Reg::RDX)            // ~0
      .mov(Reg::RSI, 0x1000)
      .lea(Reg::RDI, Reg::RSI, 0x234)  // 0x1234
      .halt();
  const auto r = m_.run_user(b.build());
  EXPECT_EQ(reg(r, Reg::RAX), 42u);
  EXPECT_EQ(reg(r, Reg::RCX), static_cast<std::uint64_t>(-5));
  EXPECT_EQ(reg(r, Reg::RDX), ~0ull);
  EXPECT_EQ(reg(r, Reg::RDI), 0x1234u);
}

TEST_F(NewIsaTest, CmovSelectsOnCondition) {
  ProgramBuilder b;
  b.mov(Reg::RAX, 1)
      .cmp(Reg::RAX, 1)            // ZF=1
      .mov(Reg::RBX, 10)
      .mov(Reg::RCX, 20)
      .cmov(Cond::Z, Reg::RBX, Reg::RCX)   // taken: RBX <- 20
      .mov(Reg::RDX, 30)
      .mov(Reg::RSI, 40)
      .cmov(Cond::NZ, Reg::RDX, Reg::RSI)  // not taken: RDX stays 30
      .halt();
  const auto r = m_.run_user(b.build());
  EXPECT_EQ(reg(r, Reg::RBX), 20u);
  EXPECT_EQ(reg(r, Reg::RDX), 30u);
}

TEST_F(NewIsaTest, CmovNeverMispredicts) {
  const auto before =
      m_.core().pmu().value(uarch::PmuEvent::BR_MISP_EXEC_ALL_BRANCHES);
  ProgramBuilder b;
  b.mov(Reg::RAX, 1).mov(Reg::RBX, 0);
  for (int i = 0; i < 32; ++i) {
    b.cmp(Reg::RAX, i % 2);  // alternating condition
    b.cmov(Cond::Z, Reg::RBX, Reg::RAX);
  }
  b.halt();
  (void)m_.run_user(b.build());
  EXPECT_EQ(m_.core().pmu().value(uarch::PmuEvent::BR_MISP_EXEC_ALL_BRANCHES),
            before);
}

TEST_F(NewIsaTest, RdtscpOrdersAfterOlderWork) {
  // rdtscp must not execute before an older slow load completes.
  m_.memsys().clflush(os::Machine::kDataBase);
  ProgramBuilder b;
  b.mov(Reg::RCX, static_cast<std::int64_t>(os::Machine::kDataBase))
      .rdtsc(Reg::R8)
      .lfence()
      .load(Reg::RAX, Reg::RCX)  // DRAM
      .rdtscp(Reg::R9)           // waits for the load without an lfence
      .halt();
  const auto r = m_.run_user(b.build());
  ASSERT_EQ(r.t0().tsc.size(), 2u);
  EXPECT_GT(r.t0().tsc[1] - r.t0().tsc[0],
            static_cast<std::uint64_t>(m_.config().mem.dram_latency / 2));
}

// --- branchless mitigation ----------------------------------------------------

TEST(BranchlessMitigation, CmovSilencesTheTetChannel) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  m.poke8(os::Machine::kSharedBase, 'S');
  const auto g =
      core::make_tet_gadget_branchless(core::preferred_window(m.config()));

  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(Reg::RCX)] = core::kNullProbeAddress;
  regs[static_cast<std::size_t>(Reg::RDX)] = os::Machine::kSharedBase;

  double match = 0, mismatch = 0;
  for (int i = 0; i < 24; ++i) {
    regs[static_cast<std::size_t>(Reg::RBX)] = 'S';
    match += static_cast<double>(core::run_tote(m, g, regs));
    regs[static_cast<std::size_t>(Reg::RBX)] = 'T';
    mismatch += static_cast<double>(core::run_tote(m, g, regs));
  }
  // With CMOV there is no misprediction, hence no ToTE separation beyond
  // jitter.
  EXPECT_LT(std::abs(match - mismatch) / 24.0, 4.0)
      << "branchless gadget must not leak through ToTE";
}

// --- TET-Spectre-V1 -----------------------------------------------------------

TEST(TetSpectreV1Attack, LeaksOutOfBoundsSecret) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  core::TetSpectreV1 atk(m);
  const std::vector<std::uint8_t> secret = {'V', '1', '!'};
  const std::uint64_t secret_addr = core::TetSpectreV1::kArrayBase + 0x80;
  m.poke_bytes(secret_addr, secret);
  EXPECT_EQ(atk.leak(secret_addr, secret.size()), secret);
}

TEST(TetSpectreV1Attack, WorksOnMeltdownFixedSilicon) {
  // V1 is a same-address-space attack: the Comet Lake fixes don't help.
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
  core::TetSpectreV1 atk(m);
  const std::vector<std::uint8_t> secret = {0xc3};
  const std::uint64_t secret_addr = core::TetSpectreV1::kArrayBase + 0x40;
  m.poke_bytes(secret_addr, secret);
  EXPECT_EQ(atk.leak(secret_addr, 1), secret);
}

TEST(TetSpectreV1Attack, LeaksAcrossPageBoundary) {
  // The speculative access is not limited to the array's page.
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  core::TetSpectreV1 atk(m);
  const std::uint64_t secret_addr =
      core::TetSpectreV1::kArrayBase + 0x1040;  // next page
  m.poke8(secret_addr, 0x5c);
  EXPECT_EQ(atk.leak_byte(secret_addr), 0x5c);
}

// --- PMU detector --------------------------------------------------------------

TEST(PmuDetectorTest, FlagsFlushReloadButNotTet) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  const auto secret = std::vector<std::uint8_t>{'x', 'y'};
  const std::uint64_t kaddr = m.plant_kernel_secret(secret);
  core::PmuDetector detector;

  // Window 1: classic Meltdown-F+R.
  {
    const auto before = m.core().pmu().snapshot();
    baseline::MeltdownFlushReload atk(m);
    (void)atk.leak(kaddr, secret.size());
    const auto delta = uarch::pmu_delta(before, m.core().pmu().snapshot());
    const auto rep = detector.analyze(delta);
    EXPECT_TRUE(rep.cache_attack_suspected)
        << "dram/l1=" << rep.dram_per_l1_hit;
  }
  // Window 2: TET-MD on the same machine.
  {
    const auto before = m.core().pmu().snapshot();
    core::TetMeltdown atk(m, {{.batches = 3}});
    (void)atk.leak(kaddr, secret.size());
    const auto delta = uarch::pmu_delta(before, m.core().pmu().snapshot());
    const auto rep = detector.analyze(delta);
    EXPECT_FALSE(rep.cache_attack_suspected)
        << "dram/l1=" << rep.dram_per_l1_hit;
    // ...though a clear-rate monitor would still notice the fault storm:
    EXPECT_TRUE(rep.clear_storm_suspected);
  }
  // Window 3: benign workload — neither detector fires.
  {
    const auto before = m.core().pmu().snapshot();
    isa::ProgramBuilder b;
    b.mov(Reg::RAX, 0).mov(Reg::RBX, 1);
    b.label("l").add(Reg::RAX, Reg::RBX).add(Reg::RBX, 1).cmp(Reg::RBX, 500)
        .jcc(Cond::NZ, "l").halt();
    (void)m.run_user(b.build());
    const auto delta = uarch::pmu_delta(before, m.core().pmu().snapshot());
    const auto rep = detector.analyze(delta);
    EXPECT_FALSE(rep.cache_attack_suspected);
    EXPECT_FALSE(rep.clear_storm_suspected);
  }
}

TEST(PmuDetectorTest, TetRsbEvadesBothDetectors) {
  // TET-RSB raises no fault and touches no probe array: fully stealthy
  // against both modelled monitors.
  os::Machine m({.model = uarch::CpuModel::RaptorLakeI9_13900K});
  const std::vector<std::uint8_t> secret = {'q'};
  m.poke_bytes(os::Machine::kDataBase + 0x1000, secret);

  const auto before = m.core().pmu().snapshot();
  core::TetSpectreRsb atk(m);
  EXPECT_EQ(atk.leak(os::Machine::kDataBase + 0x1000, 1), secret);
  const auto delta = uarch::pmu_delta(before, m.core().pmu().snapshot());
  const auto rep = core::PmuDetector().analyze(delta);
  EXPECT_FALSE(rep.cache_attack_suspected);
  EXPECT_FALSE(rep.clear_storm_suspected);
}

// --- repetition-coded SMT channel ----------------------------------------------

TEST(SmtRepetitionTest, MajorityVoteRecoversAccuracy) {
  std::vector<std::uint8_t> payload;
  stats::Xoshiro256 rng(0x5e9);
  for (int i = 0; i < 48; ++i)
    payload.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  auto run = [&](int repetition) {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    core::SmtCovertChannel ch(m, {.spy_iters = 12,
                                  .calibration_bits = 16,
                                  .start_skew_max = 60,
                                  .repetition = repetition});
    return ch.transmit(payload);
  };
  const auto noisy = run(1);
  const auto coded = run(9);
  EXPECT_GT(noisy.bit_error_rate, 0.05) << "skewed channel should be noisy";
  EXPECT_LT(coded.bit_error_rate, noisy.bit_error_rate * 0.6)
      << "repetition coding should recover accuracy";
  EXPECT_LT(coded.bytes_per_second, noisy.bytes_per_second);
}

}  // namespace
}  // namespace whisper
