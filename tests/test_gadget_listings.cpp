// Listing-correspondence tests: the generated gadget programs must contain
// the paper's instruction sequences (Fig. 1a, Listing 1, Listing 2) — a
// structural check that the translations stay faithful as the builders
// evolve.
#include <gtest/gtest.h>

#include "core/gadgets.h"

namespace whisper::core {
namespace {

using isa::Opcode;

int count_op(const isa::Program& p, Opcode op) {
  int n = 0;
  for (const auto& in : p.code())
    if (in.op == op) ++n;
  return n;
}

/// Index of the first instruction with opcode `op`, or -1.
int first_op(const isa::Program& p, Opcode op) {
  for (std::size_t i = 0; i < p.size(); ++i)
    if (p.at(i).op == op) return static_cast<int>(i);
  return -1;
}

TEST(GadgetListings, Fig1aShape) {
  const GadgetProgram g = make_tet_gadget(
      {.window = WindowKind::Tsx, .source = SecretSource::SharedMemory});
  const auto& p = g.prog;
  // rdtsc pair around the block.
  EXPECT_EQ(count_op(p, Opcode::Rdtsc), 2);
  // transient_begin / transient_end as a TSX transaction (Fig. 1a lines 1/4).
  EXPECT_EQ(count_op(p, Opcode::TsxBegin), 1);
  EXPECT_EQ(count_op(p, Opcode::TsxEnd), 1);
  // The faulting load precedes the comparison and the Jcc (lines 2-3).
  const int fault_load = first_op(p, Opcode::LoadByte);
  const int cmp = first_op(p, Opcode::CmpRR);
  const int jcc = first_op(p, Opcode::Jcc);
  ASSERT_GE(fault_load, 0);
  ASSERT_GE(cmp, 0);
  ASSERT_GE(jcc, 0);
  EXPECT_LT(fault_load, cmp);
  EXPECT_LT(cmp, jcc);
  // Signal-window variant swaps TSX for a fence.
  const GadgetProgram sig = make_tet_gadget(
      {.window = WindowKind::Signal, .source = SecretSource::SharedMemory});
  EXPECT_EQ(count_op(sig.prog, Opcode::TsxBegin), 0);
  EXPECT_GE(sig.signal_handler, 0);
}

TEST(GadgetListings, Listing1RsbShape) {
  const GadgetProgram g = make_rsb_gadget();
  const auto& p = g.prog;
  // call 1f (line 4)
  EXPECT_EQ(count_op(p, Opcode::Call), 1);
  // movabs $2f / mov to (%rsp) / clflush (%rsp) / retq (lines 8-11), in order.
  const int call = first_op(p, Opcode::Call);
  const int store = first_op(p, Opcode::Store);
  const int clflush = first_op(p, Opcode::Clflush);
  const int ret = first_op(p, Opcode::Ret);
  ASSERT_GE(store, 0);
  ASSERT_GE(clflush, 0);
  ASSERT_GE(ret, 0);
  EXPECT_LT(store, clflush);
  EXPECT_LT(clflush, ret);
  // The speculated return site (line 5) sits right after the call and
  // carries the secret-dependent compare + Jcc.
  EXPECT_EQ(p.at(static_cast<std::size_t>(call) + 1).op, Opcode::LoadByte);
  EXPECT_EQ(count_op(p, Opcode::Jcc), 1);
  // The overwritten return address is materialised as an immediate whose
  // value is the landing label (the movabs of line 8).
  bool found_mov_label = false;
  for (const auto& in : p.code())
    if (in.op == Opcode::MovRI && in.imm == p.label("landing"))
      found_mov_label = true;
  EXPECT_TRUE(found_mov_label);
}

TEST(GadgetListings, Listing2KaslrShape) {
  const GadgetProgram g = make_kaslr_gadget(WindowKind::Tsx);
  const auto& p = g.prog;
  // mfence lead-in (Listing 2 line 1).
  EXPECT_EQ(p.at(0).op, Opcode::Mfence);
  // The probe access (line 2) is a 64-bit load from RCX.
  const int probe = first_op(p, Opcode::Load);
  ASSERT_GE(probe, 0);
  EXPECT_EQ(p.at(static_cast<std::size_t>(probe)).base, isa::Reg::RCX);
  // The attacker-driven jz (line 4) with both landing pads ("1:"/"2:").
  EXPECT_EQ(count_op(p, Opcode::Jcc), 1);
  EXPECT_TRUE(p.has_label("khit"));
  EXPECT_TRUE(p.has_label("kjoin"));
}

TEST(GadgetListings, BranchlessVariantHasNoConditionalBranch) {
  const GadgetProgram g = make_tet_gadget_branchless(WindowKind::Tsx);
  EXPECT_EQ(count_op(g.prog, Opcode::Jcc), 0);
  EXPECT_EQ(count_op(g.prog, Opcode::Cmov), 1);
}

TEST(GadgetListings, SpectreV1ShapeHasBoundsCheckBeforeAccess) {
  const GadgetProgram g = make_spectre_v1_gadget();
  const auto& p = g.prog;
  const int bound_load = first_op(p, Opcode::Load);   // array_length
  const int jcc = first_op(p, Opcode::Jcc);           // bounds check
  const int access = first_op(p, Opcode::LoadByte);   // the OOB access
  ASSERT_GE(bound_load, 0);
  ASSERT_GE(jcc, 0);
  ASSERT_GE(access, 0);
  EXPECT_LT(bound_load, jcc);
  EXPECT_LT(jcc, access) << "the secret access must be control-dependent "
                            "on the bounds check";
  EXPECT_EQ(count_op(p, Opcode::Clflush), 1);  // the flushed bound
}

TEST(GadgetListings, EveryGadgetEndsInHaltAndValidates) {
  const GadgetProgram gadgets[] = {
      make_tet_gadget({}),
      make_tet_gadget_branchless(WindowKind::Signal),
      make_rsb_gadget(),
      make_kaslr_gadget(WindowKind::Signal),
      make_spectre_v1_gadget(),
      make_prefetch_probe(),
      make_timed_load(),
      make_meltdown_fr_gadget(WindowKind::Tsx),
      make_smt_trojan(true),
      make_smt_trojan(false),
  };
  for (const auto& g : gadgets) {
    EXPECT_NO_THROW(g.prog.validate());
    EXPECT_EQ(g.prog.at(g.prog.size() - 1).op, Opcode::Halt);
    EXPECT_GE(g.signal_handler, 0);
  }
}

}  // namespace
}  // namespace whisper::core
