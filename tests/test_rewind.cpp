// SpectreRewind and the divider occupancy model underneath it.
//
// The channel is an execution-unit residue: a transient FDIV keeps the
// single non-pipelined divider busy after its squash, so the suite pins
// (1) the substrate — back-to-back divides serialize by div_latency,
// pipelined ops don't, early-exit divisors free the divider after
// div_fast_latency, and a machine clear or reset drains the occupancy —
// and (2) the attack built on it: `rewind` decodes noise-off and quiet
// payloads at zero byte errors and round-trips through the registry.
// Cross-attack byte identity (invariants 8/10/11) lives in the shared
// suites, which iterate core::attack_registry() and so cover `rewind`
// without being named here.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/attacks/registry.h"
#include "core/attacks/rewind.h"
#include "core/gadgets.h"
#include "isa/builder.h"
#include "noise/noise.h"
#include "obs/event_log.h"
#include "os/machine.h"
#include "uarch/trace.h"

namespace whisper {
namespace {

using isa::Opcode;
using isa::ProgramBuilder;
using isa::Reg;

os::MachineOptions vulnerable() {
  return {.model = uarch::CpuModel::KabyLakeI7_7700};
}

/// Issue cycles of every retired-or-squashed `op` in a traced run.
std::vector<std::uint64_t> issue_cycles(os::Machine& m,
                                        const isa::Program& prog, Opcode op,
                                        int signal_handler = -1) {
  obs::EventLog log;
  m.core().set_trace(&log);
  (void)m.run_user(prog, {}, signal_handler);
  m.core().set_trace(nullptr);
  std::vector<std::uint64_t> out;
  for (const uarch::TraceRecord& r : log.records())
    if (r.op == op && r.event == uarch::TraceEvent::Issue)
      out.push_back(r.cycle);
  return out;
}

// ---------------------------------------------------------------------------
// Divider occupancy: the substrate
// ---------------------------------------------------------------------------

TEST(DividerOccupancy, BackToBackDividesSerialize) {
  // Two divides with disjoint registers: no data dependence, so only the
  // busy-until latch can keep them apart.
  ProgramBuilder b;
  b.mov(Reg::RAX, 0x7fffffffll).mov(Reg::RBX, 7);
  b.mov(Reg::RCX, 0x7ffffff1ll).mov(Reg::RDX, 9);
  b.fdiv(Reg::RAX, Reg::RBX);
  b.fdiv(Reg::RCX, Reg::RDX);
  b.halt();

  os::Machine m(vulnerable());
  const auto div_issues = issue_cycles(m, b.build(), Opcode::FdivRR);
  ASSERT_EQ(div_issues.size(), 2u);
  EXPECT_GE(div_issues[1] - div_issues[0],
            static_cast<std::uint64_t>(m.config().div_latency))
      << "independent divides overlapped on the single divider";
}

TEST(DividerOccupancy, PipelinedOpsDoNotSerialize) {
  // The same shape with multiplies: imul is pipelined, so both issue the
  // same cycle — the latch is specific to the divide port.
  ProgramBuilder b;
  b.mov(Reg::RAX, 0x7fffffffll).mov(Reg::RBX, 7);
  b.mov(Reg::RCX, 0x7ffffff1ll).mov(Reg::RDX, 9);
  b.imul(Reg::RAX, Reg::RBX);
  b.imul(Reg::RCX, Reg::RDX);
  b.halt();

  os::Machine m(vulnerable());
  const auto mul_issues = issue_cycles(m, b.build(), Opcode::ImulRR);
  ASSERT_EQ(mul_issues.size(), 2u);
  EXPECT_EQ(mul_issues[0], mul_issues[1]);
}

TEST(DividerOccupancy, EarlyExitDivisorFreesTheDividerSooner) {
  // Divisor 1 takes the early-exit path: the second divide may issue after
  // div_fast_latency instead of the full div_latency.
  ProgramBuilder b;
  b.mov(Reg::RAX, 0x7fffffffll).mov(Reg::RBX, 1);
  b.mov(Reg::RCX, 0x7ffffff1ll).mov(Reg::RDX, 9);
  b.fdiv(Reg::RAX, Reg::RBX);
  b.fdiv(Reg::RCX, Reg::RDX);
  b.halt();

  os::Machine m(vulnerable());
  const auto div_issues = issue_cycles(m, b.build(), Opcode::FdivRR);
  ASSERT_EQ(div_issues.size(), 2u);
  const std::uint64_t gap = div_issues[1] - div_issues[0];
  EXPECT_GE(gap, static_cast<std::uint64_t>(m.config().div_fast_latency));
  EXPECT_LT(gap, static_cast<std::uint64_t>(m.config().div_latency))
      << "an early-exit divide held the divider for the full latency";
}

/// A faulting load with a younger independent divide (divisor in R11 from
/// the initial registers), then a timed divide in the signal handler. The
/// younger divide issues transiently and is squashed by the machine clear;
/// whether the handler's divide waits out its occupancy is exactly what
/// the drain-on-clear contract decides.
isa::Program clear_drain_program(int* handler_out) {
  ProgramBuilder b;
  b.mov(Reg::R10, 0x7ffffffffll);
  b.mov(Reg::R13, 0);        // null pointer: the load faults at retirement
  b.load(Reg::RAX, Reg::R13);
  b.fdiv(Reg::R10, Reg::R11);  // younger, independent: issues transiently
  b.halt();
  b.label("h");
  b.rdtsc(Reg::R8);
  b.mov(Reg::R14, 0x123456789ll);
  b.mov(Reg::R15, 7);
  b.fdiv(Reg::R14, Reg::R15);
  b.lfence();                // waits for the divide before the closing read
  b.rdtsc(Reg::R9);
  b.halt();
  isa::Program p = b.build();
  *handler_out = p.label("h");
  return p;
}

TEST(DividerOccupancy, MachineClearDrainsTheDivider) {
  // Differential: the only difference between the two runs is the divisor
  // of the SQUASHED divide (3 = slow, 1 = early-exit — a register value,
  // not a program byte). If the machine clear drains the divider, the
  // handler's timed divide cannot see the difference.
  int handler = -1;
  const isa::Program prog = clear_drain_program(&handler);
  ASSERT_GE(handler, 0);

  auto handler_time = [&](std::uint64_t divisor) {
    os::Machine m(vulnerable());
    std::array<std::uint64_t, isa::kNumRegs> regs{};
    regs[static_cast<std::size_t>(Reg::R11)] = divisor;
    const uarch::RunResult r = m.run_user(prog, regs, handler);
    const auto& tsc = r.t0().tsc;
    EXPECT_TRUE(r.t0().halted);
    EXPECT_EQ(tsc.size(), 2u);
    return tsc.size() == 2 ? tsc[1] - tsc[0] : 0ull;
  };

  EXPECT_EQ(handler_time(3), handler_time(1))
      << "squashed-divide occupancy leaked across a machine clear";
}

TEST(DividerOccupancy, ResetDrainsTheDivider) {
  // A reset() machine times a divide exactly like a fresh one, even after
  // a dirty pass that exercised the divider (a stale busy-until latch
  // would stall the post-reset divide for a long time: the dirty run's
  // cycle count dwarfs the fresh machine's).
  ProgramBuilder b;
  b.rdtsc(Reg::R8);
  b.mov(Reg::RAX, 0x7fffffffll);
  b.mov(Reg::RBX, 7);
  b.fdiv(Reg::RAX, Reg::RBX);
  b.lfence();
  b.rdtsc(Reg::R9);
  b.halt();
  const isa::Program timed = b.build();

  auto tote = [&](os::Machine& m) {
    const uarch::RunResult r = m.run_user(timed);
    return r.t0().tsc.at(1) - r.t0().tsc.at(0);
  };

  os::Machine fresh(vulnerable());
  os::Machine reused(vulnerable());
  reused.snapshot();
  for (int i = 0; i < 8; ++i) (void)tote(reused);  // dirty the divider
  reused.reset(reused.options().seed);

  EXPECT_EQ(tote(reused), tote(fresh));
}

// ---------------------------------------------------------------------------
// The attack end to end
// ---------------------------------------------------------------------------

void expect_clean_decode(const noise::NoiseProfile& profile,
                         const std::string& what) {
  os::MachineOptions opts = vulnerable();
  opts.noise = profile;
  opts.seed = 0x5eedull;
  os::Machine m(opts);
  const auto atk = core::make_attack("rewind", m);

  const std::string text = "Rewind!";
  const std::vector<std::uint8_t> payload(text.begin(), text.end());
  const core::AttackResult r = atk->run(payload);
  EXPECT_TRUE(r.success) << what;
  EXPECT_EQ(r.byte_errors, 0u) << what;
  EXPECT_EQ(r.bytes, payload) << what;
  EXPECT_GT(r.probes, 0u) << what;
}

TEST(SpectreRewindAttack, DecodesNoiseOffAtZeroErrors) {
  expect_clean_decode(noise::NoiseProfile::off(), "noise off");
}

TEST(SpectreRewindAttack, DecodesQuietProfileAtZeroErrors) {
  expect_clean_decode(noise::NoiseProfile::quiet(), "quiet profile");
}

TEST(SpectreRewindAttack, RegistryRoundTrip) {
  const core::AttackInfo* info = core::find_attack("rewind");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->channel);
  EXPECT_NE(info->description.find("divider"), std::string::npos);

  // Registered between the TET set and kaslr, and constructible through
  // the same path every consumer uses.
  const std::vector<std::string> names = core::attack_names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_NE(std::find(names.begin(), names.end(), "rewind"), names.end());
  EXPECT_EQ(names.back(), "kaslr");

  os::Machine m(vulnerable());
  const auto atk = core::make_attack("rewind", m);
  ASSERT_NE(atk, nullptr);
  EXPECT_EQ(atk->name(), "rewind");
}

}  // namespace
}  // namespace whisper
