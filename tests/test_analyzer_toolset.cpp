// Tests for the ToTE argmax analyzer (§4.3.1 decode) and the Fig. 2 PMU
// toolset pipeline.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/pmu_toolset.h"
#include "os/machine.h"
#include "stats/rng.h"

namespace whisper::core {
namespace {

TEST(AnalyzerTest, MaxPolarityDecodesLongestValue) {
  ArgmaxAnalyzer a(Polarity::Max);
  for (int batch = 0; batch < 5; ++batch) {
    for (int tv = 0; tv < 256; ++tv)
      a.add(tv, tv == 'S' ? 120u : 100u);
    a.end_batch();
  }
  EXPECT_EQ(a.decode(), 'S');
  EXPECT_EQ(a.votes()['S'], 5u);
  EXPECT_EQ(a.batches(), 5u);
}

TEST(AnalyzerTest, MinPolarityDecodesShortestValue) {
  ArgmaxAnalyzer a(Polarity::Min);
  for (int batch = 0; batch < 3; ++batch) {
    for (int tv = 0; tv < 256; ++tv)
      a.add(tv, tv == 0x7f ? 80u : 100u);
    a.end_batch();
  }
  EXPECT_EQ(a.decode(), 0x7f);
}

TEST(AnalyzerTest, MajorityVoteToleratesNoisyBatches) {
  // 2 of 7 batches vote for the wrong value; majority still wins.
  ArgmaxAnalyzer a(Polarity::Max);
  for (int batch = 0; batch < 7; ++batch) {
    const int hot = batch < 2 ? 10 : 200;
    for (int tv = 0; tv < 256; ++tv) a.add(tv, tv == hot ? 150u : 100u);
    a.end_batch();
  }
  EXPECT_EQ(a.decode(), 200);
}

TEST(AnalyzerTest, NoisyToteStillDecodes) {
  stats::Xoshiro256 rng(17);
  ArgmaxAnalyzer a(Polarity::Max);
  for (int batch = 0; batch < 9; ++batch) {
    for (int tv = 0; tv < 256; ++tv) {
      const std::uint64_t base = 100 + rng.next_below(8);  // jitter
      a.add(tv, tv == 42 ? base + 12 : base);
    }
    a.end_batch();
  }
  EXPECT_EQ(a.decode(), 42);
}

TEST(AnalyzerTest, IgnoresInvalidSamples) {
  ArgmaxAnalyzer a(Polarity::Max);
  a.add(5, 0);       // failed probe
  a.add(-1, 100);    // out of range
  a.add(256, 100);   // out of range
  a.end_batch();     // batch had no valid samples
  EXPECT_EQ(a.batches(), 0u);
  EXPECT_TRUE(a.tote_histogram().empty());
}

TEST(AnalyzerTest, HistogramAndMeansAccumulate) {
  ArgmaxAnalyzer a(Polarity::Max);
  a.add(1, 100);
  a.add(1, 110);
  a.add(2, 90);
  a.end_batch();
  EXPECT_EQ(a.tote_histogram().total(), 3u);
  const auto means = a.mean_tote_by_value();
  EXPECT_DOUBLE_EQ(means[1], 105.0);
  EXPECT_DOUBLE_EQ(means[2], 90.0);
  EXPECT_DOUBLE_EQ(means[3], 0.0);
}

TEST(AnalyzerTest, ResetClearsEverything) {
  ArgmaxAnalyzer a(Polarity::Max);
  a.add(7, 100);
  a.end_batch();
  a.reset();
  EXPECT_EQ(a.batches(), 0u);
  EXPECT_EQ(a.votes()[7], 0u);
  EXPECT_TRUE(a.tote_histogram().empty());
}

TEST(PmuToolsetTest, CatalogFiltersByVendor) {
  os::Machine intel({.model = uarch::CpuModel::KabyLakeI7_7700});
  os::Machine amd({.model = uarch::CpuModel::Zen3Ryzen5_5600G});
  PmuToolset ti(intel), ta(amd);
  for (auto e : ti.catalog())
    EXPECT_NE(event_vendor(e), uarch::Vendor::Amd) << uarch::to_string(e);
  bool has_amd_event = false;
  for (auto e : ta.catalog())
    if (e == uarch::PmuEvent::IC_FW32) has_amd_event = true;
  EXPECT_TRUE(has_amd_event);
}

TEST(PmuToolsetTest, DifferentialFilterFindsBranchMispredictEvents) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  PmuToolset ts(m);
  const auto records =
      ts.collect(scenario_tet_cc(false), scenario_tet_cc(true), 3);
  const auto significant = PmuToolset::filter_significant(records, 0.05, 1.0);

  auto find = [&](uarch::PmuEvent e) -> const EventRecord* {
    for (const auto& r : significant)
      if (r.event == e) return &r;
    return nullptr;
  };
  // The Table 3 headline events must survive the filter with the right sign.
  const EventRecord* misp = find(uarch::PmuEvent::BR_MISP_EXEC_ALL_BRANCHES);
  ASSERT_NE(misp, nullptr);
  EXPECT_GT(misp->delta(), 0.0);
  const EventRecord* resteer =
      find(uarch::PmuEvent::INT_MISC_CLEAR_RESTEER_CYCLES);
  ASSERT_NE(resteer, nullptr);
  EXPECT_GT(resteer->delta(), 0.0);
}

TEST(PmuToolsetTest, TrueNegativeMemAnyIsFilteredOut) {
  // §5.2.1: CYCLE_ACTIVITY.CYCLES_MEM_ANY must NOT separate the scenarios.
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  PmuToolset ts(m);
  // Warm caches/TLBs: the paper's measurement rides a warm attack loop.
  scenario_tet_md(false)(m);
  scenario_tet_md(true)(m);
  const auto r = ts.measure(uarch::PmuEvent::CYCLE_ACTIVITY_CYCLES_MEM_ANY,
                            scenario_tet_md(false), scenario_tet_md(true));
  EXPECT_LT(std::abs(r.rel_delta()), 0.15)
      << "memory-stall cycles should be a true negative";
}

TEST(PmuToolsetTest, KaslrScenarioShowsWalkEvents) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
  PmuToolset ts(m);
  const auto walks =
      ts.measure(uarch::PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK,
                 scenario_kaslr(true), scenario_kaslr(false));
  // Table 3 bottom: unmapped = 2 walks, mapped = fewer (the fill makes the
  // later probes hit).
  EXPECT_GT(walks.variant, walks.baseline);
  const auto active =
      ts.measure(uarch::PmuEvent::DTLB_LOAD_MISSES_WALK_ACTIVE,
                 scenario_kaslr(true), scenario_kaslr(false));
  EXPECT_GT(active.variant, active.baseline);
}

TEST(PmuToolsetTest, ReportFormatsRows) {
  std::vector<EventRecord> recs = {
      {uarch::PmuEvent::UOPS_ISSUED_ANY, 334, 319},
      {uarch::PmuEvent::RESOURCE_STALLS_ANY, 15, 21},
  };
  const std::string rep =
      PmuToolset::report(recs, "Table 3 scene", "not trig", "trig");
  EXPECT_NE(rep.find("UOPS_ISSUED.ANY"), std::string::npos);
  EXPECT_NE(rep.find("RESOURCE_STALLS.ANY"), std::string::npos);
  EXPECT_NE(rep.find("Table 3 scene"), std::string::npos);
  EXPECT_NE(rep.find("+6"), std::string::npos);
}

}  // namespace
}  // namespace whisper::core
