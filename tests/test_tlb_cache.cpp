// Unit tests for the TLB, the data caches, and the line fill buffer.
#include <gtest/gtest.h>

#include "mem/cache.h"
#include "mem/lfb.h"
#include "mem/tlb.h"

namespace whisper::mem {
namespace {

PteFlags user_flags() {
  return {.present = true, .writable = true, .user = true};
}
PteFlags global_flags() {
  return {.present = true, .writable = true, .user = false, .global = true};
}

TEST(TlbTest, InsertLookupRoundtrip4K) {
  Tlb tlb(16, 4);
  tlb.insert(0x400000, 0x1000000, user_flags(), PageSize::k4K);
  const auto hit = tlb.lookup(0x400abc);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pfn << 12, 0x1000000u);
  EXPECT_FALSE(tlb.lookup(0x401000).has_value());  // next page misses
}

TEST(TlbTest, InsertLookupRoundtrip2M) {
  Tlb tlb(16, 4);
  tlb.insert(0x40000000, 0x80000000, global_flags(), PageSize::k2M);
  ASSERT_TRUE(tlb.lookup(0x401fffff).has_value());
  EXPECT_TRUE(tlb.lookup(0x40000000).has_value());
  EXPECT_FALSE(tlb.lookup(0x40200000).has_value());
}

TEST(TlbTest, LruEvictionWithinSet) {
  Tlb tlb(1, 2);  // single set, 2 ways
  tlb.insert(0x1000, 0xa000, user_flags(), PageSize::k4K);
  tlb.insert(0x2000, 0xb000, user_flags(), PageSize::k4K);
  (void)tlb.lookup(0x1000);  // make the first entry MRU
  tlb.insert(0x3000, 0xc000, user_flags(), PageSize::k4K);
  EXPECT_TRUE(tlb.contains(0x1000));
  EXPECT_FALSE(tlb.contains(0x2000));  // LRU victim
  EXPECT_TRUE(tlb.contains(0x3000));
}

TEST(TlbTest, FlushSemantics) {
  Tlb tlb(16, 4);
  tlb.insert(0x400000, 0x1000000, user_flags(), PageSize::k4K);
  tlb.insert(0xffffffff80000000ull, 0x100000000ull, global_flags(),
             PageSize::k2M);
  tlb.flush_non_global();
  EXPECT_FALSE(tlb.contains(0x400000));
  EXPECT_TRUE(tlb.contains(0xffffffff80000000ull));  // global survives
  tlb.flush_all();
  EXPECT_FALSE(tlb.contains(0xffffffff80000000ull));
  EXPECT_EQ(tlb.occupancy(), 0u);
}

TEST(TlbTest, InvalidatePage) {
  Tlb tlb(16, 4);
  tlb.insert(0x400000, 0x1000000, user_flags(), PageSize::k4K);
  tlb.insert(0x401000, 0x1001000, user_flags(), PageSize::k4K);
  tlb.invalidate_page(0x400000);
  EXPECT_FALSE(tlb.contains(0x400000));
  EXPECT_TRUE(tlb.contains(0x401000));
}

TEST(TlbTest, InsertUpdatesExistingEntry) {
  Tlb tlb(16, 4);
  tlb.insert(0x400000, 0x1000000, user_flags(), PageSize::k4K);
  tlb.insert(0x400000, 0x2000000, user_flags(), PageSize::k4K);
  EXPECT_EQ(tlb.occupancy(), 1u);
  EXPECT_EQ(tlb.lookup(0x400000)->pfn << 12, 0x2000000u);
}

TEST(TlbTest, RejectsBadGeometry) {
  EXPECT_THROW(Tlb(0, 4), std::invalid_argument);
  EXPECT_THROW(Tlb(3, 4), std::invalid_argument);
  EXPECT_THROW(Tlb(16, 0), std::invalid_argument);
}

TEST(CacheTest, FillThenHit) {
  Cache c(64, 8);
  EXPECT_FALSE(c.access(0x1000));
  c.fill(0x1000);
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x103f));   // same 64 B line
  EXPECT_FALSE(c.access(0x1040));  // next line
}

TEST(CacheTest, FlushLine) {
  Cache c(64, 8);
  c.fill(0x1000);
  c.fill(0x2000);
  c.flush_line(0x1020);
  EXPECT_FALSE(c.contains(0x1000));
  EXPECT_TRUE(c.contains(0x2000));
  c.flush_all();
  EXPECT_EQ(c.occupancy(), 0u);
}

TEST(CacheTest, LruEvictionReturnsVictim) {
  Cache c(1, 2);
  c.fill(0x0);
  c.fill(0x40);
  (void)c.access(0x0);
  const std::uint64_t evicted = c.fill(0x80);
  EXPECT_EQ(evicted, 0x40u);
  EXPECT_TRUE(c.contains(0x0));
  EXPECT_FALSE(c.contains(0x40));
}

TEST(CacheTest, RefillingResidentLineEvictsNothing) {
  Cache c(64, 8);
  c.fill(0x1000);
  EXPECT_EQ(c.fill(0x1000), 0u);
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(LfbTest, StaleByteComesFromNewestEntry) {
  LineFillBuffer lfb;
  EXPECT_FALSE(lfb.stale_byte(0).has_value());
  lfb.record_value(0x1000, 0xAA, 1);
  lfb.record_value(0x2000, 0xBB, 1);
  ASSERT_TRUE(lfb.stale_byte(0).has_value());
  EXPECT_EQ(*lfb.stale_byte(0), 0xBB);
}

TEST(LfbTest, OffsetAddressing) {
  LineFillBuffer lfb;
  lfb.record_value(0x1008, 0x1122334455667788ull, 8);
  EXPECT_EQ(*lfb.stale_byte(8), 0x88);
  EXPECT_EQ(*lfb.stale_byte(9), 0x77);
  EXPECT_EQ(*lfb.stale_qword(8), 0x1122334455667788ull);
}

TEST(LfbTest, CapacityRecyclesOldest) {
  LineFillBuffer lfb;
  for (std::uint64_t i = 0; i < LineFillBuffer::kEntries + 3; ++i)
    lfb.record_value(0x1000 + i * 64, i, 1);
  EXPECT_EQ(lfb.occupancy(), LineFillBuffer::kEntries);
  EXPECT_EQ(*lfb.stale_byte(0),
            static_cast<std::uint8_t>(LineFillBuffer::kEntries + 2));
}

TEST(LfbTest, ClearEmpties) {
  LineFillBuffer lfb;
  lfb.record_value(0x1000, 0x42, 1);
  lfb.clear();
  EXPECT_EQ(lfb.occupancy(), 0u);
  EXPECT_FALSE(lfb.stale_byte(0).has_value());
}

}  // namespace
}  // namespace whisper::mem
