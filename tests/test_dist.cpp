// Tests for the distributed sweep stack: endpoint grammar, the hardened
// fd connection shared by the socket transports, typed dial failures, the
// transport fault kinds, the client wire helpers, and the headline
// contract (invariant 13, docs/ARCHITECTURE.md):
//
//   a SweepClient merging one RunSpec off N whisper_serve endpoints
//   produces bytes identical to a local single-process runner::run — for
//   any endpoint count and any failure schedule that completes.
//
// The failure schedules here are scripted, not raced: KillSwitchEndpoint
// severs a daemon at an exact delivered-trial count, FlakyConnection
// drops/tears/stalls at exact request ordinals, and the merge must come
// out byte-identical every time.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/endpoint.h"
#include "client/flaky.h"
#include "client/sweep_client.h"
#include "client/wire.h"
#include "fault/fault.h"
#include "runner/runner.h"
#include "serve/fd_connection.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "serve/transport_loopback.h"
#include "serve/transport_tcp.h"
#include "serve/transport_unix.h"

#if WHISPER_HAVE_FD_CONNECTION
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace whisper::client {
namespace {

// ---------------------------------------------------------------------------
// Endpoint grammar.

TEST(DistEndpoint, ParsesEveryAddressForm) {
  EXPECT_EQ(parse_endpoint("tcp:127.0.0.1:7777").kind,
            EndpointSpec::Kind::kTcp);
  EXPECT_EQ(parse_endpoint("tcp:127.0.0.1:7777").address, "127.0.0.1:7777");
  EXPECT_EQ(parse_endpoint("box:9").kind, EndpointSpec::Kind::kTcp);
  EXPECT_EQ(parse_endpoint("unix:/tmp/w.sock").kind,
            EndpointSpec::Kind::kUnix);
  EXPECT_EQ(parse_endpoint("unix:/tmp/w.sock").address, "/tmp/w.sock");
  EXPECT_EQ(parse_endpoint("/tmp/w.sock").kind, EndpointSpec::Kind::kUnix);
  EXPECT_EQ(parse_endpoint("tcp:host:1").canonical(), "tcp:host:1");
  EXPECT_EQ(parse_endpoint("unix:/a").canonical(), "unix:/a");
}

TEST(DistEndpoint, RejectsMalformedAddresses) {
  EXPECT_THROW((void)parse_endpoint(""), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint("justahost"), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint("unix:"), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint_list("a:1,,b:2"), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint_list(""), std::invalid_argument);
}

TEST(DistEndpoint, ParsesCommaSeparatedList) {
  const auto list = parse_endpoint_list("a:1, unix:/s, tcp:b:2");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].canonical(), "tcp:a:1");
  EXPECT_EQ(list[1].canonical(), "unix:/s");
  EXPECT_EQ(list[2].canonical(), "tcp:b:2");
}

#if WHISPER_HAVE_FD_CONNECTION
// ---------------------------------------------------------------------------
// FdConnection hardening (the shared unix/TCP read-write path).

std::pair<std::unique_ptr<serve::FdConnection>,
          std::unique_ptr<serve::FdConnection>>
fd_pair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {std::make_unique<serve::FdConnection>(fds[0], "a"),
          std::make_unique<serve::FdConnection>(fds[1], "b")};
}

TEST(DistFdConnection, WriteToClosedPeerFailsWithoutSigpipe) {
  auto [a, b] = fd_pair();
  b->close();
  // The first write may land in the kernel buffer before the RST is
  // processed; a bounded burst must surface `false` — and the process
  // must still be here to see it (MSG_NOSIGNAL / SIG_IGN, never SIGPIPE).
  bool saw_failure = false;
  const std::string line(4096, 'x');
  for (int i = 0; i < 64 && !saw_failure; ++i)
    saw_failure = !a->write_line(line);
  EXPECT_TRUE(saw_failure);
}

TEST(DistFdConnection, DeliversFinalUnterminatedFragment) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  serve::FdConnection reader(fds[0], "reader");
  ASSERT_EQ(::send(fds[1], "tail", 4, 0), 4);
  ::close(fds[1]);
  std::string line;
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line, "tail");
  EXPECT_FALSE(reader.read_line(line));
}

TEST(DistFdConnection, ReadLineForTimesOutThenDelivers) {
  auto [a, b] = fd_pair();
  std::string line;
  EXPECT_EQ(a->read_line_for(line, 30), serve::ReadStatus::kTimeout);
  ASSERT_TRUE(b->write_line("hello"));
  EXPECT_EQ(a->read_line_for(line, 1000), serve::ReadStatus::kLine);
  EXPECT_EQ(line, "hello");
}

TEST(DistFdConnection, TruncatesOversizedLineAndResynchronizes) {
  auto [a, b] = fd_pair();
  // Writer thread: one line far over the cap, then a normal one. A thread
  // because the whole burst exceeds any socket buffer.
  std::thread writer([&b] {
    const std::string huge(serve::FdConnection::kMaxLineBytes + 64 * 1024,
                           'y');
    (void)b->write_line(huge);
    (void)b->write_line("after");
    b->close();
  });
  std::string line;
  ASSERT_TRUE(a->read_line(line));
  // The oversized line arrives truncated (its tail is discarded), and the
  // stream resynchronizes on the next newline.
  EXPECT_GT(line.size(), serve::FdConnection::kMaxLineBytes);
  EXPECT_LT(line.size(),
            serve::FdConnection::kMaxLineBytes + 64 * 1024);
  ASSERT_TRUE(a->read_line(line));
  EXPECT_EQ(line, "after");
  writer.join();
}

// ---------------------------------------------------------------------------
// Request cap (satellite: a 64KiB+ request must be refused with a
// well-formed, attributable error line — and the connection must live on).

TEST(DistServe, OversizedRequestRefusedAndConnectionSurvives) {
  const std::string path = "/tmp/whisper_test_oversize.sock";
  serve::UnixSocketTransport transport(path);
  serve::Server server(transport, serve::ServerOptions{});
  server.start();

  auto conn = serve::UnixSocketTransport::dial(path, 2000);
  std::string padding(serve::kMaxRequestBytes, 'p');
  const std::string request =
      R"({"id":9,"verb":"ping","pad":")" + padding + R"("})";
  ASSERT_GT(request.size(), serve::kMaxRequestBytes);
  ASSERT_LT(request.size(), serve::FdConnection::kMaxLineBytes);
  ASSERT_TRUE(conn->write_line(request));

  std::string line;
  ASSERT_EQ(conn->read_line_for(line, 5000), serve::ReadStatus::kLine);
  // Exact golden: id 0 (unattributable by design — the line was refused
  // before its id field was trusted), well-formed JSON, byte count echoed.
  EXPECT_EQ(line, "{\"id\":0,\"type\":\"error\",\"error\":\"serve: request "
                  "line exceeds 65536 bytes (got " +
                      std::to_string(request.size()) + ")\"}");

  // Same connection, next request: alive and well.
  ASSERT_TRUE(conn->write_line(R"({"id":10,"verb":"ping"})"));
  ASSERT_EQ(conn->read_line_for(line, 5000), serve::ReadStatus::kLine);
  EXPECT_EQ(line, serve::response_pong(10));
  conn->close();
  server.stop();
}

// ---------------------------------------------------------------------------
// Typed dial failures (satellite: a dead box is a countable error, not a
// hang or an untyped crash).

TEST(DistUnixDial, NonexistentPathThrowsDialError) {
  EXPECT_THROW(
      (void)serve::UnixSocketTransport::dial(
          "/tmp/whisper_test_definitely_missing.sock", 500),
      serve::DialError);
}

TEST(DistUnixDial, StaleSocketFileThrowsDialError) {
  // A socket file whose daemon is gone: bind it, then close the listener
  // without unlinking. connect() must refuse, typed.
  const std::string path = "/tmp/whisper_test_stale.sock";
  {
    serve::UnixSocketTransport doomed(path);
    doomed.shutdown();
  }  // destructor closes the listen fd; the path may linger
  EXPECT_THROW((void)serve::UnixSocketTransport::dial(path, 500),
               serve::DialError);
}

TEST(DistTcp, ListenDialRoundTrip) {
  std::unique_ptr<serve::TcpTransport> transport;
  try {
    transport = std::make_unique<serve::TcpTransport>("127.0.0.1:0");
  } catch (const std::exception& e) {
    GTEST_SKIP() << "TCP unavailable: " << e.what();
  }
  EXPECT_NE(transport->port(), 0);  // ephemeral port was resolved
  serve::Server server(*transport, serve::ServerOptions{});
  server.start();
  auto conn = serve::TcpTransport::dial(transport->address(), 2000);
  ASSERT_TRUE(conn->write_line(R"({"id":3,"verb":"ping"})"));
  std::string line;
  ASSERT_EQ(conn->read_line_for(line, 5000), serve::ReadStatus::kLine);
  EXPECT_EQ(line, serve::response_pong(3));
  conn->close();
  server.stop();
}

TEST(DistTcp, DialDeadPortThrowsDialError) {
  int port = 0;
  try {
    serve::TcpTransport probe("127.0.0.1:0");
    port = probe.port();
    probe.shutdown();
  } catch (const std::exception& e) {
    GTEST_SKIP() << "TCP unavailable: " << e.what();
  }
  EXPECT_THROW((void)serve::TcpTransport::dial(
                   "127.0.0.1:" + std::to_string(port), 500),
               serve::DialError);
}

TEST(DistTcp, UnresolvableHostThrowsDialError) {
  EXPECT_THROW(
      (void)serve::TcpTransport::dial("host.invalid.whisper:1", 500),
      serve::DialError);
}
#endif  // WHISPER_HAVE_FD_CONNECTION

// ---------------------------------------------------------------------------
// Transport fault kinds and their boundary with trial faults.

TEST(DistFault, TransportKindsParseAndPrint) {
  const fault::FaultPlan plan = fault::FaultPlan::parse("drop@1;shortread@3");
  EXPECT_TRUE(plan.uses(fault::Kind::kDrop));
  EXPECT_TRUE(plan.uses(fault::Kind::kShortRead));
  EXPECT_TRUE(plan.fires(fault::Kind::kDrop, 1, 0));
  EXPECT_FALSE(plan.fires(fault::Kind::kDrop, 2, 0));
  EXPECT_EQ(fault::to_string(fault::Kind::kDrop), std::string("drop"));
  EXPECT_EQ(fault::to_string(fault::Kind::kShortRead),
            std::string("shortread"));
}

TEST(DistFault, RunnerValidateRejectsTransportKindsInTrialPlans) {
  runner::RunSpec spec;
  spec.attack = "cc";
  spec.fault_plan = "drop@1";
  EXPECT_THROW(runner::validate(spec), std::invalid_argument);
  spec.fault_plan = "shortread~50@7";
  EXPECT_THROW(runner::validate(spec), std::invalid_argument);
  // stall is legal on both sides — as a trial fault it just needs the
  // cycle budget that bounds a stalled trial.
  spec.fault_plan = "stall@1";
  spec.trial_cycle_budget = 20'000'000;
  EXPECT_NO_THROW(runner::validate(spec));
}

TEST(DistFlaky, RejectsTrialKindsInFlakyPlans) {
  serve::LoopbackTransport transport;
  serve::Server server(transport, serve::ServerOptions{});
  server.start();
  LoopbackEndpoint endpoint(transport);
  EXPECT_THROW(FlakyConnection(endpoint.dial(-1),
                               fault::FaultPlan::parse("throw@1")),
               std::invalid_argument);
  server.stop();
}

TEST(DistFlaky, DropsExactlyTheNamedRequestOrdinal) {
  serve::LoopbackTransport transport;
  serve::Server server(transport, serve::ServerOptions{});
  server.start();
  LoopbackEndpoint endpoint(transport);
  FlakyConnection flaky(endpoint.dial(-1), fault::FaultPlan::parse("drop@1"));
  std::string line;
  ASSERT_TRUE(flaky.write_line(R"({"id":1,"verb":"ping"})"));  // request 0
  ASSERT_EQ(flaky.read_line_for(line, 5000), serve::ReadStatus::kLine);
  EXPECT_EQ(line, serve::response_pong(1));
  // Request 1 is the named ordinal: the write severs instead of sending.
  EXPECT_FALSE(flaky.write_line(R"({"id":2,"verb":"ping"})"));
  EXPECT_EQ(flaky.next_request(), 2u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Wire helpers and the trial_first shard window.

runner::RunSpec cheap_spec(int trials, std::uint64_t seed = 0xd157ULL) {
  runner::RunSpec spec;
  spec.attack = "cc";
  spec.trials = trials;
  spec.base_seed = seed;
  spec.rounds = 1;
  spec.batches = 2;
  spec.payload_bytes = 2;
  return spec;
}

TEST(DistWire, NormalizeIdRewritesOnlyTheLeadingId) {
  EXPECT_EQ(normalize_id("{\"id\":42,\"type\":\"pong\"}"),
            "{\"id\":0,\"type\":\"pong\"}");
  EXPECT_EQ(normalize_id("{\"id\":0,\"x\":1}"), "{\"id\":0,\"x\":1}");
  EXPECT_EQ(normalize_id("not a response"), "not a response");
}

TEST(DistWire, RejectsSpecsTheWireCannotCarry) {
  runner::RunSpec spec = cheap_spec(2);
  spec.collect_trace = true;
  EXPECT_THROW((void)run_request_json(1, spec, 0, 2), std::invalid_argument);
}

TEST(DistWire, TrialFirstRunsAnAbsoluteWindowOfTheSchedule) {
  // One request for trials [2, 5) of an 8-trial spec must return exactly
  // the lines a full local run produces at indices 2..4 — same seeds,
  // same faults, same bytes (that is what makes sharding mergeable).
  const runner::RunSpec spec = cheap_spec(8);
  const runner::RunResult local = runner::run(spec, 1);
  const std::vector<std::string> want = canonical_trial_lines(local);

  serve::LoopbackTransport transport;
  serve::Server server(transport, serve::ServerOptions{});
  server.start();
  auto client = transport.connect();
  client->send(run_request_json(5, spec, 2, 3));
  client->close_send();
  std::vector<std::string> lines;
  std::string line;
  while (client->recv(line)) lines.push_back(line);
  server.stop();

  ASSERT_EQ(lines.size(), 4u);  // three trials + done
  EXPECT_EQ(normalize_id(lines[0]), want[2]);
  EXPECT_EQ(normalize_id(lines[1]), want[3]);
  EXPECT_EQ(normalize_id(lines[2]), want[4]);
  const serve::JsonValue done = serve::json_parse(lines[3]);
  EXPECT_EQ(done.get("type")->string, "done");
  EXPECT_EQ(done.get("trials")->number, 3.0);
}

// ---------------------------------------------------------------------------
// Invariant 13: the distributed merge is byte-identical to a local run.

struct LoopbackCluster {
  std::vector<std::unique_ptr<serve::LoopbackTransport>> transports;
  std::vector<std::unique_ptr<serve::Server>> servers;
  std::vector<std::shared_ptr<Endpoint>> endpoints;

  explicit LoopbackCluster(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      transports.push_back(std::make_unique<serve::LoopbackTransport>());
      servers.push_back(std::make_unique<serve::Server>(
          *transports.back(), serve::ServerOptions{}));
      servers.back()->start();
      endpoints.push_back(std::make_shared<LoopbackEndpoint>(
          *transports.back(), "loopback:" + std::to_string(i)));
    }
  }
  ~LoopbackCluster() {
    for (auto& s : servers) s->stop();
  }
};

SweepOptions fast_opts() {
  SweepOptions opts;
  opts.chunk_trials = 2;
  opts.backoff_base_ms = 1;
  opts.backoff_max_ms = 10;
  return opts;
}

TEST(DistSweep, ByteIdenticalAcrossEndpointCounts) {
  const runner::RunSpec spec = cheap_spec(8);
  const runner::RunResult local = runner::run(spec, 1);
  const std::vector<std::string> want = canonical_trial_lines(local);
  const std::string want_done = canonical_done_line(local);

  for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    LoopbackCluster cluster(n);
    SweepClient sweeper(fast_opts());
    const SweepResult r = sweeper.sweep(spec, cluster.endpoints);
    ASSERT_TRUE(r.complete) << n << " endpoints: " << r.error;
    EXPECT_EQ(r.trial_lines, want) << n << " endpoints";
    EXPECT_EQ(r.done_line, want_done) << n << " endpoints";
    EXPECT_EQ(r.stats.duplicate_trials, 0u);
  }
}

TEST(DistSweep, KillMidSweepReassignsAndStaysByteIdentical) {
  const runner::RunSpec spec = cheap_spec(8);
  const runner::RunResult local = runner::run(spec, 1);

  LoopbackCluster cluster(3);
  auto lever = std::make_shared<KillSwitchEndpoint>(
      std::make_unique<LoopbackEndpoint>(*cluster.transports[1],
                                         "loopback:1"));
  std::vector<std::shared_ptr<Endpoint>> endpoints = cluster.endpoints;
  endpoints[1] = lever;

  SweepOptions opts = fast_opts();
  opts.chunk_trials = 1;  // endpoint 1 owns chunks 1, 4, 7 — orphans to give
  opts.endpoint_failures = 2;
  opts.on_trial = [lever](std::size_t endpoint, std::size_t delivered) {
    if (endpoint == 1 && delivered >= 1) lever->kill();
  };
  SweepClient sweeper(opts);
  const SweepResult r = sweeper.sweep(spec, endpoints);

  ASSERT_TRUE(r.complete) << r.error;
  EXPECT_EQ(r.trial_lines, canonical_trial_lines(local));
  EXPECT_EQ(r.done_line, canonical_done_line(local));
  EXPECT_TRUE(lever->killed());
  EXPECT_GE(r.stats.dead_endpoints, 1u);
  EXPECT_GT(r.stats.reassigned, 0u);
  EXPECT_GT(r.stats.unreachable, 0u);
  // Work moved off the dead box: survivors carried more than their share.
  EXPECT_EQ(r.stats.trials_by_endpoint[0] + r.stats.trials_by_endpoint[1] +
                r.stats.trials_by_endpoint[2],
            8u);
}

TEST(DistSweep, FlakyTransportRecoversByteIdentical) {
  const runner::RunSpec spec = cheap_spec(8);
  const runner::RunResult local = runner::run(spec, 1);

  LoopbackCluster cluster(2);
  SweepOptions opts = fast_opts();
  opts.chunk_trials = 1;  // enough request ordinals to hit every plan point
  opts.flaky_plan = "drop@1;shortread@3;stall@5";
  opts.flaky_stall_ms = 10;
  SweepClient sweeper(opts);
  const SweepResult r = sweeper.sweep(spec, cluster.endpoints);

  ASSERT_TRUE(r.complete) << r.error;
  EXPECT_EQ(r.trial_lines, canonical_trial_lines(local));
  EXPECT_EQ(r.done_line, canonical_done_line(local));
  EXPECT_GT(r.stats.reconnects, 0u);
}

TEST(DistSweep, AllEndpointsDeadReportsIncompleteWithoutHanging) {
  LoopbackCluster cluster(2);
  std::vector<std::shared_ptr<Endpoint>> endpoints;
  for (std::size_t i = 0; i < 2; ++i) {
    auto lever = std::make_shared<KillSwitchEndpoint>(
        std::make_unique<LoopbackEndpoint>(*cluster.transports[i]));
    lever->kill();  // dead before the sweep even starts
    endpoints.push_back(lever);
  }
  SweepOptions opts = fast_opts();
  opts.endpoint_failures = 2;
  SweepClient sweeper(opts);
  const SweepResult r = sweeper.sweep(cheap_spec(4), endpoints);
  EXPECT_FALSE(r.complete);
  EXPECT_TRUE(r.error.empty());  // starvation, not a protocol violation
  EXPECT_EQ(r.stats.dead_endpoints, 2u);
  EXPECT_EQ(r.trials_received, 0u);
  EXPECT_GT(r.stats.unreachable, 0u);
}

#if WHISPER_HAVE_FD_CONNECTION
TEST(DistSweep, TcpEndpointsAreByteIdenticalToo) {
  const runner::RunSpec spec = cheap_spec(6);
  const runner::RunResult local = runner::run(spec, 1);

  std::vector<std::unique_ptr<serve::TcpTransport>> transports;
  std::vector<std::unique_ptr<serve::Server>> servers;
  std::vector<std::shared_ptr<Endpoint>> endpoints;
  try {
    for (int i = 0; i < 2; ++i) {
      transports.push_back(
          std::make_unique<serve::TcpTransport>("127.0.0.1:0"));
      servers.push_back(std::make_unique<serve::Server>(
          *transports.back(), serve::ServerOptions{}));
      servers.back()->start();
      endpoints.push_back(make_endpoint(
          parse_endpoint("tcp:" + transports.back()->address())));
    }
  } catch (const std::exception& e) {
    for (auto& s : servers) s->stop();
    GTEST_SKIP() << "TCP unavailable: " << e.what();
  }
  SweepClient sweeper(fast_opts());
  const SweepResult r = sweeper.sweep(spec, endpoints);
  for (auto& s : servers) s->stop();

  ASSERT_TRUE(r.complete) << r.error;
  EXPECT_EQ(r.trial_lines, canonical_trial_lines(local));
  EXPECT_EQ(r.done_line, canonical_done_line(local));
}
#endif  // WHISPER_HAVE_FD_CONNECTION

}  // namespace
}  // namespace whisper::client
