// Regression layer for whisper::obs — the observability subsystem.
//
// This binary is standalone (its own main, not gtest_main) so it can take
//
//   --update-golden    rewrite tests/golden/*.golden from current behaviour
//
// alongside the usual gtest flags. It locks down four contracts:
//
//  1. Golden trace: the Fig. 1 TET gadget's pipeline event stream
//     (opcode, cycle, stage) matches a checked-in golden file, with a
//     readable line diff on mismatch.
//  2. Observer effect: attaching a TraceSink changes nothing — arch state,
//     PMU counters, ToTE values and cycle counts stay byte-identical.
//  3. Determinism: runner --jobs 4 produces bit-identical merged traces,
//     metrics and top-down attributions to --jobs 1.
//  4. Schema: exported Chrome trace JSON is well-formed, duration events
//     nest correctly, and every track's timestamps are monotone.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/attacks/common.h"
#include "core/attacks/meltdown.h"
#include "core/attacks/rewind.h"
#include "core/gadgets.h"
#include "obs/chrome_trace.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/thread_name.h"
#include "obs/topdown.h"
#include "os/machine.h"
#include "runner/json_writer.h"
#include "runner/runner.h"
#include "stats/json.h"
#include "uarch/trace.h"

namespace whisper {
namespace {

bool g_update_golden = false;

#ifndef WHISPER_GOLDEN_DIR
#define WHISPER_GOLDEN_DIR "tests/golden"
#endif

// ---------------------------------------------------------------------------
// Golden-file machinery
// ---------------------------------------------------------------------------

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

/// Compare against the golden file at `name`; under --update-golden rewrite
/// it instead. Mismatches report a readable per-line diff and the
/// regeneration command.
testing::AssertionResult matches_golden(const std::string& name,
                                        const std::string& actual) {
  const std::string path = std::string(WHISPER_GOLDEN_DIR) + "/" + name;
  if (g_update_golden) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      return testing::AssertionFailure()
             << "cannot write golden file " << path;
    }
    out << actual;
    std::printf("[golden] regenerated %s (%zu bytes)\n", path.c_str(),
                actual.size());
    return testing::AssertionSuccess();
  }

  std::ifstream in(path);
  if (!in) {
    return testing::AssertionFailure()
           << "golden file " << path << " is missing — run\n  test_obs "
           << "--update-golden\nand commit the result";
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected == actual) return testing::AssertionSuccess();

  const auto want = split_lines(expected);
  const auto got = split_lines(actual);
  std::ostringstream diff;
  diff << "trace diverged from " << path << " (golden " << want.size()
       << " lines, actual " << got.size() << "):\n";
  int shown = 0;
  for (std::size_t i = 0; i < std::max(want.size(), got.size()); ++i) {
    const std::string& w = i < want.size() ? want[i] : "<end of golden>";
    const std::string& g = i < got.size() ? got[i] : "<end of actual>";
    if (w == g) continue;
    diff << "  line " << (i + 1) << ":\n    golden: " << w
         << "\n    actual: " << g << "\n";
    if (++shown == 8) {
      diff << "  ... (further differences suppressed)\n";
      break;
    }
  }
  diff << "if the new behaviour is intended, regenerate with\n"
       << "  test_obs --update-golden\nand commit the golden file.";
  return testing::AssertionFailure() << diff.str();
}

/// The golden rendering: one line per pipeline event — cycle, hardware
/// thread, stage, pc and opcode. seq is deliberately omitted so the golden
/// is insensitive to how many probes warmed the core before the recorded
/// one.
std::string render_trace(const std::vector<uarch::TraceRecord>& recs) {
  std::string out;
  char buf[128];
  for (const uarch::TraceRecord& r : recs) {
    std::snprintf(buf, sizeof buf, "%8llu t%d %-14s pc=%-4d %s\n",
                  static_cast<unsigned long long>(r.cycle), r.thread,
                  uarch::to_string(r.event).c_str(), r.pc,
                  isa::to_string(r.op).c_str());
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared fixtures: the Fig. 1 TET gadget probe
// ---------------------------------------------------------------------------

constexpr std::uint8_t kSecret = 'S';

std::array<std::uint64_t, isa::kNumRegs> fig1_regs(std::uint8_t test_value) {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = core::kNullProbeAddress;
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = os::Machine::kSharedBase;
  regs[static_cast<std::size_t>(isa::Reg::RBX)] = test_value;
  return regs;
}

// os::Machine is constructed in place everywhere (it is not safely movable:
// the core holds pointers into the machine's page-table members).
os::MachineOptions fig1_options() {
  return {.model = uarch::CpuModel::KabyLakeI7_7700};
}

core::GadgetProgram fig1_gadget(const os::Machine& m) {
  return core::make_tet_gadget(
      {.window = core::preferred_window(m.config()),
       .source = core::SecretSource::SharedMemory});
}

/// One triggered probe of the Fig. 1 gadget, events captured.
obs::EventLog fig1_tet_log() {
  os::Machine m(fig1_options());
  m.poke8(os::Machine::kSharedBase, kSecret);
  const core::GadgetProgram g = fig1_gadget(m);
  obs::EventLog log;
  m.core().set_trace(&log);
  (void)core::run_tote(m, g, fig1_regs(kSecret));
  m.core().set_trace(nullptr);
  return log;
}

// ---------------------------------------------------------------------------
// 1. Golden trace
// ---------------------------------------------------------------------------

TEST(GoldenTrace, Fig1TetGadgetEventStream) {
  const obs::EventLog log = fig1_tet_log();
  ASSERT_FALSE(log.empty());
  EXPECT_TRUE(matches_golden("fig1_tet_trace.golden",
                             render_trace(log.records())));
}

TEST(GoldenTrace, Fig1StreamHasTheTetShape) {
  // Independent of golden bytes: the triggered probe must show the §5
  // mechanism end to end — the faulting load opens a transient window,
  // transient work inside it is squashed, the window closes with a machine
  // clear suppressed by TSX abort, and the front end resteers.
  const obs::EventLog log = fig1_tet_log();
  std::uint64_t open_cycle = 0, close_cycle = 0;
  std::size_t squashed_after_open = 0;
  bool machine_clear = false, tsx_abort = false, resteer = false;
  for (const uarch::TraceRecord& r : log.records()) {
    switch (r.event) {
      case uarch::TraceEvent::WindowOpen:
        if (open_cycle == 0) open_cycle = r.cycle;
        break;
      case uarch::TraceEvent::WindowClose:
        if (close_cycle == 0) close_cycle = r.cycle;
        break;
      case uarch::TraceEvent::Squash:
        if (open_cycle != 0) ++squashed_after_open;
        break;
      case uarch::TraceEvent::MachineClear: machine_clear = true; break;
      case uarch::TraceEvent::TsxAbort: tsx_abort = true; break;
      case uarch::TraceEvent::Resteer: resteer = true; break;
      default: break;
    }
  }
  ASSERT_NE(open_cycle, 0u) << "no transient window opened";
  ASSERT_NE(close_cycle, 0u) << "the window never closed";
  EXPECT_LT(open_cycle, close_cycle) << "window has no width";
  EXPECT_GT(squashed_after_open, 0u)
      << "no transient work was squashed — nothing for ToTE to time";
  EXPECT_TRUE(machine_clear) << "window closed without a machine clear";
  EXPECT_TRUE(tsx_abort) << "the TSX window must suppress via abort";
  EXPECT_TRUE(resteer) << "recovery must resteer the front end";
}

// ---------------------------------------------------------------------------
// 1b. Golden trace: the SpectreRewind contention probe. The divider is the
// channel here — the golden pins the serialized fdiv issue cadence, and the
// shape test asserts the stall is a property of the trace (and so of the
// Chrome export built from it), not of the decoder.
// ---------------------------------------------------------------------------

std::array<std::uint64_t, isa::kNumRegs> rewind_regs(std::uint64_t index,
                                                     std::uint8_t test_value) {
  using core::SpectreRewind;
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RDI)] = SpectreRewind::kLenAddr;
  regs[static_cast<std::size_t>(isa::Reg::RSI)] = index;
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = SpectreRewind::kArrayBase;
  regs[static_cast<std::size_t>(isa::Reg::RBX)] = test_value;
  return regs;
}

/// One out-of-bounds rewind probe with a MATCHING test value — the case
/// where the transient FDIV picks the hard divisor and steals the divider
/// from the receiver chain — traced after in-bounds training runs so the
/// bounds branch predicts not-taken.
obs::EventLog rewind_contention_log() {
  using core::SpectreRewind;
  os::Machine m(fig1_options());
  m.poke64(SpectreRewind::kLenAddr, SpectreRewind::kArrayLen);
  for (std::uint64_t i = 0; i < SpectreRewind::kArrayLen; ++i)
    m.poke8(SpectreRewind::kArrayBase + i, static_cast<std::uint8_t>(i));
  m.poke8(SpectreRewind::kArrayBase + SpectreRewind::kSecretOffset, kSecret);

  const core::GadgetProgram g = core::make_rewind_gadget();
  for (std::uint64_t t = 0; t < 4; ++t)
    (void)core::run_tote(m, g,
                         rewind_regs(t % SpectreRewind::kArrayLen, kSecret));
  obs::EventLog log;
  m.core().set_trace(&log);
  (void)core::run_tote(m, g,
                       rewind_regs(SpectreRewind::kSecretOffset, kSecret));
  m.core().set_trace(nullptr);
  return log;
}

TEST(GoldenTrace, RewindContentionEventStream) {
  const obs::EventLog log = rewind_contention_log();
  ASSERT_FALSE(log.empty());
  EXPECT_TRUE(matches_golden("rewind_contention_trace.golden",
                             render_trace(log.records())));
}

TEST(GoldenTrace, RewindStreamShowsTheDividerStall) {
  // Independent of golden bytes: the non-pipelined divider must serialize
  // the fdiv stream. Every gap between consecutive fdiv issues is at least
  // div_latency (each receiver divide waits out its predecessor's
  // occupancy), and the squashed transient fdiv appears in the stream —
  // its residue is the channel.
  const obs::EventLog log = rewind_contention_log();
  std::vector<std::uint64_t> fdiv_issues;
  bool fdiv_squashed = false;
  for (const uarch::TraceRecord& r : log.records()) {
    if (r.op != isa::Opcode::FdivRR) continue;
    if (r.event == uarch::TraceEvent::Issue) fdiv_issues.push_back(r.cycle);
    if (r.event == uarch::TraceEvent::Squash) fdiv_squashed = true;
  }
  os::Machine probe(fig1_options());
  const std::uint64_t div_latency =
      static_cast<std::uint64_t>(probe.config().div_latency);
  ASSERT_GE(fdiv_issues.size(), 3u) << "receiver chain not visible";
  for (std::size_t i = 1; i < fdiv_issues.size(); ++i) {
    EXPECT_GE(fdiv_issues[i] - fdiv_issues[i - 1], div_latency)
        << "divides " << (i - 1) << " and " << i
        << " overlapped on the single divider";
  }
  EXPECT_TRUE(fdiv_squashed)
      << "the transient FDIV never entered (or never left) the wrong path";
  // The stall survives into the Chrome export: the fdiv slices are there.
  const std::string json = obs::to_chrome_trace(log);
  EXPECT_NE(json.find("fdiv"), std::string::npos);
}

// ---------------------------------------------------------------------------
// 2. Observer effect: attaching a sink must change nothing
// ---------------------------------------------------------------------------

TEST(ObserverEffect, ToteProbesByteIdenticalWithAndWithoutSink) {
  os::Machine plain(fig1_options());
  os::Machine traced(fig1_options());
  plain.poke8(os::Machine::kSharedBase, kSecret);
  traced.poke8(os::Machine::kSharedBase, kSecret);
  const core::GadgetProgram g = fig1_gadget(plain);
  const core::GadgetProgram g2 = fig1_gadget(traced);
  obs::EventLog log;
  traced.core().set_trace(&log);

  for (int probe = 0; probe < 6; ++probe) {
    const std::uint8_t tv = probe % 2 ? kSecret : 'T';
    const std::uint64_t a = core::run_tote(plain, g, fig1_regs(tv));
    const std::uint64_t b = core::run_tote(traced, g2, fig1_regs(tv));
    EXPECT_EQ(a, b) << "ToTE diverged on probe " << probe;
  }
  traced.core().set_trace(nullptr);
  EXPECT_FALSE(log.empty());

  // Cycle counters and the entire PMU array must agree, event for event.
  EXPECT_EQ(plain.core().cycle(), traced.core().cycle());
  const uarch::PmuSnapshot pa = plain.core().pmu().snapshot();
  const uarch::PmuSnapshot pb = traced.core().pmu().snapshot();
  for (std::size_t e = 0; e < uarch::kNumPmuEvents; ++e) {
    EXPECT_EQ(pa[e], pb[e])
        << "PMU counter "
        << uarch::to_string(static_cast<uarch::PmuEvent>(e)) << " diverged";
  }
}

TEST(ObserverEffect, MeltdownLeakByteIdenticalWithAndWithoutSink) {
  const std::vector<std::uint8_t> secret = {0xde, 0xad};
  auto leak = [&](obs::EventLog* log, uarch::PmuSnapshot* pmu_out,
                  std::uint64_t* cycle_out) {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    if (log) m.core().set_trace(log);
    const std::uint64_t kaddr = m.plant_kernel_secret(secret);
    core::TetMeltdown atk(m);
    const auto got = atk.leak(kaddr, secret.size());
    m.core().set_trace(nullptr);
    *pmu_out = m.core().pmu().snapshot();
    *cycle_out = m.core().cycle();
    return got;
  };

  uarch::PmuSnapshot pmu_plain{}, pmu_traced{};
  std::uint64_t cyc_plain = 0, cyc_traced = 0;
  obs::EventLog log;
  const auto got_plain = leak(nullptr, &pmu_plain, &cyc_plain);
  const auto got_traced = leak(&log, &pmu_traced, &cyc_traced);

  EXPECT_EQ(got_plain, got_traced);   // architectural outcome
  EXPECT_EQ(cyc_plain, cyc_traced);   // retire timing
  EXPECT_EQ(pmu_plain, pmu_traced);   // every PMU counter
  EXPECT_FALSE(log.empty());
}

// ---------------------------------------------------------------------------
// 3. Runner determinism: --jobs N merges equal sequential
// ---------------------------------------------------------------------------

runner::RunSpec small_md_spec() {
  runner::RunSpec spec;
  spec.model = uarch::CpuModel::KabyLakeI7_7700;
  spec.attack = "md";
  spec.trials = 4;
  spec.payload_bytes = 2;
  spec.batches = 2;
  spec.base_seed = 42;
  spec.collect_trace = true;
  return spec;
}

TEST(RunnerDeterminism, Jobs4TraceAndMetricsEqualSequential) {
  const runner::RunSpec spec = small_md_spec();
  const runner::RunResult seq = runner::run(spec, /*jobs=*/1);
  const runner::RunResult par = runner::run(spec, /*jobs=*/4);

  // Merged event log: byte-identical Chrome export.
  ASSERT_FALSE(seq.events.empty());
  EXPECT_EQ(seq.events.size(), par.events.size());
  EXPECT_EQ(obs::to_chrome_trace(seq.events), obs::to_chrome_trace(par.events));

  // Merged metrics registry and top-down attribution: byte-identical.
  EXPECT_EQ(runner::to_metrics(seq).to_json(), runner::to_metrics(par).to_json());
  EXPECT_EQ(runner::to_metrics(seq).to_csv(), runner::to_metrics(par).to_csv());
  EXPECT_EQ(seq.pmu, par.pmu);
  EXPECT_EQ(seq.topdown.total_cycles, par.topdown.total_cycles);
  EXPECT_EQ(seq.topdown.retiring, par.topdown.retiring);
  EXPECT_EQ(seq.topdown.bad_speculation, par.topdown.bad_speculation);
  EXPECT_EQ(seq.topdown.frontend_bound, par.topdown.frontend_bound);
  EXPECT_EQ(seq.topdown.backend_bound, par.topdown.backend_bound);

  // Per-trial observability rides along index-ordered.
  ASSERT_EQ(seq.trials.size(), par.trials.size());
  for (std::size_t i = 0; i < seq.trials.size(); ++i) {
    EXPECT_EQ(seq.trials[i].seed, par.trials[i].seed);
    EXPECT_EQ(seq.trials[i].pmu, par.trials[i].pmu);
    EXPECT_EQ(seq.trials[i].events.size(), par.trials[i].events.size());
  }
}

TEST(RunnerDeterminism, CollectTraceDoesNotChangeResults) {
  runner::RunSpec off = small_md_spec();
  off.collect_trace = false;
  runner::RunSpec on = small_md_spec();

  const runner::RunResult a = runner::run(off, 1);
  const runner::RunResult b = runner::run(on, 1);
  EXPECT_TRUE(a.events.empty());
  EXPECT_FALSE(b.events.empty());
  // Everything measured must agree; only the captured events differ.
  EXPECT_EQ(a.pmu, b.pmu);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.total_probes, b.total_probes);
  EXPECT_EQ(runner::to_metrics(a).to_json(), runner::to_metrics(b).to_json());
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i)
    EXPECT_EQ(a.trials[i].cycles, b.trials[i].cycles) << "trial " << i;
}

// ---------------------------------------------------------------------------
// 4. Chrome trace-event schema
// ---------------------------------------------------------------------------

/// Minimal parsed view of one exported trace event. The exporter writes
/// fields in a fixed order, so a linear scan of each object is reliable.
struct ParsedEvent {
  char ph = '?';
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  int tid = -1;
  bool has_ts = false;
};

std::uint64_t field_u64(const std::string& obj, const std::string& key,
                        bool* found = nullptr) {
  const std::size_t at = obj.find("\"" + key + "\":");
  if (found) *found = at != std::string::npos;
  if (at == std::string::npos) return 0;
  return std::strtoull(obj.c_str() + at + key.size() + 3, nullptr, 10);
}

/// Split the traceEvents array into one string per top-level event object
/// (brace-depth scan; exporter output contains no braces inside strings)
/// and pull out the schema-relevant fields.
std::vector<ParsedEvent> parse_trace_events(const std::string& json) {
  std::vector<ParsedEvent> out;
  std::size_t arr = json.find("\"traceEvents\":[");
  EXPECT_NE(arr, std::string::npos);
  if (arr == std::string::npos) return out;
  arr += std::string("\"traceEvents\":[").size();

  int depth = 0;
  std::size_t obj_start = 0;
  for (std::size_t i = arr; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '{') {
      if (depth++ == 0) obj_start = i;
    } else if (c == '}') {
      if (--depth == 0) {
        const std::string obj = json.substr(obj_start, i - obj_start + 1);
        ParsedEvent e;
        const std::size_t ph = obj.find("\"ph\":\"");
        if (ph != std::string::npos) e.ph = obj[ph + 6];
        e.ts = field_u64(obj, "ts", &e.has_ts);
        e.dur = field_u64(obj, "dur");
        bool has_tid = false;
        const std::uint64_t tid = field_u64(obj, "tid", &has_tid);
        e.tid = has_tid ? static_cast<int>(tid) : -1;
        out.push_back(e);
      }
    } else if (c == ']' && depth == 0) {
      break;  // end of traceEvents
    }
  }
  return out;
}

void check_chrome_schema(const std::string& json) {
  // Well-formed JSON, full stop.
  ASSERT_TRUE(stats::json_is_valid(json)) << "exporter emitted invalid JSON";

  const std::vector<ParsedEvent> events = parse_trace_events(json);
  ASSERT_FALSE(events.empty());

  std::map<int, std::uint64_t> last_ts;       // per-track monotonicity
  std::map<int, int> open_depth;              // B/E balance per track
  std::map<int, std::vector<std::uint64_t>> open_ts;
  std::map<int, std::uint64_t> slice_end;     // X slices must not overlap

  for (const ParsedEvent& e : events) {
    if (e.ph == 'M') continue;  // metadata carries no timestamp
    ASSERT_TRUE(e.has_ts) << "non-metadata event without ts";
    ASSERT_GE(e.tid, 0);

    // Timestamps monotone per track, in array order.
    auto [it, fresh] = last_ts.emplace(e.tid, e.ts);
    if (!fresh) {
      EXPECT_LE(it->second, e.ts)
          << "track tid=" << e.tid << " timestamps went backwards";
      it->second = e.ts;
    }

    if (e.ph == 'B') {
      ++open_depth[e.tid];
      open_ts[e.tid].push_back(e.ts);
    } else if (e.ph == 'E') {
      ASSERT_GT(open_depth[e.tid], 0)
          << "E without matching B on tid=" << e.tid;
      --open_depth[e.tid];
      EXPECT_GE(e.ts, open_ts[e.tid].back())
          << "duration event ends before it begins on tid=" << e.tid;
      open_ts[e.tid].pop_back();
    } else if (e.ph == 'X') {
      auto [sit, first] = slice_end.emplace(e.tid, e.ts + e.dur);
      if (!first) {
        EXPECT_LE(sit->second, e.ts)
            << "overlapping X slices on tid=" << e.tid << " at ts=" << e.ts;
        sit->second = e.ts + e.dur;
      }
      EXPECT_GT(e.dur, 0u) << "zero-width slice at ts=" << e.ts;
    }
  }
  for (const auto& [tid, depth] : open_depth)
    EXPECT_EQ(depth, 0) << "unbalanced B/E pair left open on tid=" << tid;
}

TEST(ChromeTraceSchema, Fig1ProbeExportIsValid) {
  check_chrome_schema(obs::to_chrome_trace(fig1_tet_log()));
}

TEST(ChromeTraceSchema, MergedRunnerExportIsValid) {
  const runner::RunResult r = runner::run(small_md_spec(), 2);
  check_chrome_schema(obs::to_chrome_trace(r.events));
}

TEST(ChromeTraceSchema, EmptyLogStillExportsValidJson) {
  const obs::EventLog empty;
  const std::string json = obs::to_chrome_trace(empty);
  EXPECT_TRUE(stats::json_is_valid(json));
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  obs::MetricsRegistry reg;
  reg.add_counter("probes", 3);
  reg.add_counter("probes", 4);
  reg.set_gauge("rate", 1.5);
  reg.set_gauge("rate", 2.5);  // overwrite
  reg.add_sample("tote", 100);
  reg.add_sample("tote", 100);
  reg.add_sample("tote", 180);

  EXPECT_EQ(reg.counter("probes"), 7u);
  EXPECT_EQ(reg.gauge("rate"), 2.5);
  EXPECT_EQ(reg.histogram("tote").total(), 3u);
  EXPECT_EQ(reg.histogram("tote").count(100), 2u);
  EXPECT_EQ(reg.counter("missing"), 0u);
  EXPECT_FALSE(reg.has_counter("missing"));
  EXPECT_EQ(reg.names(),
            (std::vector<std::string>{"probes", "rate", "tote"}));
}

TEST(MetricsRegistry, MergeAddsCountersAndBuckets) {
  obs::MetricsRegistry a, b;
  a.add_counter("c", 2);
  a.add_sample("h", 10);
  b.add_counter("c", 5);
  b.add_counter("only_b", 1);
  b.add_sample("h", 20);
  a.merge(b);
  EXPECT_EQ(a.counter("c"), 7u);
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_EQ(a.histogram("h").total(), 2u);
}

TEST(MetricsRegistry, ExportIsDeterministicAndValid) {
  // Same metrics, opposite registration order -> same bytes.
  obs::MetricsRegistry a, b;
  a.add_counter("x", 1);
  a.add_counter("y", 2);
  a.set_gauge("g", 0.5);
  b.set_gauge("g", 0.5);
  b.add_counter("y", 2);
  b.add_counter("x", 1);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_TRUE(stats::json_is_valid(a.to_json()));
  EXPECT_EQ(a.to_csv().rfind("name,kind,field,value\n", 0), 0u);
}

TEST(MetricsRegistry, ImportPmuUsesEventNames) {
  uarch::PmuSnapshot snap{};
  snap[static_cast<std::size_t>(uarch::PmuEvent::CORE_CYCLES)] = 123;
  snap[static_cast<std::size_t>(uarch::PmuEvent::UOPS_ISSUED_ANY)] = 9;
  obs::MetricsRegistry reg;
  reg.import_pmu(snap);
  EXPECT_EQ(
      reg.counter("pmu." + uarch::to_string(uarch::PmuEvent::CORE_CYCLES)),
      123u);
  EXPECT_EQ(reg.counter("pmu." +
                        uarch::to_string(uarch::PmuEvent::UOPS_ISSUED_ANY)),
            9u);
  // One counter per PMU event, even zero-valued ones.
  EXPECT_EQ(reg.names().size(), uarch::kNumPmuEvents);
}

TEST(JsonValidator, AcceptsAndRejects) {
  using stats::json_is_valid;
  EXPECT_TRUE(json_is_valid("{}"));
  EXPECT_TRUE(json_is_valid("[1,2.5,-3e2,\"s\",true,false,null]"));
  EXPECT_TRUE(json_is_valid("{\"a\":{\"b\":[{}]}}"));
  EXPECT_FALSE(json_is_valid(""));
  EXPECT_FALSE(json_is_valid("{"));
  EXPECT_FALSE(json_is_valid("{\"a\":1,}"));
  EXPECT_FALSE(json_is_valid("[1 2]"));
  EXPECT_FALSE(json_is_valid("{\"a\":01}"));
  EXPECT_FALSE(json_is_valid("\"unterminated"));
  EXPECT_FALSE(json_is_valid("{} extra"));
}

// ---------------------------------------------------------------------------
// Top-down attribution
// ---------------------------------------------------------------------------

uarch::PmuSnapshot topdown_snapshot(std::uint64_t total,
                                    std::uint64_t recovery,
                                    std::uint64_t resteer,
                                    std::uint64_t icache,
                                    std::uint64_t rs_empty,
                                    std::uint64_t stalls,
                                    std::uint64_t resource) {
  using uarch::PmuEvent;
  uarch::PmuSnapshot s{};
  s[static_cast<std::size_t>(PmuEvent::CORE_CYCLES)] = total;
  s[static_cast<std::size_t>(PmuEvent::INT_MISC_RECOVERY_CYCLES_ANY)] =
      recovery;
  s[static_cast<std::size_t>(PmuEvent::INT_MISC_CLEAR_RESTEER_CYCLES)] =
      resteer;
  s[static_cast<std::size_t>(PmuEvent::ICACHE_16B_IFDATA_STALL)] = icache;
  s[static_cast<std::size_t>(PmuEvent::RS_EVENTS_EMPTY_CYCLES)] = rs_empty;
  s[static_cast<std::size_t>(PmuEvent::CYCLE_ACTIVITY_STALLS_TOTAL)] = stalls;
  s[static_cast<std::size_t>(PmuEvent::RESOURCE_STALLS_ANY)] = resource;
  return s;
}

std::uint64_t bucket_sum(const obs::TopDown& td) {
  return td.retiring + td.bad_speculation + td.frontend_bound +
         td.backend_bound;
}

TEST(TopDown, BucketsPartitionTotalCycles) {
  const obs::TopDown td =
      obs::attribute_cycles(topdown_snapshot(100, 30, 10, 10, 5, 20, 10));
  EXPECT_EQ(td.total_cycles, 100u);
  EXPECT_EQ(td.bad_speculation, 40u);
  EXPECT_EQ(td.frontend_bound, 15u);
  EXPECT_EQ(td.backend_bound, 30u);
  EXPECT_EQ(td.retiring, 15u);
  EXPECT_EQ(bucket_sum(td), td.total_cycles);
}

TEST(TopDown, ClampsWhenCountersOvershoot) {
  // Recovery alone exceeds the interval: everything is bad speculation,
  // later buckets get nothing, the sum still holds exactly.
  const obs::TopDown td = obs::attribute_cycles(
      topdown_snapshot(100, 1000, 500, 400, 300, 200, 100));
  EXPECT_EQ(td.bad_speculation, 100u);
  EXPECT_EQ(td.frontend_bound, 0u);
  EXPECT_EQ(td.backend_bound, 0u);
  EXPECT_EQ(td.retiring, 0u);
  EXPECT_EQ(bucket_sum(td), td.total_cycles);
}

TEST(TopDown, ZeroIntervalIsAllZero) {
  const obs::TopDown td =
      obs::attribute_cycles(topdown_snapshot(0, 5, 5, 5, 5, 5, 5));
  EXPECT_EQ(td.total_cycles, 0u);
  EXPECT_EQ(bucket_sum(td), 0u);
  EXPECT_EQ(td.retiring_frac(), 0.0);
}

TEST(TopDown, MergePreservesThePartition) {
  obs::TopDown a =
      obs::attribute_cycles(topdown_snapshot(100, 30, 10, 10, 5, 20, 10));
  // b's recovery counter overshoots, so its whole 50-cycle interval clamps
  // to bad speculation.
  const obs::TopDown b = obs::attribute_cycles(
      topdown_snapshot(50, 100, 0, 0, 0, 0, 0));
  a.merge(b);
  EXPECT_EQ(a.total_cycles, 150u);
  EXPECT_EQ(bucket_sum(a), a.total_cycles);
  EXPECT_EQ(a.bad_speculation, 40u + 50u);
}

TEST(TopDown, RealRunPartitionsExactly) {
  // The invariant must hold on real PMU data too, for every trial and for
  // the merged run.
  runner::RunSpec spec = small_md_spec();
  spec.collect_trace = false;
  const runner::RunResult r = runner::run(spec, 1);
  ASSERT_GT(r.topdown.total_cycles, 0u);
  EXPECT_EQ(bucket_sum(r.topdown), r.topdown.total_cycles);
  for (const runner::TrialResult& t : r.trials) {
    EXPECT_EQ(bucket_sum(t.topdown), t.topdown.total_cycles);
    EXPECT_EQ(
        t.topdown.total_cycles,
        t.pmu[static_cast<std::size_t>(uarch::PmuEvent::CORE_CYCLES)]);
  }
  // Fractions in the report line stay within [0, 1].
  EXPECT_GE(r.topdown.bad_speculation_frac(), 0.0);
  EXPECT_LE(r.topdown.bad_speculation_frac(), 1.0);
  EXPECT_FALSE(r.topdown.to_string().empty());
}

// ---------------------------------------------------------------------------
// Trajectory JSON carries the attribution
// ---------------------------------------------------------------------------

TEST(TrajectoryJson, CarriesTopdownAndStaysValid) {
  const runner::RunResult r = runner::run(small_md_spec(), 1);
  const std::string json = runner::to_json(r);
  EXPECT_TRUE(stats::json_is_valid(json));
  EXPECT_NE(json.find("\"topdown\":{\"total_cycles\":"), std::string::npos);
  EXPECT_NE(json.find("\"bad_speculation\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Thread naming convention
// ---------------------------------------------------------------------------

// Every pool worker must announce itself as wsp-work-<i> (the serve daemon
// adds wsp-accept / wsp-client-<i> / wsp-serve-<i>; src/obs/thread_name.h
// pins the convention), so traces, watchdog reports and `top -H` can
// attribute cycles to the right subsystem instead of an anonymous thread.
TEST(ThreadNames, ExecutorWorkersFollowTheNamingConvention) {
  runner::Executor ex(3);
  const auto names =
      ex.map(8, [](std::size_t) { return obs::current_thread_name(); });
  ASSERT_EQ(names.size(), 8u);
  for (const std::string& name : names)
    EXPECT_EQ(name.rfind("wsp-work-", 0), 0u) << "unnamed worker: " << name;
}

}  // namespace
}  // namespace whisper

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden")
      whisper::g_update_golden = true;
  }
  return RUN_ALL_TESTS();
}
