
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analyzer_toolset.cpp" "tests/CMakeFiles/whisper_tests.dir/test_analyzer_toolset.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_analyzer_toolset.cpp.o.d"
  "/root/repo/tests/test_attacks.cpp" "tests/CMakeFiles/whisper_tests.dir/test_attacks.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_attacks.cpp.o.d"
  "/root/repo/tests/test_avx.cpp" "tests/CMakeFiles/whisper_tests.dir/test_avx.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_avx.cpp.o.d"
  "/root/repo/tests/test_bpu_pmu.cpp" "tests/CMakeFiles/whisper_tests.dir/test_bpu_pmu.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_bpu_pmu.cpp.o.d"
  "/root/repo/tests/test_differential.cpp" "tests/CMakeFiles/whisper_tests.dir/test_differential.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_differential.cpp.o.d"
  "/root/repo/tests/test_eviction_pp.cpp" "tests/CMakeFiles/whisper_tests.dir/test_eviction_pp.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_eviction_pp.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/whisper_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_gadget_listings.cpp" "tests/CMakeFiles/whisper_tests.dir/test_gadget_listings.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_gadget_listings.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/whisper_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_kernel_victim.cpp" "tests/CMakeFiles/whisper_tests.dir/test_kernel_victim.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_kernel_victim.cpp.o.d"
  "/root/repo/tests/test_memory_details.cpp" "tests/CMakeFiles/whisper_tests.dir/test_memory_details.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_memory_details.cpp.o.d"
  "/root/repo/tests/test_memory_system.cpp" "tests/CMakeFiles/whisper_tests.dir/test_memory_system.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_memory_system.cpp.o.d"
  "/root/repo/tests/test_os.cpp" "tests/CMakeFiles/whisper_tests.dir/test_os.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_os.cpp.o.d"
  "/root/repo/tests/test_page_table.cpp" "tests/CMakeFiles/whisper_tests.dir/test_page_table.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_page_table.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/whisper_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_pipeline_limits.cpp" "tests/CMakeFiles/whisper_tests.dir/test_pipeline_limits.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_pipeline_limits.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/whisper_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/whisper_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_tet_effect.cpp" "tests/CMakeFiles/whisper_tests.dir/test_tet_effect.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_tet_effect.cpp.o.d"
  "/root/repo/tests/test_tlb_cache.cpp" "tests/CMakeFiles/whisper_tests.dir/test_tlb_cache.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_tlb_cache.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/whisper_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_transient.cpp" "tests/CMakeFiles/whisper_tests.dir/test_transient.cpp.o" "gcc" "tests/CMakeFiles/whisper_tests.dir/test_transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/whisper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/whisper_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/whisper_os.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/whisper_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/whisper_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/whisper_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/whisper_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
