# Empty compiler generated dependencies file for whisper_tests.
# This may be replaced when dependencies are built.
