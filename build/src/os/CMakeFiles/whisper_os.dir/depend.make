# Empty dependencies file for whisper_os.
# This may be replaced when dependencies are built.
