file(REMOVE_RECURSE
  "CMakeFiles/whisper_os.dir/kernel_layout.cpp.o"
  "CMakeFiles/whisper_os.dir/kernel_layout.cpp.o.d"
  "CMakeFiles/whisper_os.dir/machine.cpp.o"
  "CMakeFiles/whisper_os.dir/machine.cpp.o.d"
  "libwhisper_os.a"
  "libwhisper_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
