file(REMOVE_RECURSE
  "libwhisper_os.a"
)
