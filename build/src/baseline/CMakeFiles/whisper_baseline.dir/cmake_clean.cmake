file(REMOVE_RECURSE
  "CMakeFiles/whisper_baseline.dir/avx_kaslr.cpp.o"
  "CMakeFiles/whisper_baseline.dir/avx_kaslr.cpp.o.d"
  "CMakeFiles/whisper_baseline.dir/flush_reload.cpp.o"
  "CMakeFiles/whisper_baseline.dir/flush_reload.cpp.o.d"
  "CMakeFiles/whisper_baseline.dir/prefetch_kaslr.cpp.o"
  "CMakeFiles/whisper_baseline.dir/prefetch_kaslr.cpp.o.d"
  "CMakeFiles/whisper_baseline.dir/prime_probe.cpp.o"
  "CMakeFiles/whisper_baseline.dir/prime_probe.cpp.o.d"
  "libwhisper_baseline.a"
  "libwhisper_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
