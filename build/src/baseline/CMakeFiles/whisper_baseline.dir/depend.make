# Empty dependencies file for whisper_baseline.
# This may be replaced when dependencies are built.
