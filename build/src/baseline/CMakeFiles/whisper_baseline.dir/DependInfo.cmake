
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/avx_kaslr.cpp" "src/baseline/CMakeFiles/whisper_baseline.dir/avx_kaslr.cpp.o" "gcc" "src/baseline/CMakeFiles/whisper_baseline.dir/avx_kaslr.cpp.o.d"
  "/root/repo/src/baseline/flush_reload.cpp" "src/baseline/CMakeFiles/whisper_baseline.dir/flush_reload.cpp.o" "gcc" "src/baseline/CMakeFiles/whisper_baseline.dir/flush_reload.cpp.o.d"
  "/root/repo/src/baseline/prefetch_kaslr.cpp" "src/baseline/CMakeFiles/whisper_baseline.dir/prefetch_kaslr.cpp.o" "gcc" "src/baseline/CMakeFiles/whisper_baseline.dir/prefetch_kaslr.cpp.o.d"
  "/root/repo/src/baseline/prime_probe.cpp" "src/baseline/CMakeFiles/whisper_baseline.dir/prime_probe.cpp.o" "gcc" "src/baseline/CMakeFiles/whisper_baseline.dir/prime_probe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/whisper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/whisper_os.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/whisper_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/whisper_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/whisper_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/whisper_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
