file(REMOVE_RECURSE
  "libwhisper_baseline.a"
)
