file(REMOVE_RECURSE
  "libwhisper_stats.a"
)
