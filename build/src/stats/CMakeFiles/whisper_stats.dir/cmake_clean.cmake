file(REMOVE_RECURSE
  "CMakeFiles/whisper_stats.dir/error_rate.cpp.o"
  "CMakeFiles/whisper_stats.dir/error_rate.cpp.o.d"
  "CMakeFiles/whisper_stats.dir/histogram.cpp.o"
  "CMakeFiles/whisper_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/whisper_stats.dir/summary.cpp.o"
  "CMakeFiles/whisper_stats.dir/summary.cpp.o.d"
  "libwhisper_stats.a"
  "libwhisper_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
