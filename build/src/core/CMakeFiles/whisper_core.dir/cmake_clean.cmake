file(REMOVE_RECURSE
  "CMakeFiles/whisper_core.dir/analyzer.cpp.o"
  "CMakeFiles/whisper_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/whisper_core.dir/attacks/kaslr.cpp.o"
  "CMakeFiles/whisper_core.dir/attacks/kaslr.cpp.o.d"
  "CMakeFiles/whisper_core.dir/attacks/meltdown.cpp.o"
  "CMakeFiles/whisper_core.dir/attacks/meltdown.cpp.o.d"
  "CMakeFiles/whisper_core.dir/attacks/smt_channel.cpp.o"
  "CMakeFiles/whisper_core.dir/attacks/smt_channel.cpp.o.d"
  "CMakeFiles/whisper_core.dir/attacks/spectre_rsb.cpp.o"
  "CMakeFiles/whisper_core.dir/attacks/spectre_rsb.cpp.o.d"
  "CMakeFiles/whisper_core.dir/attacks/spectre_v1.cpp.o"
  "CMakeFiles/whisper_core.dir/attacks/spectre_v1.cpp.o.d"
  "CMakeFiles/whisper_core.dir/attacks/zombieload.cpp.o"
  "CMakeFiles/whisper_core.dir/attacks/zombieload.cpp.o.d"
  "CMakeFiles/whisper_core.dir/covert_channel.cpp.o"
  "CMakeFiles/whisper_core.dir/covert_channel.cpp.o.d"
  "CMakeFiles/whisper_core.dir/detector.cpp.o"
  "CMakeFiles/whisper_core.dir/detector.cpp.o.d"
  "CMakeFiles/whisper_core.dir/gadgets.cpp.o"
  "CMakeFiles/whisper_core.dir/gadgets.cpp.o.d"
  "CMakeFiles/whisper_core.dir/pmu_toolset.cpp.o"
  "CMakeFiles/whisper_core.dir/pmu_toolset.cpp.o.d"
  "libwhisper_core.a"
  "libwhisper_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
