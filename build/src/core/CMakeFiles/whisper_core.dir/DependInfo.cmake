
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cpp" "src/core/CMakeFiles/whisper_core.dir/analyzer.cpp.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/analyzer.cpp.o.d"
  "/root/repo/src/core/attacks/kaslr.cpp" "src/core/CMakeFiles/whisper_core.dir/attacks/kaslr.cpp.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/attacks/kaslr.cpp.o.d"
  "/root/repo/src/core/attacks/meltdown.cpp" "src/core/CMakeFiles/whisper_core.dir/attacks/meltdown.cpp.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/attacks/meltdown.cpp.o.d"
  "/root/repo/src/core/attacks/smt_channel.cpp" "src/core/CMakeFiles/whisper_core.dir/attacks/smt_channel.cpp.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/attacks/smt_channel.cpp.o.d"
  "/root/repo/src/core/attacks/spectre_rsb.cpp" "src/core/CMakeFiles/whisper_core.dir/attacks/spectre_rsb.cpp.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/attacks/spectre_rsb.cpp.o.d"
  "/root/repo/src/core/attacks/spectre_v1.cpp" "src/core/CMakeFiles/whisper_core.dir/attacks/spectre_v1.cpp.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/attacks/spectre_v1.cpp.o.d"
  "/root/repo/src/core/attacks/zombieload.cpp" "src/core/CMakeFiles/whisper_core.dir/attacks/zombieload.cpp.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/attacks/zombieload.cpp.o.d"
  "/root/repo/src/core/covert_channel.cpp" "src/core/CMakeFiles/whisper_core.dir/covert_channel.cpp.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/covert_channel.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/whisper_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/gadgets.cpp" "src/core/CMakeFiles/whisper_core.dir/gadgets.cpp.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/gadgets.cpp.o.d"
  "/root/repo/src/core/pmu_toolset.cpp" "src/core/CMakeFiles/whisper_core.dir/pmu_toolset.cpp.o" "gcc" "src/core/CMakeFiles/whisper_core.dir/pmu_toolset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/whisper_os.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/whisper_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/whisper_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/whisper_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/whisper_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
