file(REMOVE_RECURSE
  "CMakeFiles/whisper_isa.dir/builder.cpp.o"
  "CMakeFiles/whisper_isa.dir/builder.cpp.o.d"
  "CMakeFiles/whisper_isa.dir/interpreter.cpp.o"
  "CMakeFiles/whisper_isa.dir/interpreter.cpp.o.d"
  "CMakeFiles/whisper_isa.dir/isa.cpp.o"
  "CMakeFiles/whisper_isa.dir/isa.cpp.o.d"
  "CMakeFiles/whisper_isa.dir/program.cpp.o"
  "CMakeFiles/whisper_isa.dir/program.cpp.o.d"
  "libwhisper_isa.a"
  "libwhisper_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
