# Empty dependencies file for whisper_isa.
# This may be replaced when dependencies are built.
