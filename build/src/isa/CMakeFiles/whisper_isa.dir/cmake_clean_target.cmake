file(REMOVE_RECURSE
  "libwhisper_isa.a"
)
