file(REMOVE_RECURSE
  "libwhisper_mem.a"
)
