file(REMOVE_RECURSE
  "CMakeFiles/whisper_mem.dir/cache.cpp.o"
  "CMakeFiles/whisper_mem.dir/cache.cpp.o.d"
  "CMakeFiles/whisper_mem.dir/lfb.cpp.o"
  "CMakeFiles/whisper_mem.dir/lfb.cpp.o.d"
  "CMakeFiles/whisper_mem.dir/memory_system.cpp.o"
  "CMakeFiles/whisper_mem.dir/memory_system.cpp.o.d"
  "CMakeFiles/whisper_mem.dir/page_table.cpp.o"
  "CMakeFiles/whisper_mem.dir/page_table.cpp.o.d"
  "CMakeFiles/whisper_mem.dir/phys_mem.cpp.o"
  "CMakeFiles/whisper_mem.dir/phys_mem.cpp.o.d"
  "CMakeFiles/whisper_mem.dir/tlb.cpp.o"
  "CMakeFiles/whisper_mem.dir/tlb.cpp.o.d"
  "libwhisper_mem.a"
  "libwhisper_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
