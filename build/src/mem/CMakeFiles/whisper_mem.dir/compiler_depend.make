# Empty compiler generated dependencies file for whisper_mem.
# This may be replaced when dependencies are built.
