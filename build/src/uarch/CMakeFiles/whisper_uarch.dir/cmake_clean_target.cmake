file(REMOVE_RECURSE
  "libwhisper_uarch.a"
)
