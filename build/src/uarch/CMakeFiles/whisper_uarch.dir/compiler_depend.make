# Empty compiler generated dependencies file for whisper_uarch.
# This may be replaced when dependencies are built.
