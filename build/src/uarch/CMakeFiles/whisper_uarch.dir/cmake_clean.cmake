file(REMOVE_RECURSE
  "CMakeFiles/whisper_uarch.dir/branch_predictor.cpp.o"
  "CMakeFiles/whisper_uarch.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/whisper_uarch.dir/config.cpp.o"
  "CMakeFiles/whisper_uarch.dir/config.cpp.o.d"
  "CMakeFiles/whisper_uarch.dir/core.cpp.o"
  "CMakeFiles/whisper_uarch.dir/core.cpp.o.d"
  "CMakeFiles/whisper_uarch.dir/pmu.cpp.o"
  "CMakeFiles/whisper_uarch.dir/pmu.cpp.o.d"
  "CMakeFiles/whisper_uarch.dir/trace.cpp.o"
  "CMakeFiles/whisper_uarch.dir/trace.cpp.o.d"
  "libwhisper_uarch.a"
  "libwhisper_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
