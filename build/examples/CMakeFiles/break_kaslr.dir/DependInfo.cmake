
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/break_kaslr.cpp" "examples/CMakeFiles/break_kaslr.dir/break_kaslr.cpp.o" "gcc" "examples/CMakeFiles/break_kaslr.dir/break_kaslr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/whisper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/whisper_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/whisper_os.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/whisper_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/whisper_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/whisper_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/whisper_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
