# Empty compiler generated dependencies file for break_kaslr.
# This may be replaced when dependencies are built.
