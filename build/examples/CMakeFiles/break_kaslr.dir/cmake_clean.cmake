file(REMOVE_RECURSE
  "CMakeFiles/break_kaslr.dir/break_kaslr.cpp.o"
  "CMakeFiles/break_kaslr.dir/break_kaslr.cpp.o.d"
  "break_kaslr"
  "break_kaslr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/break_kaslr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
