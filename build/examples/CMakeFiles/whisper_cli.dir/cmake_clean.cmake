file(REMOVE_RECURSE
  "CMakeFiles/whisper_cli.dir/whisper_cli.cpp.o"
  "CMakeFiles/whisper_cli.dir/whisper_cli.cpp.o.d"
  "whisper_cli"
  "whisper_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whisper_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
