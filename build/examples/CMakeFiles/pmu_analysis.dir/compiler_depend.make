# Empty compiler generated dependencies file for pmu_analysis.
# This may be replaced when dependencies are built.
