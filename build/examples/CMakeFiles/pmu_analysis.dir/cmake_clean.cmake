file(REMOVE_RECURSE
  "CMakeFiles/pmu_analysis.dir/pmu_analysis.cpp.o"
  "CMakeFiles/pmu_analysis.dir/pmu_analysis.cpp.o.d"
  "pmu_analysis"
  "pmu_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmu_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
