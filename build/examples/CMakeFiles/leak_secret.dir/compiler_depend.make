# Empty compiler generated dependencies file for leak_secret.
# This may be replaced when dependencies are built.
