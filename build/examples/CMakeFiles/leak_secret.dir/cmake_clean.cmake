file(REMOVE_RECURSE
  "CMakeFiles/leak_secret.dir/leak_secret.cpp.o"
  "CMakeFiles/leak_secret.dir/leak_secret.cpp.o.d"
  "leak_secret"
  "leak_secret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leak_secret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
