# Empty compiler generated dependencies file for fig3_frontend.
# This may be replaced when dependencies are built.
