file(REMOVE_RECURSE
  "CMakeFiles/fig3_frontend.dir/fig3_frontend.cpp.o"
  "CMakeFiles/fig3_frontend.dir/fig3_frontend.cpp.o.d"
  "fig3_frontend"
  "fig3_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
