file(REMOVE_RECURSE
  "CMakeFiles/micro_probes.dir/micro_probes.cpp.o"
  "CMakeFiles/micro_probes.dir/micro_probes.cpp.o.d"
  "micro_probes"
  "micro_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
