# Empty dependencies file for micro_probes.
# This may be replaced when dependencies are built.
