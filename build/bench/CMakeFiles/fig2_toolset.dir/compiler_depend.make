# Empty compiler generated dependencies file for fig2_toolset.
# This may be replaced when dependencies are built.
