file(REMOVE_RECURSE
  "CMakeFiles/fig2_toolset.dir/fig2_toolset.cpp.o"
  "CMakeFiles/fig2_toolset.dir/fig2_toolset.cpp.o.d"
  "fig2_toolset"
  "fig2_toolset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_toolset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
