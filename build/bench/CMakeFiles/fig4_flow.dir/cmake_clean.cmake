file(REMOVE_RECURSE
  "CMakeFiles/fig4_flow.dir/fig4_flow.cpp.o"
  "CMakeFiles/fig4_flow.dir/fig4_flow.cpp.o.d"
  "fig4_flow"
  "fig4_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
