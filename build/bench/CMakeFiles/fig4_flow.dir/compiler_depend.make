# Empty compiler generated dependencies file for fig4_flow.
# This may be replaced when dependencies are built.
