# Empty compiler generated dependencies file for sec41_throughput.
# This may be replaced when dependencies are built.
