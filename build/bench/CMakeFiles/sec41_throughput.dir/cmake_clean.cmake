file(REMOVE_RECURSE
  "CMakeFiles/sec41_throughput.dir/sec41_throughput.cpp.o"
  "CMakeFiles/sec41_throughput.dir/sec41_throughput.cpp.o.d"
  "sec41_throughput"
  "sec41_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec41_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
