# Empty compiler generated dependencies file for fig1_tet_gadget.
# This may be replaced when dependencies are built.
