file(REMOVE_RECURSE
  "CMakeFiles/fig1_tet_gadget.dir/fig1_tet_gadget.cpp.o"
  "CMakeFiles/fig1_tet_gadget.dir/fig1_tet_gadget.cpp.o.d"
  "fig1_tet_gadget"
  "fig1_tet_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_tet_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
