# Empty compiler generated dependencies file for sec44_smt.
# This may be replaced when dependencies are built.
