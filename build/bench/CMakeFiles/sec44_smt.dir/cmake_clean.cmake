file(REMOVE_RECURSE
  "CMakeFiles/sec44_smt.dir/sec44_smt.cpp.o"
  "CMakeFiles/sec44_smt.dir/sec44_smt.cpp.o.d"
  "sec44_smt"
  "sec44_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec44_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
