# Empty dependencies file for sec45_kaslr.
# This may be replaced when dependencies are built.
