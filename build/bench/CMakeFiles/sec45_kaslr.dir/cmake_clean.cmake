file(REMOVE_RECURSE
  "CMakeFiles/sec45_kaslr.dir/sec45_kaslr.cpp.o"
  "CMakeFiles/sec45_kaslr.dir/sec45_kaslr.cpp.o.d"
  "sec45_kaslr"
  "sec45_kaslr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec45_kaslr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
