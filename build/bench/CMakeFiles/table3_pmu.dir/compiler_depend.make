# Empty compiler generated dependencies file for table3_pmu.
# This may be replaced when dependencies are built.
