file(REMOVE_RECURSE
  "CMakeFiles/table3_pmu.dir/table3_pmu.cpp.o"
  "CMakeFiles/table3_pmu.dir/table3_pmu.cpp.o.d"
  "table3_pmu"
  "table3_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
