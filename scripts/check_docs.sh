#!/usr/bin/env bash
# Tier-2 docs check: docs/REPRODUCING.md and bench/ must stay in sync.
#
#   1. Every `bench/<name>` the guide references must exist as a harness
#      source (bench/<name>.cpp) — no documenting binaries that were
#      renamed or removed.
#   2. Every harness in bench/ must be documented in the guide — adding a
#      figure/table reproduction without telling people how to run it
#      fails this check.
#   3. When a build directory is given and contains the bench binaries,
#      each documented binary must have been built.
#   4. Every runner flag the shared harness parser (bench/bench_util.h)
#      accepts must be documented in the guide's flag table — adding a
#      flag without documenting it fails this check.
#   5. Same for the extra flags bench/noise_sweep.cpp parses on top of the
#      shared set (--noise-profile, --attacks, ...).
#   6. Same for the extra flags bench/perf_baseline.cpp parses
#      (--attacks, --trials, ...).
#   7. Same for every flag examples/whisper_cli.cpp parses (--fault-plan,
#      --retries, ...) — the CLI is the guide's primary entry point.
#   8. docs/PERFORMANCE.md must exist and document every measurement-cell
#      and speedup key bench/perf_baseline.cpp writes into BENCH_perf.json
#      (fresh_jobs1, reset_jobs1, ff_jobs1, reset_jobsN, speedup,
#      ff_speedup, ...) — the column glossary may not drift from the
#      harness's actual output keys.
#   9. The whisper_serve daemon's surface must be documented: every
#      protocol verb in src/serve/protocol.h's kVerbs array, every flag
#      examples/whisper_serve.cpp parses, and every flag
#      bench/serve_soak.cpp parses must appear in docs/REPRODUCING.md.
#  10. The defense registry (src/defense/defense.cpp) and the docs must
#      agree: every registered defense name must be documented in both
#      docs/REPRODUCING.md and docs/ARCHITECTURE.md, and every flag
#      bench/defense_matrix.cpp parses must appear in the guide. The
#      generated docs/DEFENSE_MATRIX.md must exist and mention every
#      registered defense (a registry addition forces a report refresh).
#  11. Same for the attack registry (src/core/attacks/registry.cpp):
#      every registered attack name must be documented (backticked) in
#      docs/REPRODUCING.md, docs/ARCHITECTURE.md and README.md, and must
#      appear in the generated docs/DEFENSE_MATRIX.md — registering a new
#      attack without docs or a matrix refresh fails this check.
#  12. The distributed sweep surface must be documented: every flag
#      bench/dist_soak.cpp parses, the `whisper_cli sweep` subcommand and
#      its `--endpoints` pool grammar, the BENCH_dist.json trajectory, and
#      invariant 13 (distribution is invisible) in docs/ARCHITECTURE.md.
#
# Usage: check_docs.sh <repo-root> [build-dir]
# Wired into ctest as `docs_reproducing_sync` (LABELS tier2).
set -u

root="${1:-.}"
build="${2:-}"
guide="$root/docs/REPRODUCING.md"
perf_doc="$root/docs/PERFORMANCE.md"
fail=0

if [[ ! -f "$guide" ]]; then
  echo "FAIL: $guide does not exist"
  exit 1
fi

if [[ ! -f "$perf_doc" ]]; then
  echo "FAIL: $perf_doc does not exist"
  exit 1
fi

# Names referenced as bench/<name> in the guide (strip code-fence noise).
documented=$(grep -oE 'bench/[a-z0-9_]+' "$guide" | sed 's|bench/||' |
             sort -u)

# Harness sources in bench/ (bench_util.h is the shared header, not a
# binary).
harnesses=$(ls "$root"/bench/*.cpp | xargs -n1 basename | sed 's|\.cpp$||' |
            sort -u)

for name in $documented; do
  if [[ ! -f "$root/bench/$name.cpp" ]]; then
    echo "FAIL: docs/REPRODUCING.md references bench/$name but" \
         "bench/$name.cpp does not exist"
    fail=1
  fi
done

for name in $harnesses; do
  if ! grep -q "bench/$name" "$guide"; then
    echo "FAIL: bench/$name.cpp is not documented in docs/REPRODUCING.md"
    fail=1
  fi
done

# Flags the shared harness parser accepts (string literals "--..." in
# bench_util.h) must each appear in the guide.
flags=$(grep -oE '"--[a-z-]+"' "$root/bench/bench_util.h" | tr -d '"' |
        sort -u)
for flag in $flags; do
  if ! grep -q -- "\`$flag" "$guide"; then
    echo "FAIL: bench/bench_util.h parses $flag but docs/REPRODUCING.md" \
         "does not document it"
    fail=1
  fi
done

# The noise-sweep harness has its own parser on top of the shared one; its
# flags must be documented the same way.
sweep_flags=$(grep -oE '"--[a-z-]+"' "$root/bench/noise_sweep.cpp" |
              tr -d '"' | sort -u)
for flag in $sweep_flags; do
  if ! grep -q -- "\`$flag" "$guide"; then
    echo "FAIL: bench/noise_sweep.cpp parses $flag but docs/REPRODUCING.md" \
         "does not document it"
    fail=1
  fi
done

# perf_baseline likewise parses extra flags of its own.
perf_flags=$(grep -oE '"--[a-z-]+"' "$root/bench/perf_baseline.cpp" |
             tr -d '"' | sort -u)
for flag in $perf_flags; do
  if ! grep -q -- "\`$flag" "$guide"; then
    echo "FAIL: bench/perf_baseline.cpp parses $flag but" \
         "docs/REPRODUCING.md does not document it"
    fail=1
  fi
done

# whisper_cli's flag set (shared harness flags plus the fault-tolerance
# knobs) must be documented too.
cli_flags=$(grep -oE '"--[a-z-]+"' "$root/examples/whisper_cli.cpp" |
            tr -d '"' | sort -u)
for flag in $cli_flags; do
  if ! grep -q -- "\`$flag" "$guide"; then
    echo "FAIL: examples/whisper_cli.cpp parses $flag but" \
         "docs/REPRODUCING.md does not document it"
    fail=1
  fi
done

# The BENCH_perf.json column glossary in docs/PERFORMANCE.md must cover
# every measurement-cell / speedup key perf_baseline.cpp actually emits
# (the keys containing "_jobs" or "speedup" — the per-cell scalars inside
# each cell, wall_seconds etc., ride along with them).
perf_cols=$(grep -oE 'w\.key\("[A-Za-z_0-9]+"\)' \
            "$root/bench/perf_baseline.cpp" |
            sed 's/.*"\([^"]*\)".*/\1/' | grep -E '_jobs|speedup' |
            sort -u)
for col in $perf_cols; do
  if ! grep -q -- "\`$col\`" "$perf_doc"; then
    echo "FAIL: bench/perf_baseline.cpp writes BENCH_perf.json key" \
         "'$col' but docs/PERFORMANCE.md does not document it"
    fail=1
  fi
done

# The serve daemon's wire surface: every verb in the kVerbs array
# (src/serve/protocol.h) and every flag of the daemon binary and the soak
# harness must be documented in the guide.
verbs=$(sed -n '/kVerbs\[\]/,/};/p' "$root/src/serve/protocol.h" |
        grep -oE '"[a-z]+"' | tr -d '"' | sort -u)
if [[ -z "$verbs" ]]; then
  echo "FAIL: could not extract kVerbs from src/serve/protocol.h"
  fail=1
fi
for verb in $verbs; do
  if ! grep -q -- "\`$verb\`" "$guide"; then
    echo "FAIL: src/serve/protocol.h lists verb '$verb' but" \
         "docs/REPRODUCING.md does not document it"
    fail=1
  fi
done

serve_flags=$(grep -oE '"--[a-z-]+"' "$root/examples/whisper_serve.cpp" |
              tr -d '"' | sort -u)
for flag in $serve_flags; do
  if ! grep -q -- "\`$flag" "$guide"; then
    echo "FAIL: examples/whisper_serve.cpp parses $flag but" \
         "docs/REPRODUCING.md does not document it"
    fail=1
  fi
done

soak_flags=$(grep -oE '"--[a-z-]+"' "$root/bench/serve_soak.cpp" |
             tr -d '"' | sort -u)
for flag in $soak_flags; do
  if ! grep -q -- "\`$flag" "$guide"; then
    echo "FAIL: bench/serve_soak.cpp parses $flag but" \
         "docs/REPRODUCING.md does not document it"
    fail=1
  fi
done

# The defense registry is the systematization's name authority: every name
# in src/defense/defense.cpp's kRegistry table must be documented (backticked)
# in both the guide and the architecture doc, and must appear in the
# generated matrix report.
arch_doc="$root/docs/ARCHITECTURE.md"
matrix_doc="$root/docs/DEFENSE_MATRIX.md"
if [[ ! -f "$arch_doc" ]]; then
  echo "FAIL: $arch_doc does not exist"
  fail=1
fi
if [[ ! -f "$matrix_doc" ]]; then
  echo "FAIL: $matrix_doc does not exist (generate with bench/defense_matrix" \
       "--report)"
  fail=1
fi
defenses=$(sed -n '/kRegistry = {/,/^  };/p' "$root/src/defense/defense.cpp" |
           grep -oE '^      \{"[a-z0-9_-]+"' | grep -oE '[a-z0-9_-]+' |
           sort -u)
if [[ -z "$defenses" ]]; then
  echo "FAIL: could not extract the defense registry from" \
       "src/defense/defense.cpp"
  fail=1
fi
for name in $defenses; do
  if ! grep -q -- "\`$name\`" "$guide"; then
    echo "FAIL: defense '$name' is registered but docs/REPRODUCING.md does" \
         "not document it"
    fail=1
  fi
  if [[ -f "$arch_doc" ]] && ! grep -q -- "\`$name\`" "$arch_doc"; then
    echo "FAIL: defense '$name' is registered but docs/ARCHITECTURE.md does" \
         "not document it"
    fail=1
  fi
  if [[ -f "$matrix_doc" ]] && ! grep -q -- "$name" "$matrix_doc"; then
    echo "FAIL: defense '$name' is registered but docs/DEFENSE_MATRIX.md" \
         "does not cover it — regenerate the report"
    fail=1
  fi
done

# The attack registry is the name authority on the other axis of the
# systematization matrix: every name in src/core/attacks/registry.cpp's
# table must be documented (backticked) in the guide, the architecture doc
# and the README, and must appear in the generated matrix report.
readme="$root/README.md"
attacks=$(sed -n '/std::vector<AttackInfo> registry = {/,/^  };/p' \
          "$root/src/core/attacks/registry.cpp" |
          grep -oE '^      \{"[a-z0-9_-]+"' | grep -oE '[a-z0-9_-]+' |
          sort -u)
if [[ -z "$attacks" ]]; then
  echo "FAIL: could not extract the attack registry from" \
       "src/core/attacks/registry.cpp"
  fail=1
fi
for name in $attacks; do
  if ! grep -q -- "\`$name\`" "$guide"; then
    echo "FAIL: attack '$name' is registered but docs/REPRODUCING.md does" \
         "not document it"
    fail=1
  fi
  if [[ -f "$arch_doc" ]] && ! grep -q -- "\`$name\`" "$arch_doc"; then
    echo "FAIL: attack '$name' is registered but docs/ARCHITECTURE.md does" \
         "not document it"
    fail=1
  fi
  if [[ -f "$readme" ]] && ! grep -q -- "\`$name\`" "$readme"; then
    echo "FAIL: attack '$name' is registered but README.md does not list it"
    fail=1
  fi
  if [[ -f "$matrix_doc" ]] && ! grep -q -- "$name" "$matrix_doc"; then
    echo "FAIL: attack '$name' is registered but docs/DEFENSE_MATRIX.md" \
         "does not cover it — regenerate the report"
    fail=1
  fi
done

matrix_flags=$(grep -oE '"--[a-z-]+"' "$root/bench/defense_matrix.cpp" |
               tr -d '"' | sort -u)
for flag in $matrix_flags; do
  if ! grep -q -- "\`$flag" "$guide"; then
    echo "FAIL: bench/defense_matrix.cpp parses $flag but" \
         "docs/REPRODUCING.md does not document it"
    fail=1
  fi
done

# The distributed sweep surface: the soak harness's flags, the sweep
# subcommand and its endpoint grammar, the trajectory name, and the
# invariant it all hangs off.
dist_flags=$(grep -oE '"--[a-z-]+"' "$root/bench/dist_soak.cpp" |
             tr -d '"' | sort -u)
for flag in $dist_flags; do
  if ! grep -q -- "\`$flag" "$guide"; then
    echo "FAIL: bench/dist_soak.cpp parses $flag but" \
         "docs/REPRODUCING.md does not document it"
    fail=1
  fi
done
for needle in 'whisper_cli sweep' '--endpoints' 'BENCH_dist.json' \
              'trial_first'; do
  if ! grep -q -- "$needle" "$guide"; then
    echo "FAIL: docs/REPRODUCING.md does not mention '$needle'" \
         "(distributed sweep surface undocumented)"
    fail=1
  fi
done
if [[ -f "$arch_doc" ]] && ! grep -q "invariant 13" "$arch_doc"; then
  echo "FAIL: docs/ARCHITECTURE.md does not state invariant 13" \
       "(distribution is invisible)"
  fail=1
fi

if [[ -n "$build" && -d "$build/bench" ]]; then
  for name in $documented; do
    if [[ -f "$root/bench/$name.cpp" && ! -x "$build/bench/$name" ]]; then
      echo "FAIL: documented binary $build/bench/$name was not built"
      fail=1
    fi
  done
fi

if [[ $fail -eq 0 ]]; then
  echo "OK: $(echo "$documented" | wc -w) documented harnesses," \
       "$(echo "$harnesses" | wc -w) bench sources," \
       "$(echo "$flags" | wc -w)+$(echo "$sweep_flags" | wc -w)+$(echo \
       "$perf_flags" | wc -w)+$(echo "$cli_flags" | wc -w) harness+cli" \
       "flags, $(echo "$perf_cols" | wc -w) perf columns," \
       "$(echo "$verbs" | wc -w) serve verbs +" \
       "$(echo "$serve_flags" | wc -w)+$(echo "$soak_flags" | wc -w)+$(echo \
       "$dist_flags" | wc -w) serve+dist flags," \
       "$(echo "$defenses" | wc -w) defenses +" \
       "$(echo "$matrix_flags" | wc -w) matrix flags," \
       "$(echo "$attacks" | wc -w) attacks, all in sync"
fi
exit $fail
