// Example: derandomise the kernel with TET-KASLR and climb the defense
// ladder — plain KASLR, +KPTI, +FLARE, inside Docker — finishing with what
// the disclosure is worth (ROP target addresses) and the FGKASLR caveat.
#include <cstdio>

#include "baseline/prefetch_kaslr.h"
#include "core/attacks/kaslr.h"
#include "os/machine.h"

using namespace whisper;

namespace {

void attack(const char* label, const os::MachineOptions& opts) {
  os::Machine m(opts);
  core::TetKaslr tet(m, {.rounds = 3});
  const auto r = tet.run();
  std::printf("%-28s TET-KASLR: %s  base=%#llx (true %#llx), %.4f s sim, "
              "%zu probes\n",
              label, r.success ? "BROKEN " : "holds  ",
              static_cast<unsigned long long>(r.found_base),
              static_cast<unsigned long long>(r.true_base), r.seconds,
              r.probes);

  os::Machine m2(opts);
  baseline::PrefetchKaslr pf(m2, {.rounds = 3});
  const auto p = pf.run();
  std::printf("%-28s prefetch : %s\n", "",
              p.success ? "BROKEN  (EntryBleed-style walk timing)"
                        : "holds   (timing uniform)");
}

}  // namespace

int main() {
  const uarch::CpuModel cpu = uarch::CpuModel::CometLakeI9_10980XE;
  std::printf("target: %s — kernel image somewhere in the 512-slot window "
              "%#llx..%#llx\n\n",
              uarch::make_config(cpu).name.c_str(),
              static_cast<unsigned long long>(os::kKaslrRegionStart),
              static_cast<unsigned long long>(os::kKaslrRegionEnd));

  attack("plain KASLR:", {.model = cpu, .seed = 7});
  attack("KASLR + KPTI:", {.model = cpu, .kernel = {.kpti = true},
                           .seed = 8});
  attack("KASLR + KPTI + FLARE:",
         {.model = cpu, .kernel = {.kpti = true, .flare = true}, .seed = 9});
  attack("KASLR + KPTI (Docker):",
         {.model = cpu, .kernel = {.kpti = true}, .docker = true,
          .seed = 10});
  attack("KASLR on AMD Zen 3:",
         {.model = uarch::CpuModel::Zen3Ryzen5_5600G, .seed = 11});

  // What the attacker does with the base (code reuse, §2.1).
  std::printf("\nwith the base disclosed, classic offsets give ROP "
              "targets:\n");
  {
    os::Machine m({.model = cpu, .seed = 8});
    core::TetKaslr tet(m);
    const auto r = tet.run();
    for (const char* sym : {"commit_creds", "prepare_kernel_cred",
                            "modprobe_path"}) {
      std::printf("  %-22s guess %#llx  actual %#llx  %s\n", sym,
                  static_cast<unsigned long long>(
                      r.found_base +
                      (m.kernel().symbol_guess(sym) -
                       m.kernel().kernel_base())),
                  static_cast<unsigned long long>(m.kernel().symbol_addr(sym)),
                  m.kernel().symbol_guess(sym) == m.kernel().symbol_addr(sym)
                      ? "(exact)"
                      : "(moved)");
    }
  }

  // ...unless the kernel shuffles functions (FGKASLR, §6.2).
  std::printf("\nwith FGKASLR (the paper's suggested mitigation):\n");
  {
    os::Machine m({.model = cpu, .kernel = {.fgkaslr = true}, .seed = 12});
    core::TetKaslr tet(m);
    const auto r = tet.run();
    std::printf("  base still leaks (%s), but:\n",
                r.success ? "broken" : "holds");
    for (const char* sym : {"commit_creds", "prepare_kernel_cred"}) {
      std::printf("  %-22s guess %#llx  actual %#llx  %s\n", sym,
                  static_cast<unsigned long long>(m.kernel().symbol_guess(sym)),
                  static_cast<unsigned long long>(m.kernel().symbol_addr(sym)),
                  m.kernel().symbol_guess(sym) == m.kernel().symbol_addr(sym)
                      ? "(exact)"
                      : "(moved — offset-based ROP breaks)");
    }
  }
  return 0;
}
