// whisper_serve — the attack-as-a-service daemon.
//
//   whisper_serve [--socket PATH] [--jobs J] [--pool N]
//   whisper_serve --listen HOST:PORT [--jobs J] [--pool N]
//   whisper_serve --request JSON [--socket PATH | --connect HOST:PORT]
//   whisper_serve --shutdown [--socket PATH | --connect HOST:PORT]
//   whisper_serve --selftest
//
// Daemon mode binds a unix-domain socket (default /tmp/whisper_serve.sock)
// or, with --listen, a TCP host:port — same protocol, same bytes; TCP is
// what makes a daemon one endpoint of a sweep pool (whisper_cli sweep
// --endpoints). The newline-framed JSON protocol of src/serve/protocol.h
// has verbs run, ping, list, metrics, shutdown. Try it with nothing
// fancier than nc:
//
//   whisper_serve --socket /tmp/w.sock &
//   printf '%s\n' '{"id":1,"verb":"run","attack":"cc","trials":2,"seed":7}' |
//     nc -U /tmp/w.sock
//
// --request sends one request line from the command line, prints every
// response line to stdout, and exits when the request's stream terminates
// (done/error/pong/attacks/metrics/bye); --connect targets a TCP daemon
// instead of the unix socket. --shutdown is shorthand for sending the
// shutdown verb. --selftest runs a loopback round-trip with no socket at
// all and exits 0 on success (used as a smoke check).
//
// --jobs sets the worker count (throughput only: response bytes are
// byte-identical for any value — invariant 11, docs/ARCHITECTURE.md);
// --pool caps the shared machine pool (admission control).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport_loopback.h"
#include "serve/transport_tcp.h"
#include "serve/transport_unix.h"

using namespace whisper;

namespace {

struct Args {
  std::vector<std::string> positional;
  bool has(const std::string& flag) const {
    for (const auto& a : positional)
      if (a == flag) return true;
    return false;
  }
  std::string value(const std::string& flag, const std::string& dflt) const {
    for (std::size_t i = 0; i + 1 < positional.size(); ++i)
      if (positional[i] == flag) return positional[i + 1];
    return dflt;
  }
};

void usage() {
  std::puts(
      "whisper_serve — attack-as-a-service daemon\n"
      "\n"
      "  whisper_serve [--socket PATH] [--jobs J] [--pool N]\n"
      "  whisper_serve --listen HOST:PORT [--jobs J] [--pool N]\n"
      "  whisper_serve --request JSON [--socket PATH | --connect HOST:PORT]\n"
      "  whisper_serve --shutdown [--socket PATH | --connect HOST:PORT]\n"
      "  whisper_serve --selftest\n"
      "\n"
      "Protocol: one JSON object per line; verbs run, ping, list, metrics,\n"
      "shutdown (src/serve/protocol.h; docs/REPRODUCING.md \"Serving\").");
}

/// Is `line` the last response of its request's stream?
bool terminal_response(const std::string& line) {
  for (const char* t : {"\"done\"", "\"error\"", "\"pong\"", "\"attacks\"",
                        "\"metrics\"", "\"bye\""})
    if (line.find(std::string("\"type\":") + t) != std::string::npos)
      return true;
  return false;
}

/// One-shot client: send `request`, print responses until the stream ends.
/// `tcp_address` (from --connect) wins over the unix socket path.
int send_request(const std::string& socket_path, const std::string& tcp_address,
                 const std::string& request) {
  auto conn = tcp_address.empty()
                  ? serve::UnixSocketTransport::dial(socket_path)
                  : serve::TcpTransport::dial(tcp_address);
  if (!conn->write_line(request)) {
    std::fprintf(stderr, "whisper_serve: send failed\n");
    return 1;
  }
  std::string line;
  bool saw_error = false;
  while (conn->read_line(line)) {
    std::printf("%s\n", line.c_str());
    if (line.find("\"type\":\"error\"") != std::string::npos) saw_error = true;
    if (terminal_response(line)) break;
  }
  return saw_error ? 1 : 0;
}

/// Loopback smoke test: no socket, one run request, assert the stream
/// terminates with a done line.
int selftest() {
  serve::LoopbackTransport transport;
  serve::ServerOptions opts;
  opts.jobs = 2;
  serve::Server server(transport, opts);
  server.start();
  auto client = transport.connect();
  client->send(R"({"id":1,"verb":"run","attack":"cc","trials":2,"seed":7})");
  client->close_send();
  std::string line;
  bool done = false;
  while (client->recv(line)) {
    std::printf("%s\n", line.c_str());
    if (line.find("\"type\":\"done\"") != std::string::npos) {
      done = true;
      break;
    }
    if (line.find("\"type\":\"error\"") != std::string::npos) break;
  }
  server.stop();
  if (!done) {
    std::fprintf(stderr, "whisper_serve: selftest failed\n");
    return 1;
  }
  std::puts("selftest ok");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) args.positional.emplace_back(argv[i]);

  if (args.has("--help") || args.has("-h")) {
    usage();
    return 0;
  }
  if (args.has("--selftest")) return selftest();

  const std::string socket_path =
      args.value("--socket", "/tmp/whisper_serve.sock");
  const std::string tcp_connect = args.value("--connect", "");
  const std::string tcp_listen = args.value("--listen", "");

  try {
    if (args.has("--request"))
      return send_request(socket_path, tcp_connect,
                          args.value("--request", ""));
    if (args.has("--shutdown"))
      return send_request(socket_path, tcp_connect,
                          R"({"id":1,"verb":"shutdown"})");

    // Daemon mode: TCP with --listen, unix socket otherwise. Same server,
    // same protocol, same response bytes either way.
    serve::ServerOptions opts;
    opts.jobs = std::stoi(args.value("--jobs", "1"));
    opts.pool_capacity =
        static_cast<std::size_t>(std::stoul(args.value("--pool", "4")));
    std::unique_ptr<serve::Transport> transport;
    std::string where;
    if (!tcp_listen.empty()) {
      auto tcp = std::make_unique<serve::TcpTransport>(tcp_listen);
      where = tcp->address();
      transport = std::move(tcp);
    } else {
      transport = std::make_unique<serve::UnixSocketTransport>(socket_path);
      where = socket_path;
    }
    serve::Server server(*transport, opts);
    server.start();
    std::fprintf(stderr,
                 "whisper_serve: listening on %s (jobs=%d, pool=%zu)\n",
                 where.c_str(), opts.jobs, opts.pool_capacity);
    server.wait_shutdown();
    server.stop();
    std::fprintf(stderr, "whisper_serve: bye\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "whisper_serve: %s\n", e.what());
    return 1;
  }
}
