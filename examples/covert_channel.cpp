// Example: move a message across two covert channels built on the Whisper
// primitive — the single-thread TET-CC channel and the SMT sibling channel
// (§4.4) — and compare them with the cache-based Flush+Reload channel.
#include <cstdio>
#include <string>

#include "baseline/flush_reload.h"
#include "core/attacks/smt_channel.h"
#include "core/covert_channel.h"
#include "os/machine.h"

using namespace whisper;

int main() {
  const std::string msg_str =
      "whisper: timing the transient execution (DAC'24)";
  const std::vector<std::uint8_t> msg(msg_str.begin(), msg_str.end());
  std::printf("payload: \"%s\" (%zu bytes)\n\n", msg_str.c_str(), msg.size());

  // --- TET-CC: sender publishes a byte, receiver sweeps the gadget --------
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    core::TetCovertChannel cc(m);
    const auto rep = cc.transmit(msg);
    std::printf("[TET-CC]  %s\n", rep.to_string().c_str());
  }

  // --- SMT channel: trojan faults for '1', spy times its nop loop ---------
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    core::SmtCovertChannel ch(m);
    const auto rep = ch.transmit(msg);
    std::printf("[SMT]     %s  (threshold %llu cycles)\n",
                rep.to_string().c_str(),
                static_cast<unsigned long long>(ch.threshold()));
  }

  // --- Flush+Reload for comparison -----------------------------------------
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    baseline::FlushReloadChannel ch(m);
    const auto rep = ch.transmit(msg);
    std::printf("[F+R]     %s\n", rep.to_string().c_str());
  }

  std::printf("\nTET-CC needs no shared cache lines for the data path and "
              "leaves no probe-array footprint;\nthe SMT channel needs only "
              "co-residency; Flush+Reload is faster but stateful "
              "(Table 1).\n");
  return 0;
}
