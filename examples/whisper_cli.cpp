// whisper_cli — interactive playground for the library.
//
//   whisper_cli tote   [--cpu N] [--trigger|--no-trigger] [--trace]
//   whisper_cli leak   [--cpu N] [--secret STRING] [--attack md|rsb|v1|zbl]
//   whisper_cli kaslr  [--cpu N] [--kpti] [--flare] [--seed S]
//   whisper_cli matrix
//   whisper_cli models
//
// CPU index N follows Table 2 order: 0=i7-6700, 1=i7-7700, 2=i9-10980XE,
// 3=i9-13900K, 4=Ryzen 5600G.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/attacks/common.h"
#include "core/attacks/kaslr.h"
#include "core/attacks/meltdown.h"
#include "core/attacks/spectre_rsb.h"
#include "core/attacks/spectre_v1.h"
#include "core/attacks/zombieload.h"
#include "core/gadgets.h"
#include "os/machine.h"
#include "uarch/trace.h"

using namespace whisper;

namespace {

struct Args {
  std::vector<std::string> positional;
  bool has(const std::string& flag) const {
    for (const auto& a : positional)
      if (a == flag) return true;
    return false;
  }
  std::string value(const std::string& flag, const std::string& dflt) const {
    for (std::size_t i = 0; i + 1 < positional.size(); ++i)
      if (positional[i] == flag) return positional[i + 1];
    return dflt;
  }
};

uarch::CpuModel cpu_from(const Args& args) {
  const int n = std::stoi(args.value("--cpu", "1"));
  const auto models = uarch::all_models();
  return models[static_cast<std::size_t>(n) % models.size()];
}

int cmd_models() {
  std::printf("%-4s %-24s %-12s %-6s %-28s\n", "idx", "name", "uarch", "TSX",
              "vulnerabilities");
  int i = 0;
  for (uarch::CpuModel m : uarch::all_models()) {
    const auto c = uarch::make_config(m);
    std::string v;
    if (c.meltdown_vulnerable()) v += "meltdown ";
    if (c.mds_vulnerable()) v += "mds ";
    if (c.tlb_fills_on_fault()) v += "tlb-fill-on-fault ";
    std::printf("%-4d %-24s %-12s %-6s %-28s\n", i++, c.name.c_str(),
                c.uarch_name.c_str(), c.has_tsx ? "yes" : "no", v.c_str());
  }
  return 0;
}

int cmd_tote(const Args& args) {
  os::Machine m({.model = cpu_from(args)});
  m.poke8(os::Machine::kSharedBase, 'S');
  const auto g = core::make_tet_gadget(
      {.window = core::preferred_window(m.config()),
       .source = core::SecretSource::SharedMemory});
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = core::kNullProbeAddress;
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = os::Machine::kSharedBase;
  const bool trigger = !args.has("--no-trigger");
  regs[static_cast<std::size_t>(isa::Reg::RBX)] = trigger ? 'S' : 'T';

  uarch::PipelineTrace trace;
  if (args.has("--trace")) m.core().set_trace(&trace);
  for (int i = 0; i < 8; ++i)
    std::printf("probe %d (%s): ToTE = %llu cycles\n", i,
                trigger ? "trigger" : "no trigger",
                static_cast<unsigned long long>(core::run_tote(m, g, regs)));
  if (args.has("--trace")) {
    m.core().set_trace(nullptr);
    std::printf("\npipeline trace (last probe window):\n%s",
                trace.to_string().c_str());
  }
  return 0;
}

int cmd_leak(const Args& args) {
  os::Machine m({.model = cpu_from(args)});
  const std::string what = args.value("--attack", "md");
  const std::string secret_str = args.value("--secret", "hunter2");
  const std::vector<std::uint8_t> secret(secret_str.begin(),
                                         secret_str.end());

  std::vector<std::uint8_t> leaked;
  if (what == "md") {
    const std::uint64_t kaddr = m.plant_kernel_secret(secret);
    core::TetMeltdown atk(m);
    leaked = atk.leak(kaddr, secret.size());
  } else if (what == "rsb") {
    m.poke_bytes(os::Machine::kDataBase + 0x1000, secret);
    core::TetSpectreRsb atk(m);
    leaked = atk.leak(os::Machine::kDataBase + 0x1000, secret.size());
  } else if (what == "v1") {
    core::TetSpectreV1 atk(m);
    const std::uint64_t addr = core::TetSpectreV1::kArrayBase + 0x80;
    m.poke_bytes(addr, secret);
    leaked = atk.leak(addr, secret.size());
  } else if (what == "zbl") {
    core::TetZombieload atk(m);
    leaked = atk.leak(secret);
  } else {
    std::fprintf(stderr, "unknown --attack '%s' (md|rsb|v1|zbl)\n",
                 what.c_str());
    return 2;
  }

  std::string printable;
  for (std::uint8_t b : leaked)
    printable += (b >= 32 && b < 127) ? static_cast<char>(b) : '.';
  std::printf("TET-%s on %s leaked: \"%s\"  (%s)\n", what.c_str(),
              m.config().name.c_str(), printable.c_str(),
              leaked == secret ? "exact" : "with errors");
  return leaked == secret ? 0 : 1;
}

int cmd_kaslr(const Args& args) {
  os::MachineOptions opts;
  opts.model = cpu_from(args);
  opts.kernel.kpti = args.has("--kpti");
  opts.kernel.flare = args.has("--flare");
  opts.seed = std::stoull(args.value("--seed", "0"));
  os::Machine m(opts);
  core::TetKaslr atk(m);
  const auto r = atk.run();
  std::printf("TET-KASLR on %s%s%s: %s  found %#llx true %#llx  (%.4f s, "
              "%zu probes)\n",
              m.config().name.c_str(), opts.kernel.kpti ? " +KPTI" : "",
              opts.kernel.flare ? " +FLARE" : "",
              r.success ? "BROKEN" : "held",
              static_cast<unsigned long long>(r.found_base),
              static_cast<unsigned long long>(r.true_base), r.seconds,
              r.probes);
  return r.success ? 0 : 1;
}

int cmd_matrix() {
  std::printf("run build/bench/table2_matrix for the full Table 2 "
              "reproduction.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) args.positional.emplace_back(argv[i]);
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "models") return cmd_models();
  if (cmd == "tote") return cmd_tote(args);
  if (cmd == "leak") return cmd_leak(args);
  if (cmd == "kaslr") return cmd_kaslr(args);
  if (cmd == "matrix") return cmd_matrix();
  std::fprintf(stderr,
               "usage: whisper_cli <models|tote|leak|kaslr|matrix> "
               "[options]\n  see the header comment of examples/"
               "whisper_cli.cpp\n");
  return 2;
}
