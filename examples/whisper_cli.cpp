// whisper_cli — interactive playground for the library.
//
//   whisper_cli tote    [--cpu N] [--trigger|--no-trigger] [--trace]
//                       [--trace-out PATH] [--metrics-out PATH]
//   whisper_cli leak    [--cpu N] [--secret STRING] [--attack NAME]
//                       [--defense SPEC]... [--noise PROFILE] [--adaptive]
//                       [--confidence C] [--budget B] [--trace-out PATH]
//                       [--metrics-out PATH]
//   whisper_cli kaslr   [--cpu N] [--defense SPEC]... [--kpti] [--flare]
//                       [--fgkaslr] [--seed S]
//                       [--trials T] [--jobs J] [--json PATH]
//                       [--noise PROFILE] [--adaptive]
//                       [--retries R] [--trial-cycle-budget C]
//                       [--trial-wall-budget SECONDS] [--fault-plan PLAN]
//                       [--verify-reset] [--no-fast-forward]
//                       [--trace-out PATH] [--metrics-out PATH]
//   whisper_cli chaos   [--attack NAME] [--defense SPEC]... [--cpu N]
//                       [--trials T] [--jobs J]
//                       [--seed S] [--retries R] [--fault-plan PLAN]
//                       [--trial-cycle-budget C] [--json PATH]
//   whisper_cli matrix  [--jobs J]
//   whisper_cli sweep   --endpoints LIST [--attack NAME] [--cpu N]
//                       [--trials T] [--seed S] [--defense SPEC]...
//                       [--noise PROFILE] [--chunk C] [--deadline-ms MS]
//                       [--connect-timeout-ms MS] [--failures F]
//                       [--flaky-plan PLAN] [--verify] [--json PATH]
//   whisper_cli attacks                 (also: --list-attacks anywhere)
//   whisper_cli defenses                (registered defenses + parameters)
//   whisper_cli models
//
// --defense is repeatable and takes a defense::registry() spec,
// `name[:key=value]...` — e.g. `--defense kpti --defense window:depth=8`.
// `whisper_cli defenses` lists the registry. The old --kpti / --flare /
// --fgkaslr flags still work as aliases for the matching specs.
//
// `chaos` is the fault-tolerance self-test: it runs the same spec twice —
// once clean, once under a seeded --fault-plan (see src/fault/fault.h for
// the plan grammar) with --retries enabled — then asserts the faulted run
// recovered every trial and is bit-identical to the clean one. Exit 0 only
// on full recovery; the per-class error counts are printed either way.
// The same fault flags work on `kaslr` sweeps.
//
// `sweep` is the distributed runner: it shards --trials across a pool of
// whisper_serve daemons (--endpoints takes a comma-separated list of
// `host:port`, `tcp:host:port`, or `unix:/path` addresses) and merges the
// responses by trial index. Endpoint failures are survived, counted, and
// reassigned — the sweep completes as long as one daemon lives — and the
// merged stream is byte-identical to a local run of the same spec
// (invariant 13, docs/ARCHITECTURE.md); --verify recomputes the spec
// locally and checks exactly that. --flaky-plan injects deterministic
// transport faults (drop/shortread/stall, fault grammar over per-endpoint
// request ordinals) to rehearse failure handling without real packet loss.
//
// Attack NAMEs come from core::attack_registry() — `whisper_cli attacks`
// lists them; anything registered there is runnable here, including through
// `leak` (channel attacks move --secret; kaslr reports the found base).
// CPU index N follows Table 2 order: 0=i7-6700, 1=i7-7700, 2=i9-10980XE,
// 3=i9-13900K, 4=Ryzen 5600G. --noise picks an interference preset
// (off|quiet|desktop|noisy-server); --adaptive escalates batch counts until
// the decode confidence clears --confidence or --budget caps it.
//
// `kaslr --trials T --jobs J` and `matrix --jobs J` go through
// whisper::runner: independent simulated machines fan out across J worker
// threads with results bit-identical to --jobs 1 (docs/REPRODUCING.md).
//
// --trace-out writes a Chrome trace-event JSON of the command's pipeline
// activity (open it in chrome://tracing or ui.perfetto.dev); --metrics-out
// writes every counter the run touched as an obs::MetricsRegistry export
// (JSON, or CSV when the path ends in .csv). docs/REPRODUCING.md
// ("Inspecting a run") walks through both.
//
// Fast-forward (docs/PERFORMANCE.md) is on by default everywhere: the core
// skips provably inert cycle spans with results byte-identical to the
// cycle-by-cycle pipeline. --no-fast-forward forces the structural path
// (accepted by every command; --fast-forward restates the default). Use it
// only to cross-check identity or to profile the full pipeline walk.
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "client/endpoint.h"
#include "client/sweep_client.h"
#include "client/wire.h"
#include "core/attacks/common.h"
#include "core/attacks/registry.h"
#include "core/gadgets.h"
#include "defense/defense.h"
#include "noise/noise.h"
#include "obs/chrome_trace.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/topdown.h"
#include "os/machine.h"
#include "runner/json_writer.h"
#include "runner/runner.h"
#include "uarch/trace.h"

using namespace whisper;

namespace {

struct Args {
  std::vector<std::string> positional;
  bool has(const std::string& flag) const {
    for (const auto& a : positional)
      if (a == flag) return true;
    return false;
  }
  std::string value(const std::string& flag, const std::string& dflt) const {
    for (std::size_t i = 0; i + 1 < positional.size(); ++i)
      if (positional[i] == flag) return positional[i + 1];
    return dflt;
  }
  /// Every value of a repeatable flag (--defense can appear many times).
  std::vector<std::string> values(const std::string& flag) const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i + 1 < positional.size(); ++i)
      if (positional[i] == flag) out.push_back(positional[i + 1]);
    return out;
  }
};

uarch::CpuModel cpu_from(const Args& args) {
  const int n = std::stoi(args.value("--cpu", "1"));
  const auto models = uarch::all_models();
  return models[static_cast<std::size_t>(n) % models.size()];
}

/// --no-fast-forward wins over the (default) --fast-forward; both are
/// accepted so scripts can be explicit either way.
bool fast_forward_from(const Args& args) {
  return !args.has("--no-fast-forward");
}

/// The repeatable --defense flag plus the legacy --kpti/--flare/--fgkaslr
/// aliases, as one DefenseSpec stack. Shared by every command that builds a
/// machine or a RunSpec.
std::vector<defense::DefenseSpec> defenses_from(const Args& args) {
  std::vector<defense::DefenseSpec> out;
  if (args.has("--kpti")) out.push_back(defense::parse("kpti"));
  if (args.has("--flare")) out.push_back(defense::parse("flare"));
  if (args.has("--fgkaslr")) out.push_back(defense::parse("fgkaslr"));
  for (const std::string& text : args.values("--defense"))
    out.push_back(defense::parse(text));
  return out;
}

/// Fault-tolerance knobs shared by every runner-backed command.
void apply_fault_flags(runner::RunSpec& spec, const Args& args) {
  spec.retries = std::stoi(args.value("--retries", "0"));
  spec.trial_cycle_budget =
      std::stoull(args.value("--trial-cycle-budget", "0"));
  spec.trial_wall_budget = std::stod(args.value("--trial-wall-budget", "0"));
  spec.fault_plan = args.value("--fault-plan", "");
  spec.verify_reset = args.has("--verify-reset");
  spec.fast_forward = fast_forward_from(args);
}

bool write_metrics(const obs::MetricsRegistry& reg, const std::string& path) {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  const bool ok = csv ? reg.write_csv_file(path) : reg.write_json_file(path);
  if (ok) std::printf("metrics written to %s\n", path.c_str());
  return ok;
}

/// PMU delta + top-down attribution over [before, now) as a registry.
obs::MetricsRegistry machine_metrics(os::Machine& m,
                                     const uarch::PmuSnapshot& before) {
  const uarch::PmuSnapshot delta =
      uarch::pmu_delta(before, m.core().pmu().snapshot());
  const obs::TopDown td = obs::attribute_cycles(delta);
  obs::MetricsRegistry reg;
  reg.import_pmu(delta);
  reg.set_counter("topdown.total_cycles", td.total_cycles);
  reg.set_counter("topdown.retiring", td.retiring);
  reg.set_counter("topdown.bad_speculation", td.bad_speculation);
  reg.set_counter("topdown.frontend_bound", td.frontend_bound);
  reg.set_counter("topdown.backend_bound", td.backend_bound);
  std::printf("top-down: %s\n", td.to_string().c_str());
  return reg;
}

int cmd_models() {
  std::printf("%-4s %-24s %-12s %-6s %-28s\n", "idx", "name", "uarch", "TSX",
              "vulnerabilities");
  int i = 0;
  for (uarch::CpuModel m : uarch::all_models()) {
    const auto c = uarch::make_config(m);
    std::string v;
    if (c.meltdown_vulnerable()) v += "meltdown ";
    if (c.mds_vulnerable()) v += "mds ";
    if (c.tlb_fills_on_fault()) v += "tlb-fill-on-fault ";
    std::printf("%-4d %-24s %-12s %-6s %-28s\n", i++, c.name.c_str(),
                c.uarch_name.c_str(), c.has_tsx ? "yes" : "no", v.c_str());
  }
  return 0;
}

int cmd_tote(const Args& args) {
  os::Machine m({.model = cpu_from(args)});
  m.core().set_fast_forward(fast_forward_from(args));
  m.poke8(os::Machine::kSharedBase, 'S');
  const auto g = core::make_tet_gadget(
      {.window = core::preferred_window(m.config()),
       .source = core::SecretSource::SharedMemory});
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = core::kNullProbeAddress;
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = os::Machine::kSharedBase;
  const bool trigger = !args.has("--no-trigger");
  regs[static_cast<std::size_t>(isa::Reg::RBX)] = trigger ? 'S' : 'T';

  const std::string trace_out = args.value("--trace-out", "");
  const std::string metrics_out = args.value("--metrics-out", "");
  uarch::PipelineTrace trace;   // bounded ring for the textual dump
  obs::EventLog log;            // full capture for the Chrome export
  if (args.has("--trace")) m.core().set_trace(&trace);
  if (!trace_out.empty()) m.core().set_trace(&log);
  const uarch::PmuSnapshot pmu_before = m.core().pmu().snapshot();
  for (int i = 0; i < 8; ++i)
    std::printf("probe %d (%s): ToTE = %llu cycles\n", i,
                trigger ? "trigger" : "no trigger",
                static_cast<unsigned long long>(core::run_tote(m, g, regs)));
  m.core().set_trace(nullptr);
  if (args.has("--trace") && trace_out.empty()) {
    std::printf("\npipeline trace (last probe window):\n%s",
                trace.to_string().c_str());
  }
  if (!trace_out.empty() && obs::write_chrome_trace(log, trace_out))
    std::printf("pipeline trace of all 8 probes written to %s "
                "(%zu events)\n",
                trace_out.c_str(), log.size());
  if (!metrics_out.empty())
    write_metrics(machine_metrics(m, pmu_before), metrics_out);
  return 0;
}

int cmd_attacks() {
  std::printf("%-8s %-8s %s\n", "name", "kind", "description");
  for (const core::AttackInfo& info : core::attack_registry())
    std::printf("%-8s %-8s %s\n", info.name.c_str(),
                info.channel ? "channel" : "kaslr", info.description.c_str());
  return 0;
}

int cmd_defenses() {
  std::printf("%-12s %-20s %s\n", "name", "params", "description");
  for (const defense::DefenseInfo& d : defense::registry()) {
    std::string params;
    for (const defense::DefenseParamInfo& p : d.params) {
      if (!params.empty()) params += ' ';
      params += p.name + "=" + p.default_value;
    }
    std::printf("%-12s %-20s %s\n", d.name.c_str(),
                params.empty() ? "-" : params.c_str(), d.description.c_str());
  }
  std::printf("\ncompose with repeated --defense flags "
              "(e.g. --defense kpti --defense window:depth=8)\n");
  return 0;
}

int cmd_leak(const Args& args) {
  const std::string what = args.value("--attack", "md");
  const core::AttackInfo* info = core::find_attack(what);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown --attack '%s'; registered attacks:\n",
                 what.c_str());
    for (const std::string& n : core::attack_names())
      std::fprintf(stderr, "  %s\n", n.c_str());
    return 2;
  }

  os::MachineOptions mo;
  mo.model = cpu_from(args);
  const std::string noise_name = args.value("--noise", "off");
  const auto profile = noise::NoiseProfile::by_name(noise_name);
  if (!profile) {
    std::fprintf(stderr, "unknown --noise '%s' (off|quiet|desktop|"
                 "noisy-server)\n", noise_name.c_str());
    return 2;
  }
  mo.noise = *profile;
  defense::apply(defenses_from(args), mo);
  os::Machine m(mo);
  m.core().set_fast_forward(fast_forward_from(args));

  const std::string secret_str = args.value("--secret", "hunter2");
  const std::vector<std::uint8_t> secret(secret_str.begin(),
                                         secret_str.end());

  const std::string trace_out = args.value("--trace-out", "");
  const std::string metrics_out = args.value("--metrics-out", "");
  obs::EventLog log;
  if (!trace_out.empty()) m.core().set_trace(&log);
  const uarch::PmuSnapshot pmu_before = m.core().pmu().snapshot();

  core::AttackOptions opt;
  opt.adaptive = args.has("--adaptive");
  opt.confidence_threshold = std::stod(args.value("--confidence", "0.5"));
  opt.batch_budget = std::stoi(args.value("--budget", "0"));
  const auto atk = info->make(m, opt);
  const core::AttackResult r =
      atk->run(info->channel ? std::span<const std::uint8_t>(secret)
                             : std::span<const std::uint8_t>());

  m.core().set_trace(nullptr);
  if (info->channel) {
    std::string printable;
    for (std::uint8_t b : r.bytes)
      printable += (b >= 32 && b < 127) ? static_cast<char>(b) : '.';
    std::printf("TET-%s on %s leaked: \"%s\"  (%s, confidence %.2f%s)\n",
                what.c_str(), m.config().name.c_str(), printable.c_str(),
                r.success ? "exact" : "with errors", r.confidence,
                r.gave_up ? ", gave up on some bytes" : "");
  } else {
    std::printf("TET-%s on %s: %s  found %#llx true %#llx "
                "(confidence %.2f)\n",
                what.c_str(), m.config().name.c_str(),
                r.success ? "BROKEN" : "held",
                static_cast<unsigned long long>(r.found_base),
                static_cast<unsigned long long>(r.true_base), r.confidence);
  }
  if (!trace_out.empty() && obs::write_chrome_trace(log, trace_out))
    std::printf("pipeline trace of the leak written to %s (%zu events)\n",
                trace_out.c_str(), log.size());
  if (!metrics_out.empty())
    write_metrics(machine_metrics(m, pmu_before), metrics_out);
  return r.success ? 0 : 1;
}

int cmd_kaslr(const Args& args) {
  const int trials = std::stoi(args.value("--trials", "1"));
  const std::string trace_out = args.value("--trace-out", "");
  const std::string metrics_out = args.value("--metrics-out", "");
  if (trials <= 1) {
    // Single shot: the interactive view, with found vs true base.
    os::MachineOptions opts;
    opts.model = cpu_from(args);
    opts.seed = std::stoull(args.value("--seed", "0"));
    if (const auto p = noise::NoiseProfile::by_name(
            args.value("--noise", "off")))
      opts.noise = *p;
    const std::vector<defense::DefenseSpec> stack = defenses_from(args);
    defense::apply(stack, opts);
    os::Machine m(opts);
    m.core().set_fast_forward(fast_forward_from(args));
    obs::EventLog log;
    if (!trace_out.empty()) m.core().set_trace(&log);
    const uarch::PmuSnapshot pmu_before = m.core().pmu().snapshot();
    core::AttackOptions opt;
    opt.adaptive = args.has("--adaptive");
    const auto atk = core::make_attack("kaslr", m, opt);
    const core::AttackResult r = atk->run({});
    m.core().set_trace(nullptr);
    std::string defense_suffix;
    if (!stack.empty()) defense_suffix = " +" + defense::format_list(stack);
    std::printf("TET-KASLR on %s%s: %s  found %#llx true %#llx  (%.4f s, "
                "%zu probes)\n",
                m.config().name.c_str(), defense_suffix.c_str(),
                r.success ? "BROKEN" : "held",
                static_cast<unsigned long long>(r.found_base),
                static_cast<unsigned long long>(r.true_base), r.seconds,
                r.probes);
    if (!trace_out.empty() && obs::write_chrome_trace(log, trace_out))
      std::printf("pipeline trace of the slot sweep written to %s "
                  "(%zu events)\n",
                  trace_out.c_str(), log.size());
    if (!metrics_out.empty())
      write_metrics(machine_metrics(m, pmu_before), metrics_out);
    return r.success ? 0 : 1;
  }

  // Multi-trial sweep through the parallel runner: every trial is a fresh
  // machine with a fresh KASLR draw, seeded from --seed ⊕ trial index.
  runner::RunSpec spec;
  spec.model = cpu_from(args);
  spec.attack = "kaslr";
  spec.trials = trials;
  spec.defenses = defenses_from(args);
  spec.base_seed = std::stoull(args.value("--seed", "1"));
  if (const auto p = noise::NoiseProfile::by_name(
          args.value("--noise", "off")))
    spec.noise = *p;
  spec.adaptive = args.has("--adaptive");
  spec.collect_trace = !trace_out.empty();
  apply_fault_flags(spec, args);
  const int jobs = std::stoi(args.value("--jobs", "1"));
  const auto r = runner::run(spec, jobs, /*progress=*/true);
  std::printf("TET-KASLR sweep: %s\n", spec.label().c_str());
  std::printf("  broke KASLR in %zu/%zu trials; sim time %.4f s mean "
              "(sd %.4f, min %.4f, max %.4f)\n",
              r.successes, r.trials.size(), r.seconds.mean, r.seconds.stdev,
              r.seconds.min, r.seconds.max);
  std::printf("  %zu probes total; host wall %.2f s with %d jobs\n",
              r.total_probes, r.wall_seconds, r.jobs);
  if (r.failed || r.retried || r.quarantined)
    std::printf("  fault layer: %zu/%zu completed, %zu retried, "
                "%zu quarantined, %zu degraded\n",
                r.completed, r.attempted, r.retried, r.quarantined, r.failed);
  const std::string json = args.value("--json", "");
  if (!json.empty() && runner::write_json_file(r, json))
    std::printf("  trajectory written to %s\n", json.c_str());
  if (!trace_out.empty() && obs::write_chrome_trace(r.events, trace_out))
    std::printf("  pipeline trace of all trials (index order) written to "
                "%s (%zu events)\n",
                trace_out.c_str(), r.events.size());
  if (!metrics_out.empty()) {
    std::printf("  top-down: %s\n", r.topdown.to_string().c_str());
    write_metrics(runner::to_metrics(r), metrics_out);
  }
  return r.all_succeeded() ? 0 : 1;
}

/// Field-by-field trial comparison for the chaos self-test — the CLI-side
/// mirror of tests/test_runner.cpp's expect_identical.
bool trial_identical(const runner::TrialResult& a,
                     const runner::TrialResult& b) {
  return a.seed == b.seed && a.success == b.success && a.cycles == b.cycles &&
         a.seconds == b.seconds && a.probes == b.probes &&
         a.bytes == b.bytes && a.byte_errors == b.byte_errors &&
         a.found_slot == b.found_slot && a.confidence == b.confidence &&
         a.gave_up == b.gave_up && a.tote.buckets() == b.tote.buckets() &&
         a.pmu == b.pmu;
}

int cmd_chaos(const Args& args) {
  runner::RunSpec spec;
  spec.model = cpu_from(args);
  spec.attack = args.value("--attack", "cc");
  spec.defenses = defenses_from(args);
  spec.trials = std::stoi(args.value("--trials", "12"));
  spec.base_seed = std::stoull(args.value("--seed", "12648430"));
  spec.payload_bytes = 4;
  spec.batches = 2;
  spec.rounds = 2;
  spec.retries = std::stoi(args.value("--retries", "2"));
  spec.trial_cycle_budget =
      std::stoull(args.value("--trial-cycle-budget", "1000000000"));
  spec.trial_wall_budget = std::stod(args.value("--trial-wall-budget", "0"));
  spec.fault_plan =
      args.value("--fault-plan", "throw@2;corrupt@5;stall@8");
  spec.fast_forward = fast_forward_from(args);
  const int jobs = std::stoi(args.value("--jobs", "4"));

  runner::RunSpec clean = spec;
  clean.fault_plan.clear();

  std::printf("chaos: %s under plan \"%s\" (retries %d, jobs %d)\n",
              spec.label().c_str(), spec.fault_plan.c_str(), spec.retries,
              jobs);
  const runner::RunResult faulted = runner::run(spec, jobs);
  const runner::RunResult reference = runner::run(clean, jobs);

  std::printf("  attempted %zu, completed %zu, failed %zu, retried %zu, "
              "quarantined %zu, attempts %zu\n",
              faulted.attempted, faulted.completed, faulted.failed,
              faulted.retried, faulted.quarantined, faulted.total_attempts);
  std::printf("  errors by class:");
  for (std::size_t k = 0; k < runner::kNumTrialErrorKinds; ++k)
    std::printf(" %s=%zu",
                runner::to_string(static_cast<runner::TrialErrorKind>(k)),
                faulted.error_counts[k]);
  std::printf("\n");

  bool ok = true;
  if (faulted.failed != 0) {
    std::printf("  FAIL: %zu trial(s) degraded — retries did not recover\n",
                faulted.failed);
    ok = false;
  }
  if (faulted.trials.size() != reference.trials.size()) {
    std::printf("  FAIL: trial count mismatch vs clean run\n");
    ok = false;
  } else {
    for (std::size_t i = 0; i < faulted.trials.size(); ++i)
      if (!trial_identical(faulted.trials[i], reference.trials[i])) {
        std::printf("  FAIL: trial %zu differs from the clean run\n", i);
        ok = false;
      }
  }
  if (faulted.tote.buckets() != reference.tote.buckets()) {
    std::printf("  FAIL: merged ToTE histogram differs from the clean run\n");
    ok = false;
  }
  if (ok)
    std::printf("  recovered %zu/%zu trials; results bit-identical to the "
                "clean run\n",
                faulted.completed, faulted.attempted);

  const std::string json = args.value("--json", "");
  if (!json.empty() && runner::write_json_file(faulted, json))
    std::printf("  faulted-run trajectory written to %s\n", json.c_str());
  return ok ? 0 : 1;
}

int cmd_matrix(const Args& args) {
  // The Table 2 matrix (5 CPUs × 5 attacks) through the parallel runner;
  // bench/table2_matrix prints the full paper comparison.
  const int jobs = std::stoi(args.value("--jobs", "1"));
  const std::vector<std::string> attacks = core::attack_names();

  std::vector<runner::RunSpec> specs;
  for (const uarch::CpuModel model : uarch::all_models())
    for (const std::string& a : attacks) {
      runner::RunSpec spec;
      spec.model = model;
      spec.attack = a;
      spec.base_seed = 0x7ab1e2;
      spec.payload_bytes = 4;
      spec.batches = 4;
      spec.rounds = 2;
      spec.fast_forward = fast_forward_from(args);
      specs.push_back(spec);
    }

  runner::Executor ex(jobs);
  const auto results = runner::run_many(specs, ex, /*progress=*/true);

  std::printf("%-24s", "CPU");
  for (const std::string& a : attacks) std::printf(" %-8s", a.c_str());
  std::printf("\n");
  std::size_t cell = 0;
  for (const uarch::CpuModel model : uarch::all_models()) {
    const auto cfg = uarch::make_config(model);
    std::printf("%-24s", cfg.name.c_str());
    for (std::size_t c = 0; c < attacks.size(); ++c)
      std::printf(" %-9s", results[cell++].all_succeeded() ? "✓" : "✗");
    std::printf("\n");
  }
  std::printf("\n(run bench/table2_matrix for the paper-cell comparison; "
              "--jobs N parallelises either)\n");
  return 0;
}

/// Distributed sweep: shard --trials across --endpoints and merge by
/// index. Exit 0 only on a complete (and, with --verify, byte-identical)
/// merge; endpoint failures along the way are counters, not errors.
int cmd_sweep(const Args& args) {
  const std::string endpoints_csv = args.value("--endpoints", "");
  if (endpoints_csv.empty()) {
    std::fprintf(stderr,
                 "whisper_cli sweep: --endpoints is required "
                 "(comma-separated host:port / tcp:host:port / unix:/path)\n");
    return 2;
  }

  runner::RunSpec spec;
  spec.model = cpu_from(args);
  spec.attack = args.value("--attack", "kaslr");
  spec.trials = std::stoi(args.value("--trials", "8"));
  spec.defenses = defenses_from(args);
  spec.base_seed = std::stoull(args.value("--seed", "1"));
  if (const auto p = noise::NoiseProfile::by_name(
          args.value("--noise", "off")))
    spec.noise = *p;
  spec.adaptive = args.has("--adaptive");
  apply_fault_flags(spec, args);

  std::vector<std::shared_ptr<client::Endpoint>> pool;
  for (const auto& ep : client::parse_endpoint_list(endpoints_csv))
    pool.push_back(client::make_endpoint(ep));

  client::SweepOptions opts;
  opts.chunk_trials = std::stoi(args.value("--chunk", "4"));
  opts.deadline_ms = std::stoi(args.value("--deadline-ms", "60000"));
  opts.connect_timeout_ms =
      std::stoi(args.value("--connect-timeout-ms", "2000"));
  opts.endpoint_failures = std::stoi(args.value("--failures", "3"));
  opts.flaky_plan = args.value("--flaky-plan", "");

  client::SweepClient sweeper(opts);
  const client::SweepResult r = sweeper.sweep(spec, pool);

  std::printf("distributed sweep: %s across %zu endpoint(s)\n",
              spec.label().c_str(), pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i)
    std::printf("  %-32s %zu trial(s)\n", pool[i]->label().c_str(),
                i < r.stats.trials_by_endpoint.size()
                    ? r.stats.trials_by_endpoint[i]
                    : std::size_t{0});
  std::printf("  %zu/%d trials merged; %zu request(s), %zu unreachable, "
              "%zu timed out, %zu reconnect(s), %zu chunk(s) reassigned, "
              "%zu endpoint(s) dead, %zu duplicate trial(s)\n",
              r.trials_received, spec.trials, r.stats.requests,
              r.stats.unreachable, r.stats.timed_out, r.stats.reconnects,
              r.stats.reassigned, r.stats.dead_endpoints,
              r.stats.duplicate_trials);
  if (!r.complete) {
    if (r.error.empty())
      std::fprintf(stderr,
                   "whisper_cli sweep: incomplete (every endpoint died)\n");
    else
      std::fprintf(stderr, "whisper_cli sweep: %s\n", r.error.c_str());
    return 1;
  }

  const std::string json = args.value("--json", "");
  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "whisper_cli sweep: cannot write %s\n",
                   json.c_str());
      return 1;
    }
    for (const std::string& line : r.trial_lines)
      std::fprintf(f, "%s\n", line.c_str());
    std::fprintf(f, "%s\n", r.done_line.c_str());
    std::fclose(f);
    std::printf("  merged response stream written to %s\n", json.c_str());
  }

  if (args.has("--verify")) {
    // Invariant 13, checked the direct way: rerun the whole spec locally
    // and demand the distributed merge is the same bytes.
    const auto local = runner::run(spec, std::stoi(args.value("--jobs", "1")));
    const bool same = r.trial_lines == client::canonical_trial_lines(local) &&
                      r.done_line == client::canonical_done_line(local);
    std::printf("  --verify: merged stream %s the local runner::run bytes\n",
                same ? "matches" : "DIVERGES from");
    if (!same) return 1;
  }

  std::printf("  %s\n", r.done_line.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  Args args;
  for (int i = 2; i < argc; ++i) args.positional.emplace_back(argv[i]);
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "--list-attacks" || args.has("--list-attacks") ||
      cmd == "attacks")
    return cmd_attacks();
  if (cmd == "defenses") return cmd_defenses();
  if (cmd == "models") return cmd_models();
  if (cmd == "tote") return cmd_tote(args);
  if (cmd == "leak") return cmd_leak(args);
  if (cmd == "kaslr") return cmd_kaslr(args);
  if (cmd == "chaos") return cmd_chaos(args);
  if (cmd == "matrix") return cmd_matrix(args);
  if (cmd == "sweep") return cmd_sweep(args);
  std::fprintf(stderr,
               "usage: whisper_cli <models|tote|leak|kaslr|chaos|matrix|"
               "sweep|attacks|defenses> [options]\n  see the header comment "
               "of examples/whisper_cli.cpp\n");
  return 2;
} catch (const std::exception& e) {
  // Spec/plan validation errors (bad --attack, malformed --fault-plan, ...)
  // should read as a usage message, not a terminate() backtrace.
  std::fprintf(stderr, "whisper_cli: %s\n", e.what());
  return 2;
}
