// Quickstart: build the Fig. 1a TET gadget, probe it, and watch the
// Whisper timing channel appear.
//
//   $ ./quickstart
//
// Walks through the public API in five steps:
//   1. bring up a simulated machine (CPU model + kernel),
//   2. write the gadget with the ProgramBuilder,
//   3. probe it with run_tote(),
//   4. decode with the ArgmaxAnalyzer,
//   5. peek at the PMU to see *why* the timing moved.
#include <cstdio>

#include "core/analyzer.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"

using namespace whisper;

int main() {
  // 1. A simulated Intel Core i7-7700 running a KASLR'd kernel.
  os::Machine machine({.model = uarch::CpuModel::KabyLakeI7_7700});
  std::printf("machine: %s (%s), %.1f GHz, TSX %s\n",
              machine.config().name.c_str(),
              machine.config().uarch_name.c_str(), machine.config().ghz,
              machine.config().has_tsx ? "yes" : "no");

  // 2. The Fig. 1a gadget: a faulting load opens a transient window; inside
  //    it a Jcc compares a secret byte against our test value.
  const std::uint8_t kSecret = 'S';
  machine.poke8(os::Machine::kSharedBase, kSecret);
  const core::GadgetProgram gadget = core::make_tet_gadget(
      {.window = core::preferred_window(machine.config()),
       .source = core::SecretSource::SharedMemory});
  std::printf("\nthe gadget:\n%s\n", gadget.prog.disassemble().c_str());

  // 3 + 4. Sweep test values, collect ToTE, decode by batch argmax.
  core::ArgmaxAnalyzer analyzer(core::Polarity::Max);
  auto regs = std::array<std::uint64_t, isa::kNumRegs>{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = core::kNullProbeAddress;
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = os::Machine::kSharedBase;
  for (int batch = 0; batch < 8; ++batch) {
    for (int tv = 0; tv <= 255; ++tv) {
      regs[static_cast<std::size_t>(isa::Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      analyzer.add(tv, core::run_tote(machine, gadget, regs));
    }
    analyzer.end_batch();
  }
  const int decoded = analyzer.decode();
  const auto means = analyzer.mean_tote_by_value();
  std::printf("mean ToTE at the secret value: %.1f cycles\n",
              means[kSecret]);
  std::printf("mean ToTE one value over:      %.1f cycles\n",
              means[kSecret + 1]);
  std::printf("decoded byte: '%c'  (planted: '%c')\n\n",
              static_cast<char>(decoded), static_cast<char>(kSecret));

  // 5. Why? Ask the PMU: a triggered probe mispredicts the transient Jcc
  //    and pays a front-end resteer that the machine clear must drain.
  const auto before = machine.core().pmu().snapshot();
  regs[static_cast<std::size_t>(isa::Reg::RBX)] = kSecret;
  (void)core::run_tote(machine, gadget, regs);
  const auto after = machine.core().pmu().snapshot();
  const auto delta = uarch::pmu_delta(before, after);
  for (auto e : {uarch::PmuEvent::BR_MISP_EXEC_ALL_BRANCHES,
                 uarch::PmuEvent::INT_MISC_CLEAR_RESTEER_CYCLES,
                 uarch::PmuEvent::MACHINE_CLEARS_COUNT}) {
    std::printf("%-36s %llu\n", uarch::to_string(e).c_str(),
                static_cast<unsigned long long>(
                    delta[static_cast<std::size_t>(e)]));
  }
  return decoded == kSecret ? 0 : 1;
}
