// Example: root-cause a timing anomaly with the PMU toolset (§5, Fig. 2).
//
// You observed that some probes of your gadget run ~10 cycles longer than
// others and want to know which microarchitectural mechanism is
// responsible. The toolset automates the paper's three-stage flow.
#include <cstdio>

#include "core/pmu_toolset.h"
#include "os/machine.h"

using namespace whisper;

int main() {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  core::PmuToolset toolset(m);

  std::printf("stage 1 — preparation: enumerate candidate events\n");
  const auto events = toolset.catalog();
  std::printf("  %zu events available on %s\n\n", events.size(),
              m.config().name.c_str());

  std::printf("stage 2 — online collection: run the fast and the slow "
              "scenario under each event\n");
  const auto records = toolset.collect(core::scenario_tet_cc(false),
                                       core::scenario_tet_cc(true),
                                       /*repeats=*/5);
  std::printf("  collected %zu (event, fast, slow) records\n\n",
              records.size());

  std::printf("stage 3 — offline analysis: differential filter\n");
  const auto significant =
      core::PmuToolset::filter_significant(records, 0.05, 1.0);
  std::printf("%s\n",
              core::PmuToolset::report(significant,
                                       "  events that separate the scenarios",
                                       "fast", "slow")
                  .c_str());

  std::printf("conclusion: the slow probes carry a transient branch "
              "misprediction — frontend resteer plus\nrecovery drain at the "
              "machine clear — i.e. the Whisper channel's root cause "
              "(§5.2.2/§5.2.3).\n");

  // Rule out the memory subsystem, as the paper does (§5.2.1).
  const auto mem_any = toolset.measure(
      uarch::PmuEvent::CYCLE_ACTIVITY_CYCLES_MEM_ANY,
      core::scenario_tet_cc(false), core::scenario_tet_cc(true));
  std::printf("\ntrue-negative check: CYCLE_ACTIVITY.CYCLES_MEM_ANY fast=%.0f "
              "slow=%.0f — memory stalls do not explain it.\n",
              mem_any.baseline, mem_any.variant);
  return 0;
}
