// Example: leak a kernel secret two ways — over the Whisper (TET) channel
// and over the classic Flush+Reload cache channel — then show why the
// defender sees only one of them.
//
// Scenario (paper §4.2): an unprivileged process on a pre-KPTI Kaby Lake
// machine wants a key sitting in kernel memory. The machine runs a
// cache-monitoring detector, so cache-based exfiltration is risky.
#include <cstdio>
#include <string>

#include "baseline/flush_reload.h"
#include "core/attacks/meltdown.h"
#include "os/machine.h"

using namespace whisper;

namespace {

int hot_probe_lines(os::Machine& m) {
  int hot = 0;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t pa = m.memsys().translate_or_throw(
        baseline::kProbeArrayBase + static_cast<std::uint64_t>(i) * 64);
    if (m.memsys().l1().contains(pa) || m.memsys().l2().contains(pa) ||
        m.memsys().l3().contains(pa))
      ++hot;
  }
  return hot;
}

std::string printable(const std::vector<std::uint8_t>& v) {
  std::string s;
  for (std::uint8_t b : v) s += (b >= 32 && b < 127) ? char(b) : '.';
  return s;
}

}  // namespace

int main() {
  os::Machine machine({.model = uarch::CpuModel::KabyLakeI7_7700});
  const std::string secret_str = "root:$6$WhisperDAC24";
  const std::vector<std::uint8_t> secret(secret_str.begin(),
                                         secret_str.end());
  const std::uint64_t kaddr = machine.plant_kernel_secret(secret);
  std::printf("victim kernel secret planted at %#llx (%zu bytes)\n\n",
              static_cast<unsigned long long>(kaddr), secret.size());

  // --- Attack 1: classic Meltdown + Flush&Reload --------------------------
  {
    baseline::MeltdownFlushReload atk(machine);
    const auto leaked = atk.leak(kaddr, secret.size());
    std::printf("[Flush+Reload] leaked: \"%s\"  (%s)\n",
                printable(leaked).c_str(),
                leaked == secret ? "exact" : "errors!");
    std::printf("[Flush+Reload] probe-array lines left hot in the cache "
                "after the last byte: %d\n",
                hot_probe_lines(machine));
    std::printf("               -> a cache-activity detector sees the "
                "transmission pattern\n\n");
  }

  // --- Attack 2: TET-Meltdown (the paper's stealthy variant) --------------
  {
    // Flush the probe array so any footprint would be attributable to TET.
    for (int i = 0; i < 256; ++i)
      machine.memsys().clflush(baseline::kProbeArrayBase +
                               static_cast<std::uint64_t>(i) * 64);
    core::TetMeltdown atk(machine);
    const core::AttackResult res = atk.run(secret);
    const std::vector<std::uint8_t>& leaked = res.bytes;
    std::printf("[TET-MD]       leaked: \"%s\"  (%s)\n",
                printable(leaked).c_str(),
                leaked == secret ? "exact" : "errors!");
    std::printf("[TET-MD]       probe-array lines hot afterwards: %d\n",
                hot_probe_lines(machine));
    std::printf("               -> the secret travelled in the *duration* "
                "of the transient window; no\n");
    std::printf("                  attacker-chosen cache state was used "
                "(stateless & transient-only, Table 1)\n\n");
    std::printf("probes used: %zu, simulated time: %.4f s\n", res.probes,
                res.seconds);
  }

  // --- And the mitigation story --------------------------------------------
  {
    os::Machine patched({.model = uarch::CpuModel::KabyLakeI7_7700,
                         .kernel = {.kpti = true}});
    const std::uint64_t kaddr2 = patched.plant_kernel_secret(secret);
    core::TetMeltdown atk(patched, {{.batches = 3}});
    const auto leaked = atk.leak(kaddr2, secret.size());
    std::printf("with KPTI enabled: leaked \"%s\" — %s (the secret page is "
                "simply unmapped, §6.2)\n",
                printable(leaked).c_str(),
                leaked == secret ? "STILL LEAKS?!" : "attack defeated");
  }
  return 0;
}
