// §4.1 reproduction: covert-channel / attack throughput and error rates.
//
// Paper: "for 1k random bytes, the throughput of TET-CC could achieve
// 500 B/s with an error rate of less than 5% at i7-7700, and the TET-MD can
// reach up to 50 B/s with an error rate of less than 3% at i7-7700, and the
// TET-RSB can reach up to 21.5 KB/s with an error rate of less than 0.1% at
// i9-13900K. The TET-KASLR can break the KASLR in an average of 0.8829 s
// (n=3, u=0.0036) at i9-10980XE."
//
// We reproduce the same experiment shapes; absolute rates live on the
// model's cycle clock (see EXPERIMENTS.md for the comparison discussion).
//
// All four experiments run through whisper::runner: every (spec, trial)
// pair is an independent task, so `--jobs N` fans the heavy channel
// transmissions out across cores with results bit-identical to `--jobs 1`
// (docs/REPRODUCING.md §4.1).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "obs/chrome_trace.h"
#include "runner/json_writer.h"
#include "runner/runner.h"
#include "stats/error_rate.h"

using namespace whisper;

int main(int argc, char** argv) {
  const bench::HarnessArgs args = bench::parse_harness_args(argc, argv);
  bench::heading("Section 4.1 — Experiment setup and result");

  runner::RunSpec cc;
  cc.model = uarch::CpuModel::KabyLakeI7_7700;
  cc.attack = "cc";
  cc.batches = 3;
  cc.payload_bytes = 1024;
  cc.payload_seed = 0x41;

  runner::RunSpec md;
  md.model = uarch::CpuModel::KabyLakeI7_7700;
  md.attack = "md";
  md.batches = 6;
  md.payload_bytes = 256;  // same per-byte procedure as 1k
  md.payload_seed = 0x42;

  runner::RunSpec rsb;
  rsb.model = uarch::CpuModel::RaptorLakeI9_13900K;
  rsb.attack = "rsb";
  rsb.batches = 2;
  rsb.payload_bytes = 1024;
  rsb.payload_seed = 0x43;

  runner::RunSpec kaslr;
  kaslr.model = uarch::CpuModel::CometLakeI9_10980XE;
  kaslr.attack = "kaslr";
  kaslr.kernel.kpti = true;
  kaslr.trials = 3;  // the paper's n=3
  kaslr.rounds = 3;
  kaslr.base_seed = 101;

  for (runner::RunSpec* spec : {&cc, &md, &rsb, &kaslr})
    bench::apply_fault_args(*spec, args);

  runner::Executor ex(args.jobs);
  const auto results = runner::run_many({cc, md, rsb, kaslr}, ex,
                                        args.progress);

  const auto channel_line = [](const runner::RunResult& r) {
    const double rate =
        r.seconds.mean > 0
            ? static_cast<double>(r.total_bytes) / r.seconds.mean
            : 0.0;
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "%zu bytes, %zu byte errors (%.2f%%), %s over %.2f s (sim)",
                  r.total_bytes, r.total_byte_errors,
                  r.total_bytes
                      ? 100.0 * static_cast<double>(r.total_byte_errors) /
                            static_cast<double>(r.total_bytes)
                      : 0.0,
                  stats::format_rate(rate).c_str(), r.seconds.mean);
    return std::string(buf);
  };

  std::printf("TET-CC   i7-7700    : %-45s (paper: 500 B/s, err < 5%%)\n",
              channel_line(results[0]).c_str());
  std::printf("TET-MD   i7-7700    : %-45s (paper: 50 B/s, err < 3%%)\n",
              channel_line(results[1]).c_str());
  std::printf("TET-RSB  i9-13900K  : %-45s (paper: 21.5 KB/s, err < 0.1%%)\n",
              channel_line(results[2]).c_str());

  const runner::RunResult& k = results[3];
  std::printf("TET-KASLR i9-10980XE: broke KASLR (KPTI) in %.4f s "
              "(n=%zu, sd=%.4f), all runs %s   (paper: 0.8829 s, n=3, "
              "u=0.0036)\n",
              k.seconds.mean, k.seconds.n,
              k.seconds.stdev, k.all_succeeded() ? "succeeded" : "FAILED");

  std::printf("\nShape check: TET-RSB >> TET-CC >> TET-MD in throughput "
              "(no fault vs TSX abort vs signal per probe),\nTET-KASLR "
              "sub-second over 512 slots — same ordering as the paper.\n");

  if (!args.json.empty()) {
    // Persist the heaviest trajectory (the TET-CC 1k-byte run).
    runner::write_json_file(results[0], args.json);
  }

  if (!args.metrics_out.empty()) {
    // One registry over all four experiments, attack-prefixed so nothing
    // collides: cc.pmu.*, md.topdown.*, kaslr.run.successes, ...
    obs::MetricsRegistry reg = runner::to_metrics(results[0], "cc.");
    reg.merge(runner::to_metrics(results[1], "md."));
    reg.merge(runner::to_metrics(results[2], "rsb."));
    reg.merge(runner::to_metrics(results[3], "kaslr."));
    bench::write_metrics(reg, args.metrics_out);
    std::printf("TET-CC top-down: %s\n",
                results[0].topdown.to_string().c_str());
  }

  if (!args.trace_out.empty()) {
    // Full event capture of the 1k-byte runs above would be GBs of JSON, so
    // trace a representative single-byte TET-MD trial instead: one
    // signal-suppressed leak, windows and machine clears included.
    runner::RunSpec probe = md;
    probe.trials = 1;
    probe.payload_bytes = 1;
    probe.batches = 1;
    probe.collect_trace = true;
    const runner::TrialResult t =
        runner::run_trial(probe, runner::trial_seed(probe.base_seed, 0));
    if (obs::write_chrome_trace(t.events, args.trace_out))
      std::printf("\n(pipeline trace of a 1-byte TET-MD trial written to "
                  "%s: %zu events)\n",
                  args.trace_out.c_str(), t.events.size());
  }
  return 0;
}
