// §4.1 reproduction: covert-channel / attack throughput and error rates.
//
// Paper: "for 1k random bytes, the throughput of TET-CC could achieve
// 500 B/s with an error rate of less than 5% at i7-7700, and the TET-MD can
// reach up to 50 B/s with an error rate of less than 3% at i7-7700, and the
// TET-RSB can reach up to 21.5 KB/s with an error rate of less than 0.1% at
// i9-13900K. The TET-KASLR can break the KASLR in an average of 0.8829 s
// (n=3, u=0.0036) at i9-10980XE."
//
// We reproduce the same experiment shapes; absolute rates live on the
// model's cycle clock (see EXPERIMENTS.md for the comparison discussion).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/attacks/kaslr.h"
#include "core/attacks/meltdown.h"
#include "core/attacks/spectre_rsb.h"
#include "core/covert_channel.h"
#include "os/machine.h"
#include "stats/summary.h"

using namespace whisper;

int main() {
  bench::heading("Section 4.1 — Experiment setup and result");

  // --- TET-CC, 1k random bytes, i7-7700 ------------------------------------
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    core::TetCovertChannel cc(m, {.batches = 3});
    const auto payload = bench::random_bytes(1024, 0x41);
    const auto rep = cc.transmit(payload);
    std::printf("TET-CC   i7-7700    : %-45s (paper: 500 B/s, err < 5%%)\n",
                rep.to_string().c_str());
  }

  // --- TET-MD, i7-7700 (256 bytes; same per-byte procedure as 1k) ----------
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    const auto secret = bench::random_bytes(256, 0x42);
    const std::uint64_t kaddr = m.plant_kernel_secret(secret);
    core::TetMeltdown atk(m, {.batches = 6});
    const std::uint64_t start = m.core().cycle();
    const auto leaked = atk.leak(kaddr, secret.size());
    const std::uint64_t cycles = m.core().cycle() - start;
    const auto rep =
        stats::evaluate_channel(secret, leaked, cycles, m.config().ghz);
    std::printf("TET-MD   i7-7700    : %-45s (paper: 50 B/s, err < 3%%)\n",
                rep.to_string().c_str());
  }

  // --- TET-RSB, 1k random bytes, i9-13900K ---------------------------------
  {
    os::Machine m({.model = uarch::CpuModel::RaptorLakeI9_13900K});
    const auto secret = bench::random_bytes(1024, 0x43);
    m.poke_bytes(os::Machine::kDataBase + 0x1000, secret);
    core::TetSpectreRsb atk(m, {.batches = 2});
    const std::uint64_t start = m.core().cycle();
    const auto leaked =
        atk.leak(os::Machine::kDataBase + 0x1000, secret.size());
    const std::uint64_t cycles = m.core().cycle() - start;
    const auto rep =
        stats::evaluate_channel(secret, leaked, cycles, m.config().ghz);
    std::printf("TET-RSB  i9-13900K  : %-45s (paper: 21.5 KB/s, "
                "err < 0.1%%)\n",
                rep.to_string().c_str());
  }

  // --- TET-KASLR, i9-10980XE, n=3 -------------------------------------------
  {
    std::vector<double> times;
    bool all_ok = true;
    for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
      os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
                     .kernel = {.kpti = true},
                     .seed = seed});
      core::TetKaslr atk(m, {.rounds = 3});
      const auto r = atk.run();
      all_ok &= r.success;
      times.push_back(r.seconds);
    }
    const auto s = stats::summarize(std::span<const double>(times));
    std::printf("TET-KASLR i9-10980XE: broke KASLR (KPTI) in %.4f s "
                "(n=%zu, sd=%.4f), all runs %s   (paper: 0.8829 s, n=3, "
                "u=0.0036)\n",
                s.mean, s.n, s.stdev, all_ok ? "succeeded" : "FAILED");
  }

  std::printf("\nShape check: TET-RSB >> TET-CC >> TET-MD in throughput "
              "(no fault vs TSX abort vs signal per probe),\nTET-KASLR "
              "sub-second over 512 slots — same ordering as the paper.\n");
  return 0;
}
