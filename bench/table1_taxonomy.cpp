// Table 1 reproduction: the side-channel taxonomy — demonstrated, not just
// asserted. We measure the property that separates the classes:
//
//   * Flush+Reload (stateful/direct): the transmission leaves persistent
//     cache state the receiver (or a detector!) can observe afterwards.
//   * TET (stateless/transient-only): after a probe, no attacker-visible
//     probe-array line is cached and no architectural state changed — the
//     information lived purely in the *duration* of the transient window.
#include <cstdio>

#include "baseline/flush_reload.h"
#include "baseline/prime_probe.h"
#include "bench/bench_util.h"
#include "core/attacks/common.h"
#include "core/covert_channel.h"
#include "core/gadgets.h"
#include "os/machine.h"

using namespace whisper;

namespace {

// Count how many probe-array lines are resident after a one-byte transfer.
int hot_probe_lines(os::Machine& m) {
  int hot = 0;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t pa = m.memsys().translate_or_throw(
        baseline::kProbeArrayBase + static_cast<std::uint64_t>(i) * 64);
    if (m.memsys().l1().contains(pa) || m.memsys().l2().contains(pa) ||
        m.memsys().l3().contains(pa))
      ++hot;
  }
  return hot;
}

}  // namespace

int main() {
  bench::heading("Table 1 — Comparison of side-channel attacks "
                 "(stateful vs stateless, measured)");

  // --- Flush+Reload: stateful --------------------------------------------
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    baseline::FlushReloadChannel ch(m);
    ch.flush_array();
    const int before = hot_probe_lines(m);
    ch.send_byte(0x77);  // the transmission itself
    const int after = hot_probe_lines(m);
    std::printf("\nFlush+Reload (stateful, direct):\n");
    std::printf("  probe-array lines cached before send: %d, after send: %d\n",
                before, after);
    std::printf("  -> persistent uarch state change carries the secret "
                "(detectable by cache monitors [15])\n");
  }

  // --- Prime+Probe: stateful via the attacker's own lines ------------------
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    baseline::PrimeProbeChannel ch(m);
    ch.prime();
    ch.send_symbol(11);
    const int got = ch.receive_symbol();
    const auto lat = ch.last_latencies();
    std::printf("\nPrime+Probe (stateful, contention):\n");
    std::printf("  decoded symbol %d; probe latency of the evicted set %llu "
                "vs quiet sets ~%llu cycles\n",
                got, (unsigned long long)lat[11],
                (unsigned long long)lat[0]);
    std::printf("  -> the secret persists as evictions in the receiver's own "
                "cache sets (no shared memory needed)\n");
  }

  // --- TET: stateless, transient-only -------------------------------------
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    m.poke8(os::Machine::kSharedBase, 0x77);
    // Flush the probe-array region so any stray fill would be visible.
    for (int i = 0; i < 256; ++i)
      m.memsys().clflush(baseline::kProbeArrayBase +
                         static_cast<std::uint64_t>(i) * 64);
    const int before = hot_probe_lines(m);

    const auto g = core::make_tet_gadget(
        {.window = core::preferred_window(m.config()),
         .source = core::SecretSource::SharedMemory});
    auto regs = bench::regs_with({{isa::Reg::RCX, core::kNullProbeAddress},
                                  {isa::Reg::RDX, os::Machine::kSharedBase},
                                  {isa::Reg::RBX, 0x77}});
    const std::uint64_t tote_hit = core::run_tote(m, g, regs);
    regs[static_cast<std::size_t>(isa::Reg::RBX)] = 0x78;
    const std::uint64_t tote_miss = core::run_tote(m, g, regs);
    const int after = hot_probe_lines(m);

    std::printf("\nTET (stateless, transient-only):\n");
    std::printf("  probe-array lines cached before probe: %d, after probe: "
                "%d  (no state-carrying footprint)\n",
                before, after);
    std::printf("  information is carried by ToTE alone: trigger %lu vs "
                "non-trigger %lu cycles\n",
                tote_hit, tote_miss);
  }

  std::printf("\nTable 1 placement (from the paper):\n");
  std::printf("  %-10s %-34s %-34s %s\n", "", "Stateful", "Stateless",
              "Transient-Only");
  std::printf("  %-10s %-34s %-34s %s\n", "Direct",
              "Cache (Flush+Reload), BPU",
              "Port contention, AVX, EntryBleed", "TET-MD, TET-ZBL, TET-RSB");
  std::printf("  %-10s %-34s %-34s %s\n", "Indirect", "TLB (TLBleed, AnC)",
              "Binoculars", "TET-KASLR");
  return 0;
}
