// Figure 1 reproduction: the TET gadget (Fig. 1a) and its result (Fig. 1b) —
// the ToTE frequency plot over the test-value sweep, and the argmax panels
// showing that the secret value's probes stand out.
//
// Paper: "In the highlighted region within the red box, it becomes
// non-trivial that the ToTE surpasses others when Jcc is triggered."
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/analyzer.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "obs/chrome_trace.h"
#include "obs/event_log.h"
#include "obs/topdown.h"
#include "os/machine.h"

using namespace whisper;

int main(int argc, char** argv) {
  const bench::HarnessArgs args = bench::parse_harness_args(argc, argv);
  bench::heading(
      "Figure 1 — Gadget of TET and result (Intel Core i7-7700 model)");

  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  constexpr std::uint8_t kSecret = 'S';
  m.poke8(os::Machine::kSharedBase, kSecret);

  const core::GadgetProgram g = core::make_tet_gadget(
      {.window = core::preferred_window(m.config()),
       .source = core::SecretSource::SharedMemory});

  std::printf("\nGadget (Fig. 1a) — disassembly of the probe program:\n%s\n",
              g.prog.disassemble().c_str());

  constexpr int kBatches = 16;
  core::ArgmaxAnalyzer analyzer(core::Polarity::Max);
  stats::Histogram trigger_hist, other_hist;

  auto regs = bench::regs_with({{isa::Reg::RCX, core::kNullProbeAddress},
                                {isa::Reg::RDX, os::Machine::kSharedBase}});

  // --trace-out: record one *triggered* gadget execution (test_value ==
  // secret) before the sweep — the Fig. 1 event stream the golden-trace
  // test pins down, exported as a Chrome/Perfetto trace.
  if (!args.trace_out.empty()) {
    obs::EventLog log;
    regs[static_cast<std::size_t>(isa::Reg::RBX)] = kSecret;
    m.core().set_trace(&log);
    (void)core::run_tote(m, g, regs);
    m.core().set_trace(nullptr);
    if (obs::write_chrome_trace(log, args.trace_out))
      std::printf("\n(pipeline trace of one triggered probe written to %s)\n",
                  args.trace_out.c_str());
  }
  const uarch::PmuSnapshot pmu_before = m.core().pmu().snapshot();
  for (int batch = 0; batch < kBatches; ++batch) {
    for (int tv = 0; tv <= 255; ++tv) {
      regs[static_cast<std::size_t>(isa::Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      const std::uint64_t tote = core::run_tote(m, g, regs);
      analyzer.add(tv, tote);
      (tv == kSecret ? trigger_hist : other_hist)
          .add(static_cast<std::int64_t>(tote));
    }
    analyzer.end_batch();
  }

  bench::subheading("Fig. 1b (top): ToTE frequency — Jcc NOT triggered "
                    "(test_value != 'S')");
  std::printf("%s", other_hist.ascii(10, 46).c_str());
  bench::subheading(
      "Fig. 1b (top): ToTE frequency — Jcc TRIGGERED (test_value == 'S')");
  std::printf("%s", trigger_hist.ascii(10, 46).c_str());
  std::printf("\nmean ToTE: not-triggered %.1f cycles, triggered %.1f "
              "cycles (delta %+.1f)\n",
              other_hist.mean(), trigger_hist.mean(),
              trigger_hist.mean() - other_hist.mean());

  bench::subheading("Fig. 1b (bottom): argmax counts per test value");
  const auto& votes = analyzer.votes();
  // Print the top 5 vote-getters.
  std::vector<int> order(256);
  for (int i = 0; i < 256; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return votes[static_cast<std::size_t>(a)] >
           votes[static_cast<std::size_t>(b)];
  });
  for (int i = 0; i < 5; ++i) {
    const int tv = order[static_cast<std::size_t>(i)];
    std::printf("  test_value %3d ('%c')  argmax count %2u / %d%s\n", tv,
                tv >= 32 && tv < 127 ? static_cast<char>(tv) : '?',
                votes[static_cast<std::size_t>(tv)], kBatches,
                tv == kSecret ? "   <-- secret" : "");
  }

  // Optional: dump plot data (gnuplot/pandas friendly) to a directory —
  // the first positional (non --flag) argument.
  std::string plot_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--jobs" || a == "--json" || a == "--trace-out" ||
        a == "--metrics-out") {
      ++i;  // skip the flag's value
    } else if (a.rfind("--", 0) != 0) {
      plot_dir = a;
      break;
    }
  }
  if (!plot_dir.empty()) {
    const std::string& dir = plot_dir;
    if (FILE* f = std::fopen((dir + "/fig1_tote_hist.dat").c_str(), "w")) {
      std::fprintf(f, "# tote_cycles count_trigger count_other\n");
      for (const auto& [v, c] : other_hist.buckets())
        std::fprintf(f, "%lld %llu %llu\n", (long long)v,
                     (unsigned long long)trigger_hist.count(v),
                     (unsigned long long)c);
      std::fclose(f);
    }
    if (FILE* f = std::fopen((dir + "/fig1_argmax.dat").c_str(), "w")) {
      std::fprintf(f, "# test_value argmax_votes mean_tote\n");
      const auto means = analyzer.mean_tote_by_value();
      for (int tv = 0; tv < 256; ++tv)
        std::fprintf(f, "%d %u %.2f\n", tv, votes[(std::size_t)tv],
                     means[(std::size_t)tv]);
      std::fclose(f);
    }
    std::printf("\n(plot data written to %s/fig1_*.dat)\n", dir.c_str());
  }

  const int decoded = analyzer.decode();
  std::printf("\ndecoded secret: %d ('%c')  —  %s\n", decoded,
              static_cast<char>(decoded),
              decoded == kSecret ? "matches Fig. 1 ('S')" : "MISMATCH");

  if (!args.metrics_out.empty()) {
    const uarch::PmuSnapshot delta =
        uarch::pmu_delta(pmu_before, m.core().pmu().snapshot());
    const obs::TopDown td = obs::attribute_cycles(delta);
    obs::MetricsRegistry reg;
    reg.import_pmu(delta);
    reg.set_counter("topdown.total_cycles", td.total_cycles);
    reg.set_counter("topdown.retiring", td.retiring);
    reg.set_counter("topdown.bad_speculation", td.bad_speculation);
    reg.set_counter("topdown.frontend_bound", td.frontend_bound);
    reg.set_counter("topdown.backend_bound", td.backend_bound);
    reg.set_counter("fig1.decoded", static_cast<std::uint64_t>(decoded));
    reg.set_gauge("fig1.tote_delta",
                  trigger_hist.mean() - other_hist.mean());
    reg.add_histogram("fig1.tote_triggered", trigger_hist);
    reg.add_histogram("fig1.tote_not_triggered", other_hist);
    bench::write_metrics(reg, args.metrics_out);
    std::printf("probe sweep top-down: %s\n", td.to_string().c_str());
  }
  return decoded == kSecret ? 0 : 1;
}
