// Perf baseline: the snapshot/reset trial fast path, fresh construction,
// and the fast-forward execution core.
//
// For each requested registry attack this harness times the same RunSpec
// four ways:
//   fresh_jobs1  — reuse_machine off, fast-forward off, --jobs 1 (the
//                  everything-structural floor)
//   reset_jobs1  — pooled snapshot reset, fast-forward off, --jobs 1 (the
//                  PR-4 baseline the fast-forward speedup is measured from)
//   ff_jobs1     — pooled reset + fast-forward, --jobs 1 (the shipping
//                  default path)
//   reset_jobsN  — pooled reset + fast-forward at the requested --jobs
// and reports host trials/sec, simulated cycles/sec, the reset-vs-fresh
// speedup and the fast-forward-vs-reset speedup. Results (bytes decoded,
// probes, ToTE, PMU) are bit-identical across every cell —
// tests/test_machine_reset.cpp and tests/test_fast_forward.cpp pin that —
// so this table is purely about host throughput; the --json trajectory
// (BENCH_perf.json under ctest) is the regression record for it.
// docs/PERFORMANCE.md explains how to read each column.
//
// Extra flags on top of the shared harness set (see bench_util.h):
//   --attacks LIST     comma-separated registry names (default: all)
//   --trials N         trials per measurement (default 16)
//   --bytes N          payload bytes per channel trial (default 2)
//   --batches N        argmax batches per byte (default 1; kaslr: rounds)
//   --no-fast-forward  run the ff_jobs1 and reset_jobsN cells structurally
//                      too (identity control: ff_jobs1 ≈ reset_jobs1);
//                      --fast-forward restates the default
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/attacks/registry.h"
#include "runner/json_writer.h"
#include "runner/runner.h"
#include "stats/json.h"

using namespace whisper;

namespace {

struct PerfArgs {
  std::vector<std::string> attacks;  // empty = the whole registry
  int trials = 16;
  std::size_t bytes = 2;
  int batches = 1;
  bool fast_forward = true;
};

PerfArgs parse_perf_args(int argc, char** argv) {
  PerfArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--attacks" && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > pos) out.attacks.push_back(list.substr(pos, end - pos));
        pos = end + 1;
      }
    } else if (a == "--trials" && i + 1 < argc) {
      out.trials = std::atoi(argv[++i]);
    } else if (a == "--bytes" && i + 1 < argc) {
      out.bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (a == "--batches" && i + 1 < argc) {
      out.batches = std::atoi(argv[++i]);
    } else if (a == "--no-fast-forward") {
      out.fast_forward = false;
    } else if (a == "--fast-forward") {
      out.fast_forward = true;
    }
  }
  return out;
}

/// One timed fan-out, reduced to rates. Wall time comes from the
/// RunResult's own fan-out clock, so the numbers cover exactly the trial
/// loop (construction/reset included, merge excluded).
struct Measurement {
  double wall_seconds = 0.0;
  double trials_per_sec = 0.0;
  double sim_cycles_per_sec = 0.0;
};

Measurement measure(runner::RunSpec spec, bool reuse, bool ff, int jobs,
                    bool progress) {
  spec.reuse_machine = reuse;
  spec.fast_forward = ff;
  runner::Executor ex(jobs);
  const runner::RunResult r = runner::run(spec, ex, progress);
  Measurement m;
  m.wall_seconds = r.wall_seconds;
  std::uint64_t sim_cycles = 0;
  for (const runner::TrialResult& t : r.trials) sim_cycles += t.cycles;
  if (r.wall_seconds > 0.0) {
    m.trials_per_sec =
        static_cast<double>(r.trials.size()) / r.wall_seconds;
    m.sim_cycles_per_sec = static_cast<double>(sim_cycles) / r.wall_seconds;
  }
  return m;
}

struct Row {
  std::string attack;
  Measurement fresh1;   // fresh construction, ff off, --jobs 1
  Measurement reset1;   // pooled reset, ff off, --jobs 1
  Measurement ff1;      // pooled reset + fast-forward, --jobs 1
  Measurement reset_n;  // pooled reset + fast-forward, --jobs N
  [[nodiscard]] double speedup() const {
    return fresh1.trials_per_sec > 0.0
               ? reset1.trials_per_sec / fresh1.trials_per_sec
               : 0.0;
  }
  [[nodiscard]] double ff_speedup() const {
    return reset1.trials_per_sec > 0.0
               ? ff1.trials_per_sec / reset1.trials_per_sec
               : 0.0;
  }
};

void json_measurement(runner::JsonWriter& w, const Measurement& m) {
  w.begin_object();
  w.key("wall_seconds");
  w.value(m.wall_seconds);
  w.key("trials_per_sec");
  w.value(m.trials_per_sec);
  w.key("sim_cycles_per_sec");
  w.value(m.sim_cycles_per_sec);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::HarnessArgs args = bench::parse_harness_args(argc, argv);
  const PerfArgs perf = parse_perf_args(argc, argv);

  std::vector<std::string> attacks = perf.attacks;
  if (attacks.empty()) attacks = core::attack_names();
  for (const std::string& a : attacks) {
    if (core::find_attack(a) == nullptr) {
      std::fprintf(stderr, "perf_baseline: unknown attack '%s' in --attacks\n",
                   a.c_str());
      return 2;
    }
  }
  const int jobs_n = runner::resolve_jobs(args.jobs);

  bench::heading("Perf baseline — fast-forward core and machine reset fast "
                 "path vs fresh construction");

  std::vector<Row> rows;
  for (const std::string& attack : attacks) {
    runner::RunSpec spec;
    spec.attack = attack;
    spec.trials = perf.trials;
    spec.base_seed = 0xbe9cULL;
    spec.payload_bytes = perf.bytes;
    spec.batches = perf.batches;
    spec.rounds = perf.batches;

    Row row;
    row.attack = attack;
    row.fresh1 = measure(spec, /*reuse=*/false, /*ff=*/false, /*jobs=*/1,
                         args.progress);
    row.reset1 = measure(spec, /*reuse=*/true, /*ff=*/false, /*jobs=*/1,
                         args.progress);
    row.ff1 = measure(spec, /*reuse=*/true, perf.fast_forward, /*jobs=*/1,
                      args.progress);
    row.reset_n = jobs_n == 1
                      ? row.ff1
                      : measure(spec, /*reuse=*/true, perf.fast_forward,
                                jobs_n, args.progress);
    rows.push_back(row);
  }

  std::printf("%-7s %11s %11s %11s %8s %8s %11s %11s\n", "attack",
              "fresh t/s", "reset t/s", "ff t/s", "reset-x", "ff-x",
              "Mcyc/s ff",
              ("ff t/s j" + std::to_string(jobs_n)).c_str());
  std::printf("%s\n", std::string(84, '-').c_str());
  for (const Row& r : rows) {
    std::printf("%-7s %11.1f %11.1f %11.1f %7.2fx %7.2fx %11.1f %11.1f\n",
                r.attack.c_str(), r.fresh1.trials_per_sec,
                r.reset1.trials_per_sec, r.ff1.trials_per_sec, r.speedup(),
                r.ff_speedup(), r.ff1.sim_cycles_per_sec / 1e6,
                r.reset_n.trials_per_sec);
  }
  std::printf("\n(%d trials per cell, %zu payload bytes, %d batches; every "
              "cell produces bit-identical\n results — the deltas are machine "
              "construction vs snapshot reset, and the\n cycle-by-cycle "
              "pipeline vs the fast-forward core%s)\n",
              perf.trials, perf.bytes, perf.batches,
              perf.fast_forward ? "" : " [--no-fast-forward: ff cells ran "
                                       "structurally]");

  if (!args.json.empty()) {
    runner::JsonWriter w;
    w.begin_object();
    w.key("trials");
    w.value(perf.trials);
    w.key("payload_bytes");
    w.value(static_cast<std::uint64_t>(perf.bytes));
    w.key("batches");
    w.value(perf.batches);
    w.key("jobs");
    w.value(jobs_n);
    w.key("attacks");
    w.begin_array();
    for (const Row& r : rows) {
      w.begin_object();
      w.key("attack");
      w.value(r.attack);
      w.key("fresh_jobs1");
      json_measurement(w, r.fresh1);
      w.key("reset_jobs1");
      json_measurement(w, r.reset1);
      w.key("ff_jobs1");
      json_measurement(w, r.ff1);
      w.key("reset_jobsN");
      json_measurement(w, r.reset_n);
      w.key("speedup");
      w.value(r.speedup());
      w.key("ff_speedup");
      w.value(r.ff_speedup());
      w.end_object();
    }
    w.end_array();
    w.end_object();

    const std::string body = w.str();
    if (!stats::json_is_valid(body)) {
      std::fprintf(stderr, "perf_baseline: generated JSON is invalid\n");
      return 1;
    }
    std::FILE* f = std::fopen(args.json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "perf_baseline: cannot open %s for writing\n",
                   args.json.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\n(perf trajectory written to %s)\n", args.json.c_str());
  }

  if (!args.metrics_out.empty()) {
    obs::MetricsRegistry reg;
    for (const Row& r : rows) {
      reg.set_gauge(r.attack + ".fresh_jobs1.trials_per_sec",
                    r.fresh1.trials_per_sec);
      reg.set_gauge(r.attack + ".reset_jobs1.trials_per_sec",
                    r.reset1.trials_per_sec);
      reg.set_gauge(r.attack + ".ff_jobs1.trials_per_sec",
                    r.ff1.trials_per_sec);
      reg.set_gauge(r.attack + ".reset_jobsN.trials_per_sec",
                    r.reset_n.trials_per_sec);
      reg.set_gauge(r.attack + ".speedup", r.speedup());
      reg.set_gauge(r.attack + ".ff_speedup", r.ff_speedup());
    }
    bench::write_metrics(reg, args.metrics_out);
  }
  return 0;
}
