// Perf baseline: the snapshot/reset trial fast path vs fresh construction.
//
// For each requested registry attack this harness runs the same RunSpec
// twice at --jobs 1 — once with reuse_machine = false (every trial builds a
// Machine from scratch) and once with the default pooled-reset path — and
// reports host trials/sec, simulated cycles/sec and the resulting speedup.
// A third measurement repeats the reset path at the requested --jobs to
// show how the fast path scales across workers. Results (bytes decoded,
// probes, ToTE) are bit-identical between the two paths —
// tests/test_machine_reset.cpp pins that — so this table is purely about
// host throughput; the --json trajectory (BENCH_perf.json under ctest) is
// the regression record for it.
//
// Extra flags on top of the shared harness set (see bench_util.h):
//   --attacks LIST     comma-separated registry names (default: all)
//   --trials N         trials per measurement (default 16)
//   --bytes N          payload bytes per channel trial (default 2)
//   --batches N        argmax batches per byte (default 1; kaslr: rounds)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/attacks/registry.h"
#include "runner/json_writer.h"
#include "runner/runner.h"
#include "stats/json.h"

using namespace whisper;

namespace {

struct PerfArgs {
  std::vector<std::string> attacks;  // empty = the whole registry
  int trials = 16;
  std::size_t bytes = 2;
  int batches = 1;
};

PerfArgs parse_perf_args(int argc, char** argv) {
  PerfArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--attacks" && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > pos) out.attacks.push_back(list.substr(pos, end - pos));
        pos = end + 1;
      }
    } else if (a == "--trials" && i + 1 < argc) {
      out.trials = std::atoi(argv[++i]);
    } else if (a == "--bytes" && i + 1 < argc) {
      out.bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (a == "--batches" && i + 1 < argc) {
      out.batches = std::atoi(argv[++i]);
    }
  }
  return out;
}

/// One timed fan-out, reduced to rates. Wall time comes from the
/// RunResult's own fan-out clock, so the numbers cover exactly the trial
/// loop (construction/reset included, merge excluded).
struct Measurement {
  double wall_seconds = 0.0;
  double trials_per_sec = 0.0;
  double sim_cycles_per_sec = 0.0;
};

Measurement measure(runner::RunSpec spec, bool reuse, int jobs,
                    bool progress) {
  spec.reuse_machine = reuse;
  runner::Executor ex(jobs);
  const runner::RunResult r = runner::run(spec, ex, progress);
  Measurement m;
  m.wall_seconds = r.wall_seconds;
  std::uint64_t sim_cycles = 0;
  for (const runner::TrialResult& t : r.trials) sim_cycles += t.cycles;
  if (r.wall_seconds > 0.0) {
    m.trials_per_sec =
        static_cast<double>(r.trials.size()) / r.wall_seconds;
    m.sim_cycles_per_sec = static_cast<double>(sim_cycles) / r.wall_seconds;
  }
  return m;
}

struct Row {
  std::string attack;
  Measurement fresh1;   // fresh construction, --jobs 1
  Measurement reset1;   // pooled reset, --jobs 1
  Measurement reset_n;  // pooled reset, --jobs N
  [[nodiscard]] double speedup() const {
    return fresh1.trials_per_sec > 0.0
               ? reset1.trials_per_sec / fresh1.trials_per_sec
               : 0.0;
  }
};

void json_measurement(runner::JsonWriter& w, const Measurement& m) {
  w.begin_object();
  w.key("wall_seconds");
  w.value(m.wall_seconds);
  w.key("trials_per_sec");
  w.value(m.trials_per_sec);
  w.key("sim_cycles_per_sec");
  w.value(m.sim_cycles_per_sec);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::HarnessArgs args = bench::parse_harness_args(argc, argv);
  const PerfArgs perf = parse_perf_args(argc, argv);

  std::vector<std::string> attacks = perf.attacks;
  if (attacks.empty()) attacks = core::attack_names();
  for (const std::string& a : attacks) {
    if (core::find_attack(a) == nullptr) {
      std::fprintf(stderr, "perf_baseline: unknown attack '%s' in --attacks\n",
                   a.c_str());
      return 2;
    }
  }
  const int jobs_n = runner::resolve_jobs(args.jobs);

  bench::heading("Perf baseline — machine reset fast path vs fresh "
                 "construction");

  std::vector<Row> rows;
  for (const std::string& attack : attacks) {
    runner::RunSpec spec;
    spec.attack = attack;
    spec.trials = perf.trials;
    spec.base_seed = 0xbe9cULL;
    spec.payload_bytes = perf.bytes;
    spec.batches = perf.batches;
    spec.rounds = perf.batches;

    Row row;
    row.attack = attack;
    row.fresh1 = measure(spec, /*reuse=*/false, /*jobs=*/1, args.progress);
    row.reset1 = measure(spec, /*reuse=*/true, /*jobs=*/1, args.progress);
    row.reset_n = jobs_n == 1
                      ? row.reset1
                      : measure(spec, /*reuse=*/true, jobs_n, args.progress);
    rows.push_back(row);
  }

  std::printf("%-7s %12s %12s %8s %14s %12s\n", "attack", "fresh t/s",
              "reset t/s", "speedup", "Mcyc/s reset",
              ("reset t/s j" + std::to_string(jobs_n)).c_str());
  std::printf("%s\n", std::string(72, '-').c_str());
  for (const Row& r : rows) {
    std::printf("%-7s %12.1f %12.1f %7.2fx %14.1f %12.1f\n", r.attack.c_str(),
                r.fresh1.trials_per_sec, r.reset1.trials_per_sec, r.speedup(),
                r.reset1.sim_cycles_per_sec / 1e6,
                r.reset_n.trials_per_sec);
  }
  std::printf("\n(%d trials per cell, %zu payload bytes, %d batches; both "
              "paths produce bit-identical\n results — the delta is machine "
              "construction vs snapshot reset)\n",
              perf.trials, perf.bytes, perf.batches);

  if (!args.json.empty()) {
    runner::JsonWriter w;
    w.begin_object();
    w.key("trials");
    w.value(perf.trials);
    w.key("payload_bytes");
    w.value(static_cast<std::uint64_t>(perf.bytes));
    w.key("batches");
    w.value(perf.batches);
    w.key("jobs");
    w.value(jobs_n);
    w.key("attacks");
    w.begin_array();
    for (const Row& r : rows) {
      w.begin_object();
      w.key("attack");
      w.value(r.attack);
      w.key("fresh_jobs1");
      json_measurement(w, r.fresh1);
      w.key("reset_jobs1");
      json_measurement(w, r.reset1);
      w.key("reset_jobsN");
      json_measurement(w, r.reset_n);
      w.key("speedup");
      w.value(r.speedup());
      w.end_object();
    }
    w.end_array();
    w.end_object();

    const std::string body = w.str();
    if (!stats::json_is_valid(body)) {
      std::fprintf(stderr, "perf_baseline: generated JSON is invalid\n");
      return 1;
    }
    std::FILE* f = std::fopen(args.json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "perf_baseline: cannot open %s for writing\n",
                   args.json.c_str());
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\n(perf trajectory written to %s)\n", args.json.c_str());
  }

  if (!args.metrics_out.empty()) {
    obs::MetricsRegistry reg;
    for (const Row& r : rows) {
      reg.set_gauge(r.attack + ".fresh_jobs1.trials_per_sec",
                    r.fresh1.trials_per_sec);
      reg.set_gauge(r.attack + ".reset_jobs1.trials_per_sec",
                    r.reset1.trials_per_sec);
      reg.set_gauge(r.attack + ".reset_jobsN.trials_per_sec",
                    r.reset_n.trials_per_sec);
      reg.set_gauge(r.attack + ".speedup", r.speedup());
    }
    bench::write_metrics(reg, args.metrics_out);
  }
  return 0;
}
