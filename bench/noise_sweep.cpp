// Noise sweep: channel robustness under interference, fixed vs adaptive.
//
// Walks a noise profile (default: desktop) through intensity steps and runs
// each requested attack twice per step — once with its fixed default batch
// count and once with adaptive escalation (batches double until the decode
// confidence clears the threshold or the budget caps it). The table shows
// where the fixed configuration starts mis-decoding and how many extra
// probes the adaptive loop spends to stay below its error target; `gave_up`
// counts bytes reported as unrecoverable instead of silently wrong.
//
// Every cell is a whisper::runner::RunSpec fanned out through one Executor,
// so `--jobs N` parallelises the sweep with results bit-identical to
// `--jobs 1`. The --json trajectory deliberately contains no wall-clock
// fields for the same reason: its bytes are identical whatever --jobs is.
//
// Extra flags on top of the shared harness set (see bench_util.h):
//   --noise-profile P  preset to sweep: quiet | desktop | noisy-server
//   --attacks LIST     comma-separated registry names (default cc,md,rsb)
//   --steps N          intensity steps: 0, 1/N, ..., 1 × the preset
//   --trials N         trials per cell
//   --bytes N          payload bytes per trial
//   --budget N         adaptive batch budget (0 = 8× the initial count)
//   --threshold C      adaptive confidence threshold in [0, 1]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/attacks/registry.h"
#include "noise/noise.h"
#include "runner/json_writer.h"
#include "runner/runner.h"

using namespace whisper;

namespace {

struct SweepArgs {
  std::string profile = "desktop";
  std::vector<std::string> attacks = {"cc", "md", "rsb"};
  int steps = 4;
  int trials = 3;
  std::size_t bytes = 16;
  int budget = 0;
  double threshold = 0.5;
};

SweepArgs parse_sweep_args(int argc, char** argv) {
  SweepArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--noise-profile" && i + 1 < argc) {
      out.profile = argv[++i];
    } else if (a == "--attacks" && i + 1 < argc) {
      out.attacks.clear();
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size()
                                                           : comma;
        if (end > pos) out.attacks.push_back(list.substr(pos, end - pos));
        pos = end + 1;
      }
    } else if (a == "--steps" && i + 1 < argc) {
      out.steps = std::atoi(argv[++i]);
    } else if (a == "--trials" && i + 1 < argc) {
      out.trials = std::atoi(argv[++i]);
    } else if (a == "--bytes" && i + 1 < argc) {
      out.bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (a == "--budget" && i + 1 < argc) {
      out.budget = std::atoi(argv[++i]);
    } else if (a == "--threshold" && i + 1 < argc) {
      out.threshold = std::atof(argv[++i]);
    }
  }
  return out;
}

struct Cell {
  std::string attack;
  double intensity = 0.0;
  bool adaptive = false;
  runner::RunResult result;

  [[nodiscard]] double error_rate() const {
    return result.total_bytes
               ? static_cast<double>(result.total_byte_errors) /
                     static_cast<double>(result.total_bytes)
               : (result.trials.empty()
                      ? 0.0
                      : 1.0 - static_cast<double>(result.successes) /
                                  static_cast<double>(result.trials.size()));
  }
  [[nodiscard]] double probes_per_byte() const {
    const std::size_t denom =
        result.total_bytes ? result.total_bytes : result.trials.size();
    return denom ? static_cast<double>(result.total_probes) /
                       static_cast<double>(denom)
                 : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bench::HarnessArgs args = bench::parse_harness_args(argc, argv);
  const SweepArgs sweep = parse_sweep_args(argc, argv);

  const auto base = noise::NoiseProfile::by_name(sweep.profile);
  if (!base || !base->enabled()) {
    std::fprintf(stderr,
                 "noise_sweep: --noise-profile must be a non-empty preset "
                 "(quiet|desktop|noisy-server), got '%s'\n",
                 sweep.profile.c_str());
    return 2;
  }
  for (const std::string& a : sweep.attacks) {
    if (core::find_attack(a) == nullptr) {
      std::fprintf(stderr, "noise_sweep: unknown attack '%s' in --attacks\n",
                   a.c_str());
      return 2;
    }
  }

  bench::heading("Noise sweep — " + base->name +
                 " profile, fixed vs adaptive decoding");

  // Cell grid: attack × intensity step × {fixed, adaptive}, all specs
  // through one run_many so any --jobs fills the pool.
  std::vector<Cell> cells;
  std::vector<runner::RunSpec> specs;
  for (const std::string& attack : sweep.attacks) {
    for (int s = 0; s <= sweep.steps; ++s) {
      const double factor =
          sweep.steps > 0 ? static_cast<double>(s) / sweep.steps : 1.0;
      for (const bool adaptive : {false, true}) {
        runner::RunSpec spec;
        spec.attack = attack;
        spec.trials = sweep.trials;
        spec.base_seed = 0x5109eULL;
        spec.noise = base->scaled(factor);
        spec.payload_bytes = sweep.bytes;
        spec.payload_seed = 0xbeefULL;
        spec.rounds = 2;
        spec.adaptive = adaptive;
        spec.confidence_threshold = sweep.threshold;
        spec.batch_budget = sweep.budget;
        bench::apply_fault_args(spec, args);
        cells.push_back({attack, factor, adaptive, {}});
        specs.push_back(spec);
      }
    }
  }

  runner::Executor ex(args.jobs);
  const std::vector<runner::RunResult> results =
      runner::run_many(specs, ex, args.progress);
  for (std::size_t i = 0; i < cells.size(); ++i)
    cells[i].result = results[i];

  std::printf("%-7s %-10s %-9s %-8s %-10s %-8s %-10s\n", "attack",
              "intensity", "mode", "err%", "probes/B", "gave_up", "conf");
  std::printf("%s\n", std::string(68, '-').c_str());
  for (const Cell& c : cells) {
    std::printf("%-7s %-10.2f %-9s %-8.2f %-10.1f %-8zu %-10.2f\n",
                c.attack.c_str(), c.intensity,
                c.adaptive ? "adaptive" : "fixed", 100.0 * c.error_rate(),
                c.probes_per_byte(), c.result.total_gave_up,
                c.result.confidence.mean);
  }
  std::printf("\n(fixed = the attack's default batch count; adaptive "
              "escalates until the vote margin\n clears %.2f or the budget "
              "caps it — gave_up counts bytes flagged unrecoverable)\n",
              sweep.threshold);

  if (!args.json.empty()) {
    // Deterministic trajectory: no wall-clock, no job count — bytes are
    // identical for any --jobs (the tier-2 check depends on this).
    runner::JsonWriter w;
    w.begin_object();
    w.key("profile");
    w.value(base->name);
    w.key("steps");
    w.value(sweep.steps);
    w.key("trials");
    w.value(sweep.trials);
    w.key("payload_bytes");
    w.value(static_cast<std::uint64_t>(sweep.bytes));
    w.key("threshold");
    w.value(sweep.threshold);
    w.key("cells");
    w.begin_array();
    for (const Cell& c : cells) {
      w.begin_object();
      w.key("attack");
      w.value(c.attack);
      w.key("intensity");
      w.value(c.intensity);
      w.key("adaptive");
      w.value(c.adaptive);
      w.key("trials");
      w.value(static_cast<std::uint64_t>(c.result.trials.size()));
      w.key("successes");
      w.value(static_cast<std::uint64_t>(c.result.successes));
      w.key("bytes");
      w.value(static_cast<std::uint64_t>(c.result.total_bytes));
      w.key("byte_errors");
      w.value(static_cast<std::uint64_t>(c.result.total_byte_errors));
      w.key("error_rate");
      w.value(c.error_rate());
      w.key("probes");
      w.value(static_cast<std::uint64_t>(c.result.total_probes));
      w.key("probes_per_byte");
      w.value(c.probes_per_byte());
      w.key("gave_up");
      w.value(static_cast<std::uint64_t>(c.result.total_gave_up));
      w.key("confidence_mean");
      w.value(c.result.confidence.mean);
      w.key("sim_seconds_mean");
      w.value(c.result.seconds.mean);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::FILE* f = std::fopen(args.json.c_str(), "w");
    if (f) {
      const std::string body = w.str();
      std::fwrite(body.data(), 1, body.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("\n(sweep trajectory written to %s)\n", args.json.c_str());
    } else {
      std::fprintf(stderr, "noise_sweep: cannot open %s for writing\n",
                   args.json.c_str());
      return 1;
    }
  }

  if (!args.metrics_out.empty()) {
    obs::MetricsRegistry reg;
    for (const Cell& c : cells) {
      char prefix[96];
      std::snprintf(prefix, sizeof prefix, "%s.i%02d.%s.", c.attack.c_str(),
                    static_cast<int>(100.0 * c.intensity + 0.5),
                    c.adaptive ? "adaptive" : "fixed");
      reg.merge(runner::to_metrics(c.result, prefix));
    }
    bench::write_metrics(reg, args.metrics_out);
  }
  return 0;
}
