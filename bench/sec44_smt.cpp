// §4.4 reproduction: the SMT covert channel. The trojan's suppressed page
// fault flushes the pipeline and monopolises the shared front end; the spy
// times a nop loop.
//
// Paper: "Our prototype verification speed was 1 B/s with an error rate
// lower than 5% in Core i7-7700. Using the evaluate tools from SecSMT, the
// preliminary throughput could achieve 268 KB/s though with a 28% error
// rate."
#include <cstdio>

#include "bench/bench_util.h"
#include "core/attacks/smt_channel.h"
#include "stats/summary.h"
#include "os/machine.h"

using namespace whisper;

int main() {
  bench::heading("Section 4.4 — Covert channel for SMT (i7-7700 model)");

  // Bit-separation calibration plot.
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    core::SmtCovertChannel ch(m);
    std::printf("\nspy nop-loop time per trojan bit (16 samples each):\n");
    stats::OnlineStats zeros, ones;
    for (int i = 0; i < 16; ++i) {
      zeros.add(static_cast<double>(ch.measure_bit(false)));
      ones.add(static_cast<double>(ch.measure_bit(true)));
    }
    std::printf("  trojan sends 0: %7.1f +- %5.1f cycles\n", zeros.mean(),
                zeros.stdev());
    std::printf("  trojan sends 1: %7.1f +- %5.1f cycles   (fault-induced "
                "frontend stall)\n",
                ones.mean(), ones.stdev());
    std::printf("  separation: %+.1f cycles\n", ones.mean() - zeros.mean());
  }

  // Conservative "prototype" configuration: long spy slots.
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    core::SmtCovertChannel ch(m, {.spy_iters = 96, .calibration_bits = 32});
    const auto payload = bench::random_bytes(256, 0x44);
    const auto rep = ch.transmit(payload);
    std::printf("\nprototype config  (96-iter slots): %s\n",
                rep.to_string().c_str());
    std::printf("                                   (paper prototype: "
                "1 B/s, err < 5%%)\n");
  }

  // Aggressive "SecSMT-harness" configuration: short slots, more errors.
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    core::SmtCovertChannel ch(
        m, {.spy_iters = 8, .calibration_bits = 16, .start_skew_max = 24});
    const auto payload = bench::random_bytes(512, 0x45);
    const auto rep = ch.transmit(payload);
    std::printf("\naggressive config (8-iter slots, imperfect sync): %s\n",
                rep.to_string().c_str());
    std::printf("                                   bit error rate: %.1f%%\n",
                rep.bit_error_rate * 100.0);
    std::printf("                                   (paper w/ SecSMT "
                "harness: 268 KB/s at 28%% err)\n");
  }

  std::printf("\nShape check: shrinking the spy slot trades error rate for "
              "throughput, exactly the paper's two operating points.\n");
  return 0;
}
