// Extension experiments beyond the paper's evaluation:
//
//   E1  TET-Spectre-V1 — the Whisper channel composed with the classic
//       bounds-check-bypass window (no fault, works on fixed silicon).
//   E2  Detector evaluation — the §4.2 threat-model assumption quantified:
//       which monitors see which attack.
//   E3  Branchless (CMOV) rewrite — the constant-time software mitigation
//       that silences the channel at its source.
//   E4  Repetition-coded SMT channel — the paper's "speed up with high
//       accuracy" future work, first step.
#include <cstdio>

#include "baseline/avx_kaslr.h"
#include "baseline/flush_reload.h"
#include "bench/bench_util.h"
#include "core/attacks/meltdown.h"
#include "core/attacks/smt_channel.h"
#include "core/attacks/spectre_rsb.h"
#include "core/attacks/spectre_v1.h"
#include "core/attacks/kaslr.h"
#include "core/detector.h"
#include "core/gadgets.h"
#include "os/machine.h"

using namespace whisper;

int main() {
  bench::heading("Extensions beyond the paper's evaluation");

  // --- E1: TET-Spectre-V1 ---------------------------------------------------
  bench::subheading("E1: TET-Spectre-V1 (bounds-check bypass over Whisper)");
  for (uarch::CpuModel model : {uarch::CpuModel::KabyLakeI7_7700,
                                uarch::CpuModel::CometLakeI9_10980XE,
                                uarch::CpuModel::Zen3Ryzen5_5600G}) {
    os::Machine m({.model = model});
    core::TetSpectreV1 atk(m);
    const auto secret = bench::random_bytes(8, 0xE1);
    const std::uint64_t addr = core::TetSpectreV1::kArrayBase + 0x80;
    m.poke_bytes(addr, secret);
    const std::uint64_t start = m.core().cycle();
    const auto leaked = atk.leak(addr, secret.size());
    const auto rep = stats::evaluate_channel(
        secret, leaked, m.core().cycle() - start, m.config().ghz);
    std::printf("  %-24s %s  (%s)\n", uarch::to_string(model).c_str(),
                bench::mark(leaked == secret), rep.to_string().c_str());
  }
  std::printf("  (V1 needs no Meltdown/MDS silicon flaw — it leaks on every "
              "model, including the fixed ones)\n");

  // --- E2: detector evaluation ----------------------------------------------
  bench::subheading("E2: PMU-monitor evaluation (who gets caught?)");
  std::printf("  %-22s %-22s %-22s\n", "attack", "cache monitor",
              "clear-rate monitor");
  core::PmuDetector detector;
  auto verdict = [&](const uarch::PmuSnapshot& d) {
    return detector.analyze(d);
  };
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    const auto secret = bench::random_bytes(2, 0xE2);
    const std::uint64_t kaddr = m.plant_kernel_secret(secret);
    const auto before = m.core().pmu().snapshot();
    baseline::MeltdownFlushReload atk(m);
    (void)atk.leak(kaddr, secret.size());
    const auto r = verdict(uarch::pmu_delta(before, m.core().pmu().snapshot()));
    std::printf("  %-22s %-22s %-22s\n", "Meltdown+F&R",
                r.cache_attack_suspected ? "DETECTED" : "missed",
                r.clear_storm_suspected ? "DETECTED" : "missed");
  }
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    const auto secret = bench::random_bytes(2, 0xE2);
    const std::uint64_t kaddr = m.plant_kernel_secret(secret);
    const auto before = m.core().pmu().snapshot();
    core::TetMeltdown atk(m, {{.batches = 3}});
    (void)atk.leak(kaddr, secret.size());
    const auto r = verdict(uarch::pmu_delta(before, m.core().pmu().snapshot()));
    std::printf("  %-22s %-22s %-22s\n", "TET-MD",
                r.cache_attack_suspected ? "DETECTED" : "missed",
                r.clear_storm_suspected ? "DETECTED" : "missed");
  }
  {
    os::Machine m({.model = uarch::CpuModel::RaptorLakeI9_13900K});
    const auto secret = bench::random_bytes(2, 0xE2);
    m.poke_bytes(os::Machine::kDataBase + 0x1000, secret);
    const auto before = m.core().pmu().snapshot();
    core::TetSpectreRsb atk(m);
    (void)atk.leak(os::Machine::kDataBase + 0x1000, secret.size());
    const auto r = verdict(uarch::pmu_delta(before, m.core().pmu().snapshot()));
    std::printf("  %-22s %-22s %-22s\n", "TET-RSB",
                r.cache_attack_suspected ? "DETECTED" : "missed",
                r.clear_storm_suspected ? "DETECTED" : "missed");
  }
  std::printf("  (the §4.2 assumption quantified: cache monitors miss every "
              "TET variant; only a fault-storm\n   monitor sees "
              "exception-suppressed TET — and TET-RSB evades both)\n");

  // --- E3: branchless rewrite -------------------------------------------------
  bench::subheading("E3: constant-time (CMOV) rewrite kills the channel");
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    m.poke8(os::Machine::kSharedBase, 'S');
    std::array<std::uint64_t, isa::kNumRegs> regs{};
    regs[static_cast<std::size_t>(isa::Reg::RCX)] = core::kNullProbeAddress;
    regs[static_cast<std::size_t>(isa::Reg::RDX)] = os::Machine::kSharedBase;
    for (bool branchless : {false, true}) {
      const auto g =
          branchless
              ? core::make_tet_gadget_branchless(
                    core::preferred_window(m.config()))
              : core::make_tet_gadget(
                    {.window = core::preferred_window(m.config()),
                     .source = core::SecretSource::SharedMemory});
      double hit = 0, miss = 0;
      for (int i = 0; i < 32; ++i) {
        regs[static_cast<std::size_t>(isa::Reg::RBX)] = 'S';
        hit += static_cast<double>(core::run_tote(m, g, regs));
        regs[static_cast<std::size_t>(isa::Reg::RBX)] = 'T';
        miss += static_cast<double>(core::run_tote(m, g, regs));
      }
      std::printf("  %-18s ToTE match %.1f vs mismatch %.1f  (delta %+.1f "
                  "cycles)\n",
                  branchless ? "cmov (branchless):" : "jcc (Fig. 1a):",
                  hit / 32, miss / 32, (hit - miss) / 32);
    }
  }

  // --- E5: AVX-timing baseline and its mitigation ----------------------------
  bench::subheading("E5: AVX-timing KASLR baseline (Choi et al. '23) vs the "
                    "'replace AVX' mitigation (6.1)");
  for (bool gating : {true, false}) {
    uarch::CpuConfig cfg =
        uarch::make_config(uarch::CpuModel::CometLakeI9_10980XE);
    cfg.avx_power_gating = gating;
    os::Machine m1({.model = cfg.model, .seed = 0xE5, .config = cfg});
    baseline::AvxKaslr avx(m1);
    const auto ra = avx.run();
    os::Machine m2({.model = cfg.model, .seed = 0xE5, .config = cfg});
    core::TetKaslr tet(m2, {.rounds = 2});
    const auto rt = tet.run();
    std::printf("  AVX power gating %-3s -> AVX-KASLR %s   TET-KASLR %s\n",
                gating ? "on" : "off", bench::mark(ra.success),
                bench::mark(rt.success));
  }
  std::printf("  (fixing the AVX unit's timing kills the AVX probe; TET "
              "never touched the vector unit)\n");

  // --- E4: repetition-coded SMT channel ---------------------------------------
  bench::subheading("E4: repetition coding on the skewed SMT channel");
  std::printf("  %-12s %-14s %-14s\n", "repetition", "bit error", "rate");
  for (int rep : {1, 3, 5, 9}) {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    core::SmtCovertChannel ch(m, {.spy_iters = 12,
                                  .calibration_bits = 16,
                                  .start_skew_max = 60,
                                  .repetition = rep});
    const auto payload = bench::random_bytes(128, 0xE4);
    const auto r = ch.transmit(payload);
    std::printf("  %-12d %-14.1f %-14s\n", rep, r.bit_error_rate * 100.0,
                stats::format_rate(r.bytes_per_second).c_str());
  }
  std::printf("  (\"we leave speed up with high accuracy ... to future "
              "work\" — §4.4; majority decoding is step one)\n");
  return 0;
}
