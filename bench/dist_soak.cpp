// dist_soak — the distributed sweep stack under scripted failure.
//
//   dist_soak [--trials T] [--chunk C] [--json PATH]
//
// Soaks invariant 13 (docs/ARCHITECTURE.md): a SweepClient merging one
// RunSpec off N whisper_serve daemons produces bytes identical to a local
// single-process runner::run — for any endpoint count and any failure
// schedule that completes. A defense-matrix subgrid ({cc, kaslr} ×
// {none, kpti}) runs each cell three ways over in-process loopback
// daemons (1, 2, 4 endpoints), then three adversarial scenarios ride on
// top:
//
//   * kill-mid-sweep   one of three daemons is killed by an on_trial hook
//                      after it has delivered its first trial; its chunks
//                      must be reassigned to the survivors (reassigned > 0,
//                      dead_endpoints >= 1) with zero trials lost.
//   * flaky-transport  every connection runs under a deterministic fault
//                      plan (drop@1;shortread@3;stall@5 over per-endpoint
//                      request ordinals) — torn writes, half-delivered
//                      lines, and a silent daemon, all recovered by
//                      reconnect and re-request.
//   * tcp-127.0.0.1    the same sweep over real TCP daemons on ephemeral
//                      loopback ports (skipped gracefully where TCP is
//                      unavailable), because byte-identity must not depend
//                      on the transport.
//
// Every scenario asserts completion and byte-identity against the cell's
// locally-computed reference stream; duplicates re-fetched after a failure
// are verified byte-equal by the client itself. The trajectory is written
// to --json as BENCH_dist.json (stats::json_is_valid-checked). Non-zero
// exit on any violation — this is the tier-2 `whisper_dist_soak` ctest.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "client/endpoint.h"
#include "client/sweep_client.h"
#include "client/wire.h"
#include "defense/defense.h"
#include "runner/runner.h"
#include "serve/server.h"
#include "serve/transport_loopback.h"
#include "serve/transport_tcp.h"
#include "stats/json.h"

using namespace whisper;

namespace {

struct SoakArgs {
  int trials = 8;
  int chunk = 2;
  std::string json;
};

SoakArgs parse_args(int argc, char** argv) {
  SoakArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trials" && i + 1 < argc)
      out.trials = std::atoi(argv[++i]);
    else if (a == "--chunk" && i + 1 < argc)
      out.chunk = std::atoi(argv[++i]);
    else if (a == "--json" && i + 1 < argc)
      out.json = argv[++i];
  }
  if (out.trials < 4) out.trials = 4;
  if (out.chunk < 1) out.chunk = 1;
  return out;
}

/// One grid cell and its locally-computed invariant-13 reference.
struct Cell {
  std::string name;
  runner::RunSpec spec;
  std::vector<std::string> want_trials;
  std::string want_done;
};

/// A pool of in-process daemons: one LoopbackTransport + Server per
/// endpoint, torn down drain-then-stop on destruction.
struct LoopbackCluster {
  std::vector<std::unique_ptr<serve::LoopbackTransport>> transports;
  std::vector<std::unique_ptr<serve::Server>> servers;
  std::vector<std::shared_ptr<client::Endpoint>> endpoints;

  explicit LoopbackCluster(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      transports.push_back(std::make_unique<serve::LoopbackTransport>());
      servers.push_back(std::make_unique<serve::Server>(
          *transports.back(), serve::ServerOptions{}));
      servers.back()->start();
      endpoints.push_back(std::make_shared<client::LoopbackEndpoint>(
          *transports.back(), "loopback:" + std::to_string(i)));
    }
  }
  ~LoopbackCluster() {
    for (auto& s : servers) s->stop();
  }
};

struct Scenario {
  std::string name;
  std::string cell;
  std::size_t endpoints = 0;
  bool skipped = false;
  bool complete = false;
  bool byte_identical = false;
  std::size_t trials_received = 0;
  std::string error;
  client::SweepStats stats;
};

/// Run one sweep and grade it against the cell's reference bytes.
Scenario grade(const std::string& name, const Cell& cell,
               const std::vector<std::shared_ptr<client::Endpoint>>& eps,
               const client::SweepOptions& opts) {
  Scenario s;
  s.name = name;
  s.cell = cell.name;
  s.endpoints = eps.size();
  client::SweepClient sweeper(opts);
  const client::SweepResult r = sweeper.sweep(cell.spec, eps);
  s.complete = r.complete;
  s.trials_received = r.trials_received;
  s.error = r.error;
  s.stats = r.stats;
  s.byte_identical = r.complete && r.trial_lines == cell.want_trials &&
                     r.done_line == cell.want_done;
  return s;
}

void print_scenario(const Scenario& s) {
  if (s.skipped) {
    std::printf("  %-18s %-12s  skipped (%s)\n", s.name.c_str(),
                s.cell.c_str(), s.error.c_str());
    return;
  }
  std::printf(
      "  %s %-18s %-12s %zu endpoint(s): %zu trials, %zu req, "
      "%zu unreachable, %zu timeout, %zu reconnect, %zu reassigned, "
      "%zu dead, %zu dup%s%s\n",
      bench::mark(s.complete && s.byte_identical), s.name.c_str(),
      s.cell.c_str(), s.endpoints, s.trials_received, s.stats.requests,
      s.stats.unreachable, s.stats.timed_out, s.stats.reconnects,
      s.stats.reassigned, s.stats.dead_endpoints, s.stats.duplicate_trials,
      s.error.empty() ? "" : "  error: ", s.error.c_str());
}

void write_scenario_json(stats::JsonWriter& w, const Scenario& s) {
  w.begin_object();
  w.key("name");
  w.value(s.name);
  w.key("cell");
  w.value(s.cell);
  w.key("endpoints");
  w.value(static_cast<std::uint64_t>(s.endpoints));
  w.key("skipped");
  w.value(s.skipped);
  w.key("complete");
  w.value(s.complete);
  w.key("byte_identical");
  w.value(s.byte_identical);
  w.key("trials_received");
  w.value(static_cast<std::uint64_t>(s.trials_received));
  w.key("requests");
  w.value(static_cast<std::uint64_t>(s.stats.requests));
  w.key("unreachable");
  w.value(static_cast<std::uint64_t>(s.stats.unreachable));
  w.key("timed_out");
  w.value(static_cast<std::uint64_t>(s.stats.timed_out));
  w.key("reconnects");
  w.value(static_cast<std::uint64_t>(s.stats.reconnects));
  w.key("reassigned");
  w.value(static_cast<std::uint64_t>(s.stats.reassigned));
  w.key("dead_endpoints");
  w.value(static_cast<std::uint64_t>(s.stats.dead_endpoints));
  w.key("duplicate_trials");
  w.value(static_cast<std::uint64_t>(s.stats.duplicate_trials));
  w.key("error");
  w.value(s.error);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const SoakArgs args = parse_args(argc, argv);
  bench::heading("dist_soak — distributed sweep soak: " +
                 std::to_string(args.trials) + " trials/cell, chunk " +
                 std::to_string(args.chunk));

  // The subgrid and its local references (the right-hand side of
  // invariant 13, computed once per cell).
  std::vector<Cell> cells;
  for (const char* attack : {"cc", "kaslr"})
    for (const char* def : {"none", "kpti"}) {
      Cell c;
      c.name = std::string(attack) + "/" + def;
      c.spec.attack = attack;
      c.spec.trials = args.trials;
      c.spec.base_seed = 0xd157ULL;
      c.spec.rounds = 1;
      c.spec.batches = 2;
      c.spec.payload_bytes = 2;
      if (std::string(def) != "none")
        c.spec.defenses.push_back(defense::parse(def));
      const runner::RunResult local = runner::run(c.spec, 1);
      c.want_trials = client::canonical_trial_lines(local);
      c.want_done = client::canonical_done_line(local);
      cells.push_back(std::move(c));
    }

  client::SweepOptions base;
  base.chunk_trials = args.chunk;
  base.backoff_base_ms = 1;
  base.backoff_max_ms = 20;

  std::vector<Scenario> scenarios;

  // Healthy loopback pools: every cell × {1, 2, 4} endpoints.
  bench::subheading("loopback pools");
  for (const Cell& cell : cells)
    for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
      LoopbackCluster cluster(n);
      scenarios.push_back(grade("loopback-" + std::to_string(n), cell,
                                cluster.endpoints, base));
      print_scenario(scenarios.back());
    }

  // Kill one of three daemons after its first delivered trial: its
  // remaining chunks must migrate to the survivors.
  bench::subheading("failure scenarios");
  Scenario kill_scenario;
  {
    LoopbackCluster cluster(3);
    auto lever = std::make_shared<client::KillSwitchEndpoint>(
        std::make_unique<client::LoopbackEndpoint>(*cluster.transports[1],
                                                   "loopback:1"));
    std::vector<std::shared_ptr<client::Endpoint>> eps = cluster.endpoints;
    eps[1] = lever;
    client::SweepOptions opts = base;
    opts.chunk_trials = 1;  // endpoint 1 owns several chunks to orphan
    opts.endpoint_failures = 2;
    opts.on_trial = [lever](std::size_t endpoint, std::size_t delivered) {
      if (endpoint == 1 && delivered >= 1) lever->kill();
    };
    kill_scenario = grade("kill-mid-sweep", cells[0], eps, opts);
    print_scenario(kill_scenario);
    scenarios.push_back(kill_scenario);
  }

  // Deterministic transport faults on every connection: request 1 of each
  // endpoint is dropped mid-write, request 3 arrives half-torn, request 5
  // stalls into the deadline.
  Scenario flaky_scenario;
  {
    LoopbackCluster cluster(2);
    client::SweepOptions opts = base;
    opts.chunk_trials = 1;  // enough requests per endpoint to hit the plan
    opts.flaky_plan = "drop@1;shortread@3;stall@5";
    opts.flaky_stall_ms = 20;
    flaky_scenario = grade("flaky-transport", cells[1], cluster.endpoints,
                           opts);
    print_scenario(flaky_scenario);
    scenarios.push_back(flaky_scenario);
  }

  // Same sweep over real TCP on 127.0.0.1 (ephemeral ports). Skipped, not
  // failed, where the platform has no TCP loopback.
  {
    Scenario tcp;
    tcp.name = "tcp-127.0.0.1";
    tcp.cell = cells[2].name;
    try {
      std::vector<std::unique_ptr<serve::TcpTransport>> transports;
      std::vector<std::unique_ptr<serve::Server>> servers;
      std::vector<std::shared_ptr<client::Endpoint>> eps;
      for (int i = 0; i < 2; ++i) {
        transports.push_back(
            std::make_unique<serve::TcpTransport>("127.0.0.1:0"));
        servers.push_back(std::make_unique<serve::Server>(
            *transports.back(), serve::ServerOptions{}));
        servers.back()->start();
        eps.push_back(client::make_endpoint(client::parse_endpoint(
            "tcp:" + transports.back()->address())));
      }
      tcp = grade("tcp-127.0.0.1", cells[2], eps, base);
      for (auto& s : servers) s->stop();
    } catch (const std::exception& e) {
      tcp.skipped = true;
      tcp.error = e.what();
    }
    print_scenario(tcp);
    scenarios.push_back(tcp);
  }

  // The verdict: every non-skipped scenario completed with the reference
  // bytes; the kill scenario actually exercised reassignment; nothing was
  // lost anywhere.
  bench::subheading("verdict");
  bool all_identical = true;
  bool none_lost = true;
  for (const Scenario& s : scenarios) {
    if (s.skipped) continue;
    if (!s.complete || !s.byte_identical) all_identical = false;
    if (s.trials_received != static_cast<std::size_t>(args.trials))
      none_lost = false;
  }
  const bool kill_exercised = kill_scenario.stats.reassigned > 0 &&
                              kill_scenario.stats.dead_endpoints >= 1;
  const bool flaky_exercised = flaky_scenario.stats.reconnects > 0 &&
                               flaky_scenario.stats.timed_out > 0;
  std::printf("  %s every scenario byte-identical to its local reference "
              "(invariant 13)\n",
              bench::mark(all_identical));
  std::printf("  %s zero trials lost or left unmerged\n",
              bench::mark(none_lost));
  std::printf("  %s kill-mid-sweep reassigned orphaned chunks "
              "(reassigned=%zu, dead=%zu)\n",
              bench::mark(kill_exercised), kill_scenario.stats.reassigned,
              kill_scenario.stats.dead_endpoints);
  std::printf("  %s flaky transport recovered by reconnect "
              "(reconnects=%zu, timeouts=%zu, duplicates=%zu)\n",
              bench::mark(flaky_exercised), flaky_scenario.stats.reconnects,
              flaky_scenario.stats.timed_out,
              flaky_scenario.stats.duplicate_trials);

  const bool ok =
      all_identical && none_lost && kill_exercised && flaky_exercised;

  if (!args.json.empty()) {
    stats::JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("dist_soak");
    w.key("trials");
    w.value(static_cast<std::uint64_t>(args.trials));
    w.key("chunk");
    w.value(static_cast<std::uint64_t>(args.chunk));
    w.key("scenarios");
    w.begin_array();
    for (const Scenario& s : scenarios) write_scenario_json(w, s);
    w.end_array();
    w.key("verdict");
    w.begin_object();
    w.key("byte_identical");
    w.value(all_identical);
    w.key("none_lost");
    w.value(none_lost);
    w.key("kill_exercised");
    w.value(kill_exercised);
    w.key("flaky_exercised");
    w.value(flaky_exercised);
    w.key("ok");
    w.value(ok);
    w.end_object();
    w.end_object();
    if (!stats::json_is_valid(w.str())) {
      std::fprintf(stderr, "dist_soak: generated invalid JSON (bug)\n");
      return 1;
    }
    std::FILE* f = std::fopen(args.json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "dist_soak: cannot open %s\n", args.json.c_str());
      return 1;
    }
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\n(trajectory written to %s)\n", args.json.c_str());
  }

  return ok ? 0 : 1;
}
