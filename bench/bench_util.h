// Shared helpers for the experiment-reproduction harnesses.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "obs/metrics.h"
#include "stats/rng.h"

namespace whisper::bench {

inline std::vector<std::uint8_t> random_bytes(std::size_t n,
                                              std::uint64_t seed) {
  stats::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

inline std::array<std::uint64_t, isa::kNumRegs> regs_with(
    std::initializer_list<std::pair<isa::Reg, std::uint64_t>> kv) {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  for (const auto& [r, v] : kv) regs[static_cast<std::size_t>(r)] = v;
  return regs;
}

inline void heading(const std::string& title) {
  std::printf("\n%s\n%s\n", title.c_str(),
              std::string(title.size(), '=').c_str());
}

inline void subheading(const std::string& title) {
  std::printf("\n%s\n%s\n", title.c_str(),
              std::string(title.size(), '-').c_str());
}

inline const char* mark(bool ok) { return ok ? "✓" : "✗"; }

/// Flags shared by the runner-backed harnesses:
///   --jobs N           worker threads (0/auto = hardware concurrency;
///                      default 1, the sequential reference — results are
///                      identical either way, see whisper::runner)
///   --progress         per-trial completion lines on stderr
///   --json PATH        write the run's trajectory as JSON
///   --trace-out PATH   write a Chrome trace-event JSON (load in
///                      chrome://tracing or ui.perfetto.dev) of a
///                      representative execution — see each harness for
///                      what it traces
///   --metrics-out PATH write everything the harness measured as a
///                      named-metric JSON registry (obs::MetricsRegistry);
///                      a .csv extension selects CSV instead
///
/// Fault-tolerance knobs (whisper::runner's recovery layer — see
/// docs/ARCHITECTURE.md "Failure semantics & fault injection"):
///   --retries R                extra attempts per failed trial (default 0)
///   --trial-cycle-budget C     simulated-cycle cap per trial attempt
///   --trial-wall-budget SECS   host wall-clock watchdog per trial attempt
///   --verify-reset             digest-check pooled machines after reset()
///   --fault-plan PLAN          seeded fault injection, e.g.
///                              "throw@2;corrupt@5" (src/fault/fault.h)
struct HarnessArgs {
  int jobs = 1;
  bool progress = false;
  std::string json;
  std::string trace_out;
  std::string metrics_out;
  int retries = 0;
  std::uint64_t trial_cycle_budget = 0;
  double trial_wall_budget = 0.0;
  bool verify_reset = false;
  std::string fault_plan;
};

inline HarnessArgs parse_harness_args(int argc, char** argv) {
  HarnessArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--jobs" && i + 1 < argc) {
      const std::string v = argv[++i];
      out.jobs = (v == "auto") ? 0 : std::atoi(v.c_str());
    } else if (a == "--progress") {
      out.progress = true;
    } else if (a == "--json" && i + 1 < argc) {
      out.json = argv[++i];
    } else if (a == "--trace-out" && i + 1 < argc) {
      out.trace_out = argv[++i];
    } else if (a == "--metrics-out" && i + 1 < argc) {
      out.metrics_out = argv[++i];
    } else if (a == "--retries" && i + 1 < argc) {
      out.retries = std::atoi(argv[++i]);
    } else if (a == "--trial-cycle-budget" && i + 1 < argc) {
      out.trial_cycle_budget = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--trial-wall-budget" && i + 1 < argc) {
      out.trial_wall_budget = std::atof(argv[++i]);
    } else if (a == "--verify-reset") {
      out.verify_reset = true;
    } else if (a == "--fault-plan" && i + 1 < argc) {
      out.fault_plan = argv[++i];
    }
  }
  return out;
}

/// Copy the fault-tolerance knobs onto a runner::RunSpec (templated so this
/// header needs no runner dependency; any struct with the same field names
/// works).
template <typename Spec>
inline void apply_fault_args(Spec& spec, const HarnessArgs& a) {
  spec.retries = a.retries;
  spec.trial_cycle_budget = a.trial_cycle_budget;
  spec.trial_wall_budget = a.trial_wall_budget;
  spec.verify_reset = a.verify_reset;
  spec.fault_plan = a.fault_plan;
}

/// --metrics-out convention: the extension picks the format.
inline bool metrics_path_is_csv(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

inline bool write_metrics(const obs::MetricsRegistry& reg,
                          const std::string& path) {
  const bool ok = metrics_path_is_csv(path) ? reg.write_csv_file(path)
                                            : reg.write_json_file(path);
  if (ok) std::printf("\n(metrics written to %s)\n", path.c_str());
  return ok;
}

}  // namespace whisper::bench
