// Figure 2 reproduction: the three-stage PMU analysis flow — preparation
// (event catalog), online collection (per-event scenario runs), offline
// analysis (differential filtering) — driven end-to-end for the TET-CC
// scene on the i7-7700 model and the TET-KASLR scene on the i9-10980XE.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/pmu_toolset.h"
#include "os/machine.h"

using namespace whisper;

namespace {

void run_flow(const std::string& what, os::Machine& m,
              const core::PmuToolset::Scenario& baseline,
              const core::PmuToolset::Scenario& variant,
              const char* base_name, const char* var_name) {
  bench::subheading(what + " on " + m.config().name);
  core::PmuToolset ts(m);

  // Stage 1: preparation.
  const auto catalog = ts.catalog();
  std::printf("[stage 1: preparation]    %zu PMU events from the %s perf "
              "list\n",
              catalog.size(),
              m.config().vendor == uarch::Vendor::Intel ? "Intel" : "AMD");

  // Stage 2: online collection (one event at a time, median of repeats).
  const auto raw = ts.collect(baseline, variant, 5);
  std::printf("[stage 2: collection]     %zu raw (event, baseline, variant) "
              "records\n",
              raw.size());

  // Stage 3: offline analysis — differential filter.
  const auto significant = core::PmuToolset::filter_significant(raw, 0.05, 1);
  std::printf("[stage 3: analysis]       %zu events survive the "
              "differential filter\n\n",
              significant.size());
  std::printf("%s", core::PmuToolset::report(significant,
                                             "significant events "
                                             "(|rel delta| desc):",
                                             base_name, var_name)
                        .c_str());
}

}  // namespace

int main() {
  bench::heading("Figure 2 — Analysis flow using the PMU toolset");

  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    run_flow("TET-CC trigger analysis", m, core::scenario_tet_cc(false),
             core::scenario_tet_cc(true), "not-trig", "trig");
  }
  {
    os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
    run_flow("TET-KASLR mapped/unmapped analysis", m,
             core::scenario_kaslr(false), core::scenario_kaslr(true),
             "unmapped", "mapped");
  }
  {
    os::Machine m({.model = uarch::CpuModel::Zen3Ryzen5_5600G});
    run_flow("TET-CC trigger analysis (AMD event list)", m,
             core::scenario_tet_cc(false), core::scenario_tet_cc(true),
             "not-trig", "trig");
  }
  return 0;
}
