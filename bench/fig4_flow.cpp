// Figure 4 reproduction: the transient-execution control-flow experiment of
// §5.2.5. Sweeping the number of nops between the branch join point and the
// window-ending fence changes which path (trigger ③ vs not-trigger) issues
// more µops — including the paper's sign flip:
//
//  "If the number of nop instructions preceding the mfence is increased,
//   such that the not trigger path does not encounter the mfence before the
//   rollback, the opposite result is obtained, with fewer µops being issued
//   in the trigger path."
#include <cstdio>

#include "bench/bench_util.h"
#include "core/pmu_toolset.h"
#include "os/machine.h"

using namespace whisper;

int main() {
  bench::heading("Figure 4 — Transient-execution control flow (i7-6700 "
                 "model): UOPS_ISSUED.ANY / INT_MISC.RECOVERY_CYCLES vs "
                 "nop padding");

  os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
  core::PmuToolset ts(m);

  std::printf("%8s | %12s %12s %8s | %12s %12s\n", "pad nops",
              "uops !trig", "uops trig", "delta", "recov !trig",
              "recov trig");
  std::printf("%s\n", std::string(78, '-').c_str());

  double first_delta = 0, last_delta = 0;
  const int pads[] = {0, 8, 16, 32, 48, 64, 96, 128, 192};
  for (int pad : pads) {
    const auto base = core::scenario_flow(false, pad);
    const auto var = core::scenario_flow(true, pad);
    base(m);
    var(m);
    const auto uops =
        ts.measure(uarch::PmuEvent::UOPS_ISSUED_ANY, base, var);
    const auto recov =
        ts.measure(uarch::PmuEvent::INT_MISC_RECOVERY_CYCLES, base, var);
    std::printf("%8d | %12.0f %12.0f %+8.0f | %12.0f %12.0f\n", pad,
                uops.baseline, uops.variant, uops.delta(), recov.baseline,
                recov.variant);
    if (pad == pads[0]) first_delta = uops.delta();
    last_delta = uops.delta();
  }

  std::printf("\npath ③ evidence: with no padding the TRIGGER path issues "
              "more uops (delta %+.0f);\nwith long padding the sign flips "
              "(delta %+.0f) because the not-trigger path streams nops while "
              "the\ntrigger path pays the resteer bubble — matching §5.2.5.\n",
              first_delta, last_delta);
  const bool flip = first_delta > 0 && last_delta < 0;
  std::printf("sign flip reproduced: %s\n", flip ? "yes" : "NO");
  return flip ? 0 : 1;
}
