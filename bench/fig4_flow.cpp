// Figure 4 reproduction: the transient-execution control-flow experiment of
// §5.2.5. Sweeping the number of nops between the branch join point and the
// window-ending fence changes which path (trigger ③ vs not-trigger) issues
// more µops — including the paper's sign flip:
//
//  "If the number of nop instructions preceding the mfence is increased,
//   such that the not trigger path does not encounter the mfence before the
//   rollback, the opposite result is obtained, with fewer µops being issued
//   in the trigger path."
//
// Each padding point is measured on its own private machine (warmed the
// same way), so the sweep fans out across the whisper::runner Executor
// (`--jobs N`) with rows bit-identical to the sequential order.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/pmu_toolset.h"
#include "obs/chrome_trace.h"
#include "obs/event_log.h"
#include "obs/topdown.h"
#include "os/machine.h"
#include "runner/executor.h"

using namespace whisper;

namespace {

struct Row {
  double uops_base = 0, uops_var = 0;
  double recov_base = 0, recov_var = 0;
  [[nodiscard]] double delta() const { return uops_var - uops_base; }
};

}  // namespace

int main(int argc, char** argv) {
  const bench::HarnessArgs args = bench::parse_harness_args(argc, argv);
  bench::heading("Figure 4 — Transient-execution control flow (i7-6700 "
                 "model): UOPS_ISSUED.ANY / INT_MISC.RECOVERY_CYCLES vs "
                 "nop padding");

  const int pads[] = {0, 8, 16, 32, 48, 64, 96, 128, 192};
  const std::size_t n_pads = sizeof(pads) / sizeof(pads[0]);

  runner::Executor ex(args.jobs);
  runner::Progress meter("fig4_flow", n_pads, args.progress);
  runner::WallTimer timer;
  const std::vector<Row> rows = ex.map(
      n_pads,
      [&pads](std::size_t i) {
        os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
        core::PmuToolset ts(m);
        const auto base = core::scenario_flow(false, pads[i]);
        const auto var = core::scenario_flow(true, pads[i]);
        base(m);
        var(m);
        const auto uops =
            ts.measure(uarch::PmuEvent::UOPS_ISSUED_ANY, base, var);
        const auto recov =
            ts.measure(uarch::PmuEvent::INT_MISC_RECOVERY_CYCLES, base, var);
        return Row{uops.baseline, uops.variant, recov.baseline,
                   recov.variant};
      },
      &meter);
  meter.finish(timer.seconds(), ex.jobs());

  std::printf("%8s | %12s %12s %8s | %12s %12s\n", "pad nops",
              "uops !trig", "uops trig", "delta", "recov !trig",
              "recov trig");
  std::printf("%s\n", std::string(78, '-').c_str());
  for (std::size_t i = 0; i < n_pads; ++i)
    std::printf("%8d | %12.0f %12.0f %+8.0f | %12.0f %12.0f\n", pads[i],
                rows[i].uops_base, rows[i].uops_var, rows[i].delta(),
                rows[i].recov_base, rows[i].recov_var);

  const double first_delta = rows.front().delta();
  const double last_delta = rows.back().delta();
  std::printf("\npath ③ evidence: with no padding the TRIGGER path issues "
              "more uops (delta %+.0f);\nwith long padding the sign flips "
              "(delta %+.0f) because the not-trigger path streams nops while "
              "the\ntrigger path pays the resteer bubble — matching §5.2.5.\n",
              first_delta, last_delta);
  const bool flip = first_delta > 0 && last_delta < 0;
  std::printf("sign flip reproduced: %s\n", flip ? "yes" : "NO");

  // --trace-out: the pipeline lifecycle of one unpadded TRIGGER-path
  // execution — the resteer, the transient window and the terminal machine
  // clear are all visible as spans/markers in the exported trace.
  if (!args.trace_out.empty()) {
    os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
    obs::EventLog log;
    m.core().set_trace(&log);
    core::scenario_flow(true, 0)(m);
    m.core().set_trace(nullptr);
    if (obs::write_chrome_trace(log, args.trace_out))
      std::printf("\n(pipeline trace of the trigger path written to %s)\n",
                  args.trace_out.c_str());
  }

  if (!args.metrics_out.empty()) {
    obs::MetricsRegistry reg;
    reg.set_counter("fig4.sign_flip", flip ? 1 : 0);
    for (std::size_t i = 0; i < n_pads; ++i) {
      const std::string p = "fig4.pad" + std::to_string(pads[i]) + ".";
      reg.set_gauge(p + "uops_not_trigger", rows[i].uops_base);
      reg.set_gauge(p + "uops_trigger", rows[i].uops_var);
      reg.set_gauge(p + "uops_delta", rows[i].delta());
      reg.set_gauge(p + "recovery_not_trigger", rows[i].recov_base);
      reg.set_gauge(p + "recovery_trigger", rows[i].recov_var);
    }
    bench::write_metrics(reg, args.metrics_out);
  }
  return flip ? 0 : 1;
}
