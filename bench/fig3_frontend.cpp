// Figure 3 reproduction: "Frontend-issued resteer within transient
// execution" — the triggered gadget's resteer kills DSB delivery, shifts
// µop supply to the legacy MITE path, and stalls instruction fetch.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/pmu_toolset.h"
#include "os/machine.h"

using namespace whisper;

int main() {
  bench::heading("Figure 3 — Frontend-issued resteer within transient "
                 "execution (i7-7700 model)");

  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  core::PmuToolset ts(m);
  const auto base = core::scenario_tet_cc(false);
  const auto var = core::scenario_tet_cc(true);
  base(m);
  var(m);

  struct Row {
    uarch::PmuEvent event;
    const char* meaning;
  };
  const Row rows[] = {
      {uarch::PmuEvent::IDQ_DSB_UOPS, "uops delivered from the DSB (uop cache)"},
      {uarch::PmuEvent::IDQ_DSB_CYCLES_ANY, "cycles with any DSB delivery"},
      {uarch::PmuEvent::IDQ_MS_MITE_UOPS, "uops delivered via legacy MITE"},
      {uarch::PmuEvent::IDQ_ALL_MITE_CYCLES_ANY_UOPS,
       "cycles with any MITE delivery"},
      {uarch::PmuEvent::ICACHE_16B_IFDATA_STALL,
       "fetch stall cycles (cold refetch)"},
      {uarch::PmuEvent::INT_MISC_CLEAR_RESTEER_CYCLES,
       "resteer cycles (BPU clear)"},
      {uarch::PmuEvent::BR_MISP_EXEC_ALL_BRANCHES,
       "branch mispredicts executed"},
  };

  std::printf("%-36s %10s %10s %8s  %s\n", "Event", "not-trig", "trig",
              "delta", "interpretation");
  std::printf("%s\n", std::string(108, '-').c_str());
  for (const Row& row : rows) {
    const core::EventRecord r = ts.measure(row.event, base, var);
    std::printf("%-36s %10.0f %10.0f %+8.0f  %s\n",
                uarch::to_string(row.event).c_str(), r.baseline, r.variant,
                r.delta(), row.meaning);
  }

  std::printf("\nReading (paper's Answer to RQ1): the transient Jcc "
              "misprediction resteers the front end —\nDSB delivery drops, "
              "MITE takes over the refetch, and the resteer/recovery stall "
              "lengthens ToTE.\n");
  return 0;
}
