// Table 2 reproduction: environment × attack success matrix.
//
// Paper columns: TET-CC, TET-MD, TET-ZBL, TET-RSB, TET-KASLR for the five
// evaluation machines. We run each attack end-to-end against the model and
// print our result next to the paper's symbol (✓ / ✗ / ? = not verified).
//
// Each of the 25 cells is one single-trial whisper::runner::RunSpec on its
// own private os::Machine, fanned out through one Executor — `--jobs N`
// parallelises the matrix with cell outcomes bit-identical to `--jobs 1`.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "runner/runner.h"

using namespace whisper;

namespace {

struct PaperRow {
  uarch::CpuModel model;
  const char* cc;
  const char* md;
  const char* zbl;
  const char* rsb;
  const char* kaslr;
};

const PaperRow kPaper[] = {
    {uarch::CpuModel::SkylakeI7_6700, "✓", "✓", "✓", "✓", "✓"},
    {uarch::CpuModel::KabyLakeI7_7700, "✓", "✓", "✓", "✓", "✓"},
    {uarch::CpuModel::CometLakeI9_10980XE, "✓", "✗", "✗", "?", "✓"},
    {uarch::CpuModel::RaptorLakeI9_13900K, "✓", "✗", "✗", "✓", "?"},
    {uarch::CpuModel::Zen3Ryzen5_5600G, "✓", "✗", "✗", "?", "✗"},
};

// One matrix cell. The per-attack knobs (payload sizes, batches, rounds)
// mirror the sequential harness this replaces.
runner::RunSpec cell_spec(uarch::CpuModel model, const std::string& attack) {
  runner::RunSpec spec;
  spec.model = model;
  spec.attack = attack;
  spec.trials = 1;
  spec.base_seed = 0x7ab1e2;
  if (attack == "cc") {
    spec.batches = 3;
    spec.payload_bytes = 8;
    spec.payload_seed = 1;
  } else if (attack == "md") {
    spec.batches = 4;
    spec.payload_bytes = 4;
    spec.payload_seed = 2;
  } else if (attack == "zbl") {
    spec.batches = 4;
    spec.payload_bytes = 3;
    spec.payload_seed = 3;
  } else if (attack == "rsb") {
    spec.batches = 2;
    spec.payload_bytes = 3;
    spec.payload_seed = 4;
  } else {  // kaslr
    spec.rounds = 2;
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::HarnessArgs args = bench::parse_harness_args(argc, argv);
  bench::heading("Table 2 — Environment and experiments");
  std::printf("cell format: model-result (paper-result)\n\n");
  std::printf("%-24s %-12s %-10s %-12s %-12s %-12s %-12s %-12s\n", "CPU",
              "u-arch", "Microcode", "TET-CC", "TET-MD", "TET-ZBL", "TET-RSB",
              "TET-KASLR");
  std::printf("%s\n", std::string(110, '-').c_str());

  const char* kColumns[] = {"cc", "md", "zbl", "rsb", "kaslr"};

  std::vector<runner::RunSpec> specs;
  for (const PaperRow& row : kPaper)
    for (const char* a : kColumns) specs.push_back(cell_spec(row.model, a));

  runner::Executor ex(args.jobs);
  const auto results = runner::run_many(specs, ex, args.progress);

  bool all_match = true;
  std::size_t cell = 0;
  for (const PaperRow& row : kPaper) {
    const uarch::CpuConfig cfg = uarch::make_config(row.model);
    const char* paper_cells[] = {row.cc, row.md, row.zbl, row.rsb, row.kaslr};
    std::string cells[5];
    for (int c = 0; c < 5; ++c) {
      const bool got = results[cell++].all_succeeded();
      const char* paper = paper_cells[c];
      cells[c] = std::string(bench::mark(got)) + " (" + paper + ")";
      // '?' cells can't mismatch; otherwise compare.
      if (std::string(paper) != "?" && (std::string(paper) == "✓") != got)
        all_match = false;
    }
    std::printf("%-24s %-12s %-10s %-14s %-14s %-14s %-14s %-14s\n",
                cfg.name.c_str(), cfg.uarch_name.c_str(),
                cfg.microcode.c_str(), cells[0].c_str(), cells[1].c_str(),
                cells[2].c_str(), cells[3].c_str(), cells[4].c_str());
  }

  std::printf("\n%s\n",
              all_match
                  ? "All determinate paper cells reproduced."
                  : "MISMATCH against the paper's determinate cells!");
  std::printf("('?' cells: the paper did not verify; our model's prediction "
              "is shown.)\n");
  return all_match ? 0 : 1;
}
