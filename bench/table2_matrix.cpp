// Table 2 reproduction: environment × attack success matrix.
//
// Paper columns: TET-CC, TET-MD, TET-ZBL, TET-RSB, TET-KASLR for the five
// evaluation machines. We run each attack end-to-end against the model and
// print our result next to the paper's symbol (✓ / ✗ / ? = not verified).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/attacks/kaslr.h"
#include "core/attacks/meltdown.h"
#include "core/attacks/spectre_rsb.h"
#include "core/attacks/zombieload.h"
#include "core/covert_channel.h"
#include "os/machine.h"

using namespace whisper;

namespace {

struct PaperRow {
  uarch::CpuModel model;
  const char* cc;
  const char* md;
  const char* zbl;
  const char* rsb;
  const char* kaslr;
};

const PaperRow kPaper[] = {
    {uarch::CpuModel::SkylakeI7_6700, "✓", "✓", "✓", "✓", "✓"},
    {uarch::CpuModel::KabyLakeI7_7700, "✓", "✓", "✓", "✓", "✓"},
    {uarch::CpuModel::CometLakeI9_10980XE, "✓", "✗", "✗", "?", "✓"},
    {uarch::CpuModel::RaptorLakeI9_13900K, "✓", "✗", "✗", "✓", "?"},
    {uarch::CpuModel::Zen3Ryzen5_5600G, "✓", "✗", "✗", "?", "✗"},
};

bool run_cc(os::Machine& m) {
  core::TetCovertChannel cc(m, {.batches = 3});
  const auto payload = bench::random_bytes(8, 1);
  return cc.transmit(payload).byte_errors == 0;
}

bool run_md(os::Machine& m) {
  const auto secret = bench::random_bytes(4, 2);
  const std::uint64_t kaddr = m.plant_kernel_secret(secret);
  core::TetMeltdown atk(m, {.batches = 4});
  return atk.leak(kaddr, secret.size()) == secret;
}

bool run_zbl(os::Machine& m) {
  const auto stream = bench::random_bytes(3, 3);
  core::TetZombieload atk(m, {.batches = 4});
  return atk.leak(stream) == stream;
}

bool run_rsb(os::Machine& m) {
  const auto secret = bench::random_bytes(3, 4);
  m.poke_bytes(os::Machine::kDataBase + 0x1000, secret);
  core::TetSpectreRsb atk(m);
  return atk.leak(os::Machine::kDataBase + 0x1000, secret.size()) == secret;
}

bool run_kaslr(os::Machine& m) {
  core::TetKaslr atk(m, {.rounds = 2});
  return atk.run().success;
}

}  // namespace

int main() {
  bench::heading("Table 2 — Environment and experiments");
  std::printf("cell format: model-result (paper-result)\n\n");
  std::printf("%-24s %-12s %-10s %-12s %-12s %-12s %-12s %-12s\n", "CPU",
              "u-arch", "Microcode", "TET-CC", "TET-MD", "TET-ZBL", "TET-RSB",
              "TET-KASLR");
  std::printf("%s\n", std::string(110, '-').c_str());

  bool all_match = true;
  for (const PaperRow& row : kPaper) {
    const uarch::CpuConfig cfg = uarch::make_config(row.model);
    os::Machine m({.model = row.model});

    const bool cc = run_cc(m);
    const bool md = run_md(m);
    const bool zbl = run_zbl(m);
    const bool rsb = run_rsb(m);
    const bool kaslr = run_kaslr(m);

    auto cell = [&](bool got, const char* paper) {
      std::string s = std::string(bench::mark(got)) + " (" + paper + ")";
      // '?' cells can't mismatch; otherwise compare.
      if (std::string(paper) != "?" &&
          (std::string(paper) == "✓") != got)
        all_match = false;
      return s;
    };

    std::printf("%-24s %-12s %-10s %-14s %-14s %-14s %-14s %-14s\n",
                cfg.name.c_str(), cfg.uarch_name.c_str(),
                cfg.microcode.c_str(), cell(cc, row.cc).c_str(),
                cell(md, row.md).c_str(), cell(zbl, row.zbl).c_str(),
                cell(rsb, row.rsb).c_str(), cell(kaslr, row.kaslr).c_str());
  }

  std::printf("\n%s\n",
              all_match
                  ? "All determinate paper cells reproduced."
                  : "MISMATCH against the paper's determinate cells!");
  std::printf("('?' cells: the paper did not verify; our model's prediction "
              "is shown.)\n");
  return all_match ? 0 : 1;
}
