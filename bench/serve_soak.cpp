// serve_soak — the whisper_serve daemon under sustained concurrent load.
//
//   serve_soak [--requests N] [--clients C] [--jobs J] [--pool P]
//              [--json PATH]
//
// Drives the full serving stack (loopback transport, so no sockets and no
// flaky fds) with N run requests spread over C concurrent client
// connections, every request carrying a PR-5-style seeded fault plan
// (throw + stall, varied per request) with retries enabled — the daemon
// must absorb injected faults mid-soak without losing a single response.
//
// Two phases run the identical batch:
//
//   phase A: --jobs J workers     (the concurrent configuration)
//   phase B: 1 worker             (the sequential reference)
//
// and the harness asserts, request by request:
//
//   * zero lost responses      — every request's stream terminates with
//                                its done line, exactly trials+1 lines
//   * zero duplicated responses— every (id, index) pair appears once
//   * zero residual failures   — every injected fault was retried to
//                                recovery (done lines report failed: 0)
//   * byte identity            — phase A and phase B produced identical
//                                bytes per request (invariant 11: worker
//                                count and interleaving cannot reach the
//                                wire)
//
// Results (wall time, throughput, retry counts, pool/queue accounting,
// per-client p50/p99 request latency measured send → terminal response,
// the identity verdict) are written to --json as BENCH_serve.json, which
// is validated with stats::json_is_valid before writing. Exit status is
// non-zero on any violated invariant, so this doubles as the tier-2
// `whisper_serve_soak` ctest entry.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport_loopback.h"
#include "stats/json.h"

using namespace whisper;

namespace {

struct SoakArgs {
  std::uint64_t requests = 2000;
  std::uint64_t clients = 4;
  int jobs = 4;
  std::size_t pool = 4;
  std::string json;
};

SoakArgs parse_args(int argc, char** argv) {
  SoakArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--requests" && i + 1 < argc)
      out.requests = std::strtoull(argv[++i], nullptr, 10);
    else if (a == "--clients" && i + 1 < argc)
      out.clients = std::strtoull(argv[++i], nullptr, 10);
    else if (a == "--jobs" && i + 1 < argc)
      out.jobs = std::atoi(argv[++i]);
    else if (a == "--pool" && i + 1 < argc)
      out.pool = std::strtoull(argv[++i], nullptr, 10);
    else if (a == "--json" && i + 1 < argc)
      out.json = argv[++i];
  }
  if (out.requests < 1) out.requests = 1;
  if (out.clients < 1) out.clients = 1;
  if (out.jobs < 1) out.jobs = 1;
  return out;
}

/// The deterministic request mix. Request r (0-based) gets id r+1, a cheap
/// attack rotated across the channel/kaslr families, 1–2 trials, and a
/// per-request seeded throw+stall fault plan (~6% throw, ~4% stall on the
/// first attempt; retries recover both classes).
struct Shape {
  std::uint64_t id = 0;
  int trials = 1;
  std::string line;
};

Shape shape_for(std::uint64_t r) {
  Shape s;
  s.id = r + 1;
  const char* attack = "cc";
  if (r % 13 == 0)
    attack = "kaslr";
  else if (r % 7 == 0)
    attack = "v1";
  s.trials = (r % 5 == 0 && r % 13 != 0) ? 2 : 1;
  const std::string plan = "throw~60@" + std::to_string(1000 + r) +
                           ";stall~40@" + std::to_string(2000 + r);
  s.line = "{\"id\":" + std::to_string(s.id) +
           ",\"verb\":\"run\",\"attack\":\"" + attack +
           "\",\"seed\":" + std::to_string(0x50a0 + r) +
           ",\"trials\":" + std::to_string(s.trials) +
           ",\"batches\":2,\"payload_bytes\":2,\"rounds\":1" +
           ",\"retries\":2,\"trial_cycle_budget\":20000000" +
           ",\"fault_plan\":\"" + plan + "\"}";
  return s;
}

struct PhaseResult {
  int jobs = 0;
  double wall_seconds = 0.0;
  std::uint64_t responses = 0;
  std::uint64_t lost = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t errors = 0;        // error-type response lines
  std::uint64_t failed_trials = 0;  // residual failures after retries
  std::uint64_t retried = 0;        // trials recovered by a retry
  runner::MachinePoolStats pool{};
  serve::SchedulerStats queue{};
  /// Response lines per request id, in arrival order.
  std::map<std::uint64_t, std::vector<std::string>> streams;
  /// Per-client request latencies (send → terminal response) in ms. Every
  /// client enqueues its whole share up front, so these measure latency
  /// under a saturated queue — queueing delay included, by design.
  std::vector<std::vector<double>> client_latency_ms;
};

/// Nearest-rank percentile of an unsorted sample; 0 when empty.
double percentile_ms(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  std::size_t rank = static_cast<std::size_t>(p * static_cast<double>(
                                                      sample.size()));
  if (rank >= sample.size()) rank = sample.size() - 1;
  return sample[rank];
}

/// Run the full batch through a fresh server with `jobs` workers.
PhaseResult run_phase(const SoakArgs& args, int jobs) {
  PhaseResult out;
  out.jobs = jobs;
  serve::LoopbackTransport transport;
  serve::Server server(transport,
                       {.jobs = jobs, .pool_capacity = args.pool});
  server.start();

  const auto t0 = std::chrono::steady_clock::now();
  // One thread per client: connect, enqueue this client's share of the
  // batch (loopback sends never block, so the server's queue genuinely
  // fills up), then drain until the server delivers EOF.
  std::vector<std::thread> clients;
  std::vector<std::map<std::uint64_t, std::vector<std::string>>> collected(
      args.clients);
  out.client_latency_ms.resize(args.clients);
  for (std::uint64_t c = 0; c < args.clients; ++c) {
    clients.emplace_back([&, c] {
      auto client = transport.connect();
      std::map<std::uint64_t, std::chrono::steady_clock::time_point> sent;
      for (std::uint64_t r = c; r < args.requests; r += args.clients) {
        const Shape s = shape_for(r);
        sent[s.id] = std::chrono::steady_clock::now();
        client->send(s.line);
      }
      client->close_send();
      std::string line;
      while (client->recv(line)) {
        const serve::JsonValue doc = serve::json_parse(line);
        const std::uint64_t id =
            static_cast<std::uint64_t>(doc.get("id")->number);
        collected[c][id].push_back(line);
        const std::string& type = doc.get("type")->string;
        if (type == "done" || type == "error") {
          const auto it = sent.find(id);
          if (it != sent.end())
            out.client_latency_ms[c].push_back(
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - it->second)
                    .count());
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.pool = server.pool_stats();
  out.queue = server.queue_stats();
  server.stop();

  for (auto& per_client : collected)
    for (auto& [id, lines] : per_client) {
      auto& stream = out.streams[id];
      stream.insert(stream.end(), lines.begin(), lines.end());
      out.responses += lines.size();
    }

  // Account every request: exactly trials+1 lines, trial indices 0..t-1 in
  // order, a terminating done line with zero residual failures.
  for (std::uint64_t r = 0; r < args.requests; ++r) {
    const Shape s = shape_for(r);
    const auto it = out.streams.find(s.id);
    if (it == out.streams.end()) {
      out.lost += static_cast<std::uint64_t>(s.trials) + 1;
      continue;
    }
    const auto& lines = it->second;
    const std::size_t want = static_cast<std::size_t>(s.trials) + 1;
    if (lines.size() < want)
      out.lost += want - lines.size();
    else if (lines.size() > want)
      out.duplicated += lines.size() - want;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const serve::JsonValue doc = serve::json_parse(lines[i]);
      const std::string type = doc.get("type")->string;
      if (type == "error") {
        ++out.errors;
      } else if (type == "trial") {
        if (static_cast<std::size_t>(doc.get("index")->number) != i)
          ++out.duplicated;  // out-of-order or repeated index
        if (doc.get("attempts")->number > 1.0) ++out.retried;
      } else if (type == "done") {
        out.failed_trials +=
            static_cast<std::uint64_t>(doc.get("failed")->number);
        if (i + 1 != lines.size()) ++out.duplicated;  // done must be last
      }
    }
  }
  return out;
}

void write_phase_json(stats::JsonWriter& w, const PhaseResult& p,
                      std::uint64_t requests) {
  w.begin_object();
  w.key("jobs");
  w.value(p.jobs);
  w.key("requests");
  w.value(requests);
  w.key("responses");
  w.value(p.responses);
  w.key("lost");
  w.value(p.lost);
  w.key("duplicated");
  w.value(p.duplicated);
  w.key("errors");
  w.value(p.errors);
  w.key("failed_trials");
  w.value(p.failed_trials);
  w.key("retried_trials");
  w.value(p.retried);
  w.key("wall_seconds");
  w.value(p.wall_seconds);
  w.key("requests_per_second");
  w.value(p.wall_seconds > 0 ? static_cast<double>(requests) / p.wall_seconds
                             : 0.0);
  w.key("pool");
  w.begin_object();
  w.key("created");
  w.value(p.pool.created);
  w.key("reused");
  w.value(p.pool.reused);
  w.key("evicted");
  w.value(p.pool.evicted);
  w.key("quarantined");
  w.value(p.pool.quarantined);
  w.key("waited");
  w.value(p.pool.waited);
  w.key("capacity");
  w.value(static_cast<std::uint64_t>(p.pool.capacity));
  w.end_object();
  w.key("queue");
  w.begin_object();
  w.key("pushed");
  w.value(p.queue.pushed);
  w.key("popped");
  w.value(p.queue.popped);
  w.key("rejected");
  w.value(p.queue.rejected);
  w.end_object();
  w.key("latency_ms");
  w.begin_array();
  for (std::size_t c = 0; c < p.client_latency_ms.size(); ++c) {
    const auto& sample = p.client_latency_ms[c];
    w.begin_object();
    w.key("client");
    w.value(static_cast<std::uint64_t>(c));
    w.key("requests");
    w.value(static_cast<std::uint64_t>(sample.size()));
    w.key("p50");
    w.value(percentile_ms(sample, 0.50));
    w.key("p99");
    w.value(percentile_ms(sample, 0.99));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const SoakArgs args = parse_args(argc, argv);
  bench::heading("serve_soak — daemon soak: " + std::to_string(args.requests) +
                 " requests, " + std::to_string(args.clients) + " clients, " +
                 std::to_string(args.jobs) + " vs 1 workers");

  std::printf("\nphase A: %d workers ...\n", args.jobs);
  const PhaseResult a = run_phase(args, args.jobs);
  std::printf("  %.2fs  %.1f req/s  retried=%llu  pool reuse=%llu/%llu\n",
              a.wall_seconds,
              static_cast<double>(args.requests) / a.wall_seconds,
              static_cast<unsigned long long>(a.retried),
              static_cast<unsigned long long>(a.pool.reused),
              static_cast<unsigned long long>(a.pool.created + a.pool.reused));
  for (std::size_t c = 0; c < a.client_latency_ms.size(); ++c)
    std::printf("  client %zu: p50 %.1f ms  p99 %.1f ms  (%zu requests)\n", c,
                percentile_ms(a.client_latency_ms[c], 0.50),
                percentile_ms(a.client_latency_ms[c], 0.99),
                a.client_latency_ms[c].size());
  std::printf("phase B: 1 worker ...\n");
  const PhaseResult b = run_phase(args, 1);
  std::printf("  %.2fs  %.1f req/s  retried=%llu\n", b.wall_seconds,
              static_cast<double>(args.requests) / b.wall_seconds,
              static_cast<unsigned long long>(b.retried));

  // Byte identity per request across worker counts (invariant 11).
  std::uint64_t mismatched = 0;
  for (const auto& [id, lines] : a.streams) {
    const auto it = b.streams.find(id);
    if (it == b.streams.end() || it->second != lines) ++mismatched;
  }
  const bool identical =
      mismatched == 0 && a.streams.size() == b.streams.size();

  bench::subheading("verdict");
  const bool lossless = a.lost == 0 && b.lost == 0 && a.duplicated == 0 &&
                        b.duplicated == 0 && a.errors == 0 && b.errors == 0 &&
                        a.failed_trials == 0 && b.failed_trials == 0;
  const bool faults_fired = a.retried > 0 && b.retried > 0;
  std::printf("  %s zero lost/duplicated/errored responses "
              "(lost %llu/%llu dup %llu/%llu err %llu/%llu)\n",
              bench::mark(lossless), static_cast<unsigned long long>(a.lost),
              static_cast<unsigned long long>(b.lost),
              static_cast<unsigned long long>(a.duplicated),
              static_cast<unsigned long long>(b.duplicated),
              static_cast<unsigned long long>(a.errors),
              static_cast<unsigned long long>(b.errors));
  std::printf("  %s injected faults recovered in-soak (retried %llu trials)\n",
              bench::mark(faults_fired),
              static_cast<unsigned long long>(a.retried));
  std::printf("  %s %d-worker and 1-worker responses byte-identical "
              "(%llu mismatched requests)\n",
              bench::mark(identical), args.jobs,
              static_cast<unsigned long long>(mismatched));

  if (!args.json.empty()) {
    stats::JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("serve_soak");
    w.key("requests");
    w.value(args.requests);
    w.key("clients");
    w.value(args.clients);
    w.key("fault_plan");
    w.value("throw~60@{1000+r};stall~40@{2000+r} (per-request seeds)");
    w.key("phases");
    w.begin_array();
    write_phase_json(w, a, args.requests);
    write_phase_json(w, b, args.requests);
    w.end_array();
    w.key("byte_identical");
    w.value(identical);
    w.key("mismatched_requests");
    w.value(mismatched);
    w.end_object();
    if (!stats::json_is_valid(w.str())) {
      std::fprintf(stderr, "serve_soak: generated invalid JSON (bug)\n");
      return 1;
    }
    std::FILE* f = std::fopen(args.json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "serve_soak: cannot open %s\n", args.json.c_str());
      return 1;
    }
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\n(trajectory written to %s)\n", args.json.c_str());
  }

  return (lossless && faults_fired && identical) ? 0 : 1;
}
