// Google-benchmark microbenchmarks: host-side cost of the simulator's core
// operations (one probe of each gadget, one KASLR slot scan, a PMU scenario
// pair). Useful for keeping experiment wall-clock in check as the model
// grows.
#include <benchmark/benchmark.h>

#include "core/attacks/common.h"
#include "core/attacks/kaslr.h"
#include "core/gadgets.h"
#include "core/pmu_toolset.h"
#include "os/machine.h"

using namespace whisper;

namespace {

std::array<std::uint64_t, isa::kNumRegs> regs_with(
    std::initializer_list<std::pair<isa::Reg, std::uint64_t>> kv) {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  for (const auto& [r, v] : kv) regs[static_cast<std::size_t>(r)] = v;
  return regs;
}

void BM_TetGadgetProbe(benchmark::State& state) {
  os::Machine m({.model = static_cast<uarch::CpuModel>(state.range(0))});
  m.poke8(os::Machine::kSharedBase, 'S');
  const auto g =
      core::make_tet_gadget({.window = core::preferred_window(m.config()),
                             .source = core::SecretSource::SharedMemory});
  const auto regs = regs_with({{isa::Reg::RCX, core::kNullProbeAddress},
                               {isa::Reg::RDX, os::Machine::kSharedBase},
                               {isa::Reg::RBX, 'S'}});
  for (auto _ : state)
    benchmark::DoNotOptimize(core::run_tote(m, g, regs));
}

void BM_RsbGadgetProbe(benchmark::State& state) {
  os::Machine m({.model = uarch::CpuModel::RaptorLakeI9_13900K});
  m.poke8(os::Machine::kSharedBase, 'R');
  const auto g = core::make_rsb_gadget();
  const auto regs = regs_with(
      {{isa::Reg::RDX, os::Machine::kSharedBase}, {isa::Reg::RBX, 'R'}});
  for (auto _ : state)
    benchmark::DoNotOptimize(core::run_tote(m, g, regs));
}

void BM_KaslrProbe(benchmark::State& state) {
  os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
  core::TetKaslr atk(m);
  const std::uint64_t target = m.kernel().kernel_base();
  for (auto _ : state)
    benchmark::DoNotOptimize(atk.probe_once(target));
}

void BM_PmuScenarioMeasure(benchmark::State& state) {
  os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
  core::PmuToolset ts(m);
  const auto base = core::scenario_tet_cc(false);
  const auto var = core::scenario_tet_cc(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ts.measure(uarch::PmuEvent::UOPS_ISSUED_ANY, base, var));
  }
}

void BM_MachineConstruction(benchmark::State& state) {
  for (auto _ : state) {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    benchmark::DoNotOptimize(m.kernel().kernel_base());
  }
}

}  // namespace

BENCHMARK(BM_TetGadgetProbe)
    ->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RsbGadgetProbe)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_KaslrProbe)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PmuScenarioMeasure)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MachineConstruction)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
