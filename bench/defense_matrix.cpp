// Defense matrix: the full attack × defense-stack × CPU-preset × noise grid.
//
// Every registered attack runs against every requested defense stack on
// every CPU preset under every noise profile — the systematization view the
// paper's Table 1 sketches for one machine, generalized over the whole
// defense registry (src/defense). Each cell is a whisper::runner::RunSpec
// fanned out through one Executor via run_many, so `--jobs N` parallelises
// the grid with results bit-identical to `--jobs 1`; `--check` proves it by
// re-running the whole grid sequentially and comparing the JSON trajectory
// byte-for-byte (the tier-2 `bench_matrix_json` ctest entry runs this).
//
// The --json trajectory is *self-validated*: before it is written, the
// harness re-parses its own bytes with the serve JSON reader and checks the
// grid is complete (every coordinate exactly once, in generation order) and
// the summary totals match a recomputation from the cells. A trajectory
// that fails its own audit is a harness bug, and the run exits non-zero
// without writing it.
//
// Extra flags on top of the shared harness set (see bench_util.h):
//   --attacks LIST    comma-separated registry names (default: all)
//   --cpus LIST       comma-separated preset keys: skylake, kabylake,
//                     cometlake, raptorlake, zen3 (default: all five)
//   --defenses LIST   comma-separated defense stacks, each a '+'-joined
//                     combo in the --defense grammar (name[:key=value]...);
//                     "none" is the undefended baseline. Default: the
//                     systematization set — every registered defense alone,
//                     the paper's kernel hardening stack, and the full
//                     uarch stack.
//   --noise LIST      comma-separated profiles: off, quiet, desktop,
//                     noisy-server (default: off,desktop)
//   --trials N        trials per cell (default 1)
//   --bytes N         payload bytes per channel trial (default 4)
//   --report PATH     write the Table-1-style markdown report (the
//                     checked-in docs/DEFENSE_MATRIX.md is this output)
//   --check           re-run the grid at --jobs 1 and fail unless the JSON
//                     bytes match the parallel run exactly
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/attacks/registry.h"
#include "defense/defense.h"
#include "noise/noise.h"
#include "runner/json_writer.h"
#include "runner/runner.h"
#include "serve/protocol.h"
#include "uarch/config.h"

using namespace whisper;

namespace {

// Short CLI keys for the five Table-2 presets (uarch::to_string yields the
// marketing names, which make poor flag values).
struct CpuKey {
  const char* key;
  uarch::CpuModel model;
};
constexpr CpuKey kCpuKeys[] = {
    {"skylake", uarch::CpuModel::SkylakeI7_6700},
    {"kabylake", uarch::CpuModel::KabyLakeI7_7700},
    {"cometlake", uarch::CpuModel::CometLakeI9_10980XE},
    {"raptorlake", uarch::CpuModel::RaptorLakeI9_13900K},
    {"zen3", uarch::CpuModel::Zen3Ryzen5_5600G},
};

const CpuKey* find_cpu(const std::string& key) {
  for (const CpuKey& c : kCpuKeys)
    if (key == c.key) return &c;
  return nullptr;
}

std::vector<std::string> split_commas(const std::string& list) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > pos) out.push_back(list.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// The default stacks: the undefended baseline, every registered defense
/// alone, the paper's kernel hardening stack, and the full uarch stack.
std::vector<std::string> default_stacks() {
  std::vector<std::string> out = {"none"};
  for (const std::string& name : defense::defense_names()) out.push_back(name);
  out.push_back("kpti+flare+fgkaslr");
  out.push_back("lfence+window:depth=8+retpoline+flushclear");
  return out;
}

struct MatrixArgs {
  std::vector<std::string> attacks;
  std::vector<std::string> cpus = {"skylake", "kabylake", "cometlake",
                                   "raptorlake", "zen3"};
  std::vector<std::string> stacks = default_stacks();
  std::vector<std::string> noise = {"off", "desktop"};
  int trials = 1;
  std::size_t bytes = 4;
  std::string report;
  bool check = false;
};

MatrixArgs parse_matrix_args(int argc, char** argv) {
  MatrixArgs out;
  for (const core::AttackInfo& info : core::attack_registry())
    out.attacks.push_back(info.name);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--attacks" && i + 1 < argc) {
      out.attacks = split_commas(argv[++i]);
    } else if (a == "--cpus" && i + 1 < argc) {
      out.cpus = split_commas(argv[++i]);
    } else if (a == "--defenses" && i + 1 < argc) {
      out.stacks = split_commas(argv[++i]);
    } else if (a == "--noise" && i + 1 < argc) {
      out.noise = split_commas(argv[++i]);
    } else if (a == "--trials" && i + 1 < argc) {
      out.trials = std::atoi(argv[++i]);
    } else if (a == "--bytes" && i + 1 < argc) {
      out.bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (a == "--report" && i + 1 < argc) {
      out.report = argv[++i];
    } else if (a == "--check") {
      out.check = true;
    }
  }
  return out;
}

noise::NoiseProfile noise_by_key(const std::string& key, bool* ok) {
  *ok = true;
  if (key == "off") return noise::NoiseProfile::off();
  if (const auto p = noise::NoiseProfile::by_name(key)) return *p;
  *ok = false;
  return noise::NoiseProfile::off();
}

/// One grid coordinate. The generation order (attack → stack → cpu → noise,
/// all innermost-last) is part of the trajectory contract: the validator
/// replays it.
struct Cell {
  std::string attack;
  std::string stack;   // canonical combo string (defense::format_list)
  std::string cpu;     // CLI key
  std::string noise;   // CLI key
  runner::RunResult result;

  [[nodiscard]] double success_rate() const {
    return result.trials.empty()
               ? 0.0
               : static_cast<double>(result.successes) /
                     static_cast<double>(result.trials.size());
  }
  [[nodiscard]] double error_rate() const {
    return result.total_bytes
               ? static_cast<double>(result.total_byte_errors) /
                     static_cast<double>(result.total_bytes)
               : 1.0 - success_rate();
  }
};

/// Deterministic trajectory: no wall-clock, no job count — the bytes are a
/// pure function of the grid, which is what --check and the tier-2 test
/// compare across --jobs values.
std::string render_json(const MatrixArgs& m, const std::vector<Cell>& cells) {
  runner::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(std::string("whisper.defense_matrix.v1"));
  w.key("attacks");
  w.begin_array();
  for (const auto& a : m.attacks) w.value(a);
  w.end_array();
  w.key("defenses");
  w.begin_array();
  for (const auto& s : m.stacks)
    w.value(defense::format_list(defense::parse_list(s)));
  w.end_array();
  w.key("cpus");
  w.begin_array();
  for (const auto& c : m.cpus) w.value(c);
  w.end_array();
  w.key("noise");
  w.begin_array();
  for (const auto& n : m.noise) w.value(n);
  w.end_array();
  w.key("trials");
  w.value(m.trials);
  w.key("payload_bytes");
  w.value(static_cast<std::uint64_t>(m.bytes));
  w.key("cells");
  w.begin_array();
  std::uint64_t total_successes = 0;
  std::uint64_t total_byte_errors = 0;
  for (const Cell& c : cells) {
    total_successes += c.result.successes;
    total_byte_errors += c.result.total_byte_errors;
    w.begin_object();
    w.key("attack");
    w.value(c.attack);
    w.key("defenses");
    w.value(c.stack);
    w.key("cpu");
    w.value(c.cpu);
    w.key("noise");
    w.value(c.noise);
    w.key("trials");
    w.value(static_cast<std::uint64_t>(c.result.trials.size()));
    w.key("successes");
    w.value(static_cast<std::uint64_t>(c.result.successes));
    w.key("success_rate");
    w.value(c.success_rate());
    w.key("bytes");
    w.value(static_cast<std::uint64_t>(c.result.total_bytes));
    w.key("byte_errors");
    w.value(static_cast<std::uint64_t>(c.result.total_byte_errors));
    w.key("error_rate");
    w.value(c.error_rate());
    w.key("probes");
    w.value(static_cast<std::uint64_t>(c.result.total_probes));
    w.key("gave_up");
    w.value(static_cast<std::uint64_t>(c.result.total_gave_up));
    w.key("confidence_mean");
    w.value(c.result.confidence.mean);
    w.key("sim_seconds_mean");
    w.value(c.result.seconds.mean);
    w.end_object();
  }
  w.end_array();
  // The audit block the self-validation recomputes from the cells.
  w.key("check");
  w.begin_object();
  w.key("cells");
  w.value(static_cast<std::uint64_t>(cells.size()));
  w.key("successes");
  w.value(total_successes);
  w.key("byte_errors");
  w.value(total_byte_errors);
  w.end_object();
  w.end_object();
  return w.str();
}

/// Self-validation: parse the trajectory's own bytes back and audit it —
/// grid complete and in generation order, every cell carrying the full key
/// set, summary totals matching a recomputation. Returns an empty string on
/// success, the failure description otherwise.
std::string validate_matrix_json(const std::string& body,
                                 const MatrixArgs& m) {
  serve::JsonValue doc;
  try {
    doc = serve::json_parse(body);
  } catch (const std::exception& e) {
    return std::string("trajectory does not re-parse: ") + e.what();
  }
  const serve::JsonValue* schema = doc.get("schema");
  if (schema == nullptr || schema->string != "whisper.defense_matrix.v1")
    return "schema tag missing or wrong";
  const serve::JsonValue* cells = doc.get("cells");
  if (cells == nullptr || !cells->is_array()) return "cells array missing";
  const std::size_t expected =
      m.attacks.size() * m.stacks.size() * m.cpus.size() * m.noise.size();
  if (cells->array.size() != expected)
    return "grid incomplete: " + std::to_string(cells->array.size()) +
           " cells, expected " + std::to_string(expected);

  static const char* kCellKeys[] = {
      "attack", "defenses", "cpu", "noise", "trials", "successes",
      "success_rate", "bytes", "byte_errors", "error_rate", "probes",
      "gave_up", "confidence_mean", "sim_seconds_mean"};
  std::uint64_t successes = 0;
  std::uint64_t byte_errors = 0;
  std::size_t i = 0;
  for (const auto& attack : m.attacks) {
    for (const auto& stack : m.stacks) {
      const std::string canonical =
          defense::format_list(defense::parse_list(stack));
      for (const auto& cpu : m.cpus) {
        for (const auto& nz : m.noise) {
          const serve::JsonValue& cell = cells->array[i++];
          const std::string where = "cell " + std::to_string(i - 1);
          for (const char* key : kCellKeys)
            if (cell.get(key) == nullptr)
              return where + " missing key '" + key + "'";
          if (cell.get("attack")->string != attack ||
              cell.get("defenses")->string != canonical ||
              cell.get("cpu")->string != cpu ||
              cell.get("noise")->string != nz)
            return where + " out of generation order (got " +
                   cell.get("attack")->string + "/" +
                   cell.get("defenses")->string + "/" +
                   cell.get("cpu")->string + "/" + cell.get("noise")->string +
                   ", expected " + attack + "/" + canonical + "/" + cpu + "/" +
                   nz + ")";
          successes += static_cast<std::uint64_t>(
              cell.get("successes")->number);
          byte_errors += static_cast<std::uint64_t>(
              cell.get("byte_errors")->number);
        }
      }
    }
  }
  const serve::JsonValue* check = doc.get("check");
  if (check == nullptr || !check->is_object()) return "check block missing";
  if (static_cast<std::uint64_t>(check->get("cells")->number) != expected ||
      static_cast<std::uint64_t>(check->get("successes")->number) !=
          successes ||
      static_cast<std::uint64_t>(check->get("byte_errors")->number) !=
          byte_errors)
    return "check totals disagree with the cells";
  return "";
}

void render_percent(char* buf, std::size_t n, double rate) {
  std::snprintf(buf, n, "%.0f%%", 100.0 * rate);
}

/// The Table-1-style markdown view: one table per noise profile, rows the
/// attacks, columns the defense stacks, each entry the success rate over
/// cpus × trials; then the mitigation summary (stacks that drive a
/// baseline-successful attack to zero).
std::string render_report(const MatrixArgs& m, const std::vector<Cell>& cells,
                          const std::string& invocation) {
  std::string out;
  out += "# Defense matrix — attack × defense systematization\n\n";
  out += "Generated by `" + invocation + "`. Do not edit by hand;\n";
  out += "re-run the harness to refresh (see docs/REPRODUCING.md).\n\n";
  out += "Grid: " + std::to_string(m.attacks.size()) + " attacks × " +
         std::to_string(m.stacks.size()) + " defense stacks × " +
         std::to_string(m.cpus.size()) + " CPU presets × " +
         std::to_string(m.noise.size()) + " noise profiles, " +
         std::to_string(m.trials) +
         " trial(s) per cell. Entries are attack success rates over\n"
         "CPU presets × trials (100% = the defense does not stop the "
         "attack; 0% = fully mitigated).\n";

  // cells is in generation order: attack → stack → cpu → noise.
  const std::size_t per_attack = m.stacks.size() * m.cpus.size() *
                                 m.noise.size();
  const std::size_t per_stack = m.cpus.size() * m.noise.size();
  auto at = [&](std::size_t a, std::size_t s, std::size_t c,
                std::size_t n) -> const Cell& {
    return cells[a * per_attack + s * per_stack + c * m.noise.size() + n];
  };

  for (std::size_t n = 0; n < m.noise.size(); ++n) {
    out += "\n## Noise: " + m.noise[n] + "\n\n";
    out += "| attack |";
    for (const auto& s : m.stacks)
      out += " " + defense::format_list(defense::parse_list(s)) + " |";
    out += "\n|---|";
    for (std::size_t s = 0; s < m.stacks.size(); ++s) out += "---|";
    out += "\n";
    for (std::size_t a = 0; a < m.attacks.size(); ++a) {
      out += "| " + m.attacks[a] + " |";
      for (std::size_t s = 0; s < m.stacks.size(); ++s) {
        std::size_t wins = 0;
        std::size_t total = 0;
        for (std::size_t c = 0; c < m.cpus.size(); ++c) {
          const Cell& cell = at(a, s, c, n);
          wins += cell.result.successes;
          total += cell.result.trials.size();
        }
        char pct[16];
        render_percent(pct, sizeof pct,
                       total ? static_cast<double>(wins) /
                                   static_cast<double>(total)
                             : 0.0);
        out += " " + std::string(pct) + " |";
      }
      out += "\n";
    }
  }

  out += "\n## Mitigation summary\n\n";
  bool any = false;
  for (std::size_t s = 0; s < m.stacks.size(); ++s) {
    const std::string canonical =
        defense::format_list(defense::parse_list(m.stacks[s]));
    if (canonical == "none") continue;
    std::string stopped;
    for (std::size_t a = 0; a < m.attacks.size(); ++a) {
      std::size_t base_wins = 0;
      std::size_t wins = 0;
      for (std::size_t c = 0; c < m.cpus.size(); ++c) {
        for (std::size_t n = 0; n < m.noise.size(); ++n) {
          base_wins += at(a, 0, c, n).result.successes;  // stack 0 = baseline
          wins += at(a, s, c, n).result.successes;
        }
      }
      if (base_wins > 0 && wins == 0) {
        if (!stopped.empty()) stopped += ", ";
        stopped += m.attacks[a];
      }
    }
    if (!stopped.empty()) {
      out += "- `" + canonical + "` fully mitigates: " + stopped + "\n";
      any = true;
    }
  }
  if (!any)
    out += "- no stack fully mitigates any baseline-successful attack on "
           "this grid\n";
  return out;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::HarnessArgs args = bench::parse_harness_args(argc, argv);
  const MatrixArgs m = parse_matrix_args(argc, argv);

  // Fail fast on every axis before any trial runs.
  for (const std::string& a : m.attacks) {
    if (core::find_attack(a) == nullptr) {
      std::fprintf(stderr, "defense_matrix: unknown attack '%s' in --attacks\n",
                   a.c_str());
      return 2;
    }
  }
  for (const std::string& c : m.cpus) {
    if (find_cpu(c) == nullptr) {
      std::fprintf(stderr,
                   "defense_matrix: unknown cpu '%s' in --cpus (keys: "
                   "skylake, kabylake, cometlake, raptorlake, zen3)\n",
                   c.c_str());
      return 2;
    }
  }
  for (const std::string& s : m.stacks) {
    try {
      defense::validate(defense::parse_list(s));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "defense_matrix: bad --defenses entry '%s': %s\n",
                   s.c_str(), e.what());
      return 2;
    }
  }
  for (const std::string& n : m.noise) {
    bool ok = false;
    (void)noise_by_key(n, &ok);
    if (!ok) {
      std::fprintf(stderr,
                   "defense_matrix: unknown noise '%s' in --noise (keys: "
                   "off, quiet, desktop, noisy-server)\n",
                   n.c_str());
      return 2;
    }
  }

  bench::heading("Defense matrix — attack × defense × CPU × noise");

  // Grid in the generation order the validator replays.
  std::vector<Cell> cells;
  std::vector<runner::RunSpec> specs;
  for (const std::string& attack : m.attacks) {
    for (const std::string& stack : m.stacks) {
      const std::vector<defense::DefenseSpec> defenses =
          defense::parse_list(stack);
      for (const std::string& cpu : m.cpus) {
        for (const std::string& nz : m.noise) {
          bool ok = false;
          runner::RunSpec spec;
          spec.model = find_cpu(cpu)->model;
          spec.attack = attack;
          spec.trials = m.trials;
          spec.base_seed = 0xdefe5eedULL;
          spec.defenses = defenses;
          spec.noise = noise_by_key(nz, &ok);
          spec.payload_bytes = m.bytes;
          spec.payload_seed = 0xbeefULL;
          spec.rounds = 2;
          bench::apply_fault_args(spec, args);
          cells.push_back(
              {attack, defense::format_list(defenses), cpu, nz, {}});
          specs.push_back(spec);
        }
      }
    }
  }
  std::printf("grid: %zu attacks × %zu stacks × %zu cpus × %zu noise = %zu "
              "cells, %d trial(s) each\n",
              m.attacks.size(), m.stacks.size(), m.cpus.size(),
              m.noise.size(), cells.size(), m.trials);

  runner::Executor ex(args.jobs);
  const std::vector<runner::RunResult> results =
      runner::run_many(specs, ex, args.progress);
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].result = results[i];

  // Console view: the noise-0 aggregate table (the full detail goes to the
  // JSON trajectory and the markdown report).
  std::printf("\n%-7s %-44s %-7s %-7s\n", "attack", "defenses", "succ%",
              "err%");
  std::printf("%s\n", std::string(68, '-').c_str());
  for (std::size_t a = 0; a < m.attacks.size(); ++a) {
    for (std::size_t s = 0; s < m.stacks.size(); ++s) {
      std::size_t wins = 0;
      std::size_t total = 0;
      std::size_t bytes = 0;
      std::size_t errors = 0;
      for (std::size_t c = 0; c < m.cpus.size(); ++c) {
        for (std::size_t n = 0; n < m.noise.size(); ++n) {
          const Cell& cell =
              cells[((a * m.stacks.size() + s) * m.cpus.size() + c) *
                        m.noise.size() +
                    n];
          wins += cell.result.successes;
          total += cell.result.trials.size();
          bytes += cell.result.total_bytes;
          errors += cell.result.total_byte_errors;
        }
      }
      std::printf("%-7s %-44s %-7.0f %-7.1f\n", m.attacks[a].c_str(),
                  defense::format_list(defense::parse_list(m.stacks[s]))
                      .c_str(),
                  total ? 100.0 * wins / total : 0.0,
                  bytes ? 100.0 * errors / bytes : 0.0);
    }
  }

  const std::string body = render_json(m, cells);
  const std::string audit = validate_matrix_json(body, m);
  if (!audit.empty()) {
    std::fprintf(stderr, "defense_matrix: self-validation FAILED: %s\n",
                 audit.c_str());
    return 1;
  }
  std::printf("\n(self-validation passed: %zu cells audited)\n", cells.size());

  if (m.check) {
    // The bit-identity proof: the whole grid again, strictly sequential,
    // and the trajectories must match byte-for-byte.
    runner::Executor seq(1);
    const std::vector<runner::RunResult> again =
        runner::run_many(specs, seq, false);
    std::vector<Cell> cells1 = cells;
    for (std::size_t i = 0; i < cells1.size(); ++i) cells1[i].result = again[i];
    if (render_json(m, cells1) != body) {
      std::fprintf(stderr,
                   "defense_matrix: --check FAILED: --jobs %d trajectory "
                   "differs from --jobs 1\n",
                   args.jobs);
      return 1;
    }
    std::printf("(--check passed: --jobs %d == --jobs 1, byte-identical)\n",
                args.jobs);
  }

  if (!args.json.empty()) {
    if (!write_file(args.json, body + "\n")) {
      std::fprintf(stderr, "defense_matrix: cannot open %s for writing\n",
                   args.json.c_str());
      return 1;
    }
    std::printf("(matrix trajectory written to %s)\n", args.json.c_str());
  }

  if (!m.report.empty()) {
    std::string invocation = "bench/defense_matrix";
    for (int i = 1; i < argc; ++i) invocation += std::string(" ") + argv[i];
    if (!write_file(m.report, render_report(m, cells, invocation))) {
      std::fprintf(stderr, "defense_matrix: cannot open %s for writing\n",
                   m.report.c_str());
      return 1;
    }
    std::printf("(markdown report written to %s)\n", m.report.c_str());
  }

  if (!args.metrics_out.empty()) {
    obs::MetricsRegistry reg;
    for (const Cell& c : cells) {
      const std::string prefix =
          c.attack + "." + c.stack + "." + c.cpu + "." + c.noise + ".";
      reg.merge(runner::to_metrics(c.result, prefix));
    }
    bench::write_metrics(reg, args.metrics_out);
  }
  return 0;
}
