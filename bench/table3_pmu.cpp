// Table 3 reproduction: key performance-monitor counter values for each
// analysis scene, measured against the model and printed next to the
// paper's numbers. The contract is the *sign and rough magnitude* of each
// delta, not the absolute counts (different microcode, different silicon).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/pmu_toolset.h"
#include "os/machine.h"

using namespace whisper;

namespace {

struct PaperEntry {
  uarch::PmuEvent event;
  double paper_baseline;  // "Jcc not Trigger" / "unmapped"
  double paper_variant;   // "Jcc Trigger" / "mapped"
};

void run_scene(const std::string& title, os::Machine& m,
               const core::PmuToolset::Scenario& baseline,
               const core::PmuToolset::Scenario& variant,
               const char* base_name, const char* var_name,
               const std::vector<PaperEntry>& entries) {
  bench::subheading(title);
  core::PmuToolset ts(m);
  // Warm the machine so cold-start cache effects don't pollute the scene.
  baseline(m);
  variant(m);

  std::printf("%-52s %10s %10s | %10s %10s | %s\n", "Event", base_name,
              var_name, "paper", "paper", "delta sign");
  std::printf("%s\n", std::string(110, '-').c_str());
  for (const PaperEntry& e : entries) {
    const core::EventRecord r = ts.measure(e.event, baseline, variant);
    const double model_delta = r.delta();
    const double paper_delta = e.paper_variant - e.paper_baseline;
    const bool same_sign =
        (model_delta == 0 && paper_delta == 0) ||
        (model_delta > 0) == (paper_delta > 0);
    std::printf("%-52s %10.0f %10.0f | %10.0f %10.0f | %s\n",
                uarch::to_string(e.event).c_str(), r.baseline, r.variant,
                e.paper_baseline, e.paper_variant,
                same_sign ? "matches" : "DIFFERS");
  }
}

}  // namespace

int main() {
  bench::heading("Table 3 — Key performance monitor counter values");
  std::printf("model counts | paper counts; 'matches' = same delta sign\n");

  {
    os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
    run_scene("Core i7-6700, TET-CC (Jcc not-trigger vs trigger)", m,
              core::scenario_tet_cc(false), core::scenario_tet_cc(true),
              "not-trig", "trig",
              {{uarch::PmuEvent::BR_MISP_EXEC_INDIRECT, 0, 1},
               {uarch::PmuEvent::BR_MISP_EXEC_ALL_BRANCHES, 0, 2},
               {uarch::PmuEvent::RESOURCE_STALLS_ANY, 15, 21}});
  }
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    run_scene("Core i7-7700, TET-CC (frontend delivery)", m,
              core::scenario_tet_cc(false), core::scenario_tet_cc(true),
              "not-trig", "trig",
              {{uarch::PmuEvent::BR_MISP_EXEC_INDIRECT, 0, 1},
               {uarch::PmuEvent::BR_MISP_EXEC_ALL_BRANCHES, 0, 2},
               {uarch::PmuEvent::IDQ_DSB_UOPS, 119, 115},
               {uarch::PmuEvent::IDQ_MS_DSB_CYCLES, 33, 26},
               {uarch::PmuEvent::IDQ_DSB_CYCLES_OK, 54, 43},
               {uarch::PmuEvent::IDQ_DSB_CYCLES_ANY, 76, 60},
               {uarch::PmuEvent::IDQ_MS_MITE_UOPS, 77, 97},
               {uarch::PmuEvent::IDQ_ALL_MITE_CYCLES_ANY_UOPS, 35, 45},
               {uarch::PmuEvent::IDQ_MS_UOPS, 228, 208},
               {uarch::PmuEvent::UOPS_EXECUTED_CORE_CYCLES_NONE, 110, 116}});
  }
  {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    run_scene("Core i7-7700, TET-MD (pipeline & backend)", m,
              core::scenario_tet_md(false), core::scenario_tet_md(true),
              "not-trig", "trig",
              {{uarch::PmuEvent::RESOURCE_STALLS_ANY, 15, 21},
               {uarch::PmuEvent::CYCLE_ACTIVITY_STALLS_TOTAL, 320, 331},
               {uarch::PmuEvent::UOPS_EXECUTED_STALL_CYCLES, 325, 332},
               {uarch::PmuEvent::CYCLE_ACTIVITY_CYCLES_MEM_ANY, 142, 141},
               {uarch::PmuEvent::INT_MISC_RECOVERY_CYCLES_ANY, 24, 29},
               {uarch::PmuEvent::INT_MISC_CLEAR_RESTEER_CYCLES, 27, 39},
               {uarch::PmuEvent::UOPS_ISSUED_ANY, 334, 319},
               {uarch::PmuEvent::UOPS_ISSUED_STALL_CYCLES, 394, 404},
               {uarch::PmuEvent::RS_EVENTS_EMPTY_CYCLES, 202, 218}});
  }
  {
    os::Machine m({.model = uarch::CpuModel::Zen3Ryzen5_5600G});
    run_scene("Ryzen 5 5600G, TET-CC (AMD events)", m,
              core::scenario_tet_cc(false), core::scenario_tet_cc(true),
              "not-trig", "trig",
              {{uarch::PmuEvent::BP_L1_BTB_CORRECT, 493, 511},
               {uarch::PmuEvent::BP_L1_TLB_FETCH_HIT, 914, 938},
               {uarch::PmuEvent::DE_DIS_UOP_QUEUE_EMPTY_DI0, 182, 195},
               {uarch::PmuEvent::
                    DE_DIS_DISPATCH_TOKEN_STALLS2_RETIRE_TOKEN_STALL,
                4, 84},
               {uarch::PmuEvent::IC_FW32, 661, 690}});
  }
  {
    os::Machine m({.model = uarch::CpuModel::SkylakeI7_6700});
    run_scene("Core i7-6700, Transient Execution Flow (§5.2.5, padded "
              "configuration)", m,
              core::scenario_flow(false, 128), core::scenario_flow(true, 128),
              "not-trig", "trig",
              {{uarch::PmuEvent::UOPS_ISSUED_ANY, 684, 603},
               {uarch::PmuEvent::INT_MISC_RECOVERY_CYCLES, 19, 15},
               {uarch::PmuEvent::ICACHE_16B_IFDATA_STALL, 2, 0}});
  }
  {
    os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE});
    run_scene("Core i9-10980XE, TET-KASLR (unmapped vs mapped)", m,
              core::scenario_kaslr(false), core::scenario_kaslr(true),
              "unmapped", "mapped",
              {{uarch::PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK, 2, 0},
               {uarch::PmuEvent::DTLB_LOAD_MISSES_WALK_ACTIVE, 62, 0},
               {uarch::PmuEvent::ITLB_MISSES_WALK_ACTIVE, 19, 0}});
  }

  std::printf(
      "\nNote: paper 'mapped' columns are 0 because the probe hits the "
      "fault before the walker engages;\nthe model reports the same sign "
      "(mapped << unmapped) with its own magnitudes.\n");
  return 0;
}
