// §4.5 reproduction: the KASLR attack ladder — plain KASLR, KASLR+KPTI
// (512 offsets, < 1 s), KASLR+KPTI+FLARE, Docker — plus the
// prefetch-timing baseline that FLARE defeats, and the AMD negative.
//
// The ten (scenario × attack) cells are independent simulations; they fan
// out through the whisper::runner Executor (`--jobs N`), each on a private
// os::Machine built from the scenario's fixed seed, so the table is
// bit-identical at any job count.
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/prefetch_kaslr.h"
#include "bench/bench_util.h"
#include "core/attacks/kaslr.h"
#include "os/machine.h"
#include "runner/executor.h"

using namespace whisper;

namespace {

struct Scenario {
  std::string name;
  os::MachineOptions options;
  const char* paper_tet;       // paper's claim for TET-KASLR
  const char* paper_prefetch;  // expected for the baseline
};

}  // namespace

int main(int argc, char** argv) {
  const bench::HarnessArgs args = bench::parse_harness_args(argc, argv);
  bench::heading("Section 4.5 — TET-KASLR attack: breaking KASLR");

  const uarch::CpuModel cml = uarch::CpuModel::CometLakeI9_10980XE;
  const std::vector<Scenario> scenarios = {
      {"KASLR (i9-10980XE)", {.model = cml, .seed = 11}, "breaks", "breaks"},
      {"KASLR + KPTI",
       {.model = cml, .kernel = {.kpti = true}, .seed = 22},
       "breaks (<1 s, 512 offsets)",
       "breaks (EntryBleed)"},
      {"KASLR + KPTI + FLARE",
       {.model = cml, .kernel = {.kpti = true, .flare = true}, .seed = 33},
       "breaks (bypasses FLARE)",
       "defeated by FLARE"},
      {"KASLR + KPTI, Docker",
       {.model = cml, .kernel = {.kpti = true}, .docker = true, .seed = 44},
       "breaks (Docker 24.0.1)",
       "-"},
      {"KASLR (AMD Zen 3)",
       {.model = uarch::CpuModel::Zen3Ryzen5_5600G, .seed = 55},
       "fails (Table 2: no TLB fill on fault)",
       "-"},
  };

  // Cell k: scenario k/2, TET-KASLR when k is even, prefetch baseline when
  // odd. Each worker builds its own Machine — nothing is shared.
  runner::Executor ex(args.jobs);
  runner::Progress meter("sec45_kaslr", scenarios.size() * 2, args.progress);
  runner::WallTimer timer;
  const std::vector<std::string> cells = ex.map(
      scenarios.size() * 2,
      [&scenarios](std::size_t k) {
        const Scenario& sc = scenarios[k / 2];
        os::Machine m(sc.options);
        char buf[96];
        if (k % 2 == 0) {
          core::TetKaslr atk(m, {.rounds = 3});
          const auto r = atk.run();
          std::snprintf(buf, sizeof buf, "%s slot %3d, %.4f s, %zu probes",
                        bench::mark(r.success), r.found_slot, r.seconds,
                        r.probes);
        } else {
          baseline::PrefetchKaslr atk(m, {.rounds = 3});
          const auto r = atk.run();
          std::snprintf(buf, sizeof buf, "%s slot %3d, %.4f s",
                        bench::mark(r.success), r.found_slot, r.seconds);
        }
        return std::string(buf);
      },
      &meter);
  meter.finish(timer.seconds(), ex.jobs());

  std::printf("\n%-24s | %-28s | %-28s\n", "configuration",
              "TET-KASLR (model)", "prefetch baseline (model)");
  std::printf("%s\n", std::string(90, '-').c_str());

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& sc = scenarios[i];
    std::printf("%-24s | %-28s | %-28s\n", sc.name.c_str(),
                cells[2 * i].c_str(), cells[2 * i + 1].c_str());
    std::printf("%-24s |   paper: %-36s baseline expectation: %s\n", "",
                sc.paper_tet, sc.paper_prefetch);
  }

  std::printf("\nKey claims reproduced: TET survives KPTI (trampoline "
              "remnant at +0xe00000), survives FLARE via the\nTLB-fill "
              "double probe, works in Docker, and fails on Zen 3; the "
              "walk-timing baseline dies at FLARE.\n");
  return 0;
}
