// Ablation studies for the design choices DESIGN.md calls out:
//
//   A1  transient_resteer_clear_penalty sweep — how much clear-drain is
//       needed before the TET-CC channel decodes reliably.
//   A2  early-clear policy on/off — the ZBL/RSB "shorter on trigger" sign
//       depends on it (§4.3.2/4.3.3).
//   A3  TLB fill-on-fault policy + walk replay — the §6.3 "security TLB"
//       hardware mitigation: turning Intel's policy off kills TET-KASLR.
//   A4  timing-jitter amplitude vs channel error rate.
//   A5  batches-per-byte vs TET-MD accuracy (the attacker's time/accuracy
//       dial).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/attacks/kaslr.h"
#include "core/gadgets.h"
#include "core/attacks/meltdown.h"
#include "core/attacks/zombieload.h"
#include "core/covert_channel.h"
#include "os/machine.h"

using namespace whisper;

int main() {
  bench::heading("Ablations");

  // --- A1: Whisper delta magnitude ----------------------------------------
  bench::subheading("A1: transient resteer->clear penalty vs TET-CC decode");
  std::printf("%10s %14s %12s\n", "penalty", "byte errors/64", "decodable");
  for (int penalty : {0, 2, 5, 10, 20}) {
    uarch::CpuConfig cfg = uarch::make_config(uarch::CpuModel::KabyLakeI7_7700);
    cfg.transient_resteer_clear_penalty = penalty;
    os::Machine m({.model = cfg.model, .config = cfg});
    core::TetCovertChannel cc(m, {{.batches = 3}});
    const auto payload = bench::random_bytes(64, 0xA1);
    const auto rep = cc.transmit(payload);
    std::printf("%10d %14zu %12s\n", penalty, rep.byte_errors,
                rep.byte_errors < 4 ? "yes" : "no");
  }
  std::printf("(penalty 0 removes the Whisper signal for exception windows "
              "-> channel collapses; the resteer-bubble remnant may keep a "
              "weak signal)\n");

  // --- A2: early-clear policy --------------------------------------------
  bench::subheading("A2: early-clear-on-transient-mispredict vs TET-ZBL");
  for (bool early : {true, false}) {
    uarch::CpuConfig cfg = uarch::make_config(uarch::CpuModel::SkylakeI7_6700);
    cfg.early_clear_on_transient_mispredict = early;
    os::Machine m({.model = cfg.model, .config = cfg});
    const auto stream = bench::random_bytes(4, 0xA2);
    core::TetZombieload atk(m, {{.batches = 4}});
    const bool ok = atk.leak(stream) == stream;
    std::printf("  early_clear=%-5s -> TET-ZBL (arg-min decode) %s\n",
                early ? "on" : "off", ok ? "works" : "fails");
  }
  std::printf("(the paper's observed 'shorter on trigger' sign for "
              "assist/RSB windows is the early squash)\n");

  // --- A3: security-TLB hardware mitigation (§6.3) -------------------------
  bench::subheading(
      "A3: TLB fill policy + walk replay (the §6.3 hardware mitigation)");
  struct Policy {
    const char* name;
    bool fill;
    int replays;
  };
  for (const Policy p : {Policy{"Intel default (fill, 2 walks)", true, 2},
                         Policy{"no fill, 2 walks", false, 2},
                         Policy{"security TLB: no fill, 1 walk", false, 1}}) {
    uarch::CpuConfig cfg =
        uarch::make_config(uarch::CpuModel::CometLakeI9_10980XE);
    cfg.mem.tlb_fill_on_permission_fault = p.fill;
    cfg.mem.not_present_replays = p.replays;
    os::Machine m({.model = cfg.model, .seed = 0xA3, .config = cfg});
    core::TetKaslr atk(m, {.rounds = 3});
    const auto r = atk.run();
    std::printf("  %-34s -> TET-KASLR %s (found slot %d / true %d)\n",
                p.name, bench::mark(r.success), r.found_slot,
                m.kernel().slot());
  }
  std::printf("('TLB entries should only be created if the access "
              "permission check is passed' — §6.3)\n");

  // --- A4: jitter sensitivity ----------------------------------------------
  bench::subheading("A4: timing-jitter amplitude vs TET-CC error rate");
  std::printf("%12s %16s\n", "jitter amp", "byte err (of 64)");
  for (int amp : {0, 2, 4, 8, 12, 16}) {
    uarch::CpuConfig cfg = uarch::make_config(uarch::CpuModel::KabyLakeI7_7700);
    cfg.mem.jitter_amp = amp;
    os::Machine m({.model = cfg.model, .config = cfg});
    core::TetCovertChannel cc(m, {{.batches = 3}});
    const auto payload = bench::random_bytes(64, 0xA4);
    const auto rep = cc.transmit(payload);
    std::printf("%12d %16zu\n", amp, rep.byte_errors);
  }

  // --- A6: TLB eviction strategy ---------------------------------------------
  bench::subheading("A6: TLB eviction strategy for the KASLR probe (privileged "
                    "flush vs unprivileged access eviction)");
  for (bool by_access : {false, true}) {
    os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
                   .seed = 0xA6});
    core::TetKaslr atk(m, {.rounds = 2});
    const std::uint64_t start = m.core().cycle();
    std::uint64_t best_mapped = ~0ull, best_unmapped = ~0ull;
    const std::uint64_t mapped = m.kernel().kernel_base();
    const std::uint64_t unmapped = m.kernel().unmapped_probe_address();
    for (int i = 0; i < 8; ++i) {
      if (by_access) m.evict_tlbs_via_access(); else m.evict_tlbs();
      best_mapped = std::min(best_mapped, atk.probe_once(mapped, false));
      if (by_access) m.evict_tlbs_via_access(); else m.evict_tlbs();
      best_unmapped = std::min(best_unmapped, atk.probe_once(unmapped, false));
    }
    std::printf("  %-28s mapped %4llu vs unmapped %4llu cycles  "
                "(16 probes in %.1f us sim)\n",
                by_access ? "access eviction (no priv):" : "flush (modelled):",
                (unsigned long long)best_mapped,
                (unsigned long long)best_unmapped,
                m.seconds(m.core().cycle() - start) * 1e6);
  }
  std::printf("  (the mapped/unmapped signal survives either eviction method "
              "-- the attack needs no privilege)\n");

  // --- A5: batches vs accuracy ---------------------------------------------
  bench::subheading("A5: batches per byte vs TET-MD error rate (accuracy/"
                    "throughput dial)");
  std::printf("%10s %16s %14s\n", "batches", "byte err (of 48)", "B/s (sim)");
  for (int batches : {1, 2, 4, 6, 10}) {
    os::Machine m({.model = uarch::CpuModel::KabyLakeI7_7700});
    const auto secret = bench::random_bytes(48, 0xA5);
    const std::uint64_t kaddr = m.plant_kernel_secret(secret);
    core::TetMeltdown atk(m, {{.batches = batches}});
    const std::uint64_t start = m.core().cycle();
    const auto leaked = atk.leak(kaddr, secret.size());
    const auto rep = stats::evaluate_channel(
        secret, leaked, m.core().cycle() - start, m.config().ghz);
    std::printf("%10d %16zu %14.1f\n", batches, rep.byte_errors,
                rep.bytes_per_second);
  }

  // --- A7: success rate across random boots ----------------------------------
  bench::subheading("A7: TET-KASLR success rate over 20 random KASLR boots");
  struct Rung {
    const char* name;
    bool kpti, flare;
  };
  for (const Rung rung : {Rung{"plain", false, false},
                          Rung{"+KPTI", true, false},
                          Rung{"+KPTI+FLARE", true, true}}) {
    int ok = 0;
    double total_s = 0;
    for (std::uint64_t boot = 1; boot <= 20; ++boot) {
      os::Machine m({.model = uarch::CpuModel::CometLakeI9_10980XE,
                     .kernel = {.kpti = rung.kpti, .flare = rung.flare},
                     .seed = 0xB000 + boot});
      core::TetKaslr atk(m, {.rounds = 2});
      const auto r = atk.run();
      ok += r.success ? 1 : 0;
      total_s += r.seconds;
    }
    std::printf("  %-14s %2d/20 boots broken, mean %.4f s sim\n", rung.name,
                ok, total_s / 20.0);
  }
  std::printf("  (paper: n=3 at 0.8829 s; the model's noise floor lets far "
              "fewer probes suffice)\n");
  return 0;
}
