// whisper::noise — seeded, deterministic interference injection.
//
// The paper's error rates (Table 2, §4.3–4.5) come from live machines where
// the ToTE channel competes with SMT siblings, timer interrupts, DVFS and
// the hardware prefetchers; the base model's only stochastic element is a
// uniform jitter on DRAM accesses, so every attack decodes perfectly. This
// layer injects those missing interference sources into a Machine:
//
//  * SmtContention  — bursts of sibling port/LFB pressure: extra latency on
//    every access inside a burst, plus fill traffic that overwrites the LFB
//    (degrading Zombieload's stale-data sampling).
//  * TimerInterrupt — periodic asynchronous interrupts that squash and
//    resteer the pipeline through the Core's machine-clear recovery path,
//    truncating any transient window they land in.
//  * Dvfs           — frequency steps: the core clock moves relative to the
//    fixed-time DRAM/page-walk path, rescaling ToTE mid-run.
//  * Prefetcher     — speculative fills of neighbouring lines into L1/L2,
//    polluting the sets the attacks probe.
//  * TlbShootdown   — periodic flushes of the non-global TLB entries
//    (IPI shootdowns from other cores' munmap traffic).
//
// Each source has an intensity knob in [0, 1]; a NoiseProfile composes
// them (presets: off / quiet / desktop / noisy-server). The engine is a
// pure function of (profile, seed, access/cycle stream): two machines with
// the same seed and profile observe byte-identical interference, which is
// what keeps the runner's --jobs determinism contract intact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mem/memory_system.h"
#include "stats/rng.h"
#include "uarch/core.h"

namespace whisper::noise {

enum class NoiseKind : std::uint8_t {
  SmtContention,
  TimerInterrupt,
  Dvfs,
  Prefetcher,
  TlbShootdown,
};
inline constexpr std::size_t kNumNoiseKinds = 5;

[[nodiscard]] const char* to_string(NoiseKind k);

/// One interference source with its intensity knob. 0 disables the source
/// (it then draws no randomness and injects nothing); 1 is the heaviest
/// setting the presets are calibrated over. Values are clamped to [0, 1].
struct NoiseSource {
  NoiseKind kind = NoiseKind::SmtContention;
  double intensity = 0.0;
};

/// A named composition of sources. The profile seed decorrelates the noise
/// stream from the machine's own jitter stream; os::Machine folds it with
/// the machine seed, so per-trial seeding still drives everything.
struct NoiseProfile {
  std::string name = "off";
  std::vector<NoiseSource> sources;
  std::uint64_t seed = 0x9015eULL;

  /// Intensity of `kind` (0 when the profile does not mention it).
  [[nodiscard]] double intensity(NoiseKind kind) const noexcept;
  /// Any source with intensity > 0? An all-zero profile is never attached,
  /// so it cannot perturb a run even in principle (observer-effect test).
  [[nodiscard]] bool enabled() const noexcept;
  /// Copy with every intensity multiplied by `factor` (clamped to [0, 1]).
  /// noise_sweep uses this to walk one preset through intensity steps.
  [[nodiscard]] NoiseProfile scaled(double factor) const;

  [[nodiscard]] static NoiseProfile off();
  /// Idle desktop: rare timer ticks only.
  [[nodiscard]] static NoiseProfile quiet();
  /// Interactive desktop: moderate everything — the acceptance profile.
  [[nodiscard]] static NoiseProfile desktop();
  /// Loaded server: heavy SMT contention, frequent interrupts/shootdowns.
  [[nodiscard]] static NoiseProfile noisy_server();

  /// Parse a preset name ("off", "quiet", "desktop", "noisy-server").
  [[nodiscard]] static std::optional<NoiseProfile> by_name(
      std::string_view name);
  [[nodiscard]] static const std::vector<std::string>& preset_names();
};

/// Injection counters, for tests and the noise_sweep report.
struct NoiseStats {
  std::uint64_t contended_accesses = 0;  // accesses hit by an SMT burst
  std::uint64_t contention_cycles = 0;   // total latency added by bursts
  std::uint64_t timer_interrupts = 0;
  std::uint64_t dvfs_steps = 0;
  std::uint64_t prefetch_fills = 0;
  std::uint64_t tlb_shootdowns = 0;
};

/// The engine: implements both hook interfaces and owns the scheduling
/// state. One engine serves one Machine (attach() wires the MemorySystem
/// pointer the TLB-shootdown and prefetcher sources mutate).
class NoiseEngine final : public mem::MemInterference,
                          public uarch::CoreInterference {
 public:
  NoiseEngine(NoiseProfile profile, std::uint64_t seed);

  /// Target of the stateful sources; must be the MemorySystem this engine
  /// is registered with via set_interference().
  void attach(mem::MemorySystem* mem) noexcept { mem_ = mem; }

  /// mem::MemInterference: extra latency for this access (may be negative
  /// under a DVFS downclock).
  int on_access(const mem::AccessRequest& req,
                const mem::AccessResult& res) override;

  /// uarch::CoreInterference: fires due DVFS steps and TLB shootdowns, and
  /// returns a timer-interrupt handler cost when one is due (0 otherwise).
  std::uint64_t on_cycle(std::uint64_t cycle) override;

  /// Return the engine to its post-construction state for a new trial:
  /// counters zeroed, scheduling state cleared, the noise stream re-derived
  /// exactly as construction with this seed would. The attach()ed
  /// MemorySystem pointer is kept.
  void reset(std::uint64_t seed);

  /// Core-vs-nominal frequency ratio the DVFS source currently applies.
  [[nodiscard]] double dvfs_scale() const noexcept { return dvfs_scale_; }
  [[nodiscard]] const NoiseProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const NoiseStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] std::uint64_t jittered(std::uint64_t mean);

  NoiseProfile profile_;
  mem::MemorySystem* mem_ = nullptr;
  stats::Xoshiro256 rng_;
  NoiseStats stats_;

  // Per-source intensities, snapshot at construction.
  double smt_i_ = 0.0;
  double timer_i_ = 0.0;
  double dvfs_i_ = 0.0;
  double prefetch_i_ = 0.0;
  double tlb_i_ = 0.0;

  // Scheduling state, all in absolute core cycles. 0 = not yet scheduled
  // (the first on_cycle/on_access draws the first due time), so spans the
  // core skips with advance() simply fire the source once when execution
  // resumes — never a backlog of missed events.
  std::uint64_t last_cycle_ = 0;
  std::uint64_t timer_next_ = 0;
  std::uint64_t dvfs_next_ = 0;
  std::uint64_t tlb_next_ = 0;
  std::uint64_t burst_start_ = 0;
  std::uint64_t burst_end_ = 0;
  double dvfs_scale_ = 1.0;
};

}  // namespace whisper::noise
