#include "noise/noise.h"

#include <algorithm>
#include <cmath>

namespace whisper::noise {

namespace {

constexpr double clamp01(double v) {
  return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
}

/// Interval scaling: intensity 0 → `slow`, intensity 1 → `fast`.
constexpr std::uint64_t lerp_interval(std::uint64_t slow, std::uint64_t fast,
                                      double intensity) {
  return slow - static_cast<std::uint64_t>(
                    static_cast<double>(slow - fast) * intensity);
}

// Source calibration (cycles). The slow end is chosen so intensity ~0
// profiles barely brush a leak_byte (a few hundred k cycles); the fast end
// is what pushes fixed-batch decoding past the acceptance error rates.
constexpr std::uint64_t kTimerPeriodSlow = 400'000, kTimerPeriodFast = 20'000;
constexpr std::uint64_t kDvfsPeriodSlow = 300'000, kDvfsPeriodFast = 30'000;
constexpr std::uint64_t kTlbPeriodSlow = 2'000'000, kTlbPeriodFast = 100'000;
constexpr std::uint64_t kBurstGapSlow = 30'000, kBurstGapFast = 3'000;
constexpr std::uint64_t kBurstLenShort = 1'000, kBurstLenLong = 6'000;
constexpr std::uint64_t kTimerHandlerCycles = 2'500;

/// Physical region the simulated sibling's fill traffic "belongs" to —
/// anywhere outside the attacker/victim working set works; only the line
/// offsets matter for LFB sampling.
constexpr std::uint64_t kSiblingPhysBase = 0x7f000000ull;

}  // namespace

const char* to_string(NoiseKind k) {
  switch (k) {
    case NoiseKind::SmtContention: return "smt-contention";
    case NoiseKind::TimerInterrupt: return "timer-interrupt";
    case NoiseKind::Dvfs: return "dvfs";
    case NoiseKind::Prefetcher: return "prefetcher";
    case NoiseKind::TlbShootdown: return "tlb-shootdown";
  }
  return "?";
}

double NoiseProfile::intensity(NoiseKind kind) const noexcept {
  for (const NoiseSource& s : sources)
    if (s.kind == kind) return clamp01(s.intensity);
  return 0.0;
}

bool NoiseProfile::enabled() const noexcept {
  for (const NoiseSource& s : sources)
    if (s.intensity > 0.0) return true;
  return false;
}

NoiseProfile NoiseProfile::scaled(double factor) const {
  NoiseProfile out = *this;
  for (NoiseSource& s : out.sources)
    s.intensity = clamp01(s.intensity * factor);
  return out;
}

NoiseProfile NoiseProfile::off() { return NoiseProfile{}; }

NoiseProfile NoiseProfile::quiet() {
  return NoiseProfile{
      .name = "quiet",
      .sources = {{NoiseKind::TimerInterrupt, 0.1},
                  {NoiseKind::Prefetcher, 0.1}}};
}

NoiseProfile NoiseProfile::desktop() {
  return NoiseProfile{
      .name = "desktop",
      .sources = {{NoiseKind::SmtContention, 0.5},
                  {NoiseKind::TimerInterrupt, 0.4},
                  {NoiseKind::Dvfs, 0.4},
                  {NoiseKind::Prefetcher, 0.3},
                  {NoiseKind::TlbShootdown, 0.2}}};
}

NoiseProfile NoiseProfile::noisy_server() {
  return NoiseProfile{
      .name = "noisy-server",
      .sources = {{NoiseKind::SmtContention, 0.9},
                  {NoiseKind::TimerInterrupt, 0.8},
                  {NoiseKind::Dvfs, 0.6},
                  {NoiseKind::Prefetcher, 0.7},
                  {NoiseKind::TlbShootdown, 0.6}}};
}

std::optional<NoiseProfile> NoiseProfile::by_name(std::string_view name) {
  if (name == "off") return off();
  if (name == "quiet") return quiet();
  if (name == "desktop") return desktop();
  if (name == "noisy-server") return noisy_server();
  return std::nullopt;
}

const std::vector<std::string>& NoiseProfile::preset_names() {
  static const std::vector<std::string> names = {"off", "quiet", "desktop",
                                                 "noisy-server"};
  return names;
}

NoiseEngine::NoiseEngine(NoiseProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)),
      rng_(seed ^ profile_.seed),
      smt_i_(profile_.intensity(NoiseKind::SmtContention)),
      timer_i_(profile_.intensity(NoiseKind::TimerInterrupt)),
      dvfs_i_(profile_.intensity(NoiseKind::Dvfs)),
      prefetch_i_(profile_.intensity(NoiseKind::Prefetcher)),
      tlb_i_(profile_.intensity(NoiseKind::TlbShootdown)) {}

void NoiseEngine::reset(std::uint64_t seed) {
  rng_ = stats::Xoshiro256(seed ^ profile_.seed);
  stats_ = NoiseStats{};
  last_cycle_ = 0;
  timer_next_ = 0;
  dvfs_next_ = 0;
  tlb_next_ = 0;
  burst_start_ = 0;
  burst_end_ = 0;
  dvfs_scale_ = 1.0;
}

std::uint64_t NoiseEngine::jittered(std::uint64_t mean) {
  // mean ± 25%, uniform.
  const std::uint64_t quarter = mean / 4;
  return mean - quarter + rng_.next_below(2 * quarter + 1);
}

std::uint64_t NoiseEngine::on_cycle(std::uint64_t cycle) {
  last_cycle_ = cycle;

  if (dvfs_i_ > 0.0) {
    if (dvfs_next_ == 0) {
      dvfs_next_ =
          cycle + jittered(lerp_interval(kDvfsPeriodSlow, kDvfsPeriodFast,
                                         dvfs_i_));
    } else if (cycle >= dvfs_next_) {
      // Quantized frequency step: the governor moves the core clock up to
      // ±40% (at intensity 1) of nominal in 5% notches. ToTE is dominated
      // by fixed-time DRAM/walk latency, so the core-cycle count of a probe
      // rescales by this factor until the next step.
      const auto notches =
          static_cast<std::uint64_t>(std::lround(8.0 * dvfs_i_));
      const std::int64_t step =
          static_cast<std::int64_t>(rng_.next_below(2 * notches + 1)) -
          static_cast<std::int64_t>(notches);
      dvfs_scale_ = 1.0 + 0.05 * static_cast<double>(step);
      dvfs_next_ =
          cycle + jittered(lerp_interval(kDvfsPeriodSlow, kDvfsPeriodFast,
                                         dvfs_i_));
      ++stats_.dvfs_steps;
    }
  }

  if (tlb_i_ > 0.0) {
    if (tlb_next_ == 0) {
      tlb_next_ = cycle + jittered(lerp_interval(kTlbPeriodSlow,
                                                 kTlbPeriodFast, tlb_i_));
    } else if (cycle >= tlb_next_) {
      if (mem_) mem_->flush_tlbs_non_global();
      tlb_next_ = cycle + jittered(lerp_interval(kTlbPeriodSlow,
                                                 kTlbPeriodFast, tlb_i_));
      ++stats_.tlb_shootdowns;
    }
  }

  if (timer_i_ > 0.0) {
    if (timer_next_ == 0) {
      timer_next_ = cycle + jittered(lerp_interval(kTimerPeriodSlow,
                                                   kTimerPeriodFast,
                                                   timer_i_));
    } else if (cycle >= timer_next_) {
      timer_next_ = cycle + jittered(lerp_interval(kTimerPeriodSlow,
                                                   kTimerPeriodFast,
                                                   timer_i_));
      ++stats_.timer_interrupts;
      return jittered(kTimerHandlerCycles);
    }
  }
  return 0;
}

int NoiseEngine::on_access(const mem::AccessRequest& req,
                           const mem::AccessResult& res) {
  int extra = 0;

  if (smt_i_ > 0.0) {
    if (last_cycle_ >= burst_end_) {
      // Schedule the next sibling burst relative to now.
      const std::uint64_t gap =
          jittered(lerp_interval(kBurstGapSlow, kBurstGapFast, smt_i_));
      const std::uint64_t len =
          jittered(lerp_interval(kBurstLenShort, kBurstLenLong, smt_i_));
      burst_start_ = last_cycle_ + gap;
      burst_end_ = burst_start_ + len;
    }
    if (last_cycle_ >= burst_start_ && last_cycle_ < burst_end_) {
      // Port/bandwidth contention: every access queues behind the sibling.
      const auto range = static_cast<std::uint64_t>(4.0 + 44.0 * smt_i_);
      const int delay = 4 + static_cast<int>(rng_.next_below(range));
      extra += delay;
      ++stats_.contended_accesses;
      stats_.contention_cycles += static_cast<std::uint64_t>(delay);
      // The sibling's fill traffic also rolls through the LFB, displacing
      // whatever stale line Zombieload hoped to sample.
      if (mem_ && rng_.next_below(4) == 0)
        mem_->lfb().record_value(kSiblingPhysBase + 64 * rng_.next_below(16),
                                 rng_.next_below(256), 8);
    }
  }

  if (prefetch_i_ > 0.0 && res.paddr != 0 && res.fault == mem::Fault::None) {
    // Streaming prefetcher: speculative fill of the adjacent lines. Fires
    // on a fraction of demand accesses, scaled by intensity.
    if (mem_ && rng_.next_below(1000) <
                    static_cast<std::uint64_t>(300.0 * prefetch_i_)) {
      const std::uint64_t line = res.paddr & ~std::uint64_t{63};
      (void)mem_->l2().access(line + 64);
      if (rng_.next_below(2) == 0) (void)mem_->l1().access(line + 64);
      ++stats_.prefetch_fills;
    }
  }

  if (dvfs_i_ > 0.0 && dvfs_scale_ != 1.0) {
    // Only the fixed-wall-time part of the access (DRAM + page walk)
    // rescales with the core clock; cache latencies ride the core domain.
    int scalable = res.walk_cycles;
    if (res.cache_level == 4) scalable += mem_ != nullptr
            ? mem_->config().dram_latency
            : 0;
    if (scalable > 0)
      extra += static_cast<int>(
          std::lround(static_cast<double>(scalable) * (dvfs_scale_ - 1.0)));
  }

  (void)req;
  return extra;
}

}  // namespace whisper::noise
