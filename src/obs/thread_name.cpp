#include "obs/thread_name.h"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace whisper::obs {

void set_current_thread_name(const std::string& name) {
#if defined(__linux__)
  // The kernel rejects names longer than 15 chars outright instead of
  // truncating, so truncate here.
  char buf[16];
  const std::size_t n = name.size() < 15 ? name.size() : 15;
  name.copy(buf, n);
  buf[n] = '\0';
  (void)pthread_setname_np(pthread_self(), buf);
#else
  (void)name;
#endif
}

std::string current_thread_name() {
#if defined(__linux__)
  char buf[64] = {0};
  if (pthread_getname_np(pthread_self(), buf, sizeof buf) != 0) return "";
  return buf;
#else
  return "";
#endif
}

}  // namespace whisper::obs
