// Unbounded pipeline event sink.
//
// uarch::PipelineTrace is a fixed-capacity ring for in-test assertions; the
// obs exporters need every event of a run, in emission order, so they can
// reconstruct full instruction lifecycles. EventLog is that sink: attach it
// with Core::set_trace(&log), run, then hand the log to
// obs::to_chrome_trace() or replay it for golden-trace tests.
//
// Like every TraceSink, an EventLog is observability-only: recording never
// feeds back into the simulation, so a run with a log attached retires the
// same instructions at the same cycles as a run without one
// (tests/test_obs.cpp pins this down byte for byte).
#pragma once

#include <cstddef>
#include <vector>

#include "uarch/trace.h"

namespace whisper::obs {

class EventLog final : public uarch::TraceSink {
 public:
  void record(const uarch::TraceRecord& r) override { records_.push_back(r); }

  [[nodiscard]] const std::vector<uarch::TraceRecord>& records()
      const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  void clear() { records_.clear(); }

  /// Append another log's records after this one's. The runner merges
  /// per-trial logs in trial-index order, so a --jobs N trace equals the
  /// sequential one byte for byte.
  void append(const EventLog& other) {
    records_.insert(records_.end(), other.records_.begin(),
                    other.records_.end());
  }

 private:
  std::vector<uarch::TraceRecord> records_;
};

}  // namespace whisper::obs
