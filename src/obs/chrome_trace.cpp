#include "obs/chrome_trace.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "stats/json.h"

namespace whisper::obs {

namespace {

using uarch::TraceEvent;
using uarch::TraceRecord;

/// One rendered trace-event, ready to serialise. Args are kept as ordered
/// key/value lists so the output byte stream is deterministic.
struct JsonEvent {
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;  // "X" events only
  char ph = 'i';
  int tid = 0;
  std::string name;
  const char* cat = "pipeline";
  std::vector<std::pair<std::string, std::uint64_t>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

/// An instruction's journey through the ROB, reassembled from its
/// per-stage records.
struct Lifecycle {
  int thread = 0;
  std::uint64_t seq = 0;
  std::int32_t pc = -1;
  isa::Opcode op = isa::Opcode::Nop;
  std::uint64_t alloc = 0;
  std::uint64_t issue = 0;
  std::uint64_t complete = 0;
  std::uint64_t end = 0;  // retire or squash cycle
  bool issued = false;
  bool completed = false;
  bool retired = false;
  bool squashed = false;
};

constexpr std::uint64_t kMinSliceCycles = 1;  // zero-width slices are invisible

const char* instant_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::Fetch: return "fetch";
    case TraceEvent::Mispredict: return "mispredict";
    case TraceEvent::Resteer: return "resteer";
    case TraceEvent::SquashYounger: return "squash-younger";
    case TraceEvent::MachineClear: return "machine-clear";
    case TraceEvent::SignalRedirect: return "signal-redirect";
    case TraceEvent::TsxAbort: return "tsx-abort";
    default: return "event";
  }
}

void write_event(stats::JsonWriter& w, const JsonEvent& e) {
  w.begin_object();
  w.key("name");
  w.value(e.name);
  w.key("cat");
  w.value(e.cat);
  w.key("ph");
  w.value(std::string(1, e.ph));
  w.key("ts");
  w.value(e.ts);
  if (e.ph == 'X') {
    w.key("dur");
    w.value(e.dur);
  }
  w.key("pid");
  w.value(1);
  w.key("tid");
  w.value(e.tid);
  if (e.ph == 'i') {
    w.key("s");
    w.value("t");  // thread-scoped instant
  }
  if (!e.num_args.empty() || !e.str_args.empty()) {
    w.key("args");
    w.begin_object();
    for (const auto& [k, v] : e.num_args) {
      w.key(k);
      w.value(v);
    }
    for (const auto& [k, v] : e.str_args) {
      w.key(k);
      w.value(v);
    }
    w.end_object();
  }
  w.end_object();
}

void write_metadata(stats::JsonWriter& w, const std::string& name,
                    int tid, const std::string& value) {
  w.begin_object();
  w.key("name");
  w.value(name);
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(1);
  if (tid >= 0) {
    w.key("tid");
    w.value(tid);
  }
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value(value);
  w.end_object();
  w.end_object();
}

}  // namespace

std::string to_chrome_trace(const EventLog& log,
                            const ChromeTraceOptions& opt) {
  const std::vector<TraceRecord>& recs = log.records();
  const std::uint64_t last_cycle = recs.empty() ? 0 : recs.back().cycle;

  // Pass 1: reassemble instruction lifecycles and collect punctual events.
  // Keyed by (thread, seq); the core reuses sequence numbers across run()
  // calls, so a second Alloc under the same key flushes the previous
  // lifecycle first.
  std::vector<Lifecycle> done;
  std::map<std::pair<int, std::uint64_t>, Lifecycle> open;
  std::vector<JsonEvent> events;
  // Per-thread currently open transient window (ts of the "B" event).
  std::array<std::optional<std::uint64_t>, 2> window_open{};

  auto flush = [&](Lifecycle lc) {
    if (!lc.retired && !lc.squashed) lc.end = last_cycle;  // log ended mid-ROB
    done.push_back(std::move(lc));
  };

  for (const TraceRecord& r : recs) {
    const int thread = (r.thread == 0) ? 0 : 1;
    const int base_tid = thread * kLaneStride;
    switch (r.event) {
      case TraceEvent::Alloc: {
        const auto key = std::make_pair(thread, r.seq);
        if (auto it = open.find(key); it != open.end()) {
          flush(std::move(it->second));
          open.erase(it);
        }
        Lifecycle lc;
        lc.thread = thread;
        lc.seq = r.seq;
        lc.pc = r.pc;
        lc.op = r.op;
        lc.alloc = r.cycle;
        lc.end = r.cycle;
        open.emplace(key, std::move(lc));
        break;
      }
      case TraceEvent::Issue:
      case TraceEvent::Complete:
      case TraceEvent::Retire:
      case TraceEvent::Squash: {
        auto it = open.find(std::make_pair(thread, r.seq));
        if (it == open.end()) break;  // alloc predates the log
        Lifecycle& lc = it->second;
        if (r.event == TraceEvent::Issue) {
          lc.issue = r.cycle;
          lc.issued = true;
        } else if (r.event == TraceEvent::Complete) {
          lc.complete = r.cycle;
          lc.completed = true;
        } else {
          lc.end = r.cycle;
          (r.event == TraceEvent::Retire ? lc.retired : lc.squashed) = true;
          flush(std::move(lc));
          open.erase(it);
        }
        break;
      }
      case TraceEvent::WindowOpen: {
        if (window_open[thread]) break;  // defensive: never emitted nested
        window_open[thread] = r.cycle;
        JsonEvent b;
        b.ph = 'B';
        b.ts = r.cycle;
        b.tid = base_tid;
        b.name = "transient window";
        b.cat = "window";
        b.num_args.emplace_back("opener_seq", r.seq);
        b.num_args.emplace_back("pc",
                                static_cast<std::uint64_t>(
                                    r.pc < 0 ? 0 : r.pc));
        b.str_args.emplace_back("opener", isa::to_string(r.op));
        events.push_back(std::move(b));
        break;
      }
      case TraceEvent::WindowClose: {
        if (!window_open[thread]) break;
        JsonEvent e;
        e.ph = 'E';
        // Guarantee a visible, strictly ordered span even for same-cycle
        // open/close.
        e.ts = std::max(r.cycle, *window_open[thread] + kMinSliceCycles);
        e.tid = base_tid;
        e.name = "transient window";
        e.cat = "window";
        events.push_back(std::move(e));
        window_open[thread].reset();
        break;
      }
      default: {  // instant markers
        JsonEvent i;
        i.ph = 'i';
        i.ts = r.cycle;
        i.tid = base_tid;
        i.name = instant_name(r.event);
        i.cat = "marker";
        if (r.event == TraceEvent::SquashYounger) {
          i.num_args.emplace_back("entries", r.seq);
        } else if (r.seq != 0) {
          i.num_args.emplace_back("seq", r.seq);
        }
        if (r.pc >= 0) {
          i.num_args.emplace_back("pc", static_cast<std::uint64_t>(r.pc));
          i.str_args.emplace_back("op", isa::to_string(r.op));
        }
        events.push_back(std::move(i));
      }
    }
  }
  for (int t = 0; t < 2; ++t) {  // close a window left open at log end
    if (!window_open[t]) continue;
    JsonEvent e;
    e.ph = 'E';
    e.ts = std::max(last_cycle, *window_open[t] + kMinSliceCycles);
    e.tid = t * kLaneStride;
    e.name = "transient window";
    e.cat = "window";
    events.push_back(std::move(e));
  }
  for (auto& [key, lc] : open) flush(std::move(lc));
  open.clear();

  // Pass 2: assign each slice to the lowest free lane of its thread so no
  // two slices overlap on a track. Availability uses the *rendered* end
  // (ts + max(dur, 1)), not the logical end, so min-width slices cannot
  // collide either.
  std::sort(done.begin(), done.end(), [](const Lifecycle& a,
                                         const Lifecycle& b) {
    if (a.alloc != b.alloc) return a.alloc < b.alloc;
    if (a.thread != b.thread) return a.thread < b.thread;
    return a.seq < b.seq;
  });
  std::array<std::vector<std::uint64_t>, 2> lane_busy_until{};
  std::set<int> used_tids;
  for (const Lifecycle& lc : done) {
    auto& lanes = lane_busy_until[lc.thread];
    std::size_t lane = 0;
    while (lane < lanes.size() && lanes[lane] > lc.alloc) ++lane;
    const std::uint64_t dur =
        std::max(lc.end - lc.alloc, kMinSliceCycles);
    if (lane == lanes.size()) lanes.push_back(0);
    lanes[lane] = lc.alloc + dur;

    JsonEvent x;
    x.ph = 'X';
    x.ts = lc.alloc;
    x.dur = dur;
    x.tid = lc.thread * kLaneStride + 1 + static_cast<int>(lane);
    x.name = isa::to_string(lc.op);
    x.cat = lc.retired ? "rob" : "rob.squashed";
    used_tids.insert(x.tid);
    x.num_args.emplace_back("seq", lc.seq);
    x.num_args.emplace_back("pc",
                            static_cast<std::uint64_t>(lc.pc < 0 ? 0 : lc.pc));
    x.num_args.emplace_back("alloc", lc.alloc);
    if (lc.issued) x.num_args.emplace_back("issue", lc.issue);
    if (lc.completed) x.num_args.emplace_back("complete", lc.complete);
    x.num_args.emplace_back("end", lc.end);
    x.str_args.emplace_back("outcome", lc.retired    ? "retired"
                                       : lc.squashed ? "squashed"
                                                     : "in-flight");
    events.push_back(std::move(x));
    used_tids.insert(lc.thread * kLaneStride);
  }

  // Pass 3: order by timestamp. A stable sort keeps same-cycle events in
  // emission order ("B" before the matching "E"), so every track is
  // monotone and spans stay balanced.
  std::stable_sort(events.begin(), events.end(),
                   [](const JsonEvent& a, const JsonEvent& b) {
                     return a.ts < b.ts;
                   });

  stats::JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  write_metadata(w, "process_name", -1, opt.process_name);
  for (const int tid : used_tids) {
    const int thread = tid / kLaneStride;
    const int lane = tid % kLaneStride;
    char label[48];
    if (lane == 0) {
      std::snprintf(label, sizeof label, "t%d events", thread);
    } else {
      std::snprintf(label, sizeof label, "t%d rob lane %d", thread, lane);
    }
    write_metadata(w, "thread_name", tid, label);
  }
  for (const JsonEvent& e : events) write_event(w, e);
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("otherData");
  w.begin_object();
  w.key("tool");
  w.value("whisper");
  w.key("time_unit");
  w.value("1 cycle = 1 us");
  w.key("events");
  w.value(static_cast<std::uint64_t>(log.size()));
  w.end_object();
  w.end_object();
  return w.str();
}

bool write_chrome_trace(const EventLog& log, const std::string& path,
                        const ChromeTraceOptions& opt) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string body = to_chrome_trace(log, opt);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fputc('\n', f);
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace whisper::obs
