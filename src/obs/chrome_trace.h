// Chrome trace-event exporter.
//
// Renders an EventLog as a JSON document loadable in chrome://tracing,
// Perfetto (ui.perfetto.dev) or speedscope: per-instruction lifecycle
// slices, transient-window spans, and instant markers for resteers,
// mispredicts and machine clears. One simulated cycle maps to one
// microsecond of trace time.
//
// Track layout (pid 1, tid = thread * kLaneStride + lane):
//   lane 0        instant events (fetch, mispredict, resteer, clears) and
//                 the transient-window "B"/"E" span pairs — at most one
//                 window is open per thread at a time, so spans on this
//                 track never nest;
//   lane 1..N     per-instruction "X" (complete) slices from alloc to
//                 retire/squash. A slice is placed on the lowest lane whose
//                 previous slice has ended, so slices on one track never
//                 overlap and every track's timestamps are monotone —
//                 tests/test_obs.cpp validates both properties.
//
// The output is deterministic: same EventLog, same bytes.
#pragma once

#include <string>

#include "obs/event_log.h"

namespace whisper::obs {

/// tid spacing between the two SMT threads' lane groups.
inline constexpr int kLaneStride = 100;

struct ChromeTraceOptions {
  std::string process_name = "whisper";
};

/// Render the log as a complete Chrome trace JSON document
/// (object form: {"traceEvents": [...], ...}).
[[nodiscard]] std::string to_chrome_trace(const EventLog& log,
                                          const ChromeTraceOptions& opt = {});

/// Write to_chrome_trace() to `path`; returns false (and prints to stderr)
/// on I/O failure.
bool write_chrome_trace(const EventLog& log, const std::string& path,
                        const ChromeTraceOptions& opt = {});

}  // namespace whisper::obs
