#include "obs/topdown.h"

#include <algorithm>
#include <cstdio>

namespace whisper::obs {

namespace {

std::uint64_t ev(const uarch::PmuSnapshot& d, uarch::PmuEvent e) {
  return d[static_cast<std::size_t>(e)];
}

double frac(std::uint64_t part, std::uint64_t total) {
  return total == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(total);
}

}  // namespace

TopDown& TopDown::merge(const TopDown& other) noexcept {
  total_cycles += other.total_cycles;
  retiring += other.retiring;
  bad_speculation += other.bad_speculation;
  frontend_bound += other.frontend_bound;
  backend_bound += other.backend_bound;
  return *this;
}

double TopDown::retiring_frac() const noexcept {
  return frac(retiring, total_cycles);
}
double TopDown::bad_speculation_frac() const noexcept {
  return frac(bad_speculation, total_cycles);
}
double TopDown::frontend_bound_frac() const noexcept {
  return frac(frontend_bound, total_cycles);
}
double TopDown::backend_bound_frac() const noexcept {
  return frac(backend_bound, total_cycles);
}

std::string TopDown::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "retiring %5.1f%% | bad-spec %5.1f%% | frontend %5.1f%% | "
                "backend %5.1f%%",
                100.0 * retiring_frac(), 100.0 * bad_speculation_frac(),
                100.0 * frontend_bound_frac(),
                100.0 * backend_bound_frac());
  return buf;
}

TopDown attribute_cycles(const uarch::PmuSnapshot& delta) {
  using uarch::PmuEvent;
  TopDown td;
  td.total_cycles = ev(delta, PmuEvent::CORE_CYCLES);

  // Sequential clamp: speculation recovery first (it is what the paper's
  // timer isolates), then fetch starvation, then back-end stalls; each
  // bucket can only claim cycles no earlier bucket already took.
  std::uint64_t remaining = td.total_cycles;
  td.bad_speculation =
      std::min(remaining, ev(delta, PmuEvent::INT_MISC_RECOVERY_CYCLES_ANY) +
                              ev(delta, PmuEvent::INT_MISC_CLEAR_RESTEER_CYCLES));
  remaining -= td.bad_speculation;
  td.frontend_bound =
      std::min(remaining, ev(delta, PmuEvent::ICACHE_16B_IFDATA_STALL) +
                              ev(delta, PmuEvent::RS_EVENTS_EMPTY_CYCLES));
  remaining -= td.frontend_bound;
  td.backend_bound =
      std::min(remaining, ev(delta, PmuEvent::CYCLE_ACTIVITY_STALLS_TOTAL) +
                              ev(delta, PmuEvent::RESOURCE_STALLS_ANY));
  remaining -= td.backend_bound;
  td.retiring = remaining;
  return td;
}

}  // namespace whisper::obs
