// Top-down cycle attribution (Yasin's TMA level 1, adapted to the model).
//
// Splits every core cycle of a run into exactly one of four buckets:
//
//   bad_speculation  recovery + clear-resteer cycles — the machinery the
//                    Whisper timer actually measures (§5: the ToTE delta is
//                    squash/recovery work);
//   frontend_bound   instruction-fetch stalls and empty-RS cycles caused by
//                    MITE refetch after a resteer;
//   backend_bound    execution/memory stalls and allocation backpressure;
//   retiring         everything else — cycles spent doing useful work.
//
// Real TMA divides slot counts; the model's PMU counts stall *cycles*
// directly, so attribution is a sequential clamp: each bucket takes
// min(its counters, cycles not yet attributed), in the order above, and
// retiring is the remainder. That makes the invariant structural:
//
//   retiring + bad_speculation + frontend_bound + backend_bound == total
//
// holds exactly (not within rounding) for every TopDown this function
// produces, and bucket-wise addition preserves it — so per-trial
// attributions merged in trial-index order give a --jobs-independent,
// exactly-summing whole-run attribution.
#pragma once

#include <cstdint>
#include <string>

#include "uarch/pmu.h"

namespace whisper::obs {

struct TopDown {
  std::uint64_t total_cycles = 0;
  std::uint64_t retiring = 0;
  std::uint64_t bad_speculation = 0;
  std::uint64_t frontend_bound = 0;
  std::uint64_t backend_bound = 0;

  /// Bucket-wise sum; preserves the exact-sum invariant.
  TopDown& merge(const TopDown& other) noexcept;

  [[nodiscard]] double retiring_frac() const noexcept;
  [[nodiscard]] double bad_speculation_frac() const noexcept;
  [[nodiscard]] double frontend_bound_frac() const noexcept;
  [[nodiscard]] double backend_bound_frac() const noexcept;

  /// One-line report: "retiring 41.2% | bad-spec 30.1% | ...".
  [[nodiscard]] std::string to_string() const;
};

/// Attribute the cycles of one measurement interval from a pmu_delta()
/// snapshot. The result's buckets sum to delta[CORE_CYCLES] exactly.
[[nodiscard]] TopDown attribute_cycles(const uarch::PmuSnapshot& delta);

}  // namespace whisper::obs
