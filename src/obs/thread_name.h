// Host-thread naming, so cycles spent in the runner's pool or the serve
// daemon attribute to a recognisable thread in every external view —
// `top -H`, gdb, perf, /proc/<pid>/task/*/comm — instead of a wall of
// anonymous "whisper_tests" threads.
//
// Naming convention (pinned by tests/test_obs.cpp):
//   wsp-work-<i>     runner::ThreadPool worker i
//   wsp-accept       serve::Server transport accept loop
//   wsp-client-<i>   serve::Server per-connection request reader
//   wsp-serve-<i>    serve::Server request worker i
//
// Thin wrapper over pthread_setname_np/pthread_getname_np where available
// (Linux caps names at 15 chars + NUL; set_current_thread_name truncates);
// a silent no-op elsewhere, with current_thread_name() returning "".
#pragma once

#include <string>

namespace whisper::obs {

/// Name the calling thread (truncated to the platform limit, 15 chars on
/// Linux). Best-effort: failures are swallowed — naming is observability,
/// never control flow.
void set_current_thread_name(const std::string& name);

/// The calling thread's current name, or "" where unsupported.
[[nodiscard]] std::string current_thread_name();

}  // namespace whisper::obs
