#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "stats/json.h"

namespace whisper::obs {

void MetricsRegistry::add_counter(const std::string& name,
                                  std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::set_counter(const std::string& name,
                                  std::uint64_t value) {
  counters_[name] = value;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::add_histogram(const std::string& name,
                                    const stats::Histogram& h) {
  histograms_[name].merge(h);
}

void MetricsRegistry::add_sample(const std::string& name,
                                 std::int64_t value) {
  histograms_[name].add(value);
}

void MetricsRegistry::import_pmu(const uarch::PmuSnapshot& snap,
                                 const std::string& prefix) {
  for (std::size_t i = 0; i < uarch::kNumPmuEvents; ++i) {
    counters_[prefix + uarch::to_string(static_cast<uarch::PmuEvent>(i))] +=
        snap[i];
  }
}

void MetricsRegistry::import_summary(const std::string& prefix,
                                     const stats::Summary& s) {
  gauges_[prefix + ".n"] = static_cast<double>(s.n);
  gauges_[prefix + ".mean"] = s.mean;
  gauges_[prefix + ".stdev"] = s.stdev;
  gauges_[prefix + ".min"] = s.min;
  gauges_[prefix + ".max"] = s.max;
  gauges_[prefix + ".median"] = s.median;
}

bool MetricsRegistry::has_counter(const std::string& name) const {
  return counters_.count(name) != 0;
}
bool MetricsRegistry::has_gauge(const std::string& name) const {
  return gauges_.count(name) != 0;
}
bool MetricsRegistry::has_histogram(const std::string& name) const {
  return histograms_.count(name) != 0;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const stats::Histogram& MetricsRegistry::histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end())
    throw std::out_of_range("no histogram named " + name);
  return it->second;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [k, v] : counters_) out.push_back(k);
  for (const auto& [k, v] : gauges_) out.push_back(k);
  for (const auto& [k, v] : histograms_) out.push_back(k);
  std::sort(out.begin(), out.end());
  return out;
}

bool MetricsRegistry::empty() const noexcept {
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
  for (const auto& [k, v] : other.gauges_) gauges_[k] = v;
  for (const auto& [k, v] : other.histograms_) histograms_[k].merge(v);
}

std::string MetricsRegistry::to_json() const {
  stats::JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [k, v] : counters_) {
    w.key(k);
    w.value(v);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [k, v] : gauges_) {
    w.key(k);
    w.value(v);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [k, h] : histograms_) {
    w.key(k);
    w.begin_object();
    w.key("total");
    w.value(h.total());
    w.key("buckets");
    w.begin_array();
    for (const auto& [value, count] : h.buckets()) {
      w.begin_array();
      w.value(value);
      w.value(count);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

namespace {

/// CSV-quote a field: names are dot/uppercase identifiers today, but guard
/// against separators anyway.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string MetricsRegistry::to_csv() const {
  std::string out = "name,kind,field,value\n";
  char buf[96];
  for (const auto& [k, v] : counters_) {
    std::snprintf(buf, sizeof buf, ",counter,value,%" PRIu64 "\n", v);
    out += csv_field(k);
    out += buf;
  }
  for (const auto& [k, v] : gauges_) {
    std::snprintf(buf, sizeof buf, ",gauge,value,%.9g\n", v);
    out += csv_field(k);
    out += buf;
  }
  for (const auto& [k, h] : histograms_) {
    const std::string name = csv_field(k);
    std::snprintf(buf, sizeof buf, ",histogram,total,%" PRIu64 "\n",
                  h.total());
    out += name;
    out += buf;
    if (!h.empty()) {
      std::snprintf(buf, sizeof buf, ",histogram,min,%" PRId64 "\n", h.min());
      out += name;
      out += buf;
      std::snprintf(buf, sizeof buf, ",histogram,max,%" PRId64 "\n", h.max());
      out += name;
      out += buf;
      std::snprintf(buf, sizeof buf, ",histogram,mean,%.9g\n", h.mean());
      out += name;
      out += buf;
    }
    for (const auto& [value, count] : h.buckets()) {
      std::snprintf(buf, sizeof buf, ",histogram,bucket[%" PRId64 "],%" PRIu64
                    "\n", value, count);
      out += name;
      out += buf;
    }
  }
  return out;
}

namespace {

bool write_text_file(const std::string& body, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace

bool MetricsRegistry::write_json_file(const std::string& path) const {
  return write_text_file(to_json() + "\n", path);
}

bool MetricsRegistry::write_csv_file(const std::string& path) const {
  return write_text_file(to_csv(), path);
}

}  // namespace whisper::obs
