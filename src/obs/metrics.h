// Named-metric registry.
//
// One interface over the two kinds of numbers the simulator produces —
// uarch::Pmu hardware-event counters and stats summaries/histograms — so a
// bench or the CLI can export everything it measured to one JSON or CSV
// file without each call site inventing its own format.
//
// Three metric kinds, mirroring the usual monitoring vocabulary:
//   counter    monotone uint64 (PMU events, probe counts); merge = sum
//   gauge      point-in-time double (rates, thresholds); merge = overwrite
//   histogram  stats::Histogram (ToTE distributions); merge = bucket merge
//
// Metrics live in name-sorted maps, so export order — and therefore the
// output byte stream — is deterministic and independent of registration
// order. merge() folds another registry in; the runner merges per-trial
// registries in trial-index order, making --jobs N output bit-identical to
// sequential.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "stats/summary.h"
#include "uarch/pmu.h"

namespace whisper::obs {

class MetricsRegistry {
 public:
  // --- registration -------------------------------------------------------
  void add_counter(const std::string& name, std::uint64_t delta = 1);
  void set_counter(const std::string& name, std::uint64_t value);
  void set_gauge(const std::string& name, double value);
  void add_histogram(const std::string& name, const stats::Histogram& h);
  void add_sample(const std::string& name, std::int64_t value);

  /// Register one counter per PMU event under `prefix` + event name
  /// (e.g. "pmu.UOPS_ISSUED.ANY"), adding to any existing values. Pass a
  /// pmu_delta() to import one trial's worth.
  void import_pmu(const uarch::PmuSnapshot& snap,
                  const std::string& prefix = "pmu.");

  /// Register a stats::Summary as gauges `prefix`.n/.mean/.stdev/.min/
  /// .max/.median.
  void import_summary(const std::string& prefix, const stats::Summary& s);

  // --- queries ------------------------------------------------------------
  [[nodiscard]] bool has_counter(const std::string& name) const;
  [[nodiscard]] bool has_gauge(const std::string& name) const;
  [[nodiscard]] bool has_histogram(const std::string& name) const;
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  [[nodiscard]] const stats::Histogram& histogram(
      const std::string& name) const;
  /// All metric names, sorted, across the three kinds.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] bool empty() const noexcept;

  // --- merge / export -----------------------------------------------------
  /// Fold `other` in: counters add, gauges overwrite (last writer wins —
  /// callers merge in index order), histograms merge buckets.
  void merge(const MetricsRegistry& other);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{total,buckets}}}
  [[nodiscard]] std::string to_json() const;
  /// "name,kind,field,value" rows; histograms expand to summary fields plus
  /// one bucket row per distinct value.
  [[nodiscard]] std::string to_csv() const;

  bool write_json_file(const std::string& path) const;
  bool write_csv_file(const std::string& path) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, stats::Histogram> histograms_;
};

}  // namespace whisper::obs
