// Error-rate and throughput accounting for covert channels and attacks.
//
// The paper reports byte throughput plus an error rate over 1k random bytes
// (section 4.1); these helpers compute the same quantities from a
// transmitted/received pair and the simulated cycle cost.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace whisper::stats {

struct ChannelReport {
  std::size_t bytes = 0;
  std::size_t byte_errors = 0;
  std::size_t bit_errors = 0;
  double byte_error_rate = 0.0;  // fraction of bytes wrong
  double bit_error_rate = 0.0;   // fraction of bits wrong
  std::uint64_t sim_cycles = 0;
  double seconds = 0.0;             // sim_cycles / (ghz * 1e9)
  double bytes_per_second = 0.0;

  [[nodiscard]] std::string to_string() const;
};

/// Compare sent vs. received and fold in the simulated time cost.
/// `ghz` is the model's nominal core frequency used to map cycles → seconds.
[[nodiscard]] ChannelReport evaluate_channel(std::span<const std::uint8_t> sent,
                                             std::span<const std::uint8_t> received,
                                             std::uint64_t sim_cycles,
                                             double ghz);

/// Human-friendly rate formatting: "500.0 B/s", "21.5 KB/s", "1.2 MB/s".
[[nodiscard]] std::string format_rate(double bytes_per_second);

}  // namespace whisper::stats
