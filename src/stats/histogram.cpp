#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace whisper::stats {

void Histogram::add(std::int64_t value, std::uint64_t count) {
  if (count == 0) return;
  counts_[value] += count;
  total_ += count;
}

void Histogram::merge(const Histogram& other) {
  for (const auto& [v, c] : other.counts_) add(v, c);
}

void Histogram::clear() {
  counts_.clear();
  total_ = 0;
}

std::uint64_t Histogram::count(std::int64_t value) const {
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::int64_t Histogram::min() const {
  if (empty()) throw std::logic_error("Histogram::min on empty histogram");
  return counts_.begin()->first;
}

std::int64_t Histogram::max() const {
  if (empty()) throw std::logic_error("Histogram::max on empty histogram");
  return counts_.rbegin()->first;
}

std::int64_t Histogram::mode() const {
  if (empty()) throw std::logic_error("Histogram::mode on empty histogram");
  std::int64_t best_v = counts_.begin()->first;
  std::uint64_t best_c = 0;
  for (const auto& [v, c] : counts_) {
    if (c > best_c) {
      best_c = c;
      best_v = v;
    }
  }
  return best_v;
}

double Histogram::mean() const {
  if (empty()) throw std::logic_error("Histogram::mean on empty histogram");
  double acc = 0.0;
  for (const auto& [v, c] : counts_)
    acc += static_cast<double>(v) * static_cast<double>(c);
  return acc / static_cast<double>(total_);
}

std::int64_t Histogram::percentile(double p) const {
  if (empty())
    throw std::logic_error("Histogram::percentile on empty histogram");
  p = std::clamp(p, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (const auto& [v, c] : counts_) {
    seen += c;
    if (seen >= target) return v;
  }
  return counts_.rbegin()->first;
}

std::vector<std::pair<std::int64_t, std::uint64_t>> Histogram::buckets()
    const {
  return {counts_.begin(), counts_.end()};
}

std::string Histogram::ascii(int rows, int width) const {
  std::ostringstream out;
  if (empty()) {
    out << "(empty histogram)\n";
    return out.str();
  }
  rows = std::max(rows, 1);
  width = std::max(width, 1);
  const std::int64_t lo = min();
  const std::int64_t hi = max();
  const std::int64_t span = hi - lo + 1;
  const std::int64_t step = (span + rows - 1) / rows;

  std::vector<std::uint64_t> binned(static_cast<std::size_t>(rows), 0);
  for (const auto& [v, c] : counts_) {
    auto idx = static_cast<std::size_t>((v - lo) / step);
    idx = std::min(idx, binned.size() - 1);
    binned[idx] += c;
  }
  const std::uint64_t peak = *std::max_element(binned.begin(), binned.end());
  for (int r = 0; r < rows; ++r) {
    const std::int64_t b0 = lo + r * step;
    const std::int64_t b1 = std::min<std::int64_t>(b0 + step - 1, hi);
    const auto bar = static_cast<int>(
        (binned[static_cast<std::size_t>(r)] * static_cast<std::uint64_t>(width)) /
        std::max<std::uint64_t>(peak, 1));
    out << '[' << b0 << ".." << b1 << "]\t" << std::string(bar, '#') << ' '
        << binned[static_cast<std::size_t>(r)] << '\n';
  }
  return out.str();
}

}  // namespace whisper::stats
