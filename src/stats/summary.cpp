#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace whisper::stats {

namespace {

Summary summarize_sorted(std::vector<double> v) {
  Summary s;
  s.n = v.size();
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  s.min = v.front();
  s.max = v.back();
  s.median = (v.size() % 2 == 1)
                 ? v[v.size() / 2]
                 : 0.5 * (v[v.size() / 2 - 1] + v[v.size() / 2]);
  double acc = 0.0;
  for (double x : v) acc += x;
  s.mean = acc / static_cast<double>(v.size());
  if (v.size() > 1) {
    double ss = 0.0;
    for (double x : v) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.stdev = std::sqrt(ss / static_cast<double>(v.size() - 1));
  }
  return s;
}

}  // namespace

Summary summarize(std::span<const double> xs) {
  return summarize_sorted({xs.begin(), xs.end()});
}

Summary summarize(std::span<const std::int64_t> xs) {
  std::vector<double> v;
  v.reserve(xs.size());
  for (auto x : xs) v.push_back(static_cast<double>(x));
  return summarize_sorted(std::move(v));
}

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary OnlineStats::summary() const noexcept {
  Summary s;
  s.n = n_;
  if (n_ == 0) return s;
  s.mean = mean_;
  s.stdev = stdev();
  s.min = min_;
  s.max = max_;
  s.median = mean_;
  return s;
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stdev() const noexcept { return std::sqrt(variance()); }

}  // namespace whisper::stats
