// Deterministic pseudo-random number generation for the simulator.
//
// All timing jitter in the model flows from a single seeded generator so that
// every experiment in the paper reproduction is replayable from its seed
// (DESIGN.md section 4).
#pragma once

#include <cstdint>

namespace whisper::stats {

/// SplitMix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the workhorse generator. Small, fast, and good enough
/// statistical quality for timing-jitter modelling.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // small bounds (jitter amplitudes, set indices) used in the model.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace whisper::stats
