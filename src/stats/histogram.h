// Frequency histogram over integer samples (cycle counts).
//
// Used to reproduce the ToTE frequency plot of Figure 1b and for
// threshold calibration in the KASLR attack.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace whisper::stats {

class Histogram {
 public:
  Histogram() = default;

  void add(std::int64_t value, std::uint64_t count = 1);
  void merge(const Histogram& other);
  void clear();

  /// Total number of samples recorded.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

  /// Count recorded at exactly `value`.
  [[nodiscard]] std::uint64_t count(std::int64_t value) const;

  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const;
  /// Value with the highest frequency (smallest such value on ties).
  [[nodiscard]] std::int64_t mode() const;
  [[nodiscard]] double mean() const;
  /// p in [0,1]; returns the smallest value v with CDF(v) >= p.
  [[nodiscard]] std::int64_t percentile(double p) const;

  /// Sorted (value, count) pairs.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::uint64_t>> buckets()
      const;

  /// Fixed-width ASCII rendering, `rows` buckets, for table/figure benches.
  [[nodiscard]] std::string ascii(int rows = 16, int width = 50) const;

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace whisper::stats
