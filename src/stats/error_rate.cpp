#include "stats/error_rate.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace whisper::stats {

ChannelReport evaluate_channel(std::span<const std::uint8_t> sent,
                               std::span<const std::uint8_t> received,
                               std::uint64_t sim_cycles, double ghz) {
  ChannelReport r;
  r.bytes = sent.size();
  const std::size_t n = std::min(sent.size(), received.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t diff = sent[i] ^ received[i];
    if (diff != 0) ++r.byte_errors;
    r.bit_errors += static_cast<std::size_t>(std::popcount(diff));
  }
  // Bytes the receiver never produced count as fully wrong.
  if (received.size() < sent.size()) {
    const std::size_t missing = sent.size() - received.size();
    r.byte_errors += missing;
    r.bit_errors += missing * 8;
  }
  if (r.bytes > 0) {
    r.byte_error_rate =
        static_cast<double>(r.byte_errors) / static_cast<double>(r.bytes);
    r.bit_error_rate =
        static_cast<double>(r.bit_errors) / static_cast<double>(r.bytes * 8);
  }
  r.sim_cycles = sim_cycles;
  if (ghz > 0.0) {
    r.seconds = static_cast<double>(sim_cycles) / (ghz * 1e9);
    if (r.seconds > 0.0)
      r.bytes_per_second = static_cast<double>(r.bytes) / r.seconds;
  }
  return r;
}

std::string format_rate(double bps) {
  std::ostringstream out;
  out.precision(1);
  out << std::fixed;
  if (bps >= 1e6)
    out << bps / 1e6 << " MB/s";
  else if (bps >= 1e3)
    out << bps / 1e3 << " KB/s";
  else
    out << bps << " B/s";
  return out.str();
}

std::string ChannelReport::to_string() const {
  std::ostringstream out;
  out.precision(2);
  out << std::fixed << bytes << " bytes, " << byte_errors << " byte errors ("
      << byte_error_rate * 100.0 << "%), " << format_rate(bytes_per_second)
      << " over " << seconds << " s (sim)";
  return out.str();
}

}  // namespace whisper::stats
