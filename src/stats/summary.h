// Summary statistics over numeric samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace whisper::stats {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stdev = 0.0;   // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Compute summary statistics; returns a zeroed Summary for empty input.
[[nodiscard]] Summary summarize(std::span<const double> xs);
[[nodiscard]] Summary summarize(std::span<const std::int64_t> xs);

/// Welford online accumulator, for long-running collection without storing
/// every sample. Mergeable (Chan et al. parallel variance), so per-worker
/// accumulators fan in to one result — the runner's merge step relies on
/// merge order not mattering for n/mean/min/max and only at floating-point
/// rounding level for the variance.
class OnlineStats {
 public:
  void add(double x) noexcept;
  /// Fold another accumulator in, as if its samples had been add()ed here.
  void merge(const OnlineStats& other) noexcept;
  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // sample variance
  [[nodiscard]] double stdev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Snapshot as a Summary. Medians need the full sample set, which an
  /// online accumulator does not keep; `median` is reported as the mean.
  [[nodiscard]] Summary summary() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace whisper::stats
