#include "stats/json.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace whisper::stats {

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

void JsonWriter::escaped(const std::string& s) {
  out_ += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
}

void JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
}

void JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::key(const std::string& k) {
  comma();
  escaped(k);
  out_ += ':';
}

void JsonWriter::value(const std::string& v) {
  comma();
  escaped(v);
  need_comma_ = true;
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  comma();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::value(int v) { value(static_cast<std::int64_t>(v)); }

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

// ---------------------------------------------------------------------------
// Syntax validator: recursive-descent over the RFC 8259 grammar.
// ---------------------------------------------------------------------------

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }
  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (eof() || depth_ > 256) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++depth_;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) { --depth_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) { --depth_; return true; }
      if (!consume(',')) return false;
    }
  }

  bool array() {
    ++depth_;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) { --depth_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) { --depth_; return true; }
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        if (eof()) return false;
        const char esc = s_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i)
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s_[pos_++])))
              return false;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    consume('-');
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return false;
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    return pos_ > start;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool json_is_valid(std::string_view text) {
  return JsonChecker(text).run();
}

}  // namespace whisper::stats
