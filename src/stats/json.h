// Minimal JSON toolkit shared by the exporters (runner trajectories,
// obs metrics, obs Chrome traces).
//
// Hand-rolled (no third-party JSON dependency in the image): enough of the
// grammar for flat objects, arrays, strings, numbers and booleans. The
// output is deterministic (fixed key order, fixed float formatting), so an
// exported file is diffable across runs and across --jobs values.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace whisper::stats {

/// Incremental JSON writer. Keys and values must be emitted in pairs inside
/// objects; the writer inserts commas and quoting.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& k);
  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v);
  void value(bool v);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void comma();
  void escaped(const std::string& s);

  std::string out_;
  bool need_comma_ = false;
};

/// Strict syntax check of a complete JSON document (RFC 8259 grammar, no
/// semantic validation). Used by tests to assert every exporter emits
/// well-formed output without pulling in a parser dependency.
[[nodiscard]] bool json_is_valid(std::string_view text);

}  // namespace whisper::stats
