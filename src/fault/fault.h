// whisper::fault — deterministic fault injection for the trial runner.
//
// A FaultPlan is a seeded schedule of injection points the runner consults
// while executing trials: throw an exception before the attack phase,
// corrupt a pooled machine's physical memory so the post-reset() digest
// check trips, stall the simulated clock past the trial's cycle budget, or
// sleep the host thread past its wall-clock watchdog. Every point is a pure
// function of (trial index, attempt index), never of scheduling, so a
// faulted sweep fires the same faults at the same trials whatever --jobs
// is — which is what lets tests assert that a recovered run is
// bit-identical to an unfaulted one.
//
// Plan grammar (whisper_cli --fault-plan, RunSpec::fault_plan):
//
//   plan   := point (';' point)*            (',' also accepted)
//   point  := kind '@' trial                fire at trial N, first attempt
//           | kind '@' trial '.' attempt    fire at trial N, attempt A only
//           | kind '@' trial '*'            fire at trial N, EVERY attempt
//                                           (retries cannot recover: the
//                                           trial ends degraded)
//           | kind '~' permille '@' seed    seeded random: fire on the first
//                                           attempt of trial i iff
//                                           mix(seed, i) % 1000 < permille
//   kind   := 'throw' | 'corrupt' | 'stall' | 'sleep'
//           | 'drop' | 'shortread'             (transport faults, below)
//
//   "throw@2;corrupt@5;stall@8"   — one fault of three classes
//   "throw@3*"                    — trial 3 can never succeed
//   "throw~50@1234"               — ~5% of trials throw once, seeded
//
// The same grammar doubles as the sweep client's flaky-transport plan
// (whisper_cli sweep --flaky-plan, client::FlakyConnection): there the
// coordinate is the per-endpoint request ordinal instead of the trial
// index, and the transport kinds apply — 'drop' severs the connection at
// that request, 'shortread' truncates its next response line, 'stall'
// freezes reads until the deadline. runner::validate() rejects the
// transport kinds in RunSpec::fault_plan, and the sweep client rejects
// the trial-only kinds in a flaky plan, so a plan pasted into the wrong
// knob fails loudly.
//
// FaultPlan::parse() throws std::invalid_argument with a pointed message on
// any malformed spec; runner::validate() calls it before the fan-out so a
// bad plan fails fast with zero trials spawned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace whisper::fault {

/// The injectable fault classes, each exercising one runner recovery path.
enum class Kind : std::uint8_t {
  kThrow,    // throw std::runtime_error before the attack phase
  kCorrupt,  // flip a byte in a pooled machine's physical memory
  kStall,    // advance the simulated clock past the trial cycle budget
  kSleep,    // sleep the host thread past the wall-clock watchdog
  // Transport faults (client::FlakyConnection only; invalid in a trial
  // plan — runner::validate() refuses them):
  kDrop,       // sever the connection when writing this request
  kShortRead,  // truncate the next response line, then sever
};
[[nodiscard]] const char* to_string(Kind k) noexcept;

/// One injection point of a plan. Either a deterministic (trial, attempt)
/// coordinate or a seeded per-trial coin flip; see the grammar above.
struct Point {
  Kind kind = Kind::kThrow;
  std::uint64_t trial = 0;
  int attempt = 0;  // -1 = every attempt of `trial`
  bool random = false;
  std::uint32_t rate_permille = 0;  // random form: firing rate out of 1000
  std::uint64_t seed = 0;           // random form: coin-flip seed

  /// Does this point fire at (trial, attempt)? Pure: depends only on the
  /// point and the coordinates, never on scheduling.
  [[nodiscard]] bool matches(std::uint64_t trial_index,
                             int attempt_index) const noexcept;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parse a plan spec (see the grammar above). An empty/whitespace spec
  /// yields an empty plan. Throws std::invalid_argument on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  /// Whether any point injects `k` (runner::validate() uses this to demand
  /// a budget before scheduling a stall/sleep that nothing would bound).
  [[nodiscard]] bool uses(Kind k) const noexcept;
  /// Should fault `k` be injected into attempt `attempt` of trial `trial`?
  [[nodiscard]] bool fires(Kind k, std::uint64_t trial,
                           int attempt) const noexcept;

  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }
  /// The spec string this plan was parsed from (for labels and JSON).
  [[nodiscard]] const std::string& spec() const noexcept { return spec_; }

 private:
  std::vector<Point> points_;
  std::string spec_;
};

}  // namespace whisper::fault
