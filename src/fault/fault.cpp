#include "fault/fault.h"

#include <cctype>
#include <stdexcept>

#include "stats/rng.h"

namespace whisper::fault {

namespace {

/// Salt per fault kind so two random points with the same seed but
/// different kinds flip independent coins.
constexpr std::uint64_t kind_salt(Kind k) noexcept {
  return 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(k) + 1);
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void bad(const std::string& token, const std::string& why) {
  throw std::invalid_argument("fault: bad plan point '" + token + "': " + why +
                              " (grammar: kind@trial[.attempt|*] or "
                              "kind~permille@seed; kinds: throw, corrupt, "
                              "stall, sleep, drop, shortread)");
}

Kind parse_kind(const std::string& token, const std::string& name) {
  if (name == "throw") return Kind::kThrow;
  if (name == "corrupt") return Kind::kCorrupt;
  if (name == "stall") return Kind::kStall;
  if (name == "sleep") return Kind::kSleep;
  if (name == "drop") return Kind::kDrop;
  if (name == "shortread") return Kind::kShortRead;
  bad(token, "unknown fault kind '" + name + "'");
}

std::uint64_t parse_u64(const std::string& token, const std::string& digits,
                        const std::string& what) {
  if (digits.empty()) bad(token, what + " is empty");
  std::uint64_t v = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') bad(token, what + " '" + digits + "' is not a number");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

Point parse_point(const std::string& token) {
  Point p;
  const std::size_t at = token.find('@');
  const std::size_t tilde = token.find('~');

  if (tilde != std::string::npos && (at == std::string::npos || tilde < at)) {
    // kind~permille@seed
    if (at == std::string::npos) bad(token, "random form needs '@seed'");
    p.kind = parse_kind(token, token.substr(0, tilde));
    p.random = true;
    const std::uint64_t rate =
        parse_u64(token, token.substr(tilde + 1, at - tilde - 1), "rate");
    if (rate > 1000) bad(token, "rate is per-mille, must be <= 1000");
    p.rate_permille = static_cast<std::uint32_t>(rate);
    p.seed = parse_u64(token, token.substr(at + 1), "seed");
    return p;
  }

  if (at == std::string::npos) bad(token, "missing '@trial'");
  p.kind = parse_kind(token, token.substr(0, at));
  std::string rest = token.substr(at + 1);
  if (!rest.empty() && rest.back() == '*') {
    p.attempt = -1;  // every attempt
    rest.pop_back();
  } else if (const std::size_t dot = rest.find('.');
             dot != std::string::npos) {
    p.attempt = static_cast<int>(
        parse_u64(token, rest.substr(dot + 1), "attempt"));
    rest = rest.substr(0, dot);
  }
  p.trial = parse_u64(token, rest, "trial");
  return p;
}

}  // namespace

const char* to_string(Kind k) noexcept {
  switch (k) {
    case Kind::kThrow: return "throw";
    case Kind::kCorrupt: return "corrupt";
    case Kind::kStall: return "stall";
    case Kind::kSleep: return "sleep";
    case Kind::kDrop: return "drop";
    case Kind::kShortRead: return "shortread";
  }
  return "?";
}

bool Point::matches(std::uint64_t trial_index,
                    int attempt_index) const noexcept {
  if (random) {
    // Seeded coin flip on the first attempt only: one whitening pass over
    // (seed, trial, kind) keeps the decision independent of neighbours.
    if (attempt_index != 0) return false;
    const std::uint64_t roll =
        stats::SplitMix64(seed ^ (trial_index * 0x2545f4914f6cdd1dull) ^
                          kind_salt(kind))
            .next();
    return roll % 1000 < rate_permille;
  }
  if (trial != trial_index) return false;
  return attempt == -1 || attempt == attempt_index;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  plan.spec_ = trim(spec);
  std::string token;
  const auto flush = [&] {
    const std::string t = trim(token);
    token.clear();
    if (!t.empty()) plan.points_.push_back(parse_point(t));
  };
  for (const char c : plan.spec_) {
    if (c == ';' || c == ',') {
      flush();
    } else {
      token += c;
    }
  }
  flush();
  return plan;
}

bool FaultPlan::uses(Kind k) const noexcept {
  for (const Point& p : points_)
    if (p.kind == k) return true;
  return false;
}

bool FaultPlan::fires(Kind k, std::uint64_t trial,
                      int attempt) const noexcept {
  for (const Point& p : points_)
    if (p.kind == k && p.matches(trial, attempt)) return true;
  return false;
}

}  // namespace whisper::fault
