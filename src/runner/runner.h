// whisper::runner — the parallel experiment runner.
//
// A RunSpec names one experiment cell: cpu model × attack × trial count ×
// knobs. run() fans the trials out across an Executor's thread pool; each
// trial runs on a private os::Machine seeded with trial_seed(base, index) —
// by default a per-worker machine reset() between trials (the snapshot
// fast path), or a fresh construction with reuse_machine = false — so the
// trial stream is a pure function of the spec and the results are
// bit-identical whatever --jobs is, and whichever trial path runs. The
// merge step folds the per-trial stats::Histogram / per-trial timings into
// one RunResult, always in trial index order.
//
//   runner::RunSpec spec{.model = uarch::CpuModel::CometLakeI9_10980XE,
//                        .attack = "kaslr",
//                        .trials = 32,
//                        .kernel = {.kpti = true}};
//   runner::Executor ex(/*jobs=*/8);
//   const runner::RunResult r = runner::run(spec, ex);
//
// Attacks are named, not enumerated: `attack` is a key into
// core::attack_registry(), so a new attack registered there is immediately
// runnable here. docs/REPRODUCING.md maps every paper figure/table to the
// spec that reproduces it; write_json_file() (json_writer.h) persists
// trajectories.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "defense/defense.h"
#include "noise/noise.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/topdown.h"
#include "os/kernel_layout.h"
#include "os/machine.h"
#include "runner/executor.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "uarch/config.h"
#include "uarch/pmu.h"

namespace whisper::fault {
class FaultPlan;
}

namespace whisper::runner {

class MachinePool;

/// One experiment cell. Everything a trial depends on lives here; nothing is
/// read from globals, which is what makes the fan-out safe.
struct RunSpec {
  uarch::CpuModel model = uarch::CpuModel::KabyLakeI7_7700;
  /// core::attack_registry() key ("cc", "md", "zbl", "rsb", "v1", "rewind",
  /// "kaslr").
  std::string attack = "kaslr";
  int trials = 1;
  std::uint64_t base_seed = 1;
  os::KernelOptions kernel{};
  bool docker = false;

  /// The defense stack (defense::registry() keys + params) this cell runs
  /// under, applied to every trial's MachineOptions in list order. The
  /// legacy kernel.kpti/flare/fgkaslr bools still work — they are aliases:
  /// normalized_defenses() folds them in ahead of this list, and every
  /// consumer (label, pool key, JSON, wire) goes through it, so
  /// {.kernel = {.kpti = true}} and {.defenses = {parse("kpti")}} name the
  /// same cell everywhere.
  std::vector<defense::DefenseSpec> defenses;

  /// Interference profile each trial's Machine runs under (noise.off() by
  /// default — the engine is then never even attached, see os::Machine).
  noise::NoiseProfile noise{};

  // Attack knobs. 0 / default means "use the attack's own default".
  int rounds = 3;     // TET-KASLR sweep rounds (alias of `batches` for kaslr)
  int batches = 0;    // argmax batches per byte (channel attacks)
  std::size_t payload_bytes = 8;     // bytes moved per channel trial
  std::uint64_t payload_seed = 0x5eedULL;  // RNG stream for the payload

  // Adaptive decoding (core::AttackOptions passthrough): escalate batch
  // counts until the vote margin clears `confidence_threshold` or the
  // budget runs out.
  bool adaptive = false;
  double confidence_threshold = 0.5;
  int batch_budget = 0;  // 0 = 8× the initial batch count

  /// Attach an obs::EventLog to each trial's core and keep the records in
  /// the TrialResult (and, merged in index order, in RunResult::events).
  /// Off by default: full event capture is memory-heavy, and with it off
  /// the core's trace hooks stay a branch on a null pointer.
  bool collect_trace = false;

  /// Trial fast path: each worker thread keeps one os::Machine per distinct
  /// construction key and reset()s it between trials instead of rebuilding
  /// page tables, caches and predictors from scratch. Results are
  /// bit-identical either way — the per-trial seed schedule is shared (see
  /// machine_options()) and tests/test_machine_reset.cpp pins equality —
  /// so this is on by default; bench/perf_baseline measures the two paths
  /// against each other by flipping it.
  bool reuse_machine = true;

  /// Fast-forward execution mode (docs/PERFORMANCE.md): the core skips
  /// provably inert cycle spans in closed form instead of stepping the
  /// structural pipeline through them. Byte-identical either way —
  /// invariant 10 (docs/ARCHITECTURE.md), pinned across attacks × models ×
  /// noise by tests/test_machine_reset.cpp and tests/test_fast_forward.cpp
  /// — so it is on by default; bench/perf_baseline flips it to measure.
  bool fast_forward = true;

  // --- Fault tolerance (docs/ARCHITECTURE.md "Failure semantics") ---------
  /// Extra attempts per failed trial. Retries reuse the trial's own
  /// trial_seed/payload_seed, so a recovered run is bit-identical to one
  /// that never failed.
  int retries = 0;
  /// Simulated-cycle cap per trial attempt; a breach becomes a
  /// TrialErrorKind::kCycleBudget error instead of a runaway trial. 0 = off.
  std::uint64_t trial_cycle_budget = 0;
  /// Host wall-clock watchdog per trial attempt, in seconds; a breach
  /// becomes TrialErrorKind::kWatchdog. 0 = off.
  double trial_wall_budget = 0.0;
  /// Compare each pooled machine's post-reset() state digest against its
  /// snapshot baseline; a mismatch quarantines the machine (kResetDrift)
  /// and the retry falls back to fresh construction. Costs a full frame
  /// scan per trial, so off by default — forced on while a fault plan is
  /// active (corruption injection is pointless unverified).
  bool verify_reset = false;
  /// fault::FaultPlan spec ("throw@2;corrupt@5;stall@8", see fault/fault.h)
  /// injected into this run's trials. Empty = no injection.
  std::string fault_plan;

  /// Human-readable "attack @ model ×trials" label for progress lines.
  [[nodiscard]] std::string label() const;
};

/// Validate a spec without running it: unknown attack names (the message
/// lists the registered keys), unknown/duplicate/malformed defenses,
/// malformed fault plans, negative retries, and stall/sleep injections with
/// no budget to trip all throw std::invalid_argument. run()/run_many() call
/// this before the fan-out, so a bad spec fails fast with zero trials
/// spawned.
void validate(const RunSpec& spec);

/// The spec's effective defense stack: the legacy kernel bools (kpti, flare,
/// fgkaslr — in that order) folded in ahead of spec.defenses, with
/// duplicates against the bools collapsed. This is the single list every
/// defense consumer derives from — label(), machine_key(), the JSON
/// trajectory writer and machine_options() — so the two spellings of the
/// same cell are indistinguishable downstream.
[[nodiscard]] std::vector<defense::DefenseSpec> normalized_defenses(
    const RunSpec& spec);

/// Why a trial attempt failed. One TrialError is recorded per failed
/// attempt; the enum is the JSON/metrics vocabulary ("run.errors.<name>").
enum class TrialErrorKind : std::uint8_t {
  kException,    // an exception escaped the trial (captured what())
  kCycleBudget,  // simulated-cycle budget exceeded (core::BudgetExceeded)
  kWatchdog,     // host wall-clock watchdog fired
  kResetDrift,   // pooled machine failed the post-reset() digest check
  kDegraded,     // every attempt failed; the trial's result slot is empty
};
inline constexpr std::size_t kNumTrialErrorKinds = 5;
[[nodiscard]] const char* to_string(TrialErrorKind k) noexcept;

struct TrialError {
  TrialErrorKind kind = TrialErrorKind::kException;
  int attempt = 0;       // which attempt failed (0 = first)
  std::string what;      // captured exception/budget message
  std::string attack;    // registry name, for flattened run_many logs
  std::uint64_t seed = 0;  // the trial_seed of the failing trial
};

/// Fault-layer account of one scheduled trial: how many attempts ran,
/// whether one succeeded, and every error on the way. Index-aligned with
/// RunResult::trials; trials-as-data is what crosses the ThreadPool
/// boundary — exceptions never do.
struct TrialOutcome {
  bool ok = false;
  int attempts = 0;
  /// A pooled machine failed its digest check during this trial and was
  /// evicted from the worker's pool.
  bool quarantined = false;
  std::vector<TrialError> errors;

  /// Executor::map hook: invoked when an exception escapes the trial
  /// wrapper itself (a harness bug, not an attack failure) so the slot
  /// still records it as data.
  void capture_unhandled(const std::string& what);
};

/// What one trial produced. Channel attacks fill bytes/byte_errors; KASLR
/// fills found_slot. `tote` is the trial's ToTE histogram (the Fig. 1b
/// frequency view for channels, per-slot scores for KASLR) — merged across
/// trials by RunResult.
struct TrialResult {
  std::uint64_t seed = 0;
  bool success = false;
  std::uint64_t cycles = 0;  // simulated cycles consumed by the trial
  double seconds = 0.0;      // cycles on the model's clock
  std::size_t probes = 0;    // gadget executions
  std::size_t bytes = 0;
  std::size_t byte_errors = 0;
  int found_slot = -1;
  /// Weakest decode confidence over the trial (vote margin in [0,1]), and
  /// how many decodes exhausted the adaptive budget below threshold.
  double confidence = 1.0;
  std::size_t gave_up = 0;
  stats::Histogram tote;

  /// PMU event deltas over the attack phase of the trial (machine setup
  /// excluded), and the top-down attribution computed from them —
  /// topdown's buckets sum to topdown.total_cycles exactly.
  uarch::PmuSnapshot pmu{};
  obs::TopDown topdown;
  /// Pipeline events of the trial; empty unless spec.collect_trace.
  obs::EventLog events;
};

/// A finished RunSpec: the ordered per-trial results plus the merged view.
/// `trials` always has one slot per scheduled trial; a trial whose every
/// attempt failed keeps a default slot (seed filled in) and is excluded
/// from the merged statistics — `outcomes` says which and why, so an
/// all-failed run is still a valid, fully-accounted RunResult rather than
/// a crash inside the merge.
struct RunResult {
  RunSpec spec;
  int jobs = 1;
  double wall_seconds = 0.0;  // host wall clock for the whole fan-out
  std::vector<TrialResult> trials;
  /// Fault-layer account, index-aligned with `trials`.
  std::vector<TrialOutcome> outcomes;

  // Merge step (always folded in trial index order):
  std::size_t successes = 0;
  std::size_t total_probes = 0;
  std::size_t total_bytes = 0;
  std::size_t total_byte_errors = 0;
  std::size_t total_gave_up = 0;
  stats::Summary seconds;     // over per-trial simulated seconds
  stats::Summary confidence;  // over per-trial decode confidence
  stats::OnlineStats cycles;  // over per-trial simulated cycles
  stats::Histogram tote;      // all trials' ToTE observations merged
  uarch::PmuSnapshot pmu{};   // per-trial PMU deltas, summed
  obs::TopDown topdown;       // per-trial attributions, bucket-summed
  obs::EventLog events;       // per-trial logs, appended in index order

  // Failure accounting (folded from `outcomes`):
  std::size_t attempted = 0;      // trials scheduled (== trials.size())
  std::size_t completed = 0;      // trials that produced a result
  std::size_t failed = 0;         // trials degraded after every attempt
  std::size_t retried = 0;        // trials that needed more than one attempt
  std::size_t quarantined = 0;    // trials that evicted a pooled machine
  std::size_t total_attempts = 0;  // attempts across all trials
  /// Errors by class, indexed by TrialErrorKind.
  std::array<std::size_t, kNumTrialErrorKinds> error_counts{};

  [[nodiscard]] bool all_succeeded() const noexcept {
    return successes == trials.size();
  }
  /// Every scheduled trial produced a result (possibly after retries).
  [[nodiscard]] bool all_completed() const noexcept { return failed == 0; }
};

/// Everything a finished run measured, as one named-metric registry:
/// "run.*" counters (trials, successes, probes, bytes, byte_errors,
/// gave_up), "pmu.*" counters (merged event deltas), "topdown.*" cycle
/// buckets, "sim_seconds.*" / "confidence.*" gauges and the merged "tote"
/// histogram. Feed this to MetricsRegistry::write_json_file()/
/// write_csv_file() for --metrics-out. `prefix` namespaces every name
/// ("cc." etc.), so several runs can merge into one registry without
/// colliding.
[[nodiscard]] obs::MetricsRegistry to_metrics(const RunResult& r,
                                              const std::string& prefix = "");

/// Per-trial seed derivation: base ⊕ trial index, whitened through
/// SplitMix64 so adjacent trials get decorrelated jitter streams, and kept
/// non-zero (0 tells os::Machine "use the CPU preset's seed").
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t base_seed,
                                       std::uint64_t index);

/// The single place a trial's MachineOptions are derived from its spec and
/// per-trial seed. Both trial paths — fresh construction and pooled
/// reset() — go through here, so the seed schedule cannot depend on whether
/// the Machine is rebuilt or reused.
[[nodiscard]] os::MachineOptions machine_options(const RunSpec& spec,
                                                 std::uint64_t seed);

/// Run a single trial of `spec` on a fresh Machine seeded with `seed`.
/// Pure: no shared state, safe to call from any thread. Throws
/// std::invalid_argument when spec.attack is not a registered name.
[[nodiscard]] TrialResult run_trial(const RunSpec& spec, std::uint64_t seed);

/// Reset-path variant: run the trial on a caller-provided machine, which
/// must have been constructed from machine_options(spec, <any seed>) and
/// snapshot()ted. The machine is reset(seed) first, so the result is
/// bit-identical to the fresh-Machine overload with the same arguments.
[[nodiscard]] TrialResult run_trial(const RunSpec& spec, std::uint64_t seed,
                                    os::Machine& m);

/// What one scheduled trial hands back through Executor::map (and, in the
/// serve daemon, down the wire): the result slot plus the fault-layer
/// account. Exceptions become entries in outcome.errors — they never cross
/// a pool boundary.
struct ScheduledTrial {
  TrialResult result;
  TrialOutcome outcome;

  /// Executor::map's last-resort hook (see TrialOutcome).
  void capture_unhandled(const std::string& what) {
    outcome.capture_unhandled(what);
  }
};

/// One trial of `spec` exactly as run()/run_many() schedule it: machine
/// seed and payload stream both derived from the trial `index`, fault
/// points fired per `plan`, retries replaying the same coordinates, digest
/// verification (`verify`) quarantining drifted machines. All failure
/// paths end as TrialError records; nothing escapes.
///
/// `pool` selects where pooled machines come from: nullptr uses the
/// calling thread's private MachinePool::this_thread() (the runner's
/// fan-out path); the serve daemon passes its shared, admission-controlled
/// pool instead. The trial stream is a pure function of (spec, index)
/// either way — pool identity cannot reach the results (invariant 8), so
/// serving a spec is byte-identical to sweeping it.
[[nodiscard]] ScheduledTrial run_scheduled_trial(const RunSpec& spec,
                                                 std::size_t index,
                                                 const fault::FaultPlan& plan,
                                                 bool verify,
                                                 MachinePool* pool = nullptr);

/// Fan spec.trials out over the executor and merge. With `progress`,
/// per-trial completion lines go to stderr. Unknown attack names throw
/// std::invalid_argument before any trial is scheduled.
[[nodiscard]] RunResult run(const RunSpec& spec, Executor& ex,
                            bool progress = false);
/// Convenience overload: a private Executor with `jobs` workers.
[[nodiscard]] RunResult run(const RunSpec& spec, int jobs,
                            bool progress = false);

/// Run several specs through one pool: every (spec, trial) pair becomes one
/// task, so a matrix of single-trial cells still saturates the workers.
/// Results come back in spec order, each merged exactly as run() merges.
[[nodiscard]] std::vector<RunResult> run_many(
    const std::vector<RunSpec>& specs, Executor& ex, bool progress = false);

}  // namespace whisper::runner
