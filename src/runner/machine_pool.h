// Concurrent machine pool — the promoted form of the runner's old
// thread_local machine LRU.
//
// A trial needs an os::Machine in its post-construction, snapshot()ted
// state; building one costs more host time than many attack phases do
// (docs/ARCHITECTURE.md "Trial lifecycle & reset"). MachinePool keeps
// constructed machines alive between trials, keyed by their construction
// inputs minus the per-trial seed (machine_key()), and hands them out as
// RAII leases:
//
//   MachinePool pool(/*capacity=*/8);
//   {
//     MachinePool::Lease lease = pool.acquire(spec, seed);
//     lease.machine().reset(seed);        // now ≡ a fresh Machine(seed)
//     ... run the trial ...
//   }                                      // returned to the pool
//
// Two deployment shapes share this one class:
//   * per-thread — MachinePool::this_thread() is a small thread_local pool
//     (the runner's trial fast path; the mutex is uncontended);
//   * shared — the serve daemon multiplexes every worker onto one pool,
//     which is where the concurrency features earn their keep:
//       - admission control: at most `capacity` machines are ever live
//         (leased + idle); acquire() blocks once every slot is leased,
//       - LRU eviction: a new key evicts the least-recently-released idle
//         machine instead of growing past the cap,
//       - quarantine: Lease::quarantine() destroys a machine whose reset()
//         failed the digest check (PR 5's drift detection) — a quarantined
//         machine is never re-issued; the next acquire() constructs fresh.
//
// Pool identity cannot leak into results: a reset(seed) machine is
// bit-identical to a fresh construction (invariant 8), so *which* machine
// a lease returns — cached, evicted-and-rebuilt, or brand new — is
// unobservable in the trial stream. tests/test_serve.cpp pins the pool
// semantics (cap, fairness, quarantine, stat monotonicity) at unit level.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "os/machine.h"

namespace whisper::runner {

struct RunSpec;

/// Construction inputs that must match for a pooled Machine to be reusable
/// via reset(): everything machine_options() forwards except the per-trial
/// seed (reset() re-derives every seeded stream). Doubles are serialised as
/// hexfloats — exact, so two profiles can never alias to one machine.
[[nodiscard]] std::string machine_key(const RunSpec& spec);

/// Pool accounting. The first five counters are monotonically
/// non-decreasing over the pool's lifetime; the gauges satisfy
/// in_use + idle <= capacity at every observation.
struct MachinePoolStats {
  std::uint64_t created = 0;      // machines constructed (admissions)
  std::uint64_t reused = 0;       // leases served from an idle machine
  std::uint64_t evicted = 0;      // idle machines dropped to admit a new key
  std::uint64_t quarantined = 0;  // machines destroyed via Lease::quarantine
  std::uint64_t waited = 0;       // acquire() calls that had to block
  std::size_t in_use = 0;         // currently leased
  std::size_t idle = 0;           // currently cached
  std::size_t capacity = 0;       // admission cap
};

class MachinePool {
 public:
  /// `capacity` is the admission cap: leased + idle machines never exceed
  /// it (clamped to >= 1).
  explicit MachinePool(std::size_t capacity = 4);

  /// Exclusive RAII hold on one pooled machine. The destructor returns the
  /// machine to the pool's idle list; quarantine() destroys it instead.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    [[nodiscard]] bool valid() const noexcept { return machine_ != nullptr; }
    /// The leased machine — constructed from machine_options(spec, <some
    /// seed>) and snapshot()ted; reset(seed) it before use.
    [[nodiscard]] os::Machine& machine() noexcept { return *machine_; }

    /// Destroy the machine instead of returning it: it failed the
    /// post-reset() digest check (or is otherwise untrusted) and must never
    /// be re-issued. Its capacity slot frees up immediately.
    void quarantine();

   private:
    friend class MachinePool;
    Lease(MachinePool* pool, std::string key,
          std::unique_ptr<os::Machine> machine)
        : pool_(pool), key_(std::move(key)), machine_(std::move(machine)) {}

    MachinePool* pool_ = nullptr;
    std::string key_;
    std::unique_ptr<os::Machine> machine_;
  };

  /// Lease a machine for `spec`. Preference order: an idle machine with the
  /// same key (most recently released first); a new construction when under
  /// the cap; a new construction after evicting the least-recently-released
  /// idle machine. Blocks when every slot is leased out. `seed` only feeds
  /// the construction path — the caller reset(seed)s the machine anyway.
  [[nodiscard]] Lease acquire(const RunSpec& spec, std::uint64_t seed);

  [[nodiscard]] MachinePoolStats stats() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// The calling thread's private pool — the runner's per-worker trial fast
  /// path (formerly a bare thread_local LRU). Capacity 4, like the LRU it
  /// replaces; with one lease outstanding at a time it can never block.
  [[nodiscard]] static MachinePool& this_thread();

 private:
  struct IdleMachine {
    std::string key;
    std::uint64_t released_at = 0;  // LRU stamp (monotone)
    std::unique_ptr<os::Machine> machine;
  };

  void release(std::string key, std::unique_ptr<os::Machine> machine);
  void drop_leased();  // quarantine path: free the slot, never re-issue

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<IdleMachine> idle_;
  std::size_t capacity_ = 1;
  std::size_t live_ = 0;  // leased + idle
  std::uint64_t stamp_ = 0;
  MachinePoolStats stats_;
};

}  // namespace whisper::runner
