#include "runner/json_writer.h"

#include <cinttypes>
#include <cstdio>

namespace whisper::runner {

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

void JsonWriter::escaped(const std::string& s) {
  out_ += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
}

void JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
}

void JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::key(const std::string& k) {
  comma();
  escaped(k);
  out_ += ':';
}

void JsonWriter::value(const std::string& v) {
  comma();
  escaped(v);
  need_comma_ = true;
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  comma();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
  need_comma_ = true;
}

void JsonWriter::value(int v) { value(static_cast<std::int64_t>(v)); }

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

namespace {

void write_histogram(JsonWriter& w, const stats::Histogram& h) {
  w.begin_object();
  w.key("total");
  w.value(h.total());
  w.key("buckets");
  w.begin_array();
  for (const auto& [value, count] : h.buckets()) {
    w.begin_array();
    w.value(value);
    w.value(count);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

void write_summary(JsonWriter& w, const stats::Summary& s) {
  w.begin_object();
  w.key("n");
  w.value(static_cast<std::uint64_t>(s.n));
  w.key("mean");
  w.value(s.mean);
  w.key("stdev");
  w.value(s.stdev);
  w.key("min");
  w.value(s.min);
  w.key("max");
  w.value(s.max);
  w.key("median");
  w.value(s.median);
  w.end_object();
}

}  // namespace

std::string to_json(const RunResult& r) {
  JsonWriter w;
  w.begin_object();

  w.key("spec");
  w.begin_object();
  w.key("model");
  w.value(uarch::make_config(r.spec.model).name);
  w.key("attack");
  w.value(to_string(r.spec.attack));
  w.key("trials");
  w.value(r.spec.trials);
  w.key("base_seed");
  w.value(r.spec.base_seed);
  w.key("kpti");
  w.value(r.spec.kernel.kpti);
  w.key("flare");
  w.value(r.spec.kernel.flare);
  w.key("fgkaslr");
  w.value(r.spec.kernel.fgkaslr);
  w.key("docker");
  w.value(r.spec.docker);
  w.key("rounds");
  w.value(r.spec.rounds);
  w.key("batches");
  w.value(r.spec.batches);
  w.key("payload_bytes");
  w.value(static_cast<std::uint64_t>(r.spec.payload_bytes));
  w.key("payload_seed");
  w.value(r.spec.payload_seed);
  w.end_object();

  w.key("jobs");
  w.value(r.jobs);
  w.key("wall_seconds");
  w.value(r.wall_seconds);
  w.key("successes");
  w.value(static_cast<std::uint64_t>(r.successes));
  w.key("total_probes");
  w.value(static_cast<std::uint64_t>(r.total_probes));
  w.key("total_bytes");
  w.value(static_cast<std::uint64_t>(r.total_bytes));
  w.key("total_byte_errors");
  w.value(static_cast<std::uint64_t>(r.total_byte_errors));
  w.key("sim_seconds");
  write_summary(w, r.seconds);
  w.key("tote");
  write_histogram(w, r.tote);

  w.key("trials_detail");
  w.begin_array();
  for (const TrialResult& t : r.trials) {
    w.begin_object();
    w.key("seed");
    w.value(t.seed);
    w.key("success");
    w.value(t.success);
    w.key("cycles");
    w.value(t.cycles);
    w.key("seconds");
    w.value(t.seconds);
    w.key("probes");
    w.value(static_cast<std::uint64_t>(t.probes));
    w.key("bytes");
    w.value(static_cast<std::uint64_t>(t.bytes));
    w.key("byte_errors");
    w.value(static_cast<std::uint64_t>(t.byte_errors));
    w.key("found_slot");
    w.value(t.found_slot);
    w.key("tote");
    write_histogram(w, t.tote);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

bool write_json_file(const RunResult& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "runner: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string body = to_json(r);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fputc('\n', f);
  std::fclose(f);
  if (!ok)
    std::fprintf(stderr, "runner: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace whisper::runner
