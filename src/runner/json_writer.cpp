#include "runner/json_writer.h"

#include <cstdio>

namespace whisper::runner {

namespace {

void write_histogram(JsonWriter& w, const stats::Histogram& h) {
  w.begin_object();
  w.key("total");
  w.value(h.total());
  w.key("buckets");
  w.begin_array();
  for (const auto& [value, count] : h.buckets()) {
    w.begin_array();
    w.value(value);
    w.value(count);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

void write_summary(JsonWriter& w, const stats::Summary& s) {
  w.begin_object();
  w.key("n");
  w.value(static_cast<std::uint64_t>(s.n));
  w.key("mean");
  w.value(s.mean);
  w.key("stdev");
  w.value(s.stdev);
  w.key("min");
  w.value(s.min);
  w.key("max");
  w.value(s.max);
  w.key("median");
  w.value(s.median);
  w.end_object();
}

void write_topdown(JsonWriter& w, const obs::TopDown& td) {
  w.begin_object();
  w.key("total_cycles");
  w.value(td.total_cycles);
  w.key("retiring");
  w.value(td.retiring);
  w.key("bad_speculation");
  w.value(td.bad_speculation);
  w.key("frontend_bound");
  w.value(td.frontend_bound);
  w.key("backend_bound");
  w.value(td.backend_bound);
  w.end_object();
}

}  // namespace

std::string to_json(const RunResult& r) {
  JsonWriter w;
  w.begin_object();

  w.key("spec");
  w.begin_object();
  w.key("model");
  w.value(uarch::make_config(r.spec.model).name);
  w.key("attack");
  w.value(r.spec.attack);
  w.key("trials");
  w.value(r.spec.trials);
  w.key("base_seed");
  w.value(r.spec.base_seed);
  // The defense stack replaces the old kpti/flare/fgkaslr bool keys: one
  // "defenses" array of canonical defense::format() strings, derived from
  // normalized_defenses() so legacy-bool specs and DefenseSpec specs emit
  // identical trajectories.
  w.key("defenses");
  w.begin_array();
  for (const defense::DefenseSpec& d : normalized_defenses(r.spec))
    w.value(defense::format(d));
  w.end_array();
  w.key("docker");
  w.value(r.spec.docker);
  w.key("rounds");
  w.value(r.spec.rounds);
  w.key("batches");
  w.value(r.spec.batches);
  w.key("payload_bytes");
  w.value(static_cast<std::uint64_t>(r.spec.payload_bytes));
  w.key("payload_seed");
  w.value(r.spec.payload_seed);
  w.key("noise");
  w.begin_object();
  w.key("profile");
  w.value(r.spec.noise.name);
  w.key("seed");
  w.value(r.spec.noise.seed);
  w.key("sources");
  w.begin_array();
  for (const noise::NoiseSource& s : r.spec.noise.sources) {
    w.begin_object();
    w.key("kind");
    w.value(noise::to_string(s.kind));
    w.key("intensity");
    w.value(s.intensity);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("adaptive");
  w.value(r.spec.adaptive);
  w.key("confidence_threshold");
  w.value(r.spec.confidence_threshold);
  w.key("batch_budget");
  w.value(r.spec.batch_budget);
  w.key("retries");
  w.value(r.spec.retries);
  w.key("trial_cycle_budget");
  w.value(r.spec.trial_cycle_budget);
  w.key("trial_wall_budget");
  w.value(r.spec.trial_wall_budget);
  w.key("verify_reset");
  w.value(r.spec.verify_reset);
  w.key("fault_plan");
  w.value(r.spec.fault_plan);
  w.end_object();

  w.key("jobs");
  w.value(r.jobs);
  w.key("wall_seconds");
  w.value(r.wall_seconds);
  w.key("successes");
  w.value(static_cast<std::uint64_t>(r.successes));
  w.key("total_probes");
  w.value(static_cast<std::uint64_t>(r.total_probes));
  w.key("total_bytes");
  w.value(static_cast<std::uint64_t>(r.total_bytes));
  w.key("total_byte_errors");
  w.value(static_cast<std::uint64_t>(r.total_byte_errors));
  w.key("total_gave_up");
  w.value(static_cast<std::uint64_t>(r.total_gave_up));
  w.key("fault");
  w.begin_object();
  w.key("attempted");
  w.value(static_cast<std::uint64_t>(r.attempted));
  w.key("completed");
  w.value(static_cast<std::uint64_t>(r.completed));
  w.key("failed");
  w.value(static_cast<std::uint64_t>(r.failed));
  w.key("retried");
  w.value(static_cast<std::uint64_t>(r.retried));
  w.key("quarantined");
  w.value(static_cast<std::uint64_t>(r.quarantined));
  w.key("total_attempts");
  w.value(static_cast<std::uint64_t>(r.total_attempts));
  w.key("errors");
  w.begin_object();
  for (std::size_t k = 0; k < kNumTrialErrorKinds; ++k) {
    w.key(to_string(static_cast<TrialErrorKind>(k)));
    w.value(static_cast<std::uint64_t>(r.error_counts[k]));
  }
  w.end_object();
  w.end_object();
  w.key("sim_seconds");
  write_summary(w, r.seconds);
  w.key("confidence");
  write_summary(w, r.confidence);
  w.key("tote");
  write_histogram(w, r.tote);
  w.key("topdown");
  write_topdown(w, r.topdown);

  w.key("trials_detail");
  w.begin_array();
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    const TrialResult& t = r.trials[i];
    w.begin_object();
    // Fault-layer account (outcomes is index-aligned with trials when the
    // result came from run()/run_many(); hand-built results may omit it).
    if (i < r.outcomes.size()) {
      const TrialOutcome& oc = r.outcomes[i];
      w.key("ok");
      w.value(oc.ok);
      w.key("attempts");
      w.value(oc.attempts);
      w.key("quarantined");
      w.value(oc.quarantined);
      w.key("errors");
      w.begin_array();
      for (const TrialError& e : oc.errors) {
        w.begin_object();
        w.key("kind");
        w.value(std::string(to_string(e.kind)));
        w.key("attempt");
        w.value(e.attempt);
        w.key("what");
        w.value(e.what);
        w.end_object();
      }
      w.end_array();
    }
    w.key("seed");
    w.value(t.seed);
    w.key("success");
    w.value(t.success);
    w.key("cycles");
    w.value(t.cycles);
    w.key("seconds");
    w.value(t.seconds);
    w.key("probes");
    w.value(static_cast<std::uint64_t>(t.probes));
    w.key("bytes");
    w.value(static_cast<std::uint64_t>(t.bytes));
    w.key("byte_errors");
    w.value(static_cast<std::uint64_t>(t.byte_errors));
    w.key("found_slot");
    w.value(t.found_slot);
    w.key("confidence");
    w.value(t.confidence);
    w.key("gave_up");
    w.value(static_cast<std::uint64_t>(t.gave_up));
    w.key("tote");
    write_histogram(w, t.tote);
    w.key("topdown");
    write_topdown(w, t.topdown);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

bool write_json_file(const RunResult& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "runner: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string body = to_json(r);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fputc('\n', f);
  std::fclose(f);
  if (!ok)
    std::fprintf(stderr, "runner: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace whisper::runner
