#include "runner/machine_pool.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "defense/defense.h"
#include "runner/runner.h"

namespace whisper::runner {

std::string machine_key(const RunSpec& spec) {
  char buf[64];
  std::string k = std::to_string(static_cast<int>(spec.model));
  k += '|';
  // The defense fragment is the canonical combo string — one format path
  // (defense::format_list), shared with the JSON writer and the wire, so
  // {.kernel = {.kpti = true}} and {.defenses = {parse("kpti")}} pool
  // together.
  k += defense::format_list(normalized_defenses(spec));
  k += '.';
  k += std::to_string(spec.kernel.kaslr_slot);
  k += '.';
  k += std::to_string(spec.kernel.seed);
  k += '|';
  k += spec.docker ? '1' : '0';
  k += '|';
  k += spec.noise.name;
  k += '.';
  k += std::to_string(spec.noise.seed);
  for (const noise::NoiseSource& s : spec.noise.sources) {
    std::snprintf(buf, sizeof buf, ":%d=%a", static_cast<int>(s.kind),
                  s.intensity);
    k += buf;
  }
  return k;
}

MachinePool::MachinePool(std::size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {
  stats_.capacity = capacity_;
}

MachinePool::Lease::Lease(Lease&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      key_(std::move(other.key_)),
      machine_(std::move(other.machine_)) {}

MachinePool::Lease& MachinePool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (pool_ && machine_) pool_->release(std::move(key_), std::move(machine_));
    pool_ = std::exchange(other.pool_, nullptr);
    key_ = std::move(other.key_);
    machine_ = std::move(other.machine_);
  }
  return *this;
}

MachinePool::Lease::~Lease() {
  if (pool_ && machine_) pool_->release(std::move(key_), std::move(machine_));
}

void MachinePool::Lease::quarantine() {
  if (!pool_ || !machine_) return;
  machine_.reset();  // destroy outside the pool lock
  pool_->drop_leased();
  pool_ = nullptr;
}

MachinePool::Lease MachinePool::acquire(const RunSpec& spec,
                                        std::uint64_t seed) {
  std::string key = machine_key(spec);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // 1. An idle machine with this key — most recently released first, so
    //    a hot spec keeps its warm machine (the old LRU's move-to-front).
    auto best = idle_.end();
    for (auto it = idle_.begin(); it != idle_.end(); ++it)
      if (it->key == key &&
          (best == idle_.end() || it->released_at > best->released_at))
        best = it;
    if (best != idle_.end()) {
      std::unique_ptr<os::Machine> m = std::move(best->machine);
      idle_.erase(best);
      ++stats_.reused;
      return Lease(this, std::move(key), std::move(m));
    }
    // 2. Admission: construct while under the cap.
    if (live_ < capacity_) {
      ++live_;
      break;
    }
    // 3. At the cap, but some idle machine of another key can make room:
    //    evict the least-recently-released one.
    if (!idle_.empty()) {
      auto lru = idle_.begin();
      for (auto it = idle_.begin(); it != idle_.end(); ++it)
        if (it->released_at < lru->released_at) lru = it;
      idle_.erase(lru);
      ++stats_.evicted;
      --live_;
      continue;  // retake branch 2
    }
    // 4. Every slot is leased out: block until a release/quarantine.
    ++stats_.waited;
    cv_.wait(lock);
  }
  lock.unlock();
  // Construction is the expensive part — do it outside the lock. A failed
  // construction must give its admission slot back or the pool leaks
  // capacity forever.
  std::unique_ptr<os::Machine> m;
  try {
    m = std::make_unique<os::Machine>(machine_options(spec, seed));
    m->snapshot();
  } catch (...) {
    std::lock_guard<std::mutex> relock(mu_);
    --live_;
    cv_.notify_one();
    throw;
  }
  {
    std::lock_guard<std::mutex> relock(mu_);
    ++stats_.created;
  }
  return Lease(this, std::move(key), std::move(m));
}

void MachinePool::release(std::string key,
                         std::unique_ptr<os::Machine> machine) {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(IdleMachine{std::move(key), ++stamp_, std::move(machine)});
  cv_.notify_one();
}

void MachinePool::drop_leased() {
  std::lock_guard<std::mutex> lock(mu_);
  --live_;
  ++stats_.quarantined;
  cv_.notify_one();
}

MachinePoolStats MachinePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  MachinePoolStats s = stats_;
  s.idle = idle_.size();
  s.in_use = live_ - idle_.size();
  s.capacity = capacity_;
  return s;
}

MachinePool& MachinePool::this_thread() {
  // One pool per thread: the executor's persistent workers (and the
  // jobs==1 inline path) each keep their own, so the runner's hot path
  // never contends on the mutex.
  thread_local MachinePool pool(4);
  return pool;
}

}  // namespace whisper::runner
