// Trial executor: fan independent simulations out across cores with results
// that are bit-identical to a sequential run.
//
// The determinism contract (docs/ARCHITECTURE.md "runner" section):
//   * every work item is a pure function of its index — it builds its own
//     os::Machine (or equivalent) from per-index state and shares nothing;
//   * results land in a pre-sized vector slot keyed by index, so the merge
//     step always reads them in index order;
// hence the schedule (and the --jobs value) cannot influence any output.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "runner/thread_pool.h"

namespace whisper::runner {

/// Worker count to use when the caller passes jobs <= 0 (the "--jobs 0"
/// auto setting): std::thread::hardware_concurrency, at least 1.
[[nodiscard]] int default_jobs();

/// Parse a "--jobs N" style value: "0"/"auto" -> default_jobs(), else N.
[[nodiscard]] int resolve_jobs(int requested);

/// Thread-safe progress meter for long fan-outs; prints
/// "label: k/n trials (p%)" lines to stderr, rate-limited so parallel
/// sweeps don't flood the terminal. Disabled instances are no-ops.
class Progress {
 public:
  Progress(std::string label, std::size_t total, bool enabled);

  /// Record one finished work item (called from worker threads).
  void tick();
  /// Print the closing "n/n trials, wall Xs, jobs J" line.
  void finish(double wall_seconds, int jobs);

 private:
  std::string label_;
  std::size_t total_;
  bool enabled_;
  std::atomic<std::size_t> done_{0};
  std::mutex print_mu_;
  std::chrono::steady_clock::time_point last_print_;
};

/// Thread-pool-backed map over [0, n). `jobs == 1` is the degenerate
/// sequential case and uses no threads at all, so it is also the reference
/// behaviour the parallel path must reproduce bit-for-bit.
class Executor {
 public:
  explicit Executor(int jobs);

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Run fn(i) for every i in [0, n) and return the results in index order.
  /// The result type must be default-constructible (slots are pre-sized).
  ///
  /// Exceptions never cross the ThreadPool boundary: each invocation is
  /// wrapped here, identically on the sequential and pooled paths. If the
  /// result type exposes `capture_unhandled(const std::string&)` (as the
  /// runner's per-trial record does), an escaped exception is captured into
  /// that item's pre-sized slot — the trial fails as data and the map keeps
  /// going. Otherwise every item still runs, and map() rethrows a
  /// std::runtime_error naming the first failure once the fan-out drains.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn, Progress* progress = nullptr)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    constexpr bool kCaptures = requires(R& slot, const std::string& what) {
      slot.capture_unhandled(what);
    };
    std::vector<R> results(n);
    std::atomic<std::size_t> escaped{0};
    std::mutex err_mu;
    std::string first_error;
    const auto invoke = [&](std::size_t i) {
      try {
        results[i] = fn(i);
      } catch (...) {
        std::string what = "unknown exception";
        try {
          throw;
        } catch (const std::exception& e) {
          what = e.what();
        } catch (...) {
        }
        if constexpr (kCaptures) {
          results[i].capture_unhandled(what);
        } else {
          if (escaped.fetch_add(1) == 0) {
            std::lock_guard<std::mutex> lock(err_mu);
            first_error = std::move(what);
          }
        }
      }
      if (progress) progress->tick();
    };
    if (!pool_ || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) invoke(i);
    } else {
      for (std::size_t i = 0; i < n; ++i)
        pool_->submit([&invoke, i] { invoke(i); });
      pool_->wait_idle();
    }
    if constexpr (!kCaptures) {
      if (const std::size_t k = escaped.load(); k > 0) {
        std::lock_guard<std::mutex> lock(err_mu);
        throw std::runtime_error("Executor::map: " + std::to_string(k) +
                                 " task(s) threw; first: " + first_error);
      }
    }
    return results;
  }

 private:
  int jobs_;
  std::unique_ptr<ThreadPool> pool_;  // null when jobs_ == 1
};

/// Wall-clock stopwatch for the per-run timing line.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace whisper::runner
