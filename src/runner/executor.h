// Trial executor: fan independent simulations out across cores with results
// that are bit-identical to a sequential run.
//
// The determinism contract (docs/ARCHITECTURE.md "runner" section):
//   * every work item is a pure function of its index — it builds its own
//     os::Machine (or equivalent) from per-index state and shares nothing;
//   * results land in a pre-sized vector slot keyed by index, so the merge
//     step always reads them in index order;
// hence the schedule (and the --jobs value) cannot influence any output.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "runner/thread_pool.h"

namespace whisper::runner {

/// Worker count to use when the caller passes jobs <= 0 (the "--jobs 0"
/// auto setting): std::thread::hardware_concurrency, at least 1.
[[nodiscard]] int default_jobs();

/// Parse a "--jobs N" style value: "0"/"auto" -> default_jobs(), else N.
[[nodiscard]] int resolve_jobs(int requested);

/// Thread-safe progress meter for long fan-outs; prints
/// "label: k/n trials (p%)" lines to stderr, rate-limited so parallel
/// sweeps don't flood the terminal. Disabled instances are no-ops.
class Progress {
 public:
  Progress(std::string label, std::size_t total, bool enabled);

  /// Record one finished work item (called from worker threads).
  void tick();
  /// Print the closing "n/n trials, wall Xs, jobs J" line.
  void finish(double wall_seconds, int jobs);

 private:
  std::string label_;
  std::size_t total_;
  bool enabled_;
  std::atomic<std::size_t> done_{0};
  std::mutex print_mu_;
  std::chrono::steady_clock::time_point last_print_;
};

/// Thread-pool-backed map over [0, n). `jobs == 1` is the degenerate
/// sequential case and uses no threads at all, so it is also the reference
/// behaviour the parallel path must reproduce bit-for-bit.
class Executor {
 public:
  explicit Executor(int jobs);

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Run fn(i) for every i in [0, n) and return the results in index order.
  /// The result type must be default-constructible (slots are pre-sized).
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn, Progress* progress = nullptr)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    std::vector<R> results(n);
    if (!pool_ || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) {
        results[i] = fn(i);
        if (progress) progress->tick();
      }
      return results;
    }
    for (std::size_t i = 0; i < n; ++i)
      pool_->submit([&results, &fn, progress, i] {
        results[i] = fn(i);
        if (progress) progress->tick();
      });
    pool_->wait_idle();
    return results;
  }

 private:
  int jobs_;
  std::unique_ptr<ThreadPool> pool_;  // null when jobs_ == 1
};

/// Wall-clock stopwatch for the per-run timing line.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace whisper::runner
