#include "runner/runner.h"

#include <span>

#include "core/attacks/kaslr.h"
#include "core/attacks/meltdown.h"
#include "core/attacks/spectre_rsb.h"
#include "core/attacks/spectre_v1.h"
#include "core/attacks/zombieload.h"
#include "core/covert_channel.h"
#include "os/machine.h"
#include "stats/error_rate.h"
#include "stats/rng.h"

namespace whisper::runner {

namespace {

std::vector<std::uint8_t> payload_bytes(const RunSpec& spec) {
  // run()/run_many() fold the trial index into payload_seed, so multi-trial
  // channel runs move different payloads; a seed of K reproduces
  // bench_util's random_bytes(n, K) stream exactly.
  stats::Xoshiro256 rng(spec.payload_seed);
  std::vector<std::uint8_t> out(spec.payload_bytes);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

void fill_channel_result(TrialResult& t, const os::Machine& /*m*/,
                         std::span<const std::uint8_t> sent,
                         std::span<const std::uint8_t> got) {
  t.bytes = sent.size();
  for (std::size_t i = 0; i < sent.size(); ++i)
    if (i >= got.size() || got[i] != sent[i]) ++t.byte_errors;
  t.success = t.byte_errors == 0;
}

}  // namespace

const char* to_string(Attack a) {
  switch (a) {
    case Attack::Cc: return "cc";
    case Attack::Md: return "md";
    case Attack::Zbl: return "zbl";
    case Attack::Rsb: return "rsb";
    case Attack::V1: return "v1";
    case Attack::Kaslr: return "kaslr";
  }
  return "?";
}

std::optional<Attack> attack_from_string(std::string_view s) {
  if (s == "cc") return Attack::Cc;
  if (s == "md") return Attack::Md;
  if (s == "zbl") return Attack::Zbl;
  if (s == "rsb") return Attack::Rsb;
  if (s == "v1") return Attack::V1;
  if (s == "kaslr") return Attack::Kaslr;
  return std::nullopt;
}

std::string RunSpec::label() const {
  std::string out = "tet-";
  out += to_string(attack);
  out += " @ ";
  out += uarch::make_config(model).name;
  if (kernel.kpti) out += " +KPTI";
  if (kernel.flare) out += " +FLARE";
  if (docker) out += " (docker)";
  out += " x" + std::to_string(trials);
  return out;
}

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t index) {
  const std::uint64_t s = stats::SplitMix64(base_seed ^ index).next();
  return s ? s : 1;  // 0 would mean "derive from the CPU preset"
}

TrialResult run_trial(const RunSpec& spec, std::uint64_t seed) {
  TrialResult t;
  t.seed = seed;

  os::MachineOptions mo;
  mo.model = spec.model;
  mo.kernel = spec.kernel;
  mo.docker = spec.docker;
  mo.seed = seed;
  os::Machine m(mo);

  // Observability: PMU deltas (and optionally the full event log) over the
  // attack phase. Attaching the log must not perturb the run —
  // tests/test_obs.cpp checks the results stay byte-identical.
  if (spec.collect_trace) m.core().set_trace(&t.events);
  const uarch::PmuSnapshot pmu_before = m.core().pmu().snapshot();

  switch (spec.attack) {
    case Attack::Cc: {
      core::TetCovertChannel::Options opt;
      if (spec.batches > 0) opt.batches = spec.batches;
      core::TetCovertChannel cc(m, opt);
      const auto sent = payload_bytes(spec);
      const stats::ChannelReport rep = cc.transmit(sent);
      t.bytes = rep.bytes;
      t.byte_errors = rep.byte_errors;
      t.success = rep.byte_errors == 0;
      t.cycles = rep.sim_cycles;
      t.seconds = rep.seconds;
      t.probes = cc.stats().probes;
      t.tote = cc.last_analysis().tote_histogram();
      break;
    }
    case Attack::Md: {
      const auto secret = payload_bytes(spec);
      const std::uint64_t kaddr = m.plant_kernel_secret(secret);
      core::TetMeltdown::Options opt;
      if (spec.batches > 0) opt.batches = spec.batches;
      core::TetMeltdown atk(m, opt);
      const std::uint64_t start = m.core().cycle();
      const auto got = atk.leak(kaddr, secret.size());
      t.cycles = m.core().cycle() - start;
      t.seconds = m.seconds(t.cycles);
      t.probes = atk.stats().probes;
      t.tote = atk.last_analysis().tote_histogram();
      fill_channel_result(t, m, secret, got);
      break;
    }
    case Attack::Zbl: {
      const auto stream = payload_bytes(spec);
      core::TetZombieload::Options opt;
      if (spec.batches > 0) opt.batches = spec.batches;
      core::TetZombieload atk(m, opt);
      const std::uint64_t start = m.core().cycle();
      const auto got = atk.leak(stream);
      t.cycles = m.core().cycle() - start;
      t.seconds = m.seconds(t.cycles);
      t.probes = atk.stats().probes;
      t.tote = atk.last_analysis().tote_histogram();
      fill_channel_result(t, m, stream, got);
      break;
    }
    case Attack::Rsb: {
      const auto secret = payload_bytes(spec);
      m.poke_bytes(os::Machine::kDataBase + 0x1000, secret);
      core::TetSpectreRsb::Options opt;
      if (spec.batches > 0) opt.batches = spec.batches;
      core::TetSpectreRsb atk(m, opt);
      const std::uint64_t start = m.core().cycle();
      const auto got =
          atk.leak(os::Machine::kDataBase + 0x1000, secret.size());
      t.cycles = m.core().cycle() - start;
      t.seconds = m.seconds(t.cycles);
      t.probes = atk.stats().probes;
      t.tote = atk.last_analysis().tote_histogram();
      fill_channel_result(t, m, secret, got);
      break;
    }
    case Attack::V1: {
      const auto secret = payload_bytes(spec);
      core::TetSpectreV1::Options opt;
      if (spec.batches > 0) opt.batches = spec.batches;
      core::TetSpectreV1 atk(m, opt);
      const std::uint64_t addr = core::TetSpectreV1::kArrayBase + 0x80;
      m.poke_bytes(addr, secret);
      const std::uint64_t start = m.core().cycle();
      const auto got = atk.leak(addr, secret.size());
      t.cycles = m.core().cycle() - start;
      t.seconds = m.seconds(t.cycles);
      t.probes = atk.stats().probes;
      t.tote = atk.last_analysis().tote_histogram();
      fill_channel_result(t, m, secret, got);
      break;
    }
    case Attack::Kaslr: {
      core::TetKaslr::Options kopt;
      kopt.rounds = spec.rounds;
      core::TetKaslr atk(m, kopt);
      const core::TetKaslr::Result r = atk.run();
      t.success = r.success;
      t.cycles = r.cycles;
      t.seconds = r.seconds;
      t.probes = r.probes;
      t.found_slot = r.found_slot;
      for (const std::uint64_t score : r.slot_scores)
        t.tote.add(static_cast<std::int64_t>(score));
      break;
    }
  }
  t.pmu = uarch::pmu_delta(pmu_before, m.core().pmu().snapshot());
  t.topdown = obs::attribute_cycles(t.pmu);
  if (spec.collect_trace) m.core().set_trace(nullptr);
  return t;
}

namespace {

/// One trial of `spec` as run()/run_many() schedule it: seed and payload
/// stream both derived from the trial index.
TrialResult run_indexed_trial(const RunSpec& spec, std::size_t i) {
  RunSpec per_trial = spec;
  // Decorrelate the payload stream per trial alongside the seed.
  per_trial.payload_seed = spec.payload_seed ^ i;
  return run_trial(per_trial, trial_seed(spec.base_seed, i));
}

/// The merge step: fold per-trial results, strictly in trial index order.
RunResult merge_trials(const RunSpec& spec, int jobs, double wall_seconds,
                       std::vector<TrialResult> trials) {
  RunResult out;
  out.spec = spec;
  out.jobs = jobs;
  out.wall_seconds = wall_seconds;
  out.trials = std::move(trials);
  std::vector<double> secs;
  secs.reserve(out.trials.size());
  for (const TrialResult& t : out.trials) {
    out.successes += t.success ? 1 : 0;
    out.total_probes += t.probes;
    out.total_bytes += t.bytes;
    out.total_byte_errors += t.byte_errors;
    out.cycles.add(static_cast<double>(t.cycles));
    out.tote.merge(t.tote);
    for (std::size_t e = 0; e < uarch::kNumPmuEvents; ++e)
      out.pmu[e] += t.pmu[e];
    out.topdown.merge(t.topdown);
    out.events.append(t.events);
    secs.push_back(t.seconds);
  }
  out.seconds = stats::summarize(std::span<const double>(secs));
  return out;
}

}  // namespace

obs::MetricsRegistry to_metrics(const RunResult& r,
                                const std::string& prefix) {
  obs::MetricsRegistry reg;
  reg.set_counter(prefix + "run.trials", r.trials.size());
  reg.set_counter(prefix + "run.successes", r.successes);
  reg.set_counter(prefix + "run.probes", r.total_probes);
  reg.set_counter(prefix + "run.bytes", r.total_bytes);
  reg.set_counter(prefix + "run.byte_errors", r.total_byte_errors);
  reg.import_pmu(r.pmu, prefix + "pmu.");
  reg.set_counter(prefix + "topdown.total_cycles", r.topdown.total_cycles);
  reg.set_counter(prefix + "topdown.retiring", r.topdown.retiring);
  reg.set_counter(prefix + "topdown.bad_speculation",
                  r.topdown.bad_speculation);
  reg.set_counter(prefix + "topdown.frontend_bound",
                  r.topdown.frontend_bound);
  reg.set_counter(prefix + "topdown.backend_bound", r.topdown.backend_bound);
  reg.import_summary(prefix + "sim_seconds", r.seconds);
  reg.add_histogram(prefix + "tote", r.tote);
  return reg;
}

RunResult run(const RunSpec& spec, Executor& ex, bool progress) {
  const std::size_t n =
      spec.trials > 0 ? static_cast<std::size_t>(spec.trials) : 0;
  Progress meter(spec.label(), n, progress);
  WallTimer timer;
  std::vector<TrialResult> trials = ex.map(
      n, [&spec](std::size_t i) { return run_indexed_trial(spec, i); },
      &meter);
  const double wall = timer.seconds();
  meter.finish(wall, ex.jobs());
  return merge_trials(spec, ex.jobs(), wall, std::move(trials));
}

RunResult run(const RunSpec& spec, int jobs, bool progress) {
  Executor ex(jobs);
  return run(spec, ex, progress);
}

std::vector<RunResult> run_many(const std::vector<RunSpec>& specs,
                                Executor& ex, bool progress) {
  // Flatten every (spec, trial) pair into one task list so a matrix of
  // small cells still fills the pool.
  struct Task {
    std::size_t spec_idx;
    std::size_t trial_idx;
  };
  std::vector<Task> tasks;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const int n = specs[s].trials;
    for (std::size_t i = 0; i < static_cast<std::size_t>(n > 0 ? n : 0); ++i)
      tasks.push_back({s, i});
  }

  Progress meter("runner: " + std::to_string(specs.size()) + " specs",
                 tasks.size(), progress);
  WallTimer timer;
  std::vector<TrialResult> flat = ex.map(
      tasks.size(),
      [&](std::size_t k) {
        return run_indexed_trial(specs[tasks[k].spec_idx],
                                 tasks[k].trial_idx);
      },
      &meter);
  const double wall = timer.seconds();
  meter.finish(wall, ex.jobs());

  std::vector<RunResult> out;
  out.reserve(specs.size());
  std::size_t next = 0;
  for (const RunSpec& spec : specs) {
    const std::size_t n =
        spec.trials > 0 ? static_cast<std::size_t>(spec.trials) : 0;
    std::vector<TrialResult> trials(flat.begin() + next,
                                    flat.begin() + next + n);
    next += n;
    out.push_back(merge_trials(spec, ex.jobs(), wall, std::move(trials)));
  }
  return out;
}

}  // namespace whisper::runner
