#include "runner/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iterator>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/attacks/registry.h"
#include "defense/defense.h"
#include "fault/fault.h"
#include "os/machine.h"
#include "runner/machine_pool.h"
#include "stats/rng.h"

namespace whisper::runner {

namespace {

std::vector<std::uint8_t> payload_bytes(const RunSpec& spec) {
  // run()/run_many() fold the trial index into payload_seed, so multi-trial
  // channel runs move different payloads; a seed of K reproduces
  // bench_util's random_bytes(n, K) stream exactly.
  stats::Xoshiro256 rng(spec.payload_seed);
  std::vector<std::uint8_t> out(spec.payload_bytes);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

const core::AttackInfo& attack_info_or_throw(const std::string& name) {
  const core::AttackInfo* info = core::find_attack(name);
  if (info == nullptr) {
    // List the valid keys: "unknown attack 'kalsr'" with no hint at the
    // registry vocabulary was a recurring trap.
    std::string msg = "runner: unknown attack '" + name + "' (registered: ";
    const std::vector<std::string> names = core::attack_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) msg += ", ";
      msg += names[i];
    }
    throw std::invalid_argument(msg + ")");
  }
  return *info;
}

}  // namespace

const char* to_string(TrialErrorKind k) noexcept {
  switch (k) {
    case TrialErrorKind::kException: return "exception";
    case TrialErrorKind::kCycleBudget: return "cycle_budget";
    case TrialErrorKind::kWatchdog: return "watchdog";
    case TrialErrorKind::kResetDrift: return "reset_drift";
    case TrialErrorKind::kDegraded: return "degraded";
  }
  return "?";
}

void TrialOutcome::capture_unhandled(const std::string& what) {
  ok = false;
  if (attempts < 1) attempts = 1;
  errors.push_back(TrialError{TrialErrorKind::kException, attempts - 1,
                              "runner: escaped trial wrapper: " + what, "",
                              0});
}

std::vector<defense::DefenseSpec> normalized_defenses(const RunSpec& spec) {
  std::vector<defense::DefenseSpec> out;
  const auto add = [&out](defense::DefenseSpec d) {
    for (defense::DefenseSpec& have : out)
      if (have.name == d.name) {
        have = std::move(d);  // explicit spec wins over the bool alias
        return;
      }
    out.push_back(std::move(d));
  };
  if (spec.kernel.kpti) add({.name = "kpti"});
  if (spec.kernel.flare) add({.name = "flare"});
  if (spec.kernel.fgkaslr) add({.name = "fgkaslr"});
  for (const defense::DefenseSpec& d : spec.defenses) add(d);
  return out;
}

void validate(const RunSpec& spec) {
  (void)attack_info_or_throw(spec.attack);
  // Duplicates *within* spec.defenses are a caller error; duplicates
  // against the legacy kernel bools are the aliasing normalized_defenses()
  // exists to collapse.
  defense::validate(spec.defenses);
  defense::validate(normalized_defenses(spec));
  if (spec.retries < 0)
    throw std::invalid_argument("runner: retries must be >= 0");
  if (spec.trial_wall_budget < 0.0)
    throw std::invalid_argument("runner: trial_wall_budget must be >= 0");
  // Parse (and thereby validate) the fault plan; grammar errors surface
  // here, before any trial is scheduled.
  const fault::FaultPlan plan = fault::FaultPlan::parse(spec.fault_plan);
  if (plan.uses(fault::Kind::kDrop) || plan.uses(fault::Kind::kShortRead))
    throw std::invalid_argument(
        "runner: fault plan injects a transport fault ('drop'/'shortread'); "
        "those belong in the sweep client's flaky plan (whisper_cli sweep "
        "--flaky-plan), not in a trial plan");
  if (plan.uses(fault::Kind::kStall) && spec.trial_cycle_budget == 0)
    throw std::invalid_argument(
        "runner: fault plan injects 'stall' but trial_cycle_budget is 0 — "
        "nothing would bound the stalled trial");
  if (plan.uses(fault::Kind::kSleep) && spec.trial_wall_budget <= 0.0)
    throw std::invalid_argument(
        "runner: fault plan injects 'sleep' but trial_wall_budget is 0 — "
        "nothing would bound the sleeping trial");
}

std::string RunSpec::label() const {
  std::string out = "tet-";
  out += attack;
  out += " @ ";
  out += uarch::make_config(model).name;
  // Derived from the normalized defense list, so +FGKASLR (and every future
  // defense) shows up — the hand-rolled kpti/flare pair silently dropped it.
  for (const defense::DefenseSpec& d : normalized_defenses(*this)) {
    out += " +";
    for (const char c : defense::format(d))
      out += (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  }
  if (docker) out += " (docker)";
  if (noise.enabled()) out += " +noise:" + noise.name;
  if (adaptive) out += " (adaptive)";
  out += " x" + std::to_string(trials);
  return out;
}

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t index) {
  const std::uint64_t s = stats::SplitMix64(base_seed ^ index).next();
  return s ? s : 1;  // 0 would mean "derive from the CPU preset"
}

os::MachineOptions machine_options(const RunSpec& spec, std::uint64_t seed) {
  os::MachineOptions mo;
  mo.model = spec.model;
  mo.kernel = spec.kernel;
  mo.docker = spec.docker;
  mo.seed = seed;
  mo.noise = spec.noise;
  // Install the defense stack last, over the fields it rewrites. An empty
  // stack leaves mo untouched (mo.config stays unset), so defense-free
  // specs build byte-identical machines to the pre-defense-API ones.
  const std::vector<defense::DefenseSpec> stack = normalized_defenses(spec);
  if (!stack.empty()) defense::apply(stack, mo);
  return mo;
}

namespace {

/// Detach the event log on every exit path — an attack aborted by a budget
/// breach must not leave the core tracing into a dead TrialResult.
class TraceGuard {
 public:
  TraceGuard(os::Machine& m, obs::EventLog* log) : m_(m), attached_(log) {
    if (attached_) m_.core().set_trace(attached_);
  }
  ~TraceGuard() {
    if (attached_) m_.core().set_trace(nullptr);
  }
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

 private:
  os::Machine& m_;
  obs::EventLog* attached_;
};

/// The attack phase shared by both trial paths: `m` is either freshly
/// constructed or freshly reset() — by this point the two are
/// indistinguishable. `hook` (usually null) is the fault layer's
/// checkpoint injection.
TrialResult attack_phase(const RunSpec& spec, const core::AttackInfo& info,
                         std::uint64_t seed, os::Machine& m,
                         const std::function<void(os::Machine&)>& hook = {}) {
  TrialResult t;
  t.seed = seed;

  // The fast-forward knob is sticky on the core (it survives reset()), so
  // both the fresh and the pooled path must stamp the spec's choice before
  // the attack runs — a pooled machine may have last served a spec with the
  // other setting.
  m.core().set_fast_forward(spec.fast_forward);

  // Observability: PMU deltas (and optionally the full event log) over the
  // attack phase. Attaching the log must not perturb the run —
  // tests/test_obs.cpp checks the results stay byte-identical.
  TraceGuard trace(m, spec.collect_trace ? &t.events : nullptr);
  const uarch::PmuSnapshot pmu_before = m.core().pmu().snapshot();

  core::AttackOptions opt;
  if (spec.batches > 0)
    opt.batches = spec.batches;
  else if (!info.channel && spec.rounds > 0)
    opt.batches = spec.rounds;  // KASLR spells its batch knob "rounds"
  opt.adaptive = spec.adaptive;
  opt.confidence_threshold = spec.confidence_threshold;
  opt.batch_budget = spec.batch_budget;
  opt.cycle_budget = spec.trial_cycle_budget;
  opt.wall_budget_seconds = spec.trial_wall_budget;
  opt.checkpoint_hook = hook;

  const std::unique_ptr<core::Attack> atk = info.make(m, opt);
  std::vector<std::uint8_t> payload;
  if (info.channel) payload = payload_bytes(spec);
  const core::AttackResult r = atk->run(payload);

  t.success = r.success;
  t.cycles = r.cycles;
  t.seconds = r.seconds;
  t.probes = r.probes;
  t.bytes = payload.size();
  t.byte_errors = r.byte_errors;
  t.found_slot = r.found_slot;
  t.confidence = r.confidence;
  t.gave_up = r.gave_up;
  t.tote = r.tote;

  t.pmu = uarch::pmu_delta(pmu_before, m.core().pmu().snapshot());
  t.topdown = obs::attribute_cycles(t.pmu);
  return t;
}

}  // namespace

TrialResult run_trial(const RunSpec& spec, std::uint64_t seed) {
  const core::AttackInfo& info = attack_info_or_throw(spec.attack);
  os::Machine m(machine_options(spec, seed));
  return attack_phase(spec, info, seed, m);
}

TrialResult run_trial(const RunSpec& spec, std::uint64_t seed,
                      os::Machine& m) {
  const core::AttackInfo& info = attack_info_or_throw(spec.attack);
  m.reset(seed);
  return attack_phase(spec, info, seed, m);
}

namespace {

/// Signals a pooled machine whose post-reset() digest no longer matches its
/// snapshot baseline; the retry loop treats it as "machine quarantined, try
/// again fresh".
struct ResetDriftError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Build the checkpoint hook injecting this attempt's stall/sleep faults.
/// Fire-once: the first checkpoint of the attack phase trips it, the budget
/// check right after turns it into a BudgetExceeded.
std::function<void(os::Machine&)> make_fault_hook(
    const RunSpec& spec, std::size_t index, int attempt,
    const fault::FaultPlan& plan) {
  const bool stall = plan.fires(fault::Kind::kStall, index, attempt);
  const bool sleep = plan.fires(fault::Kind::kSleep, index, attempt);
  if (!stall && !sleep) return {};
  const std::uint64_t stall_cycles = spec.trial_cycle_budget + 1;
  const double sleep_seconds = spec.trial_wall_budget + 0.05;
  auto fired = std::make_shared<bool>(false);
  return [stall, sleep, stall_cycles, sleep_seconds, fired](os::Machine& m) {
    if (*fired) return;
    *fired = true;
    if (stall) m.advance_time(stall_cycles);
    if (sleep)
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  };
}

/// One attempt of one trial. Throws on failure: ResetDriftError (after
/// quarantining the pooled machine), core::BudgetExceeded, or whatever the
/// attack itself threw.
TrialResult attempt_trial(const RunSpec& spec, const core::AttackInfo& info,
                          std::uint64_t seed, std::size_t index, int attempt,
                          const fault::FaultPlan& plan, bool verify,
                          bool force_fresh, TrialOutcome& outcome,
                          MachinePool* shared_pool) {
  if (plan.fires(fault::Kind::kThrow, index, attempt))
    throw std::runtime_error("fault: injected throw (trial " +
                             std::to_string(index) + ", attempt " +
                             std::to_string(attempt) + ")");
  const std::function<void(os::Machine&)> hook =
      make_fault_hook(spec, index, attempt, plan);

  if (spec.reuse_machine && !force_fresh) {
    MachinePool& pool =
        shared_pool ? *shared_pool : MachinePool::this_thread();
    MachinePool::Lease lease = pool.acquire(spec, seed);
    os::Machine& m = lease.machine();
    m.reset(seed);
    if (plan.fires(fault::Kind::kCorrupt, index, attempt))
      m.memsys().phys().corrupt_frame_for_test();
    if (verify && m.state_digest() != m.baseline_digest()) {
      lease.quarantine();
      outcome.quarantined = true;
      throw ResetDriftError(
          "runner: pooled machine failed the post-reset() state digest "
          "check (trial " + std::to_string(index) + ", attempt " +
          std::to_string(attempt) + "); machine quarantined");
    }
    return attack_phase(spec, info, seed, m, hook);
  }
  os::Machine m(machine_options(spec, seed));
  return attack_phase(spec, info, seed, m, hook);
}

}  // namespace

/// One trial of `spec` as run()/run_many() schedule it: seed and payload
/// stream both derived from the trial index, identically for every attempt
/// — a retry replays the same (seed, payload) coordinates, which is what
/// keeps a recovered run bit-identical to an unfailed one. All failure
/// paths end as TrialError records; nothing escapes.
ScheduledTrial run_scheduled_trial(const RunSpec& spec, std::size_t i,
                                   const fault::FaultPlan& plan, bool verify,
                                   MachinePool* pool) {
  RunSpec per_trial = spec;
  // Decorrelate the payload stream per trial alongside the seed.
  per_trial.payload_seed = spec.payload_seed ^ i;
  const std::uint64_t seed = trial_seed(spec.base_seed, i);
  const core::AttackInfo& info = attack_info_or_throw(spec.attack);

  ScheduledTrial run;
  run.result.seed = seed;
  const int max_attempts = 1 + std::max(0, spec.retries);
  const auto record = [&](TrialErrorKind kind, int attempt,
                          const char* what) {
    run.outcome.errors.push_back(
        TrialError{kind, attempt, what, spec.attack, seed});
  };
  bool force_fresh = false;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    run.outcome.attempts = attempt + 1;
    try {
      run.result = attempt_trial(per_trial, info, seed, i, attempt, plan,
                                 verify, force_fresh, run.outcome, pool);
      run.outcome.ok = true;
      return run;
    } catch (const core::BudgetExceeded& e) {
      record(e.kind() == core::BudgetExceeded::Kind::kCycles
                 ? TrialErrorKind::kCycleBudget
                 : TrialErrorKind::kWatchdog,
             attempt, e.what());
    } catch (const ResetDriftError& e) {
      record(TrialErrorKind::kResetDrift, attempt, e.what());
      force_fresh = true;  // the pooled path just proved untrustworthy
    } catch (const std::exception& e) {
      record(TrialErrorKind::kException, attempt, e.what());
    }
  }
  // Every attempt failed: the trial degrades to an empty result slot that
  // the merge step skips. Seed stays filled so the slot is identifiable.
  run.result = TrialResult{};
  run.result.seed = seed;
  run.outcome.ok = false;
  run.outcome.errors.push_back(TrialError{
      TrialErrorKind::kDegraded, max_attempts - 1,
      "trial degraded: no attempt out of " + std::to_string(max_attempts) +
          " succeeded",
      spec.attack, seed});
  return run;
}

namespace {

/// The merge step: fold per-trial results, strictly in trial index order.
/// Degraded trials keep their (empty) slot but contribute nothing to the
/// merged statistics — an all-failed run yields zeroed summaries and an
/// empty tote histogram, never a throw from empty-histogram accessors.
RunResult merge_trials(const RunSpec& spec, int jobs, double wall_seconds,
                       std::vector<ScheduledTrial> runs) {
  RunResult out;
  out.spec = spec;
  out.jobs = jobs;
  out.wall_seconds = wall_seconds;
  out.trials.reserve(runs.size());
  out.outcomes.reserve(runs.size());
  std::vector<double> secs;
  std::vector<double> confs;
  secs.reserve(runs.size());
  confs.reserve(runs.size());
  for (ScheduledTrial& tr : runs) {
    const TrialResult& t = tr.result;
    const TrialOutcome& oc = tr.outcome;
    out.total_attempts += static_cast<std::size_t>(std::max(1, oc.attempts));
    if (oc.quarantined) ++out.quarantined;
    for (const TrialError& e : oc.errors)
      ++out.error_counts[static_cast<std::size_t>(e.kind)];
    if (oc.ok) {
      ++out.completed;
      if (oc.attempts > 1) ++out.retried;
      out.successes += t.success ? 1 : 0;
      out.total_probes += t.probes;
      out.total_bytes += t.bytes;
      out.total_byte_errors += t.byte_errors;
      out.total_gave_up += t.gave_up;
      out.cycles.add(static_cast<double>(t.cycles));
      out.tote.merge(t.tote);
      for (std::size_t e = 0; e < uarch::kNumPmuEvents; ++e)
        out.pmu[e] += t.pmu[e];
      out.topdown.merge(t.topdown);
      out.events.append(t.events);
      secs.push_back(t.seconds);
      confs.push_back(t.confidence);
    } else {
      ++out.failed;
    }
    out.trials.push_back(std::move(tr.result));
    out.outcomes.push_back(std::move(tr.outcome));
  }
  out.attempted = out.trials.size();
  out.seconds = stats::summarize(std::span<const double>(secs));
  out.confidence = stats::summarize(std::span<const double>(confs));
  return out;
}

}  // namespace

obs::MetricsRegistry to_metrics(const RunResult& r,
                                const std::string& prefix) {
  obs::MetricsRegistry reg;
  reg.set_counter(prefix + "run.trials", r.trials.size());
  reg.set_counter(prefix + "run.successes", r.successes);
  reg.set_counter(prefix + "run.probes", r.total_probes);
  reg.set_counter(prefix + "run.bytes", r.total_bytes);
  reg.set_counter(prefix + "run.byte_errors", r.total_byte_errors);
  reg.set_counter(prefix + "run.gave_up", r.total_gave_up);
  reg.import_pmu(r.pmu, prefix + "pmu.");
  reg.set_counter(prefix + "topdown.total_cycles", r.topdown.total_cycles);
  reg.set_counter(prefix + "topdown.retiring", r.topdown.retiring);
  reg.set_counter(prefix + "topdown.bad_speculation",
                  r.topdown.bad_speculation);
  reg.set_counter(prefix + "topdown.frontend_bound",
                  r.topdown.frontend_bound);
  reg.set_counter(prefix + "topdown.backend_bound", r.topdown.backend_bound);
  reg.import_summary(prefix + "sim_seconds", r.seconds);
  reg.import_summary(prefix + "confidence", r.confidence);
  reg.add_histogram(prefix + "tote", r.tote);

  // Failure accounting: attempted/completed/failed plus per-class error
  // counts, so a degraded run is fully visible in --metrics-out too.
  reg.set_counter(prefix + "run.attempted", r.attempted);
  reg.set_counter(prefix + "run.completed", r.completed);
  reg.set_counter(prefix + "run.failed", r.failed);
  reg.set_counter(prefix + "run.retried", r.retried);
  reg.set_counter(prefix + "run.quarantined", r.quarantined);
  reg.set_counter(prefix + "run.attempts", r.total_attempts);
  for (std::size_t k = 0; k < kNumTrialErrorKinds; ++k)
    reg.set_counter(
        prefix + "run.errors." + to_string(static_cast<TrialErrorKind>(k)),
        r.error_counts[k]);
  return reg;
}

RunResult run(const RunSpec& spec, Executor& ex, bool progress) {
  validate(spec);  // fail before the fan-out: zero trials spawned
  const fault::FaultPlan plan = fault::FaultPlan::parse(spec.fault_plan);
  // Injected corruption is pointless unverified, so an active fault plan
  // forces the digest check on.
  const bool verify = spec.verify_reset || !plan.empty();
  const std::size_t n =
      spec.trials > 0 ? static_cast<std::size_t>(spec.trials) : 0;
  Progress meter(spec.label(), n, progress);
  WallTimer timer;
  std::vector<ScheduledTrial> trials = ex.map(
      n,
      [&spec, &plan, verify](std::size_t i) {
        return run_scheduled_trial(spec, i, plan, verify);
      },
      &meter);
  const double wall = timer.seconds();
  meter.finish(wall, ex.jobs());
  return merge_trials(spec, ex.jobs(), wall, std::move(trials));
}

RunResult run(const RunSpec& spec, int jobs, bool progress) {
  Executor ex(jobs);
  return run(spec, ex, progress);
}

std::vector<RunResult> run_many(const std::vector<RunSpec>& specs,
                                Executor& ex, bool progress) {
  std::vector<fault::FaultPlan> plans;
  std::vector<char> verify;
  plans.reserve(specs.size());
  verify.reserve(specs.size());
  for (const RunSpec& spec : specs) {
    validate(spec);  // fail before the fan-out: zero trials spawned
    plans.push_back(fault::FaultPlan::parse(spec.fault_plan));
    verify.push_back(spec.verify_reset || !plans.back().empty() ? 1 : 0);
  }
  // Flatten every (spec, trial) pair into one task list so a matrix of
  // small cells still fills the pool.
  struct Task {
    std::size_t spec_idx;
    std::size_t trial_idx;
  };
  std::vector<Task> tasks;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const int n = specs[s].trials;
    for (std::size_t i = 0; i < static_cast<std::size_t>(n > 0 ? n : 0); ++i)
      tasks.push_back({s, i});
  }

  Progress meter("runner: " + std::to_string(specs.size()) + " specs",
                 tasks.size(), progress);
  WallTimer timer;
  std::vector<ScheduledTrial> flat = ex.map(
      tasks.size(),
      [&](std::size_t k) {
        const std::size_t s = tasks[k].spec_idx;
        return run_scheduled_trial(specs[s], tasks[k].trial_idx, plans[s],
                                   verify[s] != 0);
      },
      &meter);
  const double wall = timer.seconds();
  meter.finish(wall, ex.jobs());

  std::vector<RunResult> out;
  out.reserve(specs.size());
  std::size_t next = 0;
  for (const RunSpec& spec : specs) {
    const std::size_t n =
        spec.trials > 0 ? static_cast<std::size_t>(spec.trials) : 0;
    std::vector<ScheduledTrial> trials(
        std::make_move_iterator(flat.begin() + static_cast<std::ptrdiff_t>(next)),
        std::make_move_iterator(flat.begin() +
                                static_cast<std::ptrdiff_t>(next + n)));
    next += n;
    out.push_back(merge_trials(spec, ex.jobs(), wall, std::move(trials)));
  }
  return out;
}

}  // namespace whisper::runner
