#include "runner/runner.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>

#include "core/attacks/registry.h"
#include "os/machine.h"
#include "stats/rng.h"

namespace whisper::runner {

namespace {

std::vector<std::uint8_t> payload_bytes(const RunSpec& spec) {
  // run()/run_many() fold the trial index into payload_seed, so multi-trial
  // channel runs move different payloads; a seed of K reproduces
  // bench_util's random_bytes(n, K) stream exactly.
  stats::Xoshiro256 rng(spec.payload_seed);
  std::vector<std::uint8_t> out(spec.payload_bytes);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

const core::AttackInfo& attack_info_or_throw(const std::string& name) {
  const core::AttackInfo* info = core::find_attack(name);
  if (info == nullptr)
    throw std::invalid_argument("runner: unknown attack '" + name + "'");
  return *info;
}

/// Construction inputs that must match for a pooled Machine to be reusable
/// via reset(): everything machine_options() forwards except the per-trial
/// seed (reset() re-derives every seeded stream). Doubles are serialised as
/// hexfloats — exact, so two profiles can never alias to one machine.
std::string machine_key(const RunSpec& spec) {
  char buf[64];
  std::string k = std::to_string(static_cast<int>(spec.model));
  k += '|';
  k += spec.kernel.kpti ? '1' : '0';
  k += spec.kernel.flare ? '1' : '0';
  k += spec.kernel.fgkaslr ? '1' : '0';
  k += '.';
  k += std::to_string(spec.kernel.kaslr_slot);
  k += '.';
  k += std::to_string(spec.kernel.seed);
  k += '|';
  k += spec.docker ? '1' : '0';
  k += '|';
  k += spec.noise.name;
  k += '.';
  k += std::to_string(spec.noise.seed);
  for (const noise::NoiseSource& s : spec.noise.sources) {
    std::snprintf(buf, sizeof buf, ":%d=%a", static_cast<int>(s.kind),
                  s.intensity);
    k += buf;
  }
  return k;
}

/// Per-worker machine pool: one snapshot()ted Machine per construction key,
/// reset() between trials. thread_local, so the executor's persistent
/// workers (and the jobs==1 inline path) each keep their own — no sharing,
/// no locks. A tiny LRU cap bounds memory when sweeps interleave many
/// models/profiles on one thread.
struct PooledMachine {
  std::string key;
  std::unique_ptr<os::Machine> machine;
};
constexpr std::size_t kMaxPooledMachines = 4;
thread_local std::vector<PooledMachine> tl_machines;

os::Machine& pooled_machine(const RunSpec& spec, std::uint64_t seed) {
  std::string key = machine_key(spec);
  for (auto it = tl_machines.begin(); it != tl_machines.end(); ++it) {
    if (it->key == key) {
      std::rotate(tl_machines.begin(), it, it + 1);  // move to front
      return *tl_machines.front().machine;
    }
  }
  auto m = std::make_unique<os::Machine>(machine_options(spec, seed));
  m->snapshot();
  tl_machines.insert(tl_machines.begin(),
                     PooledMachine{std::move(key), std::move(m)});
  if (tl_machines.size() > kMaxPooledMachines) tl_machines.pop_back();
  return *tl_machines.front().machine;
}

}  // namespace

std::string RunSpec::label() const {
  std::string out = "tet-";
  out += attack;
  out += " @ ";
  out += uarch::make_config(model).name;
  if (kernel.kpti) out += " +KPTI";
  if (kernel.flare) out += " +FLARE";
  if (docker) out += " (docker)";
  if (noise.enabled()) out += " +noise:" + noise.name;
  if (adaptive) out += " (adaptive)";
  out += " x" + std::to_string(trials);
  return out;
}

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t index) {
  const std::uint64_t s = stats::SplitMix64(base_seed ^ index).next();
  return s ? s : 1;  // 0 would mean "derive from the CPU preset"
}

os::MachineOptions machine_options(const RunSpec& spec, std::uint64_t seed) {
  os::MachineOptions mo;
  mo.model = spec.model;
  mo.kernel = spec.kernel;
  mo.docker = spec.docker;
  mo.seed = seed;
  mo.noise = spec.noise;
  return mo;
}

namespace {

/// The attack phase shared by both trial paths: `m` is either freshly
/// constructed or freshly reset() — by this point the two are
/// indistinguishable.
TrialResult attack_phase(const RunSpec& spec, const core::AttackInfo& info,
                         std::uint64_t seed, os::Machine& m) {
  TrialResult t;
  t.seed = seed;

  // Observability: PMU deltas (and optionally the full event log) over the
  // attack phase. Attaching the log must not perturb the run —
  // tests/test_obs.cpp checks the results stay byte-identical.
  if (spec.collect_trace) m.core().set_trace(&t.events);
  const uarch::PmuSnapshot pmu_before = m.core().pmu().snapshot();

  core::AttackOptions opt;
  if (spec.batches > 0)
    opt.batches = spec.batches;
  else if (!info.channel && spec.rounds > 0)
    opt.batches = spec.rounds;  // KASLR spells its batch knob "rounds"
  opt.adaptive = spec.adaptive;
  opt.confidence_threshold = spec.confidence_threshold;
  opt.batch_budget = spec.batch_budget;

  const std::unique_ptr<core::Attack> atk = info.make(m, opt);
  std::vector<std::uint8_t> payload;
  if (info.channel) payload = payload_bytes(spec);
  const core::AttackResult r = atk->run(payload);

  t.success = r.success;
  t.cycles = r.cycles;
  t.seconds = r.seconds;
  t.probes = r.probes;
  t.bytes = payload.size();
  t.byte_errors = r.byte_errors;
  t.found_slot = r.found_slot;
  t.confidence = r.confidence;
  t.gave_up = r.gave_up;
  t.tote = r.tote;

  t.pmu = uarch::pmu_delta(pmu_before, m.core().pmu().snapshot());
  t.topdown = obs::attribute_cycles(t.pmu);
  if (spec.collect_trace) m.core().set_trace(nullptr);
  return t;
}

}  // namespace

TrialResult run_trial(const RunSpec& spec, std::uint64_t seed) {
  const core::AttackInfo& info = attack_info_or_throw(spec.attack);
  os::Machine m(machine_options(spec, seed));
  return attack_phase(spec, info, seed, m);
}

TrialResult run_trial(const RunSpec& spec, std::uint64_t seed,
                      os::Machine& m) {
  const core::AttackInfo& info = attack_info_or_throw(spec.attack);
  m.reset(seed);
  return attack_phase(spec, info, seed, m);
}

namespace {

/// One trial of `spec` as run()/run_many() schedule it: seed and payload
/// stream both derived from the trial index. The per-trial seed is computed
/// before either path touches a Machine, so fresh and pooled trials see the
/// same schedule by construction.
TrialResult run_indexed_trial(const RunSpec& spec, std::size_t i) {
  RunSpec per_trial = spec;
  // Decorrelate the payload stream per trial alongside the seed.
  per_trial.payload_seed = spec.payload_seed ^ i;
  const std::uint64_t seed = trial_seed(spec.base_seed, i);
  if (spec.reuse_machine)
    return run_trial(per_trial, seed, pooled_machine(per_trial, seed));
  return run_trial(per_trial, seed);
}

/// The merge step: fold per-trial results, strictly in trial index order.
RunResult merge_trials(const RunSpec& spec, int jobs, double wall_seconds,
                       std::vector<TrialResult> trials) {
  RunResult out;
  out.spec = spec;
  out.jobs = jobs;
  out.wall_seconds = wall_seconds;
  out.trials = std::move(trials);
  std::vector<double> secs;
  std::vector<double> confs;
  secs.reserve(out.trials.size());
  confs.reserve(out.trials.size());
  for (const TrialResult& t : out.trials) {
    out.successes += t.success ? 1 : 0;
    out.total_probes += t.probes;
    out.total_bytes += t.bytes;
    out.total_byte_errors += t.byte_errors;
    out.total_gave_up += t.gave_up;
    out.cycles.add(static_cast<double>(t.cycles));
    out.tote.merge(t.tote);
    for (std::size_t e = 0; e < uarch::kNumPmuEvents; ++e)
      out.pmu[e] += t.pmu[e];
    out.topdown.merge(t.topdown);
    out.events.append(t.events);
    secs.push_back(t.seconds);
    confs.push_back(t.confidence);
  }
  out.seconds = stats::summarize(std::span<const double>(secs));
  out.confidence = stats::summarize(std::span<const double>(confs));
  return out;
}

}  // namespace

obs::MetricsRegistry to_metrics(const RunResult& r,
                                const std::string& prefix) {
  obs::MetricsRegistry reg;
  reg.set_counter(prefix + "run.trials", r.trials.size());
  reg.set_counter(prefix + "run.successes", r.successes);
  reg.set_counter(prefix + "run.probes", r.total_probes);
  reg.set_counter(prefix + "run.bytes", r.total_bytes);
  reg.set_counter(prefix + "run.byte_errors", r.total_byte_errors);
  reg.set_counter(prefix + "run.gave_up", r.total_gave_up);
  reg.import_pmu(r.pmu, prefix + "pmu.");
  reg.set_counter(prefix + "topdown.total_cycles", r.topdown.total_cycles);
  reg.set_counter(prefix + "topdown.retiring", r.topdown.retiring);
  reg.set_counter(prefix + "topdown.bad_speculation",
                  r.topdown.bad_speculation);
  reg.set_counter(prefix + "topdown.frontend_bound",
                  r.topdown.frontend_bound);
  reg.set_counter(prefix + "topdown.backend_bound", r.topdown.backend_bound);
  reg.import_summary(prefix + "sim_seconds", r.seconds);
  reg.import_summary(prefix + "confidence", r.confidence);
  reg.add_histogram(prefix + "tote", r.tote);
  return reg;
}

RunResult run(const RunSpec& spec, Executor& ex, bool progress) {
  (void)attack_info_or_throw(spec.attack);  // fail before the fan-out
  const std::size_t n =
      spec.trials > 0 ? static_cast<std::size_t>(spec.trials) : 0;
  Progress meter(spec.label(), n, progress);
  WallTimer timer;
  std::vector<TrialResult> trials = ex.map(
      n, [&spec](std::size_t i) { return run_indexed_trial(spec, i); },
      &meter);
  const double wall = timer.seconds();
  meter.finish(wall, ex.jobs());
  return merge_trials(spec, ex.jobs(), wall, std::move(trials));
}

RunResult run(const RunSpec& spec, int jobs, bool progress) {
  Executor ex(jobs);
  return run(spec, ex, progress);
}

std::vector<RunResult> run_many(const std::vector<RunSpec>& specs,
                                Executor& ex, bool progress) {
  for (const RunSpec& spec : specs)
    (void)attack_info_or_throw(spec.attack);  // fail before the fan-out
  // Flatten every (spec, trial) pair into one task list so a matrix of
  // small cells still fills the pool.
  struct Task {
    std::size_t spec_idx;
    std::size_t trial_idx;
  };
  std::vector<Task> tasks;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const int n = specs[s].trials;
    for (std::size_t i = 0; i < static_cast<std::size_t>(n > 0 ? n : 0); ++i)
      tasks.push_back({s, i});
  }

  Progress meter("runner: " + std::to_string(specs.size()) + " specs",
                 tasks.size(), progress);
  WallTimer timer;
  std::vector<TrialResult> flat = ex.map(
      tasks.size(),
      [&](std::size_t k) {
        return run_indexed_trial(specs[tasks[k].spec_idx],
                                 tasks[k].trial_idx);
      },
      &meter);
  const double wall = timer.seconds();
  meter.finish(wall, ex.jobs());

  std::vector<RunResult> out;
  out.reserve(specs.size());
  std::size_t next = 0;
  for (const RunSpec& spec : specs) {
    const std::size_t n =
        spec.trials > 0 ? static_cast<std::size_t>(spec.trials) : 0;
    std::vector<TrialResult> trials(flat.begin() + next,
                                    flat.begin() + next + n);
    next += n;
    out.push_back(merge_trials(spec, ex.jobs(), wall, std::move(trials)));
  }
  return out;
}

}  // namespace whisper::runner
