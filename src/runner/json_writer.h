// JSON serialisation of runner results — the bench/*.json trajectory format.
//
// Hand-rolled writer (no third-party JSON dependency in the image): enough
// of the grammar for flat objects, arrays, strings, numbers and booleans.
// The output is deterministic (fixed key order, fixed float formatting), so
// a trajectory file is diffable across runs and across --jobs values.
#pragma once

#include <cstdint>
#include <string>

#include "runner/runner.h"

namespace whisper::runner {

/// Incremental JSON writer. Keys and values must be emitted in pairs inside
/// objects; the writer inserts commas and quoting.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& k);
  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v);
  void value(bool v);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void comma();
  void escaped(const std::string& s);

  std::string out_;
  bool need_comma_ = false;
};

/// Serialise a finished run: spec, merged stats, and the ordered per-trial
/// records (including each trial's ToTE histogram buckets).
[[nodiscard]] std::string to_json(const RunResult& r);

/// Write to_json(r) to `path`; returns false (and prints to stderr) on I/O
/// failure.
bool write_json_file(const RunResult& r, const std::string& path);

}  // namespace whisper::runner
