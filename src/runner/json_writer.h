// JSON serialisation of runner results — the bench/*.json trajectory format.
//
// The generic writer lives in stats/json.h (shared with the obs exporters);
// this header keeps the runner-specific serialisation of RunResult. The
// output is deterministic (fixed key order, fixed float formatting), so a
// trajectory file is diffable across runs and across --jobs values.
#pragma once

#include <string>

#include "runner/runner.h"
#include "stats/json.h"

namespace whisper::runner {

using JsonWriter = stats::JsonWriter;

/// Serialise a finished run: spec, merged stats, PMU-derived top-down cycle
/// attribution, and the ordered per-trial records (including each trial's
/// ToTE histogram buckets).
[[nodiscard]] std::string to_json(const RunResult& r);

/// Write to_json(r) to `path`; returns false (and prints to stderr) on I/O
/// failure.
bool write_json_file(const RunResult& r, const std::string& path);

}  // namespace whisper::runner
