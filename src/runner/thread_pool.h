// Fixed-size worker pool backing the trial executor.
//
// Deliberately minimal: submit void() tasks, wait for the queue to drain.
// Result ordering and determinism are the Executor's job (it writes each
// trial's result into a pre-sized slot keyed by trial index), so the pool
// needs no futures and no ordering guarantees of its own.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace whisper::runner {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. A trial's failure is data, not an exception — the
  /// Executor wraps user callables so their exceptions are captured into
  /// the trial's result slot. Should one escape anyway, the worker loop
  /// swallows it (keeping the in-flight accounting intact) rather than
  /// letting it unwind the thread into std::terminate.
  void submit(std::function<void()> task);

  /// Block until every submitted task has run to completion.
  void wait_idle();

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;  // workers: queue non-empty or stopping
  std::condition_variable cv_idle_;  // wait_idle: queue empty and none running
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace whisper::runner
