#include "runner/thread_pool.h"

#include <string>

#include "obs/thread_name.h"

namespace whisper::runner {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] {
      // Name the worker so Chrome traces, watchdog reports and `top -H`
      // attribute its cycles to the pool, not an anonymous thread
      // (tests/test_obs.cpp pins the prefix).
      obs::set_current_thread_name("wsp-work-" + std::to_string(i));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      // The Executor wraps every user callable, so nothing should arrive
      // here — but an escaped exception must not skip the in_flight_
      // decrement (wait_idle() would hang forever) or unwind out of the
      // worker thread (std::terminate). Swallow and keep serving.
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace whisper::runner
