#include "runner/executor.h"

#include <cstdio>

namespace whisper::runner {

int default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

int resolve_jobs(int requested) {
  return requested <= 0 ? default_jobs() : requested;
}

Progress::Progress(std::string label, std::size_t total, bool enabled)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled),
      last_print_(std::chrono::steady_clock::now()) {}

void Progress::tick() {
  const std::size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(print_mu_);
  const auto now = std::chrono::steady_clock::now();
  // At most ~4 lines/second, but always report the final item.
  if (done != total_ && now - last_print_ < std::chrono::milliseconds(250))
    return;
  last_print_ = now;
  std::fprintf(stderr, "%s: %zu/%zu trials (%.0f%%)\n", label_.c_str(), done,
               total_, 100.0 * static_cast<double>(done) /
                           static_cast<double>(total_ ? total_ : 1));
}

void Progress::finish(double wall_seconds, int jobs) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(print_mu_);
  std::fprintf(stderr, "%s: %zu/%zu trials done in %.2f s wall (jobs=%d)\n",
               label_.c_str(), done_.load(), total_, wall_seconds, jobs);
}

Executor::Executor(int jobs) : jobs_(resolve_jobs(jobs)) {
  if (jobs_ > 1) pool_ = std::make_unique<ThreadPool>(jobs_);
}

}  // namespace whisper::runner
