// TCP transport: the same newline-framed JSON protocol on host:port.
//
// This is what turns whisper_serve from "one box" into one endpoint of a
// sweep pool: `whisper_serve --listen 0.0.0.0:7777` on each machine,
// `whisper_cli sweep --endpoints a:7777,b:7777,c:7777` on the client. The
// wire bytes are identical to the unix and loopback transports (invariant
// 11 makes the response stream a pure function of the request line), so a
// sweep merged across TCP endpoints is byte-identical to a local
// runner::run — invariant 13 builds on exactly this.
//
// Shares FdConnection with the unix transport: EINTR-safe accept and
// reads, SIGPIPE-free partial-write-safe writes, bounded line length,
// poll()-based read deadlines for the client side. POSIX-only; the
// constructor throws elsewhere (and under sandboxes that forbid AF_INET),
// so callers degrade to loopback/unix instead of crashing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/transport.h"

namespace whisper::serve {

class TcpTransport : public Transport {
 public:
  /// Bind and listen on "host:port". Host may be empty ("``:7777``" and
  /// ":7777" bind every interface); port 0 picks an ephemeral port —
  /// address()/port() report the one the kernel chose, which is how tests
  /// avoid hard-coding ports. SO_REUSEADDR is set so a restarted daemon
  /// does not fight TIME_WAIT. Throws std::runtime_error on resolve/bind/
  /// listen failure.
  explicit TcpTransport(const std::string& address);
  ~TcpTransport() override;

  std::unique_ptr<Connection> accept() override;
  void shutdown() override;

  /// The bound address as "host:port" with the real port filled in.
  [[nodiscard]] const std::string& address() const { return address_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Client side: connect to "host:port" with a bounded connect wait
  /// (`timeout_ms` < 0 = block; same knob as UnixSocketTransport::dial).
  /// Throws DialError on refusal, unreachable host, or timeout.
  [[nodiscard]] static std::unique_ptr<Connection> dial(
      const std::string& address, int timeout_ms = -1);

 private:
  std::string address_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::size_t next_id_ = 0;
};

}  // namespace whisper::serve
