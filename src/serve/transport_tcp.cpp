#include "serve/transport_tcp.h"

#include <stdexcept>

#include "serve/fd_connection.h"

#if defined(WHISPER_HAVE_FD_CONNECTION)
#define WHISPER_HAVE_TCP 1
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace whisper::serve {

#if WHISPER_HAVE_TCP

namespace {

struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Split "host:port" on the LAST colon (bare "host" is an error; an empty
/// host means "every interface" when listening, loopback when dialing).
HostPort split_host_port(const std::string& address, const char* what) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos)
    throw std::runtime_error(std::string("serve: ") + what +
                             " address must be host:port, got '" + address +
                             "'");
  HostPort hp;
  hp.host = address.substr(0, colon);
  const std::string digits = address.substr(colon + 1);
  unsigned long port = 0;
  if (digits.empty()) port = 65536;  // force the range error below
  for (const char c : digits) {
    if (c < '0' || c > '9') port = 65536;
    if (port <= 65535) port = port * 10 + static_cast<unsigned long>(c - '0');
  }
  if (port > 65535)
    throw std::runtime_error(std::string("serve: ") + what + " port in '" +
                             address + "' must be 0..65535");
  hp.port = static_cast<std::uint16_t>(port);
  return hp;
}

/// Resolve host to an IPv4 sockaddr_in. getaddrinfo handles dotted quads
/// and names alike; AF_INET keeps the address model simple (one socket,
/// one family) — the pool boxes this targets speak IPv4.
sockaddr_in resolve(const std::string& host, std::uint16_t port, bool listen,
                    std::string* canonical) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string name =
      host.empty() ? (listen ? "0.0.0.0" : "127.0.0.1") : host;
  if (::inet_pton(AF_INET, name.c_str(), &addr.sin_addr) != 1) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    if (listen) hints.ai_flags = AI_PASSIVE;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(name.c_str(), nullptr, &hints, &res);
    if (rc != 0 || res == nullptr)
      throw std::runtime_error("serve: cannot resolve host '" + name +
                               "': " + ::gai_strerror(rc));
    addr.sin_addr =
        reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  if (canonical != nullptr) {
    char buf[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof buf);
    *canonical = buf;
  }
  return addr;
}

}  // namespace

TcpTransport::TcpTransport(const std::string& address) {
  const HostPort hp = split_host_port(address, "listen");
  std::string host;
  sockaddr_in addr = resolve(hp.host, hp.port, /*listen=*/true, &host);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  const int one = 1;
  // A daemon restarted onto the same port must not lose to TIME_WAIT.
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot listen on " + address + ": " + err);
  }
  // Report the port the kernel actually chose (matters for port 0).
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);
  else
    port_ = hp.port;
  address_ = host + ":" + std::to_string(port_);
}

TcpTransport::~TcpTransport() { shutdown(); }

std::unique_ptr<Connection> TcpTransport::accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd >= 0)
      return std::make_unique<FdConnection>(
          fd, "tcp:" + std::to_string(next_id_++));
    if (errno == EINTR) continue;
    return nullptr;  // listen fd shut down or gone
  }
}

void TcpTransport::shutdown() {
  if (listen_fd_ >= 0) {
    // Same trick as the unix transport: shutdown() unblocks a concurrent
    // accept(); close() alone leaves it parked on Linux.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::unique_ptr<Connection> TcpTransport::dial(const std::string& address,
                                               int timeout_ms) {
  const HostPort hp = split_host_port(address, "dial");
  sockaddr_in addr{};
  try {
    addr = resolve(hp.host, hp.port, /*listen=*/false, nullptr);
  } catch (const std::runtime_error&) {
    // Resolution failure is a dial failure: typed, countable, retryable.
    throw DialError("cannot resolve '" + address + "'");
  }
  const int fd = dial_fd(AF_INET, &addr, sizeof addr, timeout_ms, address);
  return std::make_unique<FdConnection>(fd, "tcp:dial:" + address);
}

#else  // !WHISPER_HAVE_TCP

TcpTransport::TcpTransport(const std::string&) {
  throw std::runtime_error(
      "serve: TCP sockets unavailable on this platform; use the loopback "
      "transport");
}

TcpTransport::~TcpTransport() = default;
std::unique_ptr<Connection> TcpTransport::accept() { return nullptr; }
void TcpTransport::shutdown() {}
std::unique_ptr<Connection> TcpTransport::dial(const std::string&, int) {
  throw std::runtime_error("serve: TCP sockets unavailable");
}

#endif

}  // namespace whisper::serve
