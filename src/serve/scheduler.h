// Per-client round-robin job queue for the serve daemon.
//
// One greedy client must not starve the others: jobs are queued per
// client, and workers pop one job per client in rotation. A client that
// floods 1000 run requests while another sends 1 still sees the single
// request dispatched after at most (number of clients) pops, not after
// 1000 (tests/test_serve.cpp pins this with a starved-client schedule).
//
// Shutdown is drain-then-stop: close() refuses NEW jobs immediately
// (push() returns false and the caller answers the client with an error
// line), but pop() keeps handing out everything already queued before
// reporting end-of-queue — the soak test's "zero lost requests" invariant
// is this drain plus the loopback transport's close-drains semantics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>

namespace whisper::serve {

/// Counters for the metrics verb ("serve.queue.*"). Monotonic except depth.
struct SchedulerStats {
  std::uint64_t pushed = 0;    // jobs accepted
  std::uint64_t popped = 0;    // jobs handed to workers
  std::uint64_t rejected = 0;  // pushes refused after close()
  std::size_t depth = 0;       // jobs currently queued
};

/// FIFO per client, round-robin across clients. JobT must be movable.
template <typename JobT>
class FairScheduler {
 public:
  /// Queue a job for `client`. False (job dropped) once close()d.
  bool push(std::uint64_t client, JobT job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        ++stats_.rejected;
        return false;
      }
      std::deque<JobT>& q = queues_[client];
      if (q.empty()) rotation_.push_back(client);
      q.push_back(std::move(job));
      ++stats_.pushed;
    }
    cv_.notify_one();
    return true;
  }

  /// Block for the next job, rotating between clients. Returns false only
  /// when closed AND every queue has drained.
  bool pop(JobT& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !rotation_.empty(); });
    if (rotation_.empty()) return false;
    const std::uint64_t client = rotation_.front();
    rotation_.pop_front();
    std::deque<JobT>& q = queues_[client];
    out = std::move(q.front());
    q.pop_front();
    if (q.empty())
      queues_.erase(client);
    else
      rotation_.push_back(client);  // back of the rotation: fairness
    ++stats_.popped;
    return true;
  }

  /// Stop accepting jobs; queued jobs still drain through pop().
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] SchedulerStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    SchedulerStats s = stats_;
    s.depth = static_cast<std::size_t>(stats_.pushed - stats_.popped);
    return s;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::deque<JobT>> queues_;
  std::deque<std::uint64_t> rotation_;  // clients with pending jobs
  bool closed_ = false;
  SchedulerStats stats_;
};

}  // namespace whisper::serve
