#include "serve/transport_unix.h"

#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define WHISPER_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#endif

namespace whisper::serve {

#if WHISPER_HAVE_UNIX_SOCKETS

namespace {

#ifndef MSG_NOSIGNAL
// macOS spells SIGPIPE suppression differently (SO_NOSIGPIPE); writes to a
// dead peer there surface as EPIPE after the signal is ignored per-process
// by the caller. Linux — the platform we actually run on — has the flag.
#define MSG_NOSIGNAL 0
#endif

class FdConnection : public Connection {
 public:
  FdConnection(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}
  ~FdConnection() override { close(); }

  bool read_line(std::string& out) override {
    out.clear();
    for (;;) {
      // Serve lines straight from the buffer while we have any.
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n > 0) {
        buf_.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      // EOF or error: a final unterminated fragment still counts as a
      // line so a peer that forgot the trailing newline is not ignored.
      if (!buf_.empty()) {
        out = std::move(buf_);
        buf_.clear();
        return true;
      }
      return false;
    }
  }

  bool write_line(const std::string& line) override {
    // One lock per line keeps concurrent workers' lines from interleaving.
    std::lock_guard<std::mutex> lock(write_mu_);
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

  [[nodiscard]] std::string peer() const override { return peer_; }

 private:
  int fd_;
  std::string peer_;
  std::string buf_;
  std::mutex write_mu_;
};

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    throw std::runtime_error("serve: socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

UnixSocketTransport::UnixSocketTransport(const std::string& path)
    : path_(path) {
  const sockaddr_un addr = make_addr(path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  ::unlink(path.c_str());  // clear a stale socket from a crashed daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot listen on " + path + ": " + err);
  }
}

UnixSocketTransport::~UnixSocketTransport() { shutdown(); }

std::unique_ptr<Connection> UnixSocketTransport::accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd >= 0)
      return std::make_unique<FdConnection>(
          fd, "unix:" + std::to_string(next_id_++));
    if (errno == EINTR) continue;
    return nullptr;  // listen fd shut down or gone
  }
}

void UnixSocketTransport::shutdown() {
  if (listen_fd_ >= 0) {
    // shutdown() on the listening fd unblocks a concurrent accept();
    // plain close() alone leaves it hanging on Linux.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
  }
}

std::unique_ptr<Connection> UnixSocketTransport::dial(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("serve: cannot connect to " + path + ": " + err);
  }
  return std::make_unique<FdConnection>(fd, "unix:dial");
}

#else  // !WHISPER_HAVE_UNIX_SOCKETS

UnixSocketTransport::UnixSocketTransport(const std::string& path)
    : path_(path) {
  throw std::runtime_error(
      "serve: unix-domain sockets unavailable on this platform; use the "
      "loopback transport");
}

UnixSocketTransport::~UnixSocketTransport() = default;
std::unique_ptr<Connection> UnixSocketTransport::accept() { return nullptr; }
void UnixSocketTransport::shutdown() {}
std::unique_ptr<Connection> UnixSocketTransport::dial(const std::string&) {
  throw std::runtime_error("serve: unix-domain sockets unavailable");
}

#endif

}  // namespace whisper::serve
