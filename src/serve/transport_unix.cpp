#include "serve/transport_unix.h"

#include <stdexcept>

#include "serve/fd_connection.h"

#if defined(WHISPER_HAVE_FD_CONNECTION)
#define WHISPER_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace whisper::serve {

#if WHISPER_HAVE_UNIX_SOCKETS

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    throw std::runtime_error("serve: socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

UnixSocketTransport::UnixSocketTransport(const std::string& path)
    : path_(path) {
  const sockaddr_un addr = make_addr(path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  ::unlink(path.c_str());  // clear a stale socket from a crashed daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot listen on " + path + ": " + err);
  }
}

UnixSocketTransport::~UnixSocketTransport() { shutdown(); }

std::unique_ptr<Connection> UnixSocketTransport::accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd >= 0)
      return std::make_unique<FdConnection>(
          fd, "unix:" + std::to_string(next_id_++));
    if (errno == EINTR) continue;
    return nullptr;  // listen fd shut down or gone
  }
}

void UnixSocketTransport::shutdown() {
  if (listen_fd_ >= 0) {
    // shutdown() on the listening fd unblocks a concurrent accept();
    // plain close() alone leaves it hanging on Linux.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
  }
}

std::unique_ptr<Connection> UnixSocketTransport::dial(const std::string& path,
                                                      int timeout_ms) {
  const sockaddr_un addr = make_addr(path);
  const int fd = dial_fd(AF_UNIX, &addr, sizeof addr, timeout_ms, path);
  return std::make_unique<FdConnection>(fd, "unix:dial");
}

#else  // !WHISPER_HAVE_UNIX_SOCKETS

UnixSocketTransport::UnixSocketTransport(const std::string& path)
    : path_(path) {
  throw std::runtime_error(
      "serve: unix-domain sockets unavailable on this platform; use the "
      "loopback transport");
}

UnixSocketTransport::~UnixSocketTransport() = default;
std::unique_ptr<Connection> UnixSocketTransport::accept() { return nullptr; }
void UnixSocketTransport::shutdown() {}
std::unique_ptr<Connection> UnixSocketTransport::dial(const std::string&,
                                                      int) {
  throw std::runtime_error("serve: unix-domain sockets unavailable");
}

#endif

}  // namespace whisper::serve
