#include "serve/transport_loopback.h"

#include <chrono>

namespace whisper::serve {

bool LineChannel::push(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    lines_.push_back(line);
  }
  cv_.notify_one();
  return true;
}

bool LineChannel::pop(std::string& out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !lines_.empty(); });
  if (lines_.empty()) return false;  // closed and drained
  out = std::move(lines_.front());
  lines_.pop_front();
  return true;
}

ReadStatus LineChannel::pop_for(std::string& out, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto ready = [this] { return closed_ || !lines_.empty(); };
  if (timeout_ms < 0) {
    cv_.wait(lock, ready);
  } else if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           ready)) {
    return ReadStatus::kTimeout;
  }
  if (lines_.empty()) return ReadStatus::kClosed;  // closed and drained
  out = std::move(lines_.front());
  lines_.pop_front();
  return ReadStatus::kLine;
}

bool LineChannel::try_pop(std::string& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lines_.empty()) return false;
  out = std::move(lines_.front());
  lines_.pop_front();
  return true;
}

void LineChannel::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool LineChannel::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t LineChannel::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

bool LoopbackClient::send(const std::string& line) {
  return to_server_->push(line);
}

bool LoopbackClient::recv(std::string& out) { return to_client_->pop(out); }

ReadStatus LoopbackClient::recv_for(std::string& out, int timeout_ms) {
  return to_client_->pop_for(out, timeout_ms);
}

bool LoopbackClient::try_recv(std::string& out) {
  return to_client_->try_pop(out);
}

void LoopbackClient::close_send() { to_server_->close(); }

void LoopbackClient::close() {
  to_server_->close();
  to_client_->close();
}

namespace {

class LoopbackConnection : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<LineChannel> from_client,
                     std::shared_ptr<LineChannel> to_client, std::size_t id)
      : from_client_(std::move(from_client)),
        to_client_(std::move(to_client)),
        id_(id) {}

  ~LoopbackConnection() override { close(); }

  bool read_line(std::string& out) override { return from_client_->pop(out); }

  bool write_line(const std::string& line) override {
    return to_client_->push(line);
  }

  void close() override {
    from_client_->close();
    to_client_->close();
  }

  [[nodiscard]] std::string peer() const override {
    return "loopback:" + std::to_string(id_);
  }

 private:
  std::shared_ptr<LineChannel> from_client_;
  std::shared_ptr<LineChannel> to_client_;
  std::size_t id_;
};

}  // namespace

std::unique_ptr<LoopbackClient> LoopbackTransport::connect() {
  auto client = std::unique_ptr<LoopbackClient>(new LoopbackClient);
  client->to_server_ = std::make_shared<LineChannel>();
  client->to_client_ = std::make_shared<LineChannel>();
  std::unique_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_) {
      // Transport already shut down: hand back a dead client instead of
      // blocking or throwing, so racing connects during teardown are
      // harmless.
      client->to_server_->close();
      client->to_client_->close();
      return client;
    }
    conn = std::make_unique<LoopbackConnection>(client->to_server_,
                                                client->to_client_, next_id_++);
    pending_.push_back(std::move(conn));
  }
  cv_.notify_one();
  return client;
}

std::unique_ptr<Connection> LoopbackTransport::accept() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return down_ || !pending_.empty(); });
  if (pending_.empty()) return nullptr;  // shut down with nothing queued
  auto conn = std::move(pending_.front());
  pending_.pop_front();
  return conn;
}

void LoopbackTransport::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    down_ = true;
    // Connections handed to connect() but never accepted would leave the
    // client blocked in recv() forever; closing them delivers EOF.
    for (auto& conn : pending_) conn->close();
    pending_.clear();
  }
  cv_.notify_all();
}

}  // namespace whisper::serve
