// SOCK_STREAM unix-domain socket transport for examples/whisper_serve.
//
// Newline-framed JSON over a filesystem socket, so a daemon can be driven
// with nothing fancier than `nc -U` or a short python script (see
// docs/REPRODUCING.md). Gated to POSIX: on other platforms the
// constructor throws and the daemon falls back to loopback-only mode.
#pragma once

#include <memory>
#include <string>

#include "serve/transport.h"

namespace whisper::serve {

class UnixSocketTransport : public Transport {
 public:
  /// Bind and listen on `path`. Any stale socket file left by a previous
  /// (crashed) daemon is unlinked first. Throws std::runtime_error when
  /// the socket cannot be created (path too long for sockaddr_un, bind
  /// failure, unsupported platform).
  explicit UnixSocketTransport(const std::string& path);
  ~UnixSocketTransport() override;

  std::unique_ptr<Connection> accept() override;
  void shutdown() override;

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Client-side convenience: connect to `path` and wrap the fd in a
  /// Connection (read_line ← responses, write_line → requests). Used by
  /// `whisper_serve --request` one-shot mode and the sweep client's unix
  /// endpoints. `timeout_ms` bounds the connect (< 0 = block); the same
  /// knob TcpTransport::dial() takes. Throws DialError — typed, so a
  /// nonexistent or stale socket path is a countable failure, never a
  /// hang — and std::runtime_error for a path too long to encode.
  [[nodiscard]] static std::unique_ptr<Connection> dial(
      const std::string& path, int timeout_ms = -1);

 private:
  std::string path_;
  int listen_fd_ = -1;
  std::size_t next_id_ = 0;
};

}  // namespace whisper::serve
