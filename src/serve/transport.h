// Pluggable byte transport for the whisper_serve daemon.
//
// The serving stack is transport-agnostic: the protocol is newline-framed
// JSON in both directions (src/serve/protocol.h), so a transport only has
// to move lines. Three implementations:
//
//   * LoopbackTransport (transport_loopback.h) — in-process queue pairs;
//     what the tests and bench/serve_soak drive, no sockets, no fds.
//   * UnixSocketTransport (transport_unix.h) — a SOCK_STREAM unix-domain
//     socket; what examples/whisper_serve binds by default.
//   * TcpTransport (transport_tcp.h) — TCP on host:port; what turns one
//     daemon into one endpoint of a sweep pool (whisper_serve --listen,
//     whisper_cli sweep --endpoints).
//
// Threading contract:
//   * accept() is called from exactly one thread (the server's accept
//     loop); it blocks until a client connects and returns nullptr once
//     shutdown() has been called.
//   * Connection::read_line() / read_line_for() are called from exactly
//     one thread per connection (the server's per-connection reader, or
//     the sweep client's per-endpoint worker).
//   * Connection::write_line() is thread-safe — any worker may stream
//     response lines at any time; each line is written atomically (no
//     interleaving inside a line).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace whisper::serve {

/// Outcome of a timed read. kTimeout leaves the connection (and any
/// partially buffered line) intact — the caller may retry or tear down.
enum class ReadStatus : std::uint8_t { kLine, kTimeout, kClosed };

/// One connected peer: the server's view of a client, or (for dialed
/// connections) the client's view of a daemon.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Block for the next newline-terminated request line (the newline is
  /// stripped). Returns false once the peer has closed and every buffered
  /// line has been consumed.
  virtual bool read_line(std::string& out) = 0;

  /// Timed read: block up to `timeout_ms` milliseconds for the next line.
  /// `timeout_ms < 0` blocks forever (== read_line). The base default has
  /// no timer — transports that can wait bounded (fd poll, channel
  /// wait_for) override; the server only ever blocks, so it keeps the
  /// plain path.
  virtual ReadStatus read_line_for(std::string& out, int timeout_ms) {
    (void)timeout_ms;
    return read_line(out) ? ReadStatus::kLine : ReadStatus::kClosed;
  }

  /// Queue one response line (a trailing newline is appended). Thread-safe;
  /// atomic per line. Returns false when the connection is gone.
  virtual bool write_line(const std::string& line) = 0;

  /// Tear the connection down in both directions; unblocks a pending
  /// read_line(). Idempotent.
  virtual void close() = 0;

  /// Short peer label for logs and metrics ("loopback:2", "unix:7").
  [[nodiscard]] virtual std::string peer() const = 0;
};

/// A dial that could not produce a live connection: refused, unreachable,
/// nonexistent socket path, or connect timeout. Typed so the sweep client
/// can count it as `unreachable` and back off instead of aborting — a dead
/// endpoint is data, not a crash.
class DialError : public std::runtime_error {
 public:
  explicit DialError(const std::string& what)
      : std::runtime_error("serve: " + what) {}
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Block until the next client connects; nullptr after shutdown().
  virtual std::unique_ptr<Connection> accept() = 0;

  /// Stop accepting: unblock a pending accept() and make every later call
  /// return nullptr. Established connections are unaffected. Idempotent.
  virtual void shutdown() = 0;
};

}  // namespace whisper::serve
