// Pluggable byte transport for the whisper_serve daemon.
//
// The serving stack is transport-agnostic: the protocol is newline-framed
// JSON in both directions (src/serve/protocol.h), so a transport only has
// to move lines. Two implementations:
//
//   * LoopbackTransport (transport_loopback.h) — in-process queue pairs;
//     what the tests and bench/serve_soak drive, no sockets, no fds.
//   * UnixSocketTransport (transport_unix.h) — a SOCK_STREAM unix-domain
//     socket; what examples/whisper_serve binds by default.
//
// Threading contract:
//   * accept() is called from exactly one thread (the server's accept
//     loop); it blocks until a client connects and returns nullptr once
//     shutdown() has been called.
//   * Connection::read_line() is called from exactly one thread per
//     connection (the server's per-connection reader).
//   * Connection::write_line() is thread-safe — any worker may stream
//     response lines at any time; each line is written atomically (no
//     interleaving inside a line).
#pragma once

#include <memory>
#include <string>

namespace whisper::serve {

/// One connected client, as the server sees it.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Block for the next newline-terminated request line (the newline is
  /// stripped). Returns false once the peer has closed and every buffered
  /// line has been consumed.
  virtual bool read_line(std::string& out) = 0;

  /// Queue one response line (a trailing newline is appended). Thread-safe;
  /// atomic per line. Returns false when the connection is gone.
  virtual bool write_line(const std::string& line) = 0;

  /// Tear the connection down in both directions; unblocks a pending
  /// read_line(). Idempotent.
  virtual void close() = 0;

  /// Short peer label for logs and metrics ("loopback:2", "unix:7").
  [[nodiscard]] virtual std::string peer() const = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Block until the next client connects; nullptr after shutdown().
  virtual std::unique_ptr<Connection> accept() = 0;

  /// Stop accepting: unblock a pending accept() and make every later call
  /// return nullptr. Established connections are unaffected. Idempotent.
  virtual void shutdown() = 0;
};

}  // namespace whisper::serve
