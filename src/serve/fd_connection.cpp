#include "serve/fd_connection.h"

#if WHISPER_HAVE_FD_CONNECTION

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

namespace whisper::serve {

namespace {

#ifndef MSG_NOSIGNAL
// macOS spells SIGPIPE suppression differently; with no send() flag the
// only portable guard is ignoring the signal process-wide, which
// ignore_sigpipe() below does once. Linux — the platform we actually run
// on — has the flag and never takes that path.
#define MSG_NOSIGNAL 0
#define WHISPER_NEED_SIGPIPE_IGNORE 1
#endif

#if defined(WHISPER_NEED_SIGPIPE_IGNORE)
void ignore_sigpipe() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}
#else
void ignore_sigpipe() {}
#endif

/// poll() one fd for `events`, retrying EINTR against a deadline.
/// Returns >0 ready, 0 timeout, <0 error.
int poll_fd(int fd, short events, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  for (;;) {
    int wait = timeout_ms;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      wait = left > 0 ? static_cast<int>(left) : 0;
    }
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int r = ::poll(&p, 1, wait);
    if (r >= 0) return r;
    if (errno != EINTR) return r;
    if (timeout_ms >= 0 && std::chrono::steady_clock::now() >= deadline)
      return 0;
  }
}

}  // namespace

FdConnection::FdConnection(int fd, std::string peer)
    : fd_(fd), peer_(std::move(peer)) {
  ignore_sigpipe();
}

FdConnection::~FdConnection() { close(); }

ReadStatus FdConnection::fill(int timeout_ms) {
  if (timeout_ms >= 0) {
    const int r = poll_fd(fd_, POLLIN, timeout_ms);
    if (r == 0) return ReadStatus::kTimeout;
    if (r < 0) return ReadStatus::kClosed;
  }
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      if (discarding_) {
        // The oversized line's tail: keep only what follows its newline.
        const void* nl = std::memchr(chunk, '\n', static_cast<std::size_t>(n));
        if (nl != nullptr) {
          const char* after = static_cast<const char*>(nl) + 1;
          buf_.append(after, static_cast<std::size_t>(chunk + n - after));
          discarding_ = false;
        }
      } else {
        buf_.append(chunk, static_cast<std::size_t>(n));
      }
      return ReadStatus::kLine;
    }
    if (n < 0 && errno == EINTR) continue;
    return ReadStatus::kClosed;  // EOF or hard error
  }
}

bool FdConnection::read_line(std::string& out) {
  return read_line_for(out, -1) == ReadStatus::kLine;
}

ReadStatus FdConnection::read_line_for(std::string& out, int timeout_ms) {
  out.clear();
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    // Serve lines straight from the buffer while we have any.
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return ReadStatus::kLine;
    }
    if (!discarding_ && buf_.size() > kMaxLineBytes) {
      // Line too long: hand the truncated head out immediately (the
      // protocol layer refuses it with an attributable error) and drop
      // bytes until the next newline so the stream resynchronizes.
      out = std::move(buf_);
      buf_.clear();
      discarding_ = true;
      return ReadStatus::kLine;
    }
    int wait = timeout_ms;
    if (timeout_ms >= 0) {
      const auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
      wait = timeout_ms > spent ? static_cast<int>(timeout_ms - spent) : 0;
    }
    const ReadStatus st = fill(wait);
    if (st == ReadStatus::kLine) continue;
    if (st == ReadStatus::kTimeout) return ReadStatus::kTimeout;
    // EOF or error: a final unterminated fragment still counts as a line
    // so a peer that forgot the trailing newline is not ignored.
    if (!buf_.empty() && !discarding_) {
      out = std::move(buf_);
      buf_.clear();
      return ReadStatus::kLine;
    }
    return ReadStatus::kClosed;
  }
}

bool FdConnection::write_line(const std::string& line) {
  // One lock per line keeps concurrent workers' lines from interleaving.
  std::lock_guard<std::mutex> lock(write_mu_);
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET etc: peer gone, never a signal
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void FdConnection::close() {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

std::string FdConnection::peer() const { return peer_; }

int dial_fd(int domain, const void* addr, std::size_t addr_len, int timeout_ms,
            const std::string& what) {
  ignore_sigpipe();
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0)
    throw DialError("socket() failed: " + std::string(std::strerror(errno)));
  const auto refuse = [fd, &what](const std::string& why) -> int {
    ::close(fd);
    throw DialError("cannot connect to " + what + ": " + why);
  };
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return refuse(std::strerror(errno));
  if (::connect(fd, static_cast<const sockaddr*>(addr),
                static_cast<socklen_t>(addr_len)) != 0) {
    if (errno != EINPROGRESS && errno != EINTR)
      return refuse(std::strerror(errno));
    const int r = poll_fd(fd, POLLOUT, timeout_ms);
    if (r == 0) return refuse("connect timed out");
    if (r < 0) return refuse(std::strerror(errno));
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0)
      return refuse(std::strerror(errno));
    if (err != 0) return refuse(std::strerror(err));
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) return refuse(std::strerror(errno));
  return fd;
}

}  // namespace whisper::serve

#endif  // WHISPER_HAVE_FD_CONNECTION
