// File-descriptor Connection: the line framing shared by the unix-domain
// and TCP transports.
//
// Extracted from transport_unix.cpp when TcpTransport arrived so both
// socket transports (and their dial() client sides) share one hardened
// read/write path:
//
//   * read_line() buffers recv() chunks and serves newline-framed lines;
//     a final unterminated fragment at EOF still counts as a line.
//   * read_line_for() bounds the wait with poll(): the sweep client's
//     per-request deadline, not a wedged daemon, decides how long a
//     response may take.
//   * Lines are capped at kMaxLineBytes. An overlong line is delivered
//     truncated (so protocol.cpp's kMaxRequestBytes check rejects it with
//     a well-formed error response) and the tail through the next newline
//     is discarded — the connection resynchronizes instead of ballooning
//     server memory or going silent.
//   * write_line() survives partial writes and EINTR, and a peer that
//     disappeared mid-stream surfaces as `false` — never SIGPIPE
//     (MSG_NOSIGNAL on Linux, per-process SIG_IGN where the flag is
//     missing).
//
// POSIX-only, like the transports that use it.
#pragma once

#include <cstddef>
#include <string>

#include "serve/transport.h"

#if defined(__unix__) || defined(__APPLE__)
#define WHISPER_HAVE_FD_CONNECTION 1

#include <mutex>

namespace whisper::serve {

class FdConnection : public Connection {
 public:
  /// A single buffered line larger than this is truncated and the rest of
  /// it discarded (see file comment). Deliberately above kMaxRequestBytes:
  /// a request at the protocol cap still arrives intact and is refused by
  /// parse_request() with an attributable error line.
  static constexpr std::size_t kMaxLineBytes = 256 * 1024;

  /// Takes ownership of `fd` (closed on destruction). `peer` is the label
  /// peer() reports.
  FdConnection(int fd, std::string peer);
  ~FdConnection() override;

  bool read_line(std::string& out) override;
  ReadStatus read_line_for(std::string& out, int timeout_ms) override;
  bool write_line(const std::string& line) override;
  void close() override;
  [[nodiscard]] std::string peer() const override;

 private:
  /// Pull one recv() chunk into buf_, honouring the poll deadline.
  /// kLine here means "made progress, loop again".
  ReadStatus fill(int timeout_ms);

  int fd_;
  std::string peer_;
  std::string buf_;
  bool discarding_ = false;  // dropping an oversized line's tail until '\n'
  std::mutex write_mu_;
};

/// Nonblocking connect with a bounded wait, shared by both dialers:
/// create the socket, connect, poll for writability up to `timeout_ms`
/// (< 0 = block), check SO_ERROR, and return the connected fd with
/// blocking mode restored. Throws DialError (closing the fd) on refusal,
/// timeout, or any socket error; `what` names the target in the message.
[[nodiscard]] int dial_fd(int domain, const void* addr, std::size_t addr_len,
                          int timeout_ms, const std::string& what);

}  // namespace whisper::serve

#endif  // POSIX
