#include "serve/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "core/attacks/registry.h"
#include "defense/defense.h"
#include "noise/noise.h"
#include "stats/json.h"
#include "uarch/config.h"

namespace whisper::serve {

const JsonValue* JsonValue::get(std::string_view key) const {
  if (type != Type::Object) return nullptr;
  // Last occurrence wins, matching how the members were accumulated.
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object)
    if (k == key) found = &v;
  return found;
}

// --- Parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue document() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size())
      fail("trailing garbage after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ProtocolError("bad JSON at byte " + std::to_string(pos_) + ": " +
                        why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    ++pos_;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::String;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (consume_word("true"))
          v.boolean = true;
        else if (consume_word("false"))
          v.boolean = false;
        else
          fail("unrecognised literal");
        return v;
      }
      case 'n': {
        if (!consume_word("null")) fail("unrecognised literal");
        return JsonValue{};
      }
      default:
        return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("bad \\u escape");
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':  out.push_back('"');  break;
        case '\\': out.push_back('\\'); break;
        case '/':  out.push_back('/');  break;
        case 'b':  out.push_back('\b'); break;
        case 'f':  out.push_back('\f'); break;
        case 'n':  out.push_back('\n'); break;
        case 'r':  out.push_back('\r'); break;
        case 't':  out.push_back('\t'); break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!consume_word("\\u")) fail("lone high surrogate");
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // int part: 0, or [1-9][0-9]*
    if (peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    } else {
      fail("bad number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("bad number: digits must follow '.'");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("bad number: empty exponent");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    JsonValue v;
    v.type = JsonValue::Type::Number;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) { return Parser(text).document(); }

// --- Request schema --------------------------------------------------------

namespace {

double want_number(const JsonValue& v, const char* field) {
  if (!v.is_number())
    throw ProtocolError(std::string("field '") + field + "' must be a number");
  return v.number;
}

std::uint64_t want_u64(const JsonValue& v, const char* field) {
  const double d = want_number(v, field);
  if (d < 0 || d != std::floor(d))
    throw ProtocolError(std::string("field '") + field +
                        "' must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

int want_int(const JsonValue& v, const char* field) {
  const double d = want_number(v, field);
  if (d != std::floor(d))
    throw ProtocolError(std::string("field '") + field +
                        "' must be an integer");
  return static_cast<int>(d);
}

bool want_bool(const JsonValue& v, const char* field) {
  if (!v.is_bool())
    throw ProtocolError(std::string("field '") + field +
                        "' must be a boolean");
  return v.boolean;
}

std::string want_string(const JsonValue& v, const char* field) {
  if (!v.is_string())
    throw ProtocolError(std::string("field '") + field + "' must be a string");
  return v.string;
}

std::string join_verbs() {
  std::string out;
  for (const char* v : kVerbs) {
    if (!out.empty()) out += ", ";
    out += v;
  }
  return out;
}

/// Apply one run-request member onto the spec. Returns false for a member
/// the schema does not know — the caller turns that into an error rather
/// than silently running a default (a typoed "trails" must not run 1 trial).
bool apply_run_field(runner::RunSpec& spec, const std::string& key,
                     const JsonValue& v) {
  if (key == "attack") {
    spec.attack = want_string(v, "attack");
  } else if (key == "cpu") {
    // Same convention as whisper_cli --cpu: an index into all_models().
    const auto models = uarch::all_models();
    const std::uint64_t n = want_u64(v, "cpu");
    if (n >= models.size())
      throw ProtocolError("field 'cpu' out of range (0.." +
                          std::to_string(models.size() - 1) + ")");
    spec.model = models[static_cast<std::size_t>(n)];
  } else if (key == "trials") {
    spec.trials = want_int(v, "trials");
  } else if (key == "seed") {
    spec.base_seed = want_u64(v, "seed");
  } else if (key == "noise") {
    const std::string name = want_string(v, "noise");
    const auto profile = noise::NoiseProfile::by_name(name);
    if (!profile) {
      std::string known;
      for (const auto& p : noise::NoiseProfile::preset_names()) {
        if (!known.empty()) known += ", ";
        known += p;
      }
      throw ProtocolError("unknown noise preset '" + name +
                          "' (presets: " + known + ")");
    }
    const std::uint64_t keep_seed = spec.noise.seed;
    spec.noise = *profile;
    if (keep_seed != 0) spec.noise.seed = keep_seed;
  } else if (key == "noise_seed") {
    spec.noise.seed = want_u64(v, "noise_seed");
  } else if (key == "defenses") {
    // The defense stack: an array of defense::parse() strings
    // ("kpti", "window:depth=8"). Grammar errors become protocol errors
    // here; unknown names surface through runner::validate() on the server,
    // keeping the registry's message contract.
    if (!v.is_array())
      throw ProtocolError("field 'defenses' must be an array of strings");
    spec.defenses.clear();
    for (const JsonValue& d : v.array) {
      try {
        spec.defenses.push_back(defense::parse(want_string(d, "defenses")));
      } catch (const std::invalid_argument& e) {
        throw ProtocolError(e.what());
      }
    }
  } else if (key == "kpti") {
    // Back-compat aliases for the pre-defense-API wire: the bools land on
    // the kernel options, which runner::normalized_defenses() folds in
    // ahead of the "defenses" array.
    spec.kernel.kpti = want_bool(v, "kpti");
  } else if (key == "flare") {
    spec.kernel.flare = want_bool(v, "flare");
  } else if (key == "fgkaslr") {
    spec.kernel.fgkaslr = want_bool(v, "fgkaslr");
  } else if (key == "docker") {
    spec.docker = want_bool(v, "docker");
  } else if (key == "rounds") {
    spec.rounds = want_int(v, "rounds");
  } else if (key == "batches") {
    spec.batches = want_int(v, "batches");
  } else if (key == "payload_bytes") {
    spec.payload_bytes = static_cast<std::size_t>(want_u64(v, "payload_bytes"));
  } else if (key == "payload_seed") {
    spec.payload_seed = want_u64(v, "payload_seed");
  } else if (key == "adaptive") {
    spec.adaptive = want_bool(v, "adaptive");
  } else if (key == "confidence_threshold") {
    spec.confidence_threshold = want_number(v, "confidence_threshold");
  } else if (key == "batch_budget") {
    spec.batch_budget = want_int(v, "batch_budget");
  } else if (key == "reuse_machine") {
    spec.reuse_machine = want_bool(v, "reuse_machine");
  } else if (key == "fast_forward") {
    spec.fast_forward = want_bool(v, "fast_forward");
  } else if (key == "retries") {
    spec.retries = want_int(v, "retries");
  } else if (key == "trial_cycle_budget") {
    spec.trial_cycle_budget = want_u64(v, "trial_cycle_budget");
  } else if (key == "trial_wall_budget") {
    spec.trial_wall_budget = want_number(v, "trial_wall_budget");
  } else if (key == "verify_reset") {
    spec.verify_reset = want_bool(v, "verify_reset");
  } else if (key == "fault_plan") {
    spec.fault_plan = want_string(v, "fault_plan");
  } else {
    return false;
  }
  return true;
}

}  // namespace

Request parse_request(const std::string& line) {
  if (line.size() > kMaxRequestBytes)
    throw ProtocolError("request line exceeds " +
                        std::to_string(kMaxRequestBytes) + " bytes (got " +
                        std::to_string(line.size()) + ")");
  const JsonValue doc = json_parse(line);
  if (!doc.is_object()) throw ProtocolError("request must be a JSON object");

  Request req;
  const JsonValue* id = doc.get("id");
  if (!id) throw ProtocolError("request missing numeric 'id'");
  req.id = want_u64(*id, "id");
  if (req.id == 0)
    throw ProtocolError("field 'id' must be positive (0 is reserved for "
                        "unparseable requests)");

  const JsonValue* verb = doc.get("verb");
  if (!verb) throw ProtocolError("request missing 'verb'");
  req.verb = want_string(*verb, "verb");
  bool known = false;
  for (const char* v : kVerbs)
    if (req.verb == v) known = true;
  if (!known)
    throw ProtocolError("unknown verb '" + req.verb +
                        "' (verbs: " + join_verbs() + ")");

  if (req.verb == "run") {
    for (const auto& [key, v] : doc.object) {
      if (key == "id" || key == "verb") continue;
      if (key == "trial_first") {
        // Shard window start (see Request::trial_first) — a request
        // member, not a RunSpec knob, so it is handled here rather than
        // in apply_run_field().
        req.trial_first = want_u64(v, "trial_first");
        continue;
      }
      if (!apply_run_field(req.spec, key, v))
        throw ProtocolError("unknown field '" + key + "' in run request");
    }
  } else {
    for (const auto& [key, v] : doc.object) {
      (void)v;
      if (key != "id" && key != "verb")
        throw ProtocolError("field '" + key + "' not allowed with verb '" +
                            req.verb + "'");
    }
  }
  return req;
}

// --- Response writers ------------------------------------------------------

namespace {

void head(stats::JsonWriter& w, std::uint64_t id, const char* type) {
  w.begin_object();
  w.key("id");
  w.value(id);
  w.key("type");
  w.value(type);
}

}  // namespace

std::string response_trial(std::uint64_t id, std::size_t index,
                           const runner::ScheduledTrial& t) {
  stats::JsonWriter w;
  head(w, id, "trial");
  w.key("index");
  w.value(static_cast<std::uint64_t>(index));
  // Fault-layer account first, then the result slot — the same key order
  // as runner trajectory files ("trials_detail"), minus anything
  // non-deterministic across worker counts (there is nothing: invariant 8
  // keeps pool identity out of results, and no wall-clock is emitted).
  w.key("ok");
  w.value(t.outcome.ok);
  w.key("attempts");
  w.value(t.outcome.attempts);
  w.key("quarantined");
  w.value(t.outcome.quarantined);
  w.key("errors");
  w.begin_array();
  for (const runner::TrialError& e : t.outcome.errors) {
    w.begin_object();
    w.key("kind");
    w.value(std::string(runner::to_string(e.kind)));
    w.key("attempt");
    w.value(e.attempt);
    w.key("what");
    w.value(e.what);
    w.end_object();
  }
  w.end_array();
  w.key("seed");
  w.value(t.result.seed);
  w.key("success");
  w.value(t.result.success);
  w.key("cycles");
  w.value(t.result.cycles);
  w.key("seconds");
  w.value(t.result.seconds);
  w.key("probes");
  w.value(static_cast<std::uint64_t>(t.result.probes));
  w.key("bytes");
  w.value(static_cast<std::uint64_t>(t.result.bytes));
  w.key("byte_errors");
  w.value(static_cast<std::uint64_t>(t.result.byte_errors));
  w.key("found_slot");
  w.value(t.result.found_slot);
  w.key("confidence");
  w.value(t.result.confidence);
  w.key("gave_up");
  w.value(static_cast<std::uint64_t>(t.result.gave_up));
  w.key("tote_total");
  w.value(t.result.tote.total());
  w.end_object();
  return w.str();
}

std::string response_done(std::uint64_t id, const runner::RunResult& merged) {
  stats::JsonWriter w;
  head(w, id, "done");
  w.key("attack");
  w.value(merged.spec.attack);
  w.key("trials");
  w.value(static_cast<std::uint64_t>(merged.trials.size()));
  w.key("successes");
  w.value(static_cast<std::uint64_t>(merged.successes));
  w.key("completed");
  w.value(static_cast<std::uint64_t>(merged.completed));
  w.key("failed");
  w.value(static_cast<std::uint64_t>(merged.failed));
  w.key("retried");
  w.value(static_cast<std::uint64_t>(merged.retried));
  w.key("quarantined");
  w.value(static_cast<std::uint64_t>(merged.quarantined));
  w.key("total_attempts");
  w.value(static_cast<std::uint64_t>(merged.total_attempts));
  w.key("total_probes");
  w.value(static_cast<std::uint64_t>(merged.total_probes));
  w.key("total_bytes");
  w.value(static_cast<std::uint64_t>(merged.total_bytes));
  w.key("total_byte_errors");
  w.value(static_cast<std::uint64_t>(merged.total_byte_errors));
  w.key("errors");
  w.begin_object();
  for (std::size_t k = 0; k < runner::kNumTrialErrorKinds; ++k) {
    w.key(runner::to_string(static_cast<runner::TrialErrorKind>(k)));
    w.value(static_cast<std::uint64_t>(merged.error_counts[k]));
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string response_error(std::uint64_t id, const std::string& message) {
  stats::JsonWriter w;
  head(w, id, "error");
  w.key("error");
  w.value(message);
  w.end_object();
  return w.str();
}

std::string response_pong(std::uint64_t id) {
  stats::JsonWriter w;
  head(w, id, "pong");
  w.end_object();
  return w.str();
}

std::string response_attacks(std::uint64_t id) {
  stats::JsonWriter w;
  head(w, id, "attacks");
  w.key("attacks");
  w.begin_array();
  for (const std::string& name : core::attack_names()) w.value(name);
  w.end_array();
  // The defense grid axis, appended after the attacks so pre-defense
  // clients keep parsing: name, docs, and declared parameters with their
  // defaults — everything needed to spell a "defenses" run field without
  // recompiling. Key order is fixed (invariant 11).
  w.key("defenses");
  w.begin_array();
  for (const defense::DefenseInfo& d : defense::registry()) {
    w.begin_object();
    w.key("name");
    w.value(d.name);
    w.key("description");
    w.value(d.description);
    w.key("params");
    w.begin_array();
    for (const defense::DefenseParamInfo& p : d.params) {
      w.begin_object();
      w.key("name");
      w.value(p.name);
      w.key("default");
      w.value(p.default_value);
      w.key("description");
      w.value(p.description);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string response_metrics(std::uint64_t id,
                             const std::string& metrics_json) {
  stats::JsonWriter w;
  head(w, id, "metrics");
  w.end_object();
  // Splice the registry document in as the last member; the registry's
  // to_json() is already a complete, deterministic object.
  std::string out = w.str();
  out.pop_back();  // trailing '}'
  out += ",\"metrics\":";
  out += metrics_json;
  out += "}";
  return out;
}

std::string response_bye(std::uint64_t id) {
  stats::JsonWriter w;
  head(w, id, "bye");
  w.end_object();
  return w.str();
}

}  // namespace whisper::serve
