// The whisper_serve wire protocol: newline-framed JSON, both directions.
//
// Requests (one JSON object per line):
//   {"id":1,"verb":"run","attack":"cc","trials":4,"seed":7,...}
//   {"id":2,"verb":"ping"}
//   {"id":3,"verb":"list"}        — registered attack + defense names
//   {"id":4,"verb":"metrics"}     — server MetricsRegistry + pool gauges
//   {"id":5,"verb":"shutdown"}    — ask the daemon to exit
//
// Responses (one JSON object per line, "id" echoes the request):
//   {"id":1,"type":"trial","index":0,...}   one per trial, index order
//   {"id":1,"type":"done",...}              terminates a run's stream
//   {"id":2,"type":"pong"}
//   {"id":3,"type":"attacks","attacks":[...],"defenses":[...]}
//   {"id":4,"type":"metrics","metrics":{...}}
//   {"id":5,"type":"bye"}
//   {"id":N,"type":"error","error":"..."}   any failure (id 0 when the
//                                           request line didn't parse)
//
// Determinism contract (invariant 11, docs/ARCHITECTURE.md): no response
// line carries wall-clock time, worker identity, or pool state — a "run"
// response stream is a pure function of the request, so the same request
// line yields byte-identical responses whatever the daemon's --jobs or
// client interleaving. Wall-clock lives in the metrics verb and
// BENCH_serve.json only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "runner/runner.h"

namespace whisper::serve {

// --- Mini JSON parser ------------------------------------------------------
// The repo deliberately has no third-party JSON dependency; stats/json.h
// covers writing, this covers the one place we must *read* JSON. Strict
// RFC 8259 subset: objects, arrays, strings (with escapes), numbers,
// booleans, null. Duplicate keys keep the last value, like every practical
// parser.

struct JsonValue {
  enum class Type : std::uint8_t { Null, Bool, Number, String, Object, Array };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  [[nodiscard]] bool is_null() const { return type == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type == Type::Number; }
  [[nodiscard]] bool is_string() const { return type == Type::String; }
  [[nodiscard]] bool is_object() const { return type == Type::Object; }
  [[nodiscard]] bool is_array() const { return type == Type::Array; }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* get(std::string_view key) const;
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
/// Throws ProtocolError with a pointed message on malformed input.
[[nodiscard]] JsonValue json_parse(std::string_view text);

/// A request the server refuses: malformed JSON, schema violations,
/// oversized lines. The message goes straight into the error response.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("serve: " + what) {}
};

// --- Requests --------------------------------------------------------------

/// Every verb the daemon understands, in documentation order.
/// scripts/check_docs.sh (check 9) greps this array and demands each verb
/// appear in docs/REPRODUCING.md.
inline constexpr const char* kVerbs[] = {
    "run", "ping", "list", "metrics", "shutdown",
};

/// Request lines longer than this are rejected before parsing (error
/// response with id 0) so a garbage client cannot balloon server memory.
inline constexpr std::size_t kMaxRequestBytes = 64 * 1024;

struct Request {
  std::uint64_t id = 0;
  std::string verb;
  /// Fully-populated spec for verb == "run"; defaulted otherwise.
  runner::RunSpec spec;
  /// Absolute index of the first trial this run request covers ("run"
  /// only; default 0). A distributed sweep shards one logical run into
  /// requests of spec.trials trials starting here — the server executes
  /// trials [trial_first, trial_first + trials) of the SAME seed/payload/
  /// fault schedule a local runner::run would, so response "index" fields
  /// are absolute and a merge-by-index is byte-identical (invariant 13).
  /// Not a RunSpec field: the spec describes the whole run, this picks
  /// the window.
  std::uint64_t trial_first = 0;
};

/// Parse one request line into a Request. Enforces kMaxRequestBytes, the
/// JSON grammar, the verb set, and the run-spec field schema (unknown
/// fields are errors — a typoed knob must not silently run the default).
/// Does NOT call runner::validate(): the server does, so attack/fault-plan
/// diagnostics keep the runner's message contract ("runner: unknown attack
/// 'x' (registered: ...)"). Throws ProtocolError.
[[nodiscard]] Request parse_request(const std::string& line);

// --- Responses -------------------------------------------------------------
// All writers return a complete line (no trailing newline; transports add
// framing) with fixed key order and formatting — these strings ARE the
// byte-identity surface.

[[nodiscard]] std::string response_trial(std::uint64_t id, std::size_t index,
                                         const runner::ScheduledTrial& t);
[[nodiscard]] std::string response_done(std::uint64_t id,
                                        const runner::RunResult& merged);
[[nodiscard]] std::string response_error(std::uint64_t id,
                                         const std::string& message);
[[nodiscard]] std::string response_pong(std::uint64_t id);
[[nodiscard]] std::string response_attacks(std::uint64_t id);
/// `metrics_json` must be a complete JSON object (MetricsRegistry::to_json)
/// — it is spliced, not escaped.
[[nodiscard]] std::string response_metrics(std::uint64_t id,
                                           const std::string& metrics_json);
[[nodiscard]] std::string response_bye(std::uint64_t id);

}  // namespace whisper::serve
