// The whisper_serve daemon core: transport-agnostic request multiplexer.
//
// Thread shape (names pinned by tests/test_obs.cpp's convention check):
//
//   wsp-accept       one accept loop, owns Transport::accept()
//   wsp-client-<i>   one reader per connection: parses request lines,
//                    answers ping/list/metrics/shutdown inline, queues
//                    run jobs on the FairScheduler
//   wsp-serve-<i>    `jobs` workers: pop run jobs, execute trials against
//                    the shared MachinePool, stream response lines
//
// Determinism (invariant 11): a run request's trials execute sequentially
// inside one worker, each through runner::run_scheduled_trial(spec, i, ...)
// — the exact seed schedule run() uses — against the shared pool, whose
// identity cannot reach results (invariant 8). So each request's response
// stream is a pure function of its request line: byte-identical whatever
// --jobs, however clients interleave, pinned by tests/test_serve.cpp and
// soak-proven by bench/serve_soak.
//
// Shutdown is drain-then-stop: stop() refuses new work but every already
// queued job still streams its full response (zero lost requests).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "runner/machine_pool.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/transport.h"

namespace whisper::serve {

struct ServerOptions {
  /// Worker threads executing run jobs. Response bytes are identical for
  /// any value >= 1; this only sets throughput.
  int jobs = 1;
  /// Admission cap of the shared MachinePool.
  std::size_t pool_capacity = 4;
};

class Server {
 public:
  /// The transport must outlive the server. Call start() to go live.
  Server(Transport& transport, ServerOptions opts);

  /// Joins everything; equivalent to stop() if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawn the accept loop and the worker threads.
  void start();

  /// Block until a client sends the shutdown verb (or stop() is called
  /// from another thread). The daemon's main() sits here.
  void wait_shutdown();

  /// Graceful shutdown: stop accepting connections, refuse new jobs
  /// (late requests get an error line, not silence), drain every queued
  /// job to completion, then close connections and join all threads.
  /// Idempotent.
  void stop();

  /// Snapshot of the server registry: serve.* counters, serve.queue.*
  /// and pool.* gauges folded in. This is what the metrics verb returns.
  [[nodiscard]] obs::MetricsRegistry metrics() const;

  [[nodiscard]] runner::MachinePoolStats pool_stats() const {
    return pool_.stats();
  }
  [[nodiscard]] SchedulerStats queue_stats() const {
    return scheduler_.stats();
  }

 private:
  struct RunJob {
    std::uint64_t id = 0;  // request id, echoed on every response line
    runner::RunSpec spec;
    /// Shard window: execute trials [trial_first, trial_first +
    /// spec.trials) of the spec's absolute schedule (Request::trial_first).
    std::uint64_t trial_first = 0;
    std::shared_ptr<Connection> conn;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn, std::uint64_t client);
  void worker_loop(int worker);
  /// Handle one request line from `client`; returns false when the
  /// connection should stop reading (shutdown verb).
  bool handle_line(const std::string& line,
                   const std::shared_ptr<Connection>& conn,
                   std::uint64_t client);
  void execute_run(const RunJob& job);
  void count(const std::string& name, std::uint64_t delta = 1);

  Transport& transport_;
  ServerOptions opts_;
  runner::MachinePool pool_;
  FairScheduler<RunJob> scheduler_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex readers_mu_;
  std::vector<std::thread> readers_;
  std::vector<std::weak_ptr<Connection>> connections_;

  std::mutex state_mu_;
  std::condition_variable state_cv_;
  bool started_ = false;
  bool shutdown_requested_ = false;
  std::atomic<bool> stopped_{false};

  mutable std::mutex metrics_mu_;
  obs::MetricsRegistry registry_;
  std::uint64_t next_client_ = 0;
};

}  // namespace whisper::serve
