#include "serve/server.h"

#include <exception>
#include <utility>

#include "fault/fault.h"
#include "obs/thread_name.h"
#include "runner/runner.h"

namespace whisper::serve {

Server::Server(Transport& transport, ServerOptions opts)
    : transport_(transport),
      opts_(opts),
      pool_(opts.pool_capacity) {
  if (opts_.jobs < 1) opts_.jobs = 1;
}

Server::~Server() { stop(); }

void Server::start() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (started_) return;
    started_ = true;
  }
  for (int i = 0; i < opts_.jobs; ++i)
    workers_.emplace_back([this, i] {
      obs::set_current_thread_name("wsp-serve-" + std::to_string(i));
      worker_loop(i);
    });
  accept_thread_ = std::thread([this] {
    obs::set_current_thread_name("wsp-accept");
    accept_loop();
  });
}

void Server::wait_shutdown() {
  std::unique_lock<std::mutex> lock(state_mu_);
  state_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Server::stop() {
  if (stopped_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    shutdown_requested_ = true;
  }
  state_cv_.notify_all();

  // 1. No new connections; the accept loop sees nullptr and exits.
  transport_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. No new jobs. Readers still alive keep answering: quick verbs
  //    inline, run requests with an explicit shutting-down error — a late
  //    request is refused loudly, never dropped silently.
  scheduler_.close();

  // 3. Drain: workers finish every job queued before the close, streaming
  //    all of their response lines, then see end-of-queue and exit.
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();

  // 4. Only now sever connections — every response the server will ever
  //    produce is already in the clients' channels (which drain past
  //    close), so this delivers EOF, not data loss. Unblocks any reader
  //    still parked in read_line().
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(readers_mu_);
    for (auto& weak : connections_)
      if (auto conn = weak.lock()) conn->close();
    connections_.clear();
    readers.swap(readers_);
  }
  for (auto& r : readers)
    if (r.joinable()) r.join();
}

void Server::count(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  registry_.add_counter(name, delta);
}

obs::MetricsRegistry Server::metrics() const {
  obs::MetricsRegistry reg;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    reg.merge(registry_);
  }
  const SchedulerStats q = scheduler_.stats();
  reg.set_counter("serve.queue.pushed", q.pushed);
  reg.set_counter("serve.queue.popped", q.popped);
  reg.set_counter("serve.queue.rejected", q.rejected);
  reg.set_gauge("serve.queue.depth", static_cast<double>(q.depth));
  const runner::MachinePoolStats p = pool_.stats();
  reg.set_counter("serve.pool.created", p.created);
  reg.set_counter("serve.pool.reused", p.reused);
  reg.set_counter("serve.pool.evicted", p.evicted);
  reg.set_counter("serve.pool.quarantined", p.quarantined);
  reg.set_counter("serve.pool.waited", p.waited);
  reg.set_gauge("serve.pool.in_use", static_cast<double>(p.in_use));
  reg.set_gauge("serve.pool.idle", static_cast<double>(p.idle));
  reg.set_gauge("serve.pool.capacity", static_cast<double>(p.capacity));
  return reg;
}

void Server::accept_loop() {
  for (;;) {
    std::unique_ptr<Connection> accepted = transport_.accept();
    if (!accepted) return;  // transport shut down
    std::shared_ptr<Connection> conn(std::move(accepted));
    std::uint64_t client;
    {
      std::lock_guard<std::mutex> lock(readers_mu_);
      client = next_client_++;
      connections_.push_back(conn);
      readers_.emplace_back([this, conn, client] {
        obs::set_current_thread_name("wsp-client-" + std::to_string(client));
        reader_loop(conn, client);
      });
    }
    count("serve.connections");
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn,
                         std::uint64_t client) {
  std::string line;
  while (conn->read_line(line)) {
    if (line.empty()) continue;  // blank keep-alive lines are fine
    if (!handle_line(line, conn, client)) break;
  }
  // EOF (or shutdown verb). The connection object stays alive as long as
  // queued jobs still hold the shared_ptr, so in-flight responses keep
  // flowing; the last owner's destructor closes the channel, handing the
  // client its EOF only after everything was delivered.
}

bool Server::handle_line(const std::string& line,
                         const std::shared_ptr<Connection>& conn,
                         std::uint64_t client) {
  count("serve.requests");
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    // id 0: the request could not be attributed (bad JSON / bad id field).
    count("serve.errors");
    conn->write_line(response_error(0, e.what()));
    return true;
  }

  if (req.verb == "ping") {
    conn->write_line(response_pong(req.id));
    return true;
  }
  if (req.verb == "list") {
    conn->write_line(response_attacks(req.id));
    return true;
  }
  if (req.verb == "metrics") {
    conn->write_line(response_metrics(req.id, metrics().to_json()));
    return true;
  }
  if (req.verb == "shutdown") {
    conn->write_line(response_bye(req.id));
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      shutdown_requested_ = true;
    }
    state_cv_.notify_all();
    return false;  // stop reading this connection
  }

  // verb == "run": validate eagerly so schema errors answer immediately
  // with the runner's message contract, then queue for a worker.
  try {
    runner::validate(req.spec);
  } catch (const std::exception& e) {
    count("serve.errors");
    conn->write_line(response_error(req.id, e.what()));
    return true;
  }
  RunJob job;
  job.id = req.id;
  job.spec = req.spec;
  job.trial_first = req.trial_first;
  job.conn = conn;
  if (!scheduler_.push(client, std::move(job))) {
    count("serve.errors");
    conn->write_line(
        response_error(req.id, "serve: shutting down, request refused"));
  }
  return true;
}

void Server::worker_loop(int worker) {
  (void)worker;
  RunJob job;
  while (scheduler_.pop(job)) {
    try {
      execute_run(job);
    } catch (const std::exception& e) {
      // Harness-level failure (validate() already vetted the spec, so this
      // is unexpected): answer with an error line rather than dropping the
      // request on the floor.
      count("serve.errors");
      job.conn->write_line(response_error(job.id, e.what()));
    }
    job = RunJob{};  // release the Connection shared_ptr between jobs
  }
}

void Server::execute_run(const RunJob& job) {
  const runner::RunSpec& spec = job.spec;
  const fault::FaultPlan plan = fault::FaultPlan::parse(spec.fault_plan);
  const bool verify = spec.verify_reset || !spec.fault_plan.empty();

  // Trials run sequentially inside this worker, in index order, through
  // the exact scheduled-trial path run() fans out — same seed schedule,
  // same fault points, same retry replay — against the shared pool.
  // Streaming them as they finish keeps responses ordered per request.
  runner::RunResult merged;
  merged.spec = spec;
  const std::size_t n =
      spec.trials > 0 ? static_cast<std::size_t>(spec.trials) : 0;
  // trial_first offsets the window, not the schedule: trial i here is
  // bit-identical to trial i of an unsharded run (same trial_seed(base, i),
  // same payload_seed ^ i, same fault points), which is what lets a
  // distributed client merge shards by index into the exact local stream.
  const std::size_t first = static_cast<std::size_t>(job.trial_first);
  for (std::size_t i = first; i < first + n; ++i) {
    runner::ScheduledTrial t =
        runner::run_scheduled_trial(spec, i, plan, verify, &pool_);
    job.conn->write_line(response_trial(job.id, i, t));
    count("serve.trials");
    // Fold the fields response_done() reports, mirroring the runner's
    // merge_trials() accounting.
    merged.total_attempts +=
        static_cast<std::size_t>(t.outcome.attempts > 0 ? t.outcome.attempts
                                                        : 1);
    if (t.outcome.quarantined) ++merged.quarantined;
    for (const runner::TrialError& e : t.outcome.errors)
      ++merged.error_counts[static_cast<std::size_t>(e.kind)];
    if (t.outcome.ok) {
      ++merged.completed;
      if (t.outcome.attempts > 1) ++merged.retried;
      merged.successes += t.result.success ? 1 : 0;
      merged.total_probes += t.result.probes;
      merged.total_bytes += t.result.bytes;
      merged.total_byte_errors += t.result.byte_errors;
    } else {
      ++merged.failed;
    }
    merged.trials.push_back(std::move(t.result));
    merged.outcomes.push_back(std::move(t.outcome));
  }
  job.conn->write_line(response_done(job.id, merged));
  count("serve.runs");
}

}  // namespace whisper::serve
