// In-process transport: line queues instead of sockets.
//
// LoopbackTransport is the deterministic test double for the serving
// stack. A client side (LoopbackClient) and the server-side Connection
// share a pair of LineChannels; tests and bench/serve_soak connect any
// number of clients without touching the filesystem or file descriptors,
// which keeps the protocol/determinism suites runnable under sandboxes
// and sanitizers.
//
// Close semantics mirror a real stream socket half-close: closing the
// writer end lets the reader drain every line already queued before
// read_line() reports end-of-stream. The soak test's "zero lost
// responses" invariant depends on this.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "serve/transport.h"

namespace whisper::serve {

/// One direction of a loopback connection: an unbounded FIFO of lines
/// with socket-like close semantics (drain, then EOF).
class LineChannel {
 public:
  /// Append a line. Returns false (drops the line) once closed.
  bool push(const std::string& line);

  /// Block for the next line. Returns false only when the channel is
  /// closed AND empty — buffered lines are always delivered first.
  bool pop(std::string& out);

  /// Timed pop: wait up to `timeout_ms` (< 0 = block like pop()). Same
  /// drain-then-EOF close semantics; kTimeout leaves the queue untouched.
  ReadStatus pop_for(std::string& out, int timeout_ms);

  /// Non-blocking pop for drains; same close semantics as pop().
  bool try_pop(std::string& out);

  void close();
  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> lines_;
  bool closed_ = false;
};

/// The client's handle to a loopback connection.
class LoopbackClient {
 public:
  /// Send one request line to the server. False once the connection
  /// is closed.
  bool send(const std::string& line);

  /// Block for the next response line. False once the server side has
  /// closed and every buffered response was consumed.
  bool recv(std::string& out);

  /// Timed recv — the loopback spelling of FdConnection::read_line_for(),
  /// so the sweep client's deadlines work identically on both transports.
  ReadStatus recv_for(std::string& out, int timeout_ms);

  /// Non-blocking recv.
  bool try_recv(std::string& out);

  /// Half-close: no more requests, but responses still drain.
  void close_send();

  /// Full close of both directions.
  void close();

 private:
  friend class LoopbackTransport;
  std::shared_ptr<LineChannel> to_server_;
  std::shared_ptr<LineChannel> to_client_;
};

/// Transport whose accept() yields connections created by connect().
class LoopbackTransport : public Transport {
 public:
  /// Create a connection pair: the returned client talks to the
  /// Connection that the server's accept() loop will receive next.
  /// Thread-safe. Returns a disconnected client after shutdown()
  /// (send() == false), never blocks.
  [[nodiscard]] std::unique_ptr<LoopbackClient> connect();

  std::unique_ptr<Connection> accept() override;
  void shutdown() override;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Connection>> pending_;
  bool down_ = false;
  std::size_t next_id_ = 0;
};

}  // namespace whisper::serve
