// Linux-style kernel address-space model: KASLR placement of the kernel
// image, KPTI shadow tables with the trampoline remnant, FLARE dummy
// mappings, and FGKASLR function shuffling (paper §2.1, §4.5, §6.2).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mem/page_table.h"
#include "mem/phys_mem.h"

namespace whisper::os {

/// The fixed KASLR window of the Linux kernel image: the paper probes
/// 0xffffffff80000000 upward with 512 possible 2 MiB-aligned offsets (§4.5).
inline constexpr std::uint64_t kKaslrRegionStart = 0xffffffff80000000ull;
inline constexpr std::uint64_t kKaslrSlotBytes = 2ull << 20;
inline constexpr int kKaslrSlots = 512;
inline constexpr std::uint64_t kKaslrRegionEnd =
    kKaslrRegionStart + kKaslrSlots * kKaslrSlotBytes;

/// KPTI keeps a trampoline mapped in the user tables at this fixed offset
/// from the kernel image base (§4.5 "remnant trampoline at fixed offset").
inline constexpr std::uint64_t kKptiTrampolineOffset = 0xe00000ull;

/// Default kernel image span: 16 MiB of 2 MiB supervisor pages.
inline constexpr std::uint64_t kKernelImageBytes = 16ull << 20;

struct KernelOptions {
  bool kpti = false;
  bool flare = false;
  bool fgkaslr = false;
  /// Slot to place the kernel in; -1 randomises from `seed`.
  int kaslr_slot = -1;
  std::uint64_t seed = 0x4a51c0deULL;  // overwritten by Machine
};

/// One synthetic kernel symbol (for the FGKASLR demonstration).
struct KernelSymbol {
  std::string name;
  std::uint64_t default_offset = 0;  // offset in a non-FGKASLR kernel
  std::uint64_t actual_offset = 0;   // offset in this boot's layout
};

class KernelLayout {
 public:
  KernelLayout(mem::PhysicalMemory& phys, const KernelOptions& opts);

  [[nodiscard]] std::uint64_t kernel_base() const noexcept { return base_; }
  [[nodiscard]] int slot() const noexcept { return slot_; }
  [[nodiscard]] bool kpti() const noexcept { return opts_.kpti; }
  [[nodiscard]] bool flare() const noexcept { return opts_.flare; }
  [[nodiscard]] bool fgkaslr() const noexcept { return opts_.fgkaslr; }
  [[nodiscard]] std::uint64_t trampoline_vaddr() const noexcept {
    return base_ + kKptiTrampolineOffset;
  }

  /// Re-derive the seed-dependent layout (KASLR slot, FGKASLR shuffle)
  /// exactly as construction with opts.seed = seed would — without
  /// rewriting the image bytes, which are seed-independent (the trial reset
  /// path restores them through PhysicalMemory::reset). Clears any planted
  /// secret. Returns true when the image moved to a different slot, i.e.
  /// when install() must be replayed into freshly unmapped views.
  bool reseed(std::uint64_t seed);

  /// Populate the kernel halves of the two page-table views.
  /// `kernel_view` gets the full image; `user_view` gets what an unprivileged
  /// process can reach: the full (supervisor) image without KPTI, only the
  /// trampoline with KPTI, plus FLARE dummies over the gaps when enabled.
  void install(mem::PageTable& kernel_view, mem::PageTable& user_view) const;

  /// Plant secret bytes in kernel data; returns their kernel virtual address.
  std::uint64_t plant_secret(std::span<const std::uint8_t> bytes);

  /// Address of a kernel function in this boot's layout.
  /// Throws std::out_of_range for unknown names.
  [[nodiscard]] std::uint64_t symbol_addr(const std::string& name) const;
  /// The attacker's guess: image base + the well-known (non-FGKASLR) offset.
  [[nodiscard]] std::uint64_t symbol_guess(const std::string& name) const;
  [[nodiscard]] const std::vector<KernelSymbol>& symbols() const noexcept {
    return symbols_;
  }

  [[nodiscard]] std::uint64_t image_phys_base() const noexcept {
    return image_pa_;
  }

  /// A guaranteed-unmapped slot base inside the KASLR window, in the same
  /// 1 GiB (PDPT) region as the image — so its page walk depth matches the
  /// other unmapped slots (calibration / experiment control address).
  [[nodiscard]] std::uint64_t unmapped_probe_address() const noexcept {
    const int image_slots =
        static_cast<int>(kKernelImageBytes / kKaslrSlotBytes);
    int s = (slot_ + 64) % (kKaslrSlots - image_slots);
    if (s >= slot_ && s < slot_ + image_slots) s = slot_ + image_slots;
    return kKaslrRegionStart +
           static_cast<std::uint64_t>(s) * kKaslrSlotBytes;
  }

 private:
  /// Everything the constructor derives from opts_.seed: slot, base, and
  /// the (FG)KASLR symbol layout. Shared by the ctor and reseed().
  void derive_layout();

  mem::PhysicalMemory& phys_;
  KernelOptions opts_;
  int slot_ = 0;
  std::uint64_t base_ = 0;
  std::uint64_t image_pa_ = 0;
  std::uint64_t dummy_pa_ = 0;
  std::uint64_t secret_vaddr_ = 0;
  std::vector<KernelSymbol> symbols_;
};

}  // namespace whisper::os
