#include "os/kernel_layout.h"

#include <algorithm>
#include <stdexcept>

#include "stats/rng.h"

namespace whisper::os {

namespace {

// Physical placement of the simulated kernel image and the FLARE dummy frame.
constexpr std::uint64_t kImagePhysBase = 0x100000000ull;  // 4 GiB
constexpr std::uint64_t kDummyPhysBase = 0x0ffe00000ull;  // 2 MiB aligned
constexpr std::uint64_t kSecretImageOffset = 0x900000ull;  // in kernel .data

std::vector<KernelSymbol> default_symbols() {
  // A handful of classic ROP/privilege-escalation targets. Offsets are
  // arbitrary but fixed — "the attacker knows the kernel image's constant
  // offsets" (threat model, §4.2).
  return {
      {"startup_64",          0x000000, 0},
      {"entry_SYSCALL_64",    0xe00040, 0},
      {"commit_creds",        0x0b7c10, 0},
      {"prepare_kernel_cred", 0x0b7f60, 0},
      {"native_write_cr4",    0x063a40, 0},
      {"modprobe_path",       0xc51d20, 0},
      {"core_pattern",        0xc52aa0, 0},
  };
}

}  // namespace

KernelLayout::KernelLayout(mem::PhysicalMemory& phys,
                           const KernelOptions& opts)
    : phys_(phys), opts_(opts), image_pa_(kImagePhysBase),
      dummy_pa_(kDummyPhysBase) {
  derive_layout();

  // Give the image recognisable content so Meltdown reads return real
  // bytes. Deliberately seed-independent: reseed() can move the image
  // without touching physical memory.
  for (std::uint64_t off = 0; off < kKernelImageBytes; off += 4096)
    phys_.write64(image_pa_ + off, 0x6b65726e656c0000ull | (off >> 12));
}

bool KernelLayout::reseed(std::uint64_t seed) {
  const int old_slot = slot_;
  opts_.seed = seed;
  secret_vaddr_ = 0;
  derive_layout();
  return slot_ != old_slot;
}

void KernelLayout::derive_layout() {
  stats::Xoshiro256 rng(opts_.seed ^ 0x4b415352ull);  // "KASR"

  const int max_slot =
      kKaslrSlots - static_cast<int>(kKernelImageBytes / kKaslrSlotBytes);
  slot_ = opts_.kaslr_slot >= 0
              ? opts_.kaslr_slot
              : static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(max_slot)));
  if (slot_ > max_slot)
    throw std::invalid_argument("KernelLayout: slot places image outside "
                                "the KASLR region");
  base_ = kKaslrRegionStart +
          static_cast<std::uint64_t>(slot_) * kKaslrSlotBytes;

  symbols_ = default_symbols();
  if (opts_.fgkaslr) {
    // Function-granular shuffle: permute the function bodies inside the
    // image so that base disclosure no longer pinpoints any symbol (§6.2).
    std::vector<std::size_t> order(symbols_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.next_below(i)]);
    std::uint64_t cursor = 0x100000;  // functions live past the boot stub
    for (std::size_t idx : order) {
      symbols_[idx].actual_offset = cursor;
      cursor += 0x8000 + (rng.next_below(8) << 12);
    }
    // The syscall entry/trampoline must stay put for the ABI.
    for (auto& s : symbols_)
      if (s.name == "entry_SYSCALL_64") s.actual_offset = s.default_offset;
  } else {
    for (auto& s : symbols_) s.actual_offset = s.default_offset;
  }
}

void KernelLayout::install(mem::PageTable& kernel_view,
                           mem::PageTable& user_view) const {
  const mem::PteFlags kflags{.present = true,
                             .writable = true,
                             .user = false,
                             .global = true,
                             .reserved = false,
                             .no_exec = false};

  kernel_view.map(base_, image_pa_, kKernelImageBytes, kflags,
                  mem::PageSize::k2M);

  if (!opts_.kpti) {
    // Pre-KPTI world: the kernel image is present (supervisor-only) in the
    // user process's tables — exactly what Meltdown and TET-KASLR probe.
    user_view.map(base_, image_pa_, kKernelImageBytes, kflags,
                  mem::PageSize::k2M);
  } else {
    // KPTI: only the syscall trampoline remains mapped for user mode, at a
    // fixed offset from the image base — the paper's probe target (§4.5).
    user_view.map(trampoline_vaddr(), image_pa_ + kKptiTrampolineOffset,
                  kKaslrSlotBytes, kflags, mem::PageSize::k2M);
  }

  if (opts_.flare) {
    // FLARE: fill every unmapped slot of the KASLR window with a dummy
    // mapping so walk-timing probes see uniform behaviour. Modelled as
    // reserved-bit leaves: the walk completes to full depth (uniform
    // prefetch timing) but the MMU installs no TLB entry — the residual
    // signal TET-KASLR exploits (DESIGN.md §1.4).
    const mem::PteFlags dummy{.present = true,
                              .writable = false,
                              .user = false,
                              .global = false,
                              .reserved = true,
                              .no_exec = true};
    for (int s = 0; s < kKaslrSlots; ++s) {
      const std::uint64_t va =
          kKaslrRegionStart + static_cast<std::uint64_t>(s) * kKaslrSlotBytes;
      if (!user_view.lookup(va) &&
          user_view.walk(va).status == mem::WalkStatus::NotPresent) {
        user_view.map(va, dummy_pa_, kKaslrSlotBytes, dummy,
                      mem::PageSize::k2M);
      }
    }
  }
}

std::uint64_t KernelLayout::plant_secret(
    std::span<const std::uint8_t> bytes) {
  phys_.write_bytes(image_pa_ + kSecretImageOffset, bytes.data(),
                    bytes.size());
  secret_vaddr_ = base_ + kSecretImageOffset;
  return secret_vaddr_;
}

std::uint64_t KernelLayout::symbol_addr(const std::string& name) const {
  for (const auto& s : symbols_)
    if (s.name == name) return base_ + s.actual_offset;
  throw std::out_of_range("KernelLayout: unknown symbol '" + name + "'");
}

std::uint64_t KernelLayout::symbol_guess(const std::string& name) const {
  for (const auto& s : symbols_)
    if (s.name == name) return base_ + s.default_offset;
  throw std::out_of_range("KernelLayout: unknown symbol '" + name + "'");
}

}  // namespace whisper::os
