#include "os/machine.h"

namespace whisper::os {

namespace {

// Physical placement of the attacker process's pages.
constexpr std::uint64_t kUserPhysBase = 0x40000000ull;  // 1 GiB

}  // namespace

Machine::Machine(const MachineOptions& opts)
    : opts_(opts),
      cfg_(opts.config ? *opts.config : uarch::make_config(opts.model)) {
  preset_seed_ = cfg_.seed;
  if (opts.seed != 0) cfg_.seed = opts.seed;
  cfg_.mem.seed = cfg_.seed;

  mem_ = std::make_unique<mem::MemorySystem>(cfg_.mem);

  KernelOptions kopts = opts.kernel;
  if (kopts.seed == 0x4a51c0deULL) kopts.seed = cfg_.seed;
  kernel_ = std::make_unique<KernelLayout>(mem_->phys(), kopts);
  kernel_->install(kernel_view_, user_view_);

  // Attacker process pages, user-accessible in both views.
  const mem::PteFlags uflags{.present = true,
                             .writable = true,
                             .user = true,
                             .global = false,
                             .reserved = false,
                             .no_exec = false};
  struct Region {
    std::uint64_t va, bytes, pa;
  };
  const Region regions[] = {
      {kCodeBase, kCodeBytes, kUserPhysBase + 0x000000},
      {kDataBase, kDataBytes, kUserPhysBase + 0x100000},
      {kStackBase, kStackBytes, kUserPhysBase + 0x200000},
      {kSharedBase, kSharedBytes, kUserPhysBase + 0x300000},
      {kEvictBase, kEvictBytes, kUserPhysBase + 0x800000},
  };
  for (const Region& r : regions) {
    kernel_view_.map(r.va, r.pa, r.bytes, uflags, mem::PageSize::k4K);
    user_view_.map(r.va, r.pa, r.bytes, uflags, mem::PageSize::k4K);
  }

  mem_->set_page_table(&user_view_);
  core_ = std::make_unique<uarch::Core>(cfg_, *mem_);

  // Interference is opt-in: with an all-zero profile no engine exists and
  // both hooks stay null — tests/test_noise.cpp pins the observer effect.
  if (opts.noise.enabled()) {
    noise_ = std::make_unique<noise::NoiseEngine>(opts.noise, cfg_.seed);
    noise_->attach(mem_.get());
    mem_->set_interference(noise_.get());
    core_->set_interference(noise_.get());
  }
}

void Machine::snapshot() {
  mem_->snapshot();
  baseline_digest_ = mem_->state_digest();
}

void Machine::reset(std::uint64_t seed) {
  const std::uint64_t eff = seed != 0 ? seed : preset_seed_;
  opts_.seed = seed;
  cfg_.seed = eff;
  cfg_.mem.seed = eff;

  // Memory side: phys frames, TLBs, caches, LFB back to the snapshot;
  // jitter stream re-derived from the new seed (throws before snapshot()).
  mem_->reset(eff);

  // Kernel half: re-derive the KASLR placement the way construction would.
  // The image bytes are seed-independent and were just restored with the
  // rest of physical memory; only a slot move needs the views remapped.
  KernelOptions kopts = opts_.kernel;
  const std::uint64_t kseed =
      kopts.seed == 0x4a51c0deULL ? eff : kopts.seed;
  if (kernel_->reseed(kseed)) {
    kernel_view_.unmap(kKaslrRegionStart, kKaslrRegionEnd - kKaslrRegionStart);
    user_view_.unmap(kKaslrRegionStart, kKaslrRegionEnd - kKaslrRegionStart);
    kernel_->install(kernel_view_, user_view_);
  }

  // Core side: cycle counter, PMU, BPU, DSB, contexts, RNG. The cached
  // eviction program survives deliberately — its content depends only on
  // the STLB geometry, and the DSB it may have warmed was just cleared.
  core_->reset(eff);
  if (noise_) noise_->reset(eff);

  mem_->set_page_table(&user_view_);
}

uarch::RunResult Machine::run_user(
    const isa::Program& prog,
    const std::array<std::uint64_t, isa::kNumRegs>& regs, int signal_handler,
    std::uint64_t cycle_limit) {
  mem_->set_page_table(&user_view_);
  uarch::InitState init;
  init.regs = regs;
  init.regs[static_cast<std::size_t>(isa::Reg::RSP)] = kStackTop;
  init.signal_handler = signal_handler;
  init.user_mode = true;
  init.code_base = kCodeBase;
  return core_->run(prog, init, cycle_limit);
}

uarch::RunResult Machine::run_smt(
    const isa::Program& p0,
    const std::array<std::uint64_t, isa::kNumRegs>& r0,
    const isa::Program& p1,
    const std::array<std::uint64_t, isa::kNumRegs>& r1, int signal_handler0,
    int signal_handler1, std::uint64_t cycle_limit) {
  mem_->set_page_table(&user_view_);
  uarch::InitState i0;
  i0.regs = r0;
  i0.regs[static_cast<std::size_t>(isa::Reg::RSP)] = kStackTop;
  i0.signal_handler = signal_handler0;
  i0.code_base = kCodeBase;
  uarch::InitState i1;
  i1.regs = r1;
  // Give the sibling its own slice of the stack region.
  i1.regs[static_cast<std::size_t>(isa::Reg::RSP)] = kStackTop - 0x4000;
  i1.signal_handler = signal_handler1;
  i1.code_base = kCodeBase;
  return core_->run_smt(p0, i0, p1, i1, cycle_limit);
}

std::uint64_t Machine::peek64(std::uint64_t vaddr) const {
  return mem_->debug_read64(vaddr);
}
std::uint8_t Machine::peek8(std::uint64_t vaddr) const {
  return mem_->debug_read8(vaddr);
}
void Machine::poke64(std::uint64_t vaddr, std::uint64_t value) {
  mem_->debug_write64(vaddr, value);
}
void Machine::poke8(std::uint64_t vaddr, std::uint8_t value) {
  mem_->debug_write8(vaddr, value);
}
void Machine::poke_bytes(std::uint64_t vaddr,
                         std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i)
    mem_->debug_write8(vaddr + i, bytes[i]);
}
std::vector<std::uint8_t> Machine::peek_bytes(std::uint64_t vaddr,
                                              std::size_t len) const {
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) out[i] = mem_->debug_read8(vaddr + i);
  return out;
}

void Machine::evict_tlbs() {
  mem_->flush_tlbs();
  core_->advance(static_cast<std::uint64_t>(cfg_.tlb_eviction_cycles));
}

void Machine::evict_tlbs_via_access() {
  // One page per STLB (set, way); LRU guarantees full displacement. Built
  // lazily and cached — the program itself is the attack's eviction loop.
  if (!evict_prog_) {
    isa::ProgramBuilder b;
    const auto pages = static_cast<std::int64_t>(
        cfg_.mem.stlb_sets * cfg_.mem.stlb_ways * 2);
    b.mov(isa::Reg::R14, static_cast<std::int64_t>(kEvictBase));
    b.mov(isa::Reg::R12, 0);
    b.label("loop");
    b.load_byte(isa::Reg::R10, isa::Reg::R14);
    b.add(isa::Reg::R14, 4096);
    b.add(isa::Reg::R12, 1);
    b.cmp(isa::Reg::R12, pages);
    b.jcc(isa::Cond::NZ, "loop");
    b.halt();
    evict_prog_ = std::make_unique<isa::Program>(b.build());
  }
  (void)run_user(*evict_prog_, {}, -1, 5'000'000);
  // The paging-structure caches survive access-based eviction only as far
  // as the buffer displaces them; the buffer's own upper levels remain, so
  // probes to far regions still walk fully.
}

void Machine::flush_caches() {
  mem_->l1().flush_all();
  mem_->l2().flush_all();
  mem_->l3().flush_all();
}

void Machine::victim_touch(std::uint64_t value) {
  // The victim moves its secret through a fill buffer right before the
  // attacker samples; physical address is irrelevant to the sampling.
  mem_->victim_touch(kUserPhysBase + 0x400000, value, 8);
}

std::uint64_t Machine::plant_kernel_secret(
    std::span<const std::uint8_t> bytes) {
  return kernel_->plant_secret(bytes);
}

uarch::RunResult Machine::run_kernel_victim(
    const isa::Program& prog,
    const std::array<std::uint64_t, isa::kNumRegs>& regs,
    std::uint64_t cycle_limit) {
  mem_->set_page_table(&kernel_view_);
  uarch::InitState init;
  init.regs = regs;
  init.regs[static_cast<std::size_t>(isa::Reg::RSP)] = kStackTop - 0x8000;
  init.user_mode = false;
  init.code_base = kCodeBase;
  uarch::RunResult r = core_->run(prog, init, cycle_limit);
  mem_->set_page_table(&user_view_);
  return r;
}

void Machine::simulate_syscall() {
  // Entering the kernel through the trampoline warms its translation in the
  // TLBs (kernel-mode access: always fills).
  const std::uint64_t tramp = kernel_->trampoline_vaddr();
  mem_->set_page_table(&user_view_);
  mem::AccessRequest req;
  req.vaddr = tramp;
  req.type = mem::AccessType::Read;
  req.user_mode = false;  // executing in the kernel
  req.size = 8;
  (void)mem_->access(req);
  core_->advance(300);  // syscall round-trip cost
}

}  // namespace whisper::os
