// Machine: one simulated host — CPU core + memory system + kernel + an
// unprivileged attacker process. This is the top-level handle attacks and
// experiments operate on.
//
//   Machine m(MachineOptions{.model = uarch::CpuModel::KabyLakeI7_7700});
//   auto r = m.run_user(program, regs);
//
// The attacker process gets code, stack, scratch data and a shared page
// mapped user-accessible in both page-table views; the kernel half follows
// the KernelOptions (KASLR slot, KPTI, FLARE, FGKASLR).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "isa/builder.h"
#include "isa/program.h"
#include "mem/memory_system.h"
#include "noise/noise.h"
#include "os/kernel_layout.h"
#include "uarch/config.h"
#include "uarch/core.h"

namespace whisper::os {

struct MachineOptions {
  uarch::CpuModel model = uarch::CpuModel::KabyLakeI7_7700;
  KernelOptions kernel;
  /// §4.5: the attack also works from inside a container. Pure namespace
  /// isolation — no microarchitectural change; recorded for reporting.
  bool docker = false;
  std::uint64_t seed = 0;  // 0 = derive from the CPU model preset
  /// Full CPU-config override for ablation studies; replaces the preset
  /// derived from `model` when set.
  std::optional<uarch::CpuConfig> config;
  /// Interference profile (noise::NoiseProfile presets or custom). The
  /// engine is only instantiated when some source has intensity > 0, so
  /// the default "off" profile leaves the machine cycle-identical to a
  /// build without the noise layer at all.
  noise::NoiseProfile noise{};
};

class Machine {
 public:
  // Attacker-process layout (all 4 KiB user pages unless noted).
  static constexpr std::uint64_t kCodeBase = 0x0000000000400000ull;
  static constexpr std::uint64_t kCodeBytes = 0x10000;
  static constexpr std::uint64_t kDataBase = 0x0000000000600000ull;
  static constexpr std::uint64_t kDataBytes = 0x20000;
  static constexpr std::uint64_t kStackBase = 0x00000000007f0000ull;
  static constexpr std::uint64_t kStackBytes = 0x10000;
  static constexpr std::uint64_t kStackTop = kStackBase + kStackBytes - 0x100;
  static constexpr std::uint64_t kSharedBase = 0x0000000000800000ull;
  static constexpr std::uint64_t kSharedBytes = 0x10000;
  /// Eviction buffer: two 4 KiB pages per (set, way) of the STLB — twice
  /// the capacity, so every pass misses everywhere and displaces every
  /// other translation (§4.2: "the TLB can be evicted or invalid by other
  /// methods"). A capacity-sized buffer would stop missing after its first
  /// pass (classic eviction-set pitfall).
  static constexpr std::uint64_t kEvictBase = 0x0000000000a00000ull;
  static constexpr std::uint64_t kEvictBytes = 8ull << 20;

  explicit Machine(const MachineOptions& opts);

  /// Capture the machine's current memory contents as the baseline that
  /// reset() restores. O(1) — dirty tracking starts here; nothing is copied
  /// until frames/sets are actually written. Call once after construction
  /// (and any shared setup all trials should see), then reset() per trial.
  void snapshot();

  /// The trial fast path: restore the snapshot and return every
  /// microarchitectural structure — caches, TLBs, LFB, BPU, PMU, DSB, cycle
  /// counter — and every RNG to the state a freshly constructed
  /// Machine(options with .seed = seed) would have, without reallocating
  /// anything. A reset machine is bit-identical to a fresh one
  /// (tests/test_machine_reset.cpp pins this for every registry attack).
  /// seed == 0 re-derives from the CPU preset, mirroring
  /// MachineOptions::seed == 0. Throws std::logic_error before snapshot().
  void reset(std::uint64_t seed = 0);
  [[nodiscard]] bool snapshotted() const noexcept {
    return mem_->snapshotted();
  }

  /// Digest of the architectural memory state right now; snapshot() caches
  /// the baseline value so the runner's fault layer can compare the two
  /// after every reset() and quarantine a machine whose snapshot has
  /// silently drifted. Full-frame scan — opt-in per trial, not free.
  [[nodiscard]] std::uint64_t state_digest() const noexcept {
    return mem_->state_digest();
  }
  /// The digest captured by the last snapshot() (0 before any snapshot).
  [[nodiscard]] std::uint64_t baseline_digest() const noexcept {
    return baseline_digest_;
  }

  [[nodiscard]] uarch::Core& core() noexcept { return *core_; }
  [[nodiscard]] mem::MemorySystem& memsys() noexcept { return *mem_; }
  /// The attached interference engine, or nullptr when the profile is off.
  [[nodiscard]] noise::NoiseEngine* noise() noexcept { return noise_.get(); }
  [[nodiscard]] KernelLayout& kernel() noexcept { return *kernel_; }
  [[nodiscard]] const uarch::CpuConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] const MachineOptions& options() const noexcept {
    return opts_;
  }

  /// Run a program as the unprivileged attacker (user page-table view).
  uarch::RunResult run_user(const isa::Program& prog,
                            const std::array<std::uint64_t, isa::kNumRegs>&
                                regs = {},
                            int signal_handler = -1,
                            std::uint64_t cycle_limit = 1'000'000);

  /// Run two programs on the SMT siblings (both in the attacker space).
  uarch::RunResult run_smt(const isa::Program& p0,
                           const std::array<std::uint64_t, isa::kNumRegs>& r0,
                           const isa::Program& p1,
                           const std::array<std::uint64_t, isa::kNumRegs>& r1,
                           int signal_handler0 = -1,
                           int signal_handler1 = -1,
                           std::uint64_t cycle_limit = 10'000'000);

  // Architectural access to attacker memory (timing-free).
  [[nodiscard]] std::uint64_t peek64(std::uint64_t vaddr) const;
  [[nodiscard]] std::uint8_t peek8(std::uint64_t vaddr) const;
  void poke64(std::uint64_t vaddr, std::uint64_t value);
  void poke8(std::uint64_t vaddr, std::uint8_t value);
  void poke_bytes(std::uint64_t vaddr, std::span<const std::uint8_t> bytes);
  [[nodiscard]] std::vector<std::uint8_t> peek_bytes(std::uint64_t vaddr,
                                                     std::size_t len) const;

  // --- Attacker-side OS utilities ------------------------------------------
  /// "The TLB can be evicted or invalid by other methods" (§4.2): flush all
  /// TLBs and charge the eviction-buffer cost to simulated time.
  void evict_tlbs();
  /// The mechanism behind the magic: walk the eviction buffer with real
  /// loads until every TLB set/way is displaced. Slower (it executes ~1k
  /// loads on the core) but requires no privileged flush at all.
  void evict_tlbs_via_access();
  /// Flush the whole cache hierarchy (baseline Flush+Reload setup).
  void flush_caches();
  /// Charge attacker overhead (setup, synchronisation) to simulated time.
  void advance_time(std::uint64_t cycles) { core_->advance(cycles); }
  [[nodiscard]] double seconds(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / (cfg_.ghz * 1e9);
  }

  // --- Victim helpers -------------------------------------------------------
  /// Victim on the sibling core touches `value`, staging it in the LFB
  /// (Zombieload's in-flight data, §4.3.2).
  void victim_touch(std::uint64_t value);
  /// Plant a secret string in kernel memory; returns its kernel vaddr.
  std::uint64_t plant_kernel_secret(std::span<const std::uint8_t> bytes);

  /// A syscall round-trip: warms the KPTI trampoline translation, as every
  /// real syscall does. Needed for the FLARE-bypass double-probe.
  void simulate_syscall();

  /// Run a victim program in kernel mode against the kernel page-table view
  /// (a syscall handler, an interrupt path). Its memory traffic flows
  /// through the shared caches and fill buffers — which is how Zombieload's
  /// stale data gets staged mechanistically, without victim_touch().
  uarch::RunResult run_kernel_victim(const isa::Program& prog,
                                     const std::array<std::uint64_t,
                                                      isa::kNumRegs>& regs =
                                         {},
                                     std::uint64_t cycle_limit = 1'000'000);

  /// Address that is guaranteed unmapped in the attacker view (calibration).
  [[nodiscard]] std::uint64_t unmapped_user_address() const noexcept {
    return 0x0000000000000000ull;
  }

 private:
  MachineOptions opts_;
  uarch::CpuConfig cfg_;
  std::uint64_t preset_seed_ = 0;  // cfg seed before any opts.seed override
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<KernelLayout> kernel_;
  mem::PageTable kernel_view_;
  mem::PageTable user_view_;
  std::unique_ptr<uarch::Core> core_;
  std::unique_ptr<noise::NoiseEngine> noise_;
  std::unique_ptr<isa::Program> evict_prog_;
  std::uint64_t baseline_digest_ = 0;
};

}  // namespace whisper::os
