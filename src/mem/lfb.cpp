#include "mem/lfb.h"

#include <algorithm>
#include <cstring>

namespace whisper::mem {

void LineFillBuffer::record(std::uint64_t paddr_line,
                            const std::uint8_t (&data)[kLineBytes]) {
  // Reuse an entry for the same line, else take the oldest slot.
  Entry* slot = nullptr;
  for (Entry& e : entries_) {
    if (e.valid && e.line == paddr_line) {
      slot = &e;
      break;
    }
  }
  if (!slot) {
    slot = &entries_[0];
    for (Entry& e : entries_) {
      if (!e.valid) {
        slot = &e;
        break;
      }
      if (e.seq < slot->seq) slot = &e;
    }
    if (!slot->valid) ++used_;
  }
  slot->valid = true;
  slot->line = paddr_line;
  std::copy(std::begin(data), std::end(data), slot->data.begin());
  slot->seq = ++seq_;
}

void LineFillBuffer::record_value(std::uint64_t paddr, std::uint64_t value,
                                  std::size_t len) {
  std::uint8_t line[kLineBytes] = {};
  const std::size_t off = paddr % kLineBytes;
  for (std::size_t i = 0; i < len && off + i < kLineBytes; ++i)
    line[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
  record(paddr & ~(kLineBytes - 1), line);
}

const LineFillBuffer::Entry* LineFillBuffer::newest() const {
  const Entry* best = nullptr;
  for (const Entry& e : entries_)
    if (e.valid && (!best || e.seq > best->seq)) best = &e;
  return best;
}

std::optional<std::uint8_t> LineFillBuffer::stale_byte(
    std::size_t offset) const {
  const Entry* e = newest();
  if (!e) return std::nullopt;
  return e->data[offset % kLineBytes];
}

std::optional<std::uint64_t> LineFillBuffer::stale_qword(
    std::size_t offset) const {
  const Entry* e = newest();
  if (!e) return std::nullopt;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(e->data[(offset + i) % kLineBytes])
         << (8 * i);
  return v;
}

void LineFillBuffer::clear() {
  for (Entry& e : entries_) e.valid = false;
  used_ = 0;
}

}  // namespace whisper::mem
