// Set-associative data cache (physical-address indexed) with LRU
// replacement and CLFLUSH support. Instances are stacked into an
// L1/L2/LLC hierarchy by MemorySystem; the Flush+Reload baseline depends on
// transient fills being architecturally persistent here.
#pragma once

#include <cstdint>
#include <vector>

namespace whisper::mem {

class Cache {
 public:
  /// `sets` must be a power of two. Line size is 64 bytes throughout.
  Cache(std::size_t sets, std::size_t ways);

  static constexpr std::uint64_t kLineBytes = 64;

  /// True if the line containing paddr is resident; updates LRU on hit.
  bool access(std::uint64_t paddr);
  /// Probe without touching LRU.
  [[nodiscard]] bool contains(std::uint64_t paddr) const;
  /// Install the line containing paddr (evicting LRU if needed).
  /// Returns the evicted line address, or 0 if none was evicted.
  std::uint64_t fill(std::uint64_t paddr);
  /// Remove the line containing paddr if resident (CLFLUSH).
  void flush_line(std::uint64_t paddr);
  void flush_all();

  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::size_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::size_t occupancy() const noexcept;

 private:
  struct Way {
    bool valid = false;
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
  };

  [[nodiscard]] std::size_t set_index(std::uint64_t line) const noexcept {
    return static_cast<std::size_t>(line) & (sets_ - 1);
  }

  std::size_t sets_;
  std::size_t ways_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_storage_;
};

}  // namespace whisper::mem
