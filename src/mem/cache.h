// Set-associative data cache (physical-address indexed) with LRU
// replacement and CLFLUSH support. Instances are stacked into an
// L1/L2/LLC hierarchy by MemorySystem; the Flush+Reload baseline depends on
// transient fills being architecturally persistent here.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace whisper::mem {

class Cache {
 public:
  /// `sets` must be a power of two. Line size is 64 bytes throughout.
  Cache(std::size_t sets, std::size_t ways);

  static constexpr std::uint64_t kLineBytes = 64;

  /// True if the line containing paddr is resident; updates LRU on hit.
  bool access(std::uint64_t paddr);
  /// Probe without touching LRU.
  [[nodiscard]] bool contains(std::uint64_t paddr) const;
  /// Install the line containing paddr (evicting LRU if needed).
  /// Returns the evicted line address, or 0 if none was evicted.
  std::uint64_t fill(std::uint64_t paddr);
  /// Remove the line containing paddr if resident (CLFLUSH).
  void flush_line(std::uint64_t paddr);
  void flush_all();

  /// Capture the current contents as the baseline reset() restores. Begins
  /// dirty tracking: fills mark their set, so reset() only walks the sets
  /// actually touched since.
  void snapshot();
  /// Restore the baseline: invalidate every dirty set, reapply the baseline
  /// ways (which also heals LRU updates and flushes of baseline lines), and
  /// restore the LRU clock. Throws std::logic_error without a snapshot.
  void reset();
  [[nodiscard]] bool snapshotted() const noexcept { return has_baseline_; }
  /// Sets touched by a fill since the last snapshot()/reset().
  [[nodiscard]] std::size_t dirty_sets() const noexcept {
    return dirty_sets_.size();
  }

  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::size_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::size_t occupancy() const noexcept;

 private:
  struct Way {
    bool valid = false;
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
  };

  [[nodiscard]] std::size_t set_index(std::uint64_t line) const noexcept {
    return static_cast<std::size_t>(line) & (sets_ - 1);
  }

  void touch_set(std::size_t set);

  std::size_t sets_;
  std::size_t ways_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_storage_;

  // Snapshot/reset state. Baseline ways are stored as (storage index, Way)
  // and reapplied unconditionally on reset — any in-place mutation of a
  // baseline line (LRU bump, flush, eviction) is healed without having been
  // tracked. Only *fills* need marking, so reset() knows which sets hold
  // post-snapshot lines to invalidate.
  bool has_baseline_ = false;
  std::uint64_t baseline_tick_ = 0;
  std::vector<std::pair<std::uint32_t, Way>> baseline_ways_;
  std::uint64_t epoch_ = 1;
  std::vector<std::uint64_t> set_epoch_;
  std::vector<std::uint32_t> dirty_sets_;
};

}  // namespace whisper::mem
