#include "mem/cache.h"

#include <bit>
#include <stdexcept>

namespace whisper::mem {

Cache::Cache(std::size_t sets, std::size_t ways) : sets_(sets), ways_(ways) {
  if (sets == 0 || !std::has_single_bit(sets))
    throw std::invalid_argument("Cache: sets must be a power of two");
  if (ways == 0) throw std::invalid_argument("Cache: ways must be >= 1");
  ways_storage_.resize(sets_ * ways_);
}

bool Cache::access(std::uint64_t paddr) {
  const std::uint64_t line = paddr / kLineBytes;
  const std::size_t set = set_index(line);
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[set * ways_ + w];
    if (way.valid && way.tag == line) {
      way.lru = ++tick_;
      return true;
    }
  }
  return false;
}

bool Cache::contains(std::uint64_t paddr) const {
  const std::uint64_t line = paddr / kLineBytes;
  const std::size_t set = set_index(line);
  for (std::size_t w = 0; w < ways_; ++w) {
    const Way& way = ways_storage_[set * ways_ + w];
    if (way.valid && way.tag == line) return true;
  }
  return false;
}

std::uint64_t Cache::fill(std::uint64_t paddr) {
  const std::uint64_t line = paddr / kLineBytes;
  const std::size_t set = set_index(line);
  Way* victim = nullptr;
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[set * ways_ + w];
    if (way.valid && way.tag == line) {
      way.lru = ++tick_;
      return 0;  // already resident
    }
    if (!way.valid) {
      if (!victim || victim->valid) victim = &way;
    } else if (!victim || (victim->valid && way.lru < victim->lru)) {
      victim = &way;
    }
  }
  std::uint64_t evicted = 0;
  if (victim->valid) evicted = victim->tag * kLineBytes;
  touch_set(set);
  victim->valid = true;
  victim->tag = line;
  victim->lru = ++tick_;
  return evicted;
}

void Cache::flush_line(std::uint64_t paddr) {
  const std::uint64_t line = paddr / kLineBytes;
  const std::size_t set = set_index(line);
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[set * ways_ + w];
    if (way.valid && way.tag == line) way.valid = false;
  }
}

void Cache::flush_all() {
  for (Way& way : ways_storage_) way.valid = false;
}

void Cache::touch_set(std::size_t set) {
  if (!has_baseline_ || set_epoch_[set] == epoch_) return;
  set_epoch_[set] = epoch_;
  dirty_sets_.push_back(static_cast<std::uint32_t>(set));
}

void Cache::snapshot() {
  has_baseline_ = true;
  baseline_tick_ = tick_;
  baseline_ways_.clear();
  for (std::size_t i = 0; i < ways_storage_.size(); ++i) {
    if (ways_storage_[i].valid)
      baseline_ways_.emplace_back(static_cast<std::uint32_t>(i),
                                  ways_storage_[i]);
  }
  set_epoch_.assign(sets_, 0);
  dirty_sets_.clear();
  epoch_ = 1;
}

void Cache::reset() {
  if (!has_baseline_)
    throw std::logic_error("Cache::reset: no snapshot taken");
  for (const std::uint32_t set : dirty_sets_) {
    for (std::size_t w = 0; w < ways_; ++w)
      ways_storage_[set * ways_ + w].valid = false;
  }
  for (const auto& [i, way] : baseline_ways_) ways_storage_[i] = way;
  tick_ = baseline_tick_;
  dirty_sets_.clear();
  ++epoch_;
}

std::size_t Cache::occupancy() const noexcept {
  std::size_t n = 0;
  for (const Way& way : ways_storage_)
    if (way.valid) ++n;
  return n;
}

}  // namespace whisper::mem
