#include "mem/cache.h"

#include <bit>
#include <stdexcept>

namespace whisper::mem {

Cache::Cache(std::size_t sets, std::size_t ways) : sets_(sets), ways_(ways) {
  if (sets == 0 || !std::has_single_bit(sets))
    throw std::invalid_argument("Cache: sets must be a power of two");
  if (ways == 0) throw std::invalid_argument("Cache: ways must be >= 1");
  ways_storage_.resize(sets_ * ways_);
}

bool Cache::access(std::uint64_t paddr) {
  const std::uint64_t line = paddr / kLineBytes;
  const std::size_t set = set_index(line);
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[set * ways_ + w];
    if (way.valid && way.tag == line) {
      way.lru = ++tick_;
      return true;
    }
  }
  return false;
}

bool Cache::contains(std::uint64_t paddr) const {
  const std::uint64_t line = paddr / kLineBytes;
  const std::size_t set = set_index(line);
  for (std::size_t w = 0; w < ways_; ++w) {
    const Way& way = ways_storage_[set * ways_ + w];
    if (way.valid && way.tag == line) return true;
  }
  return false;
}

std::uint64_t Cache::fill(std::uint64_t paddr) {
  const std::uint64_t line = paddr / kLineBytes;
  const std::size_t set = set_index(line);
  Way* victim = nullptr;
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[set * ways_ + w];
    if (way.valid && way.tag == line) {
      way.lru = ++tick_;
      return 0;  // already resident
    }
    if (!way.valid) {
      if (!victim || victim->valid) victim = &way;
    } else if (!victim || (victim->valid && way.lru < victim->lru)) {
      victim = &way;
    }
  }
  std::uint64_t evicted = 0;
  if (victim->valid) evicted = victim->tag * kLineBytes;
  victim->valid = true;
  victim->tag = line;
  victim->lru = ++tick_;
  return evicted;
}

void Cache::flush_line(std::uint64_t paddr) {
  const std::uint64_t line = paddr / kLineBytes;
  const std::size_t set = set_index(line);
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[set * ways_ + w];
    if (way.valid && way.tag == line) way.valid = false;
  }
}

void Cache::flush_all() {
  for (Way& way : ways_storage_) way.valid = false;
}

std::size_t Cache::occupancy() const noexcept {
  std::size_t n = 0;
  for (const Way& way : ways_storage_)
    if (way.valid) ++n;
  return n;
}

}  // namespace whisper::mem
