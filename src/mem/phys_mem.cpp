#include "mem/phys_mem.h"

#include <cstring>
#include <stdexcept>

namespace whisper::mem {

std::uint32_t PhysicalMemory::alloc_slot(std::uint64_t frame_no) {
  std::uint32_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();  // recycled slots were zeroed when freed
    free_slots_.pop_back();
  } else {
    s = static_cast<std::uint32_t>(frame_of_slot_.size());
    frame_of_slot_.push_back(0);
    slot_epoch_.push_back(0);
    arena_.resize(arena_.size() + kFrameSize, 0);
  }
  frame_of_slot_[s] = frame_no;
  slot_of_.emplace(frame_no, s);
  if (has_baseline_) {
    slot_epoch_[s] = epoch_;  // already dirty; no undo copy needed
    alloc_since_.push_back(s);
  }
  return s;
}

std::uint8_t* PhysicalMemory::frame_for_write(std::uint64_t paddr) {
  const std::uint64_t frame_no = paddr / kFrameSize;
  std::uint32_t s;
  const auto it = slot_of_.find(frame_no);
  if (it == slot_of_.end()) {
    s = alloc_slot(frame_no);
  } else {
    s = it->second;
    if (has_baseline_ && slot_epoch_[s] != epoch_) {
      // First write to a baseline frame this epoch: save its pre-write
      // bytes so reset() can play them back.
      slot_epoch_[s] = epoch_;
      undo_slots_.push_back(s);
      const std::uint8_t* src = arena_.data() + std::size_t{s} * kFrameSize;
      undo_data_.insert(undo_data_.end(), src, src + kFrameSize);
    }
  }
  return arena_.data() + std::size_t{s} * kFrameSize;
}

const std::uint8_t* PhysicalMemory::frame_if_present(
    std::uint64_t paddr) const {
  const auto it = slot_of_.find(paddr / kFrameSize);
  if (it == slot_of_.end()) return nullptr;
  return arena_.data() + std::size_t{it->second} * kFrameSize;
}

std::uint8_t PhysicalMemory::read8(std::uint64_t paddr) const {
  const std::uint8_t* f = frame_if_present(paddr);
  return f ? f[paddr % kFrameSize] : 0;
}

std::uint64_t PhysicalMemory::read64(std::uint64_t paddr) const {
  const std::uint64_t off = paddr % kFrameSize;
  if (off <= kFrameSize - 8) {  // little-endian, single frame lookup
    const std::uint8_t* f = frame_if_present(paddr);
    if (!f) return 0;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | f[off + i];
    return v;
  }
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | read8(paddr + static_cast<std::uint64_t>(i));
  return v;
}

void PhysicalMemory::write8(std::uint64_t paddr, std::uint8_t value) {
  frame_for_write(paddr)[paddr % kFrameSize] = value;
}

void PhysicalMemory::write64(std::uint64_t paddr, std::uint64_t value) {
  const std::uint64_t off = paddr % kFrameSize;
  if (off <= kFrameSize - 8) {
    std::uint8_t* f = frame_for_write(paddr);
    for (int i = 0; i < 8; ++i)
      f[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
    return;
  }
  for (int i = 0; i < 8; ++i) {
    write8(paddr + static_cast<std::uint64_t>(i),
           static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void PhysicalMemory::write_bytes(std::uint64_t paddr, const std::uint8_t* data,
                                 std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) write8(paddr + i, data[i]);
}

std::vector<std::uint8_t> PhysicalMemory::read_bytes(std::uint64_t paddr,
                                                     std::size_t len) const {
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) out[i] = read8(paddr + i);
  return out;
}

std::uint64_t PhysicalMemory::digest() const noexcept {
  // FNV-1a per frame, mixed with the frame number, then combined with a
  // commutative sum: slot_of_'s iteration order (and hence allocation
  // history) cannot leak into the value.
  std::uint64_t acc = 0;
  for (const auto& [frame_no, slot] : slot_of_) {
    std::uint64_t h = 1469598103934665603ull ^ frame_no;
    const std::uint8_t* f = arena_.data() + std::size_t{slot} * kFrameSize;
    for (std::uint64_t i = 0; i < kFrameSize; ++i) {
      h ^= f[i];
      h *= 1099511628211ull;
    }
    // Final avalanche (splitmix64) so per-frame hashes sum without the
    // low-entropy tails cancelling.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    acc += h;
  }
  return acc;
}

void PhysicalMemory::corrupt_frame_for_test() noexcept {
  if (slot_of_.empty()) return;
  std::uint64_t victim_frame = 0;
  std::uint32_t victim_slot = 0;
  bool found = false;
  for (const auto& [frame_no, slot] : slot_of_) {
    if (!found || frame_no < victim_frame) {
      victim_frame = frame_no;
      victim_slot = slot;
      found = true;
    }
  }
  // Flip directly in the arena: no frame_for_write(), no undo entry.
  arena_[std::size_t{victim_slot} * kFrameSize] ^= 0xA5;
}

void PhysicalMemory::snapshot() {
  has_baseline_ = true;
  ++epoch_;
  undo_slots_.clear();
  undo_data_.clear();
  alloc_since_.clear();
}

void PhysicalMemory::reset() {
  if (!has_baseline_)
    throw std::logic_error("PhysicalMemory::reset: no snapshot taken");
  for (std::size_t i = 0; i < undo_slots_.size(); ++i) {
    std::memcpy(arena_.data() + std::size_t{undo_slots_[i]} * kFrameSize,
                undo_data_.data() + i * kFrameSize, kFrameSize);
  }
  for (const std::uint32_t s : alloc_since_) {
    std::memset(arena_.data() + std::size_t{s} * kFrameSize, 0, kFrameSize);
    slot_of_.erase(frame_of_slot_[s]);
    free_slots_.push_back(s);
  }
  undo_slots_.clear();
  undo_data_.clear();
  alloc_since_.clear();
  ++epoch_;
}

}  // namespace whisper::mem
