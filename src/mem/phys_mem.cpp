#include "mem/phys_mem.h"

namespace whisper::mem {

std::vector<std::uint8_t>& PhysicalMemory::frame(std::uint64_t paddr) {
  auto& f = frames_[paddr / kFrameSize];
  if (f.empty()) f.resize(kFrameSize, 0);
  return f;
}

const std::vector<std::uint8_t>* PhysicalMemory::frame_if_present(
    std::uint64_t paddr) const {
  auto it = frames_.find(paddr / kFrameSize);
  return it == frames_.end() ? nullptr : &it->second;
}

std::uint8_t PhysicalMemory::read8(std::uint64_t paddr) const {
  const auto* f = frame_if_present(paddr);
  return f ? (*f)[paddr % kFrameSize] : 0;
}

std::uint64_t PhysicalMemory::read64(std::uint64_t paddr) const {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | read8(paddr + static_cast<std::uint64_t>(i));
  return v;
}

void PhysicalMemory::write8(std::uint64_t paddr, std::uint8_t value) {
  frame(paddr)[paddr % kFrameSize] = value;
}

void PhysicalMemory::write64(std::uint64_t paddr, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    write8(paddr + static_cast<std::uint64_t>(i),
           static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void PhysicalMemory::write_bytes(std::uint64_t paddr, const std::uint8_t* data,
                                 std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) write8(paddr + i, data[i]);
}

std::vector<std::uint8_t> PhysicalMemory::read_bytes(std::uint64_t paddr,
                                                     std::size_t len) const {
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) out[i] = read8(paddr + i);
  return out;
}

}  // namespace whisper::mem
