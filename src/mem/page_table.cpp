#include "mem/page_table.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace whisper::mem {

namespace {

constexpr std::uint64_t level_shift(int level) noexcept {
  // level 1 = PML4 (bits 47:39) ... level 4 = PT (bits 20:12)
  return 12u + 9u * static_cast<std::uint64_t>(4 - level);
}

}  // namespace

int first_divergent_level(std::uint64_t a, std::uint64_t b) noexcept {
  for (int level = 1; level <= 4; ++level) {
    const std::uint64_t shift = level_shift(level);
    if ((a >> shift) != (b >> shift)) return level;
  }
  return 5;  // same 4 KiB page
}

void PageTable::map(std::uint64_t vaddr, std::uint64_t paddr,
                    std::uint64_t len, PteFlags flags, PageSize size) {
  const std::uint64_t page = bytes(size);
  if (vaddr % page || paddr % page || len % page || len == 0) {
    std::ostringstream msg;
    msg << "PageTable::map: misaligned mapping vaddr=0x" << std::hex << vaddr
        << " paddr=0x" << paddr << " len=0x" << len;
    throw std::invalid_argument(msg.str());
  }
  for (std::uint64_t off = 0; off < len; off += page) {
    std::uint64_t base = 0;
    if (const Entry* existing = find(vaddr + off, &base);
        existing != nullptr && existing->size != size) {
      throw std::invalid_argument(
          "PageTable::map: overlapping mapping with different page size");
    }
    entries_[vaddr + off] = Entry{paddr + off, flags, size};
  }
}

void PageTable::unmap(std::uint64_t vaddr, std::uint64_t len) {
  auto it = entries_.lower_bound(vaddr);
  // A 2 MiB page starting below vaddr may cover it; step back once.
  if (it != entries_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + bytes(prev->second.size) > vaddr) it = prev;
  }
  while (it != entries_.end() && it->first < vaddr + len)
    it = entries_.erase(it);
}

const PageTable::Entry* PageTable::find(std::uint64_t vaddr,
                                        std::uint64_t* entry_base) const {
  auto it = entries_.upper_bound(vaddr);
  if (it == entries_.begin()) return nullptr;
  --it;
  if (vaddr < it->first + bytes(it->second.size)) {
    if (entry_base) *entry_base = it->first;
    return &it->second;
  }
  return nullptr;
}

WalkResult PageTable::walk(std::uint64_t vaddr, int psc_hits) const {
  WalkResult r;
  psc_hits = std::clamp(psc_hits, 0, 3);

  std::uint64_t base = 0;
  if (const Entry* e = find(vaddr, &base)) {
    r.page_size = e->size;
    const int depth = (e->size == PageSize::k2M) ? 3 : 4;
    r.levels_fetched = std::max(1, depth - psc_hits);
    r.flags = e->flags;
    if (e->flags.reserved) {
      // FLARE-style dummy: the leaf exists, the walk completes, but the
      // reserved bit faults the access and the MMU installs no TLB entry.
      r.status = WalkStatus::ReservedBit;
      r.miss_level = depth;
      return r;
    }
    if (!e->flags.present) {
      r.status = WalkStatus::NotPresent;
      r.miss_level = depth;
      return r;
    }
    r.status = WalkStatus::Ok;
    r.paddr = e->paddr + (vaddr - base);
    return r;
  }

  // Unmapped: the walker follows whatever upper-level tables exist for this
  // prefix and stops at the first non-present entry. Depth is derived from
  // the nearest existing mappings (they imply which intermediate tables are
  // allocated).
  int deepest = 1;
  auto it = entries_.lower_bound(vaddr);
  if (it != entries_.end())
    deepest = std::max(deepest,
                       std::min(first_divergent_level(vaddr, it->first), 4));
  if (it != entries_.begin()) {
    const auto& prev = *std::prev(it);
    deepest = std::max(deepest,
                       std::min(first_divergent_level(vaddr, prev.first), 4));
  }
  r.status = WalkStatus::NotPresent;
  r.miss_level = deepest;
  r.levels_fetched = std::max(1, deepest - psc_hits);
  return r;
}

std::optional<WalkResult> PageTable::lookup(std::uint64_t vaddr) const {
  WalkResult r = walk(vaddr);
  if (r.status == WalkStatus::Ok) return r;
  return std::nullopt;
}

}  // namespace whisper::mem
