// MemorySystem: the memory side of the core model.
//
// Composes TLBs, paging-structure caches, the L1/L2/LLC hierarchy, the line
// fill buffer and the active page tables into a single `access()` call that
// returns everything the pipeline needs: latency, fault classification,
// (possibly transiently forwarded) data, and the microarchitectural
// bookkeeping that drives the PMU events of Table 3.
//
// Behavioural policies reproduced from the paper:
//  * `tlb_fill_on_permission_fault` — Intel parts install a DTLB entry for a
//    *mapped* supervisor page even when the user-mode access faults
//    (§4.5, "Intel's CPUs will trigger the loading of TLB entries for mapped
//    addresses, even for illegal access without permission").
//  * Unmapped addresses cause the walk to be *replayed*
//    (DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK = 2 in Table 3) and leave the
//    walker active far longer (WALK_ACTIVE 62 vs 0) — extending ToTE.
//  * `meltdown_forwards_data` — pre-fix parts forward the real data of a
//    permission-faulting load to dependents.
//  * `lfb_forwards_stale` — MDS parts let a faulting/assisted load sample a
//    stale line-fill-buffer byte (Zombieload).
//  * Reserved-bit leaves (the FLARE dummy model) complete a full walk but
//    never fill the TLB.
#pragma once

#include <cstdint>
#include <memory>

#include "mem/cache.h"
#include "mem/lfb.h"
#include "mem/page_table.h"
#include "mem/phys_mem.h"
#include "mem/tlb.h"
#include "stats/rng.h"

namespace whisper::mem {

/// Memory-model parameters; embedded in uarch::CpuConfig.
struct MemConfig {
  // Cache geometry (sets x ways, 64 B lines) and load-to-use latencies.
  std::size_t l1_sets = 64, l1_ways = 8;
  std::size_t l2_sets = 1024, l2_ways = 8;
  std::size_t l3_sets = 8192, l3_ways = 16;
  int l1_latency = 4;
  int l2_latency = 12;
  int l3_latency = 42;
  int dram_latency = 200;

  // TLB geometry.
  std::size_t dtlb_sets = 16, dtlb_ways = 4;
  std::size_t itlb_sets = 8, itlb_ways = 8;
  std::size_t stlb_sets = 128, stlb_ways = 8;
  int stlb_latency = 7;

  // Page walk: cycles per table level actually fetched, and how many times
  // the walk is replayed when the address turns out to be unmapped.
  int walk_level_cycles = 15;
  int not_present_replays = 2;

  // Cycles the permission/presence check adds after translation before a
  // faulting access is confirmed — this keeps the transient window open for
  // the gadget's Jcc to resolve in, even when the translation was a TLB hit.
  int fault_confirm_min_cycles = 16;

  // Paper-critical policy flags (defaults = Intel pre-fix behaviour).
  bool tlb_fill_on_permission_fault = true;
  bool meltdown_forwards_data = true;
  bool lfb_forwards_stale = true;

  // Uniform jitter in [0, amp] cycles added to DRAM accesses and walks.
  int jitter_amp = 2;
  std::uint64_t seed = 0x5eed;
};

enum class AccessType : std::uint8_t { Read, Write, Prefetch, Fetch };
enum class Fault : std::uint8_t {
  None,
  NotPresent,   // page not mapped
  Permission,   // mapped, but user access to supervisor page
  Protection,   // mapped, but write to read-only page
  ReservedBit,  // mapped via FLARE dummy (reserved bit set in leaf)
};

struct AccessRequest {
  std::uint64_t vaddr = 0;
  AccessType type = AccessType::Read;
  bool user_mode = true;
  std::uint8_t size = 8;          // 1 or 8 bytes
  std::uint64_t store_value = 0;  // for writes
};

struct AccessResult {
  int latency = 0;            // total cycles until data/fault is known
  Fault fault = Fault::None;
  std::uint64_t data = 0;     // load result (possibly transiently forwarded)
  std::uint64_t paddr = 0;    // valid when translation succeeded
  bool data_forwarded = false;   // data is transient-only (fault != None)
  bool from_lfb_stale = false;   // data came from a stale LFB entry
  bool tlb_hit = false;
  bool tlb_filled = false;
  int walks = 0;              // walks initiated (unmapped: replay count)
  int walk_cycles = 0;        // cycles with the walker active
  int cache_level = 0;        // 1..3 = cache hit level, 4 = DRAM, 0 = n/a
};

/// Interference hook: extra latency injected into every access by an
/// attached noise engine (whisper::noise::NoiseEngine). Called after the
/// access has been resolved normally; the return value (which may be
/// negative, e.g. a DVFS step that speeds the core clock relative to DRAM)
/// is added to the access latency, floored at 1 cycle. Implementations may
/// also mutate cache/LFB/TLB state through the MemorySystem they are
/// attached to (prefetcher pollution, sibling fill traffic) — but must stay
/// deterministic functions of their own seed and the access stream.
class MemInterference {
 public:
  virtual ~MemInterference() = default;
  virtual int on_access(const AccessRequest& req, const AccessResult& res) = 0;
};

/// Memory-side PMU counters, devirtualized: instead of virtual-dispatching
/// each TLB/cache event into uarch::Pmu, the MemorySystem bumps raw
/// std::uint64_t slots in a caller-provided window (set_counter_window).
/// uarch::Pmu lays its memory-subsystem events out contiguously in exactly
/// this order and hands the core a pointer to the first one, so every event
/// on the hot hit path is a single add — no vtable, no switch.
enum class MemCounter : std::size_t {
  kDtlbMissWalks = 0,  // walks initiated by data-side TLB misses
  kDtlbWalkCycles,     // cycles the walker was active for data accesses
  kItlbWalkCycles,     // cycles the walker was active for instruction probes
  kStlbHits,           // second-level TLB hits
  kL1Hit,
  kL2Hit,
  kL3Hit,
  kDram,
  Count,
};

inline constexpr std::size_t kNumMemCounters =
    static_cast<std::size_t>(MemCounter::Count);

class MemorySystem {
 public:
  explicit MemorySystem(const MemConfig& cfg);

  /// The page tables used for subsequent translations (CR3). Not owned.
  void set_page_table(const PageTable* pt);
  [[nodiscard]] const PageTable* page_table() const noexcept { return pt_; }

  /// Optional PMU counter window (not owned); may be null. Must point to at
  /// least kNumMemCounters slots laid out per MemCounter.
  void set_counter_window(std::uint64_t* counters) noexcept {
    counters_ = counters;
  }

  /// Optional interference source (not owned); may be null. With none
  /// attached the hook is a branch on a null pointer — attaching and never
  /// injecting must not change any latency (tests/test_noise.cpp).
  void set_interference(MemInterference* noise) noexcept { noise_ = noise; }

  /// Perform a data-side access: translate, classify faults, compute
  /// latency, fetch/forward data, and update TLB/cache/LFB state.
  AccessResult access(const AccessRequest& req);

  /// Instruction-side translation probe used by the front end after a
  /// resteer to an uncached target; charges ITLB walk cycles.
  int instruction_probe(std::uint64_t vaddr);

  /// CLFLUSH: evict the line containing the *translated* vaddr from the
  /// whole hierarchy. No-op for unmapped addresses (real CLFLUSH would
  /// fault; gadgets only flush their own mapped buffers).
  void clflush(std::uint64_t vaddr);

  /// TLB maintenance (used by the attacker's eviction step and CR3 switch).
  void flush_tlbs();
  void flush_tlbs_non_global();
  void invalidate_tlb_page(std::uint64_t vaddr);

  /// Direct, timing-free physical access for machine setup and for applying
  /// retired stores.
  PhysicalMemory& phys() noexcept { return phys_; }
  const PhysicalMemory& phys() const noexcept { return phys_; }

  /// Timing-free architectural read/write through the current page table
  /// (asserts the mapping exists). Used by Machine setup and result readout.
  [[nodiscard]] std::uint64_t debug_read64(std::uint64_t vaddr) const;
  [[nodiscard]] std::uint8_t debug_read8(std::uint64_t vaddr) const;
  void debug_write64(std::uint64_t vaddr, std::uint64_t value);
  void debug_write8(std::uint64_t vaddr, std::uint8_t value);

  /// Translate without side effects; throws std::runtime_error if unmapped.
  [[nodiscard]] std::uint64_t translate_or_throw(std::uint64_t vaddr) const;

  [[nodiscard]] Tlb& dtlb() noexcept { return dtlb_; }
  [[nodiscard]] Tlb& itlb() noexcept { return itlb_; }
  [[nodiscard]] Tlb& stlb() noexcept { return stlb_; }
  [[nodiscard]] Cache& l1() noexcept { return l1_; }
  [[nodiscard]] Cache& l2() noexcept { return l2_; }
  [[nodiscard]] Cache& l3() noexcept { return l3_; }
  [[nodiscard]] LineFillBuffer& lfb() noexcept { return lfb_; }
  [[nodiscard]] const MemConfig& config() const noexcept { return cfg_; }

  /// Victim-side helper: move a value through the LFB as an in-flight line
  /// (models the victim touching its secret right before the attack).
  void victim_touch(std::uint64_t paddr, std::uint64_t value,
                    std::size_t len);

  /// Capture the whole memory side — phys frames, TLBs, caches, LFB and the
  /// paging-structure caches — as the baseline reset() restores. Cheap:
  /// components start dirty tracking; nothing large is copied.
  void snapshot();
  /// Restore the baseline and re-derive the jitter RNG exactly as
  /// construction with cfg.seed = seed would, so a reset MemorySystem is
  /// indistinguishable from a freshly built one. The active page table and
  /// the sink/interference hooks are left to the caller (os::Machine).
  void reset(std::uint64_t seed);
  [[nodiscard]] bool snapshotted() const noexcept { return has_baseline_; }

  /// Digest of the architectural memory state (the physical frame set and
  /// its contents — the part of a reset that must be bit-exact; TLB/cache
  /// fill state is performance-only). The runner compares this against the
  /// value captured at snapshot() to detect silent reset drift.
  [[nodiscard]] std::uint64_t state_digest() const noexcept {
    return phys_.digest();
  }

 private:
  struct Translation {
    Fault fault = Fault::None;
    std::uint64_t paddr = 0;
    bool tlb_hit = false;
    bool tlb_filled = false;
    int walks = 0;
    int walk_cycles = 0;
    int latency = 0;
    WalkResult walk;
  };

  AccessResult access_impl(const AccessRequest& req);
  Translation translate(std::uint64_t vaddr, AccessType type, bool user_mode);
  int cache_access(std::uint64_t paddr, AccessResult& out);
  int jitter();
  /// Paging-structure-cache hits for this vaddr (0..3 upper levels).
  int psc_lookup_and_fill(std::uint64_t vaddr);

  void count(MemCounter c, std::uint64_t n = 1) noexcept {
    if (counters_) counters_[static_cast<std::size_t>(c)] += n;
  }

  MemConfig cfg_;
  const PageTable* pt_ = nullptr;
  std::uint64_t* counters_ = nullptr;
  MemInterference* noise_ = nullptr;

  PhysicalMemory phys_;
  Tlb dtlb_;
  Tlb itlb_;
  Tlb stlb_;
  Cache l1_;
  Cache l2_;
  Cache l3_;
  LineFillBuffer lfb_;
  stats::Xoshiro256 rng_;

  // Tiny paging-structure caches: most recent translations' upper levels.
  static constexpr std::size_t kPscEntries = 4;
  std::uint64_t psc_[kPscEntries] = {};
  std::size_t psc_next_ = 0;
  bool psc_valid_[kPscEntries] = {};

  // PSC baseline for snapshot()/reset().
  bool has_baseline_ = false;
  std::uint64_t psc_base_[kPscEntries] = {};
  std::size_t psc_next_base_ = 0;
  bool psc_valid_base_[kPscEntries] = {};
};

}  // namespace whisper::mem
