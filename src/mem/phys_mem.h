// Sparse byte-addressable physical memory, backed by a pooled frame arena.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace whisper::mem {

/// Physical memory backed by lazily allocated 4 KiB frames. Reads of
/// never-written frames return zero, as DRAM-after-scrub would.
///
/// Frames live in one flat arena indexed by *slot*; a frame number → slot
/// map plus a free list make allocation O(1) and keep every frame's storage
/// alive across snapshot/reset cycles (no per-trial reallocation).
///
/// snapshot()/reset() implement the trial fast path: snapshot() marks the
/// current contents as the baseline (O(1) — nothing is copied up front),
/// after which the first write to each baseline frame saves an undo copy of
/// it. reset() plays the undo log back, zeroes and frees every frame
/// allocated since the snapshot (so a reset machine reads zeroes exactly
/// where a fresh one would), and starts a new undo epoch. Cost is
/// proportional to the frames actually written, not to the footprint.
class PhysicalMemory {
 public:
  static constexpr std::uint64_t kFrameSize = 4096;

  [[nodiscard]] std::uint8_t read8(std::uint64_t paddr) const;
  [[nodiscard]] std::uint64_t read64(std::uint64_t paddr) const;
  void write8(std::uint64_t paddr, std::uint8_t value);
  void write64(std::uint64_t paddr, std::uint64_t value);

  /// Bulk helpers for loading victim data / kernel images.
  void write_bytes(std::uint64_t paddr, const std::uint8_t* data,
                   std::size_t len);
  [[nodiscard]] std::vector<std::uint8_t> read_bytes(std::uint64_t paddr,
                                                     std::size_t len) const;

  /// Mark the current contents as the baseline reset() restores. O(1);
  /// clears the undo log and begins dirty tracking. May be called again to
  /// re-baseline.
  void snapshot();
  /// Restore the baseline: undo every write to a pre-snapshot frame, zero
  /// and free every frame allocated since. Throws std::logic_error if no
  /// snapshot was taken.
  void reset();
  [[nodiscard]] bool snapshotted() const noexcept { return has_baseline_; }

  /// Number of live (allocated) frames (for tests / accounting).
  [[nodiscard]] std::size_t allocated_frames() const noexcept {
    return slot_of_.size();
  }
  /// Arena capacity in frames: live + pooled-free. Never shrinks; a steady
  /// snapshot/reset cycle stops growing after the first trial.
  [[nodiscard]] std::size_t pool_frames() const noexcept {
    return frame_of_slot_.size();
  }
  /// Frames written (or newly allocated) since the last snapshot()/reset().
  [[nodiscard]] std::size_t dirty_frames() const noexcept {
    return undo_slots_.size() + alloc_since_.size();
  }

  /// Order-independent digest of the live frame set (frame numbers and
  /// contents). Two memories with the same mapped frames holding the same
  /// bytes digest equal regardless of allocation order, so the runner can
  /// compare a reset() machine against its snapshot baseline and detect
  /// silent drift. Cost is a full scan of live frames — callers cache the
  /// baseline value rather than recomputing it.
  [[nodiscard]] std::uint64_t digest() const noexcept;

  /// Fault-injection hook: flip one byte of the lowest-numbered live frame,
  /// bypassing the undo log — reset() cannot restore it, so the corruption
  /// models exactly the silent snapshot drift digest() exists to catch.
  /// No-op on an empty memory. Deterministic: same memory, same flip.
  void corrupt_frame_for_test() noexcept;

 private:
  [[nodiscard]] std::uint8_t* frame_for_write(std::uint64_t paddr);
  [[nodiscard]] const std::uint8_t* frame_if_present(
      std::uint64_t paddr) const;
  std::uint32_t alloc_slot(std::uint64_t frame_no);

  std::vector<std::uint8_t> arena_;            // pool_frames() * kFrameSize
  std::unordered_map<std::uint64_t, std::uint32_t> slot_of_;  // frame# → slot
  std::vector<std::uint64_t> frame_of_slot_;   // slot → frame# (live slots)
  std::vector<std::uint32_t> free_slots_;      // recycled, zeroed slots

  // Undo log for the current epoch. A slot appears in at most one of the
  // two lists: undo_slots_ for baseline frames (first write saves the
  // pre-write bytes into undo_data_), alloc_since_ for frames allocated
  // after the snapshot (zeroed and freed on reset).
  bool has_baseline_ = false;
  std::uint64_t epoch_ = 1;
  std::vector<std::uint64_t> slot_epoch_;      // slot → last epoch touched
  std::vector<std::uint32_t> undo_slots_;
  std::vector<std::uint8_t> undo_data_;        // undo_slots_ * kFrameSize
  std::vector<std::uint32_t> alloc_since_;
};

}  // namespace whisper::mem
