// Sparse byte-addressable physical memory.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace whisper::mem {

/// Physical memory backed by lazily allocated 4 KiB frames. Reads of
/// never-written frames return zero, as DRAM-after-scrub would.
class PhysicalMemory {
 public:
  static constexpr std::uint64_t kFrameSize = 4096;

  [[nodiscard]] std::uint8_t read8(std::uint64_t paddr) const;
  [[nodiscard]] std::uint64_t read64(std::uint64_t paddr) const;
  void write8(std::uint64_t paddr, std::uint8_t value);
  void write64(std::uint64_t paddr, std::uint64_t value);

  /// Bulk helpers for loading victim data / kernel images.
  void write_bytes(std::uint64_t paddr, const std::uint8_t* data,
                   std::size_t len);
  [[nodiscard]] std::vector<std::uint8_t> read_bytes(std::uint64_t paddr,
                                                     std::size_t len) const;

  /// Number of frames that have been touched (for tests / accounting).
  [[nodiscard]] std::size_t allocated_frames() const noexcept {
    return frames_.size();
  }

 private:
  [[nodiscard]] std::vector<std::uint8_t>& frame(std::uint64_t paddr);
  [[nodiscard]] const std::vector<std::uint8_t>* frame_if_present(
      std::uint64_t paddr) const;

  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> frames_;
};

}  // namespace whisper::mem
