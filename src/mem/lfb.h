// Line fill buffer (LFB) model.
//
// The LFB tracks cache lines in flight between the core and the memory
// hierarchy. On the MDS-vulnerable models (i7-6700 / i7-7700) a faulting or
// assisted load may speculatively forward *stale* data from an LFB entry
// belonging to another context — the Zombieload primitive (paper §4.3.2).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

namespace whisper::mem {

class LineFillBuffer {
 public:
  static constexpr std::size_t kEntries = 10;  // Skylake-class LFB depth
  static constexpr std::uint64_t kLineBytes = 64;

  /// Record a line moving through the buffer with its 64 data bytes.
  void record(std::uint64_t paddr_line, const std::uint8_t (&data)[kLineBytes]);
  /// Convenience: record only the bytes around `paddr` (rest zero-filled).
  void record_value(std::uint64_t paddr, std::uint64_t value,
                    std::size_t len);

  /// The stale byte an MDS-style faulting load would sample for a load at
  /// line offset `offset`. Returns nullopt when the buffer is empty.
  [[nodiscard]] std::optional<std::uint8_t> stale_byte(
      std::size_t offset) const;
  [[nodiscard]] std::optional<std::uint64_t> stale_qword(
      std::size_t offset) const;

  void clear();
  [[nodiscard]] std::size_t occupancy() const noexcept { return used_; }

  /// Capture the buffer as the baseline reset() restores (it is 10 entries;
  /// a wholesale copy is cheaper than tracking).
  void snapshot() {
    baseline_entries_ = entries_;
    baseline_used_ = used_;
    baseline_seq_ = seq_;
    has_baseline_ = true;
  }
  void reset() {
    entries_ = baseline_entries_;
    used_ = baseline_used_;
    seq_ = baseline_seq_;
  }
  [[nodiscard]] bool snapshotted() const noexcept { return has_baseline_; }

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t line = 0;
    std::array<std::uint8_t, kLineBytes> data{};
    std::uint64_t seq = 0;
  };

  [[nodiscard]] const Entry* newest() const;

  std::array<Entry, kEntries> entries_{};
  std::size_t used_ = 0;
  std::uint64_t seq_ = 0;

  bool has_baseline_ = false;
  std::array<Entry, kEntries> baseline_entries_{};
  std::size_t baseline_used_ = 0;
  std::uint64_t baseline_seq_ = 0;
};

}  // namespace whisper::mem
