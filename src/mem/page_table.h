// Four-level x86-64-style page tables (PML4 → PDPT → PD → PT) with 4 KiB and
// 2 MiB leaf pages, and a software walker that reports exactly what the
// hardware page-miss handler would observe: how many levels were fetched and
// whether the walk terminated in a present leaf, a non-present entry, or a
// reserved-bit violation (the FLARE dummy-mapping model, DESIGN.md §1.4).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

namespace whisper::mem {

/// Leaf-entry permission / attribute bits.
struct PteFlags {
  bool present = true;
  bool writable = true;
  bool user = false;      // accessible from CPL3
  bool global = false;    // survives CR3 switch (kernel text)
  bool reserved = false;  // reserved-bit set: walk faults, no TLB fill
  bool no_exec = false;

  friend bool operator==(const PteFlags&, const PteFlags&) = default;
};

enum class PageSize : std::uint8_t { k4K, k2M };

[[nodiscard]] constexpr std::uint64_t bytes(PageSize s) noexcept {
  return s == PageSize::k4K ? (1ull << 12) : (1ull << 21);
}

enum class WalkStatus : std::uint8_t {
  Ok,           // present leaf found
  NotPresent,   // some level's entry is non-present
  ReservedBit,  // leaf present but reserved bit set (FLARE dummy)
};

struct WalkResult {
  WalkStatus status = WalkStatus::NotPresent;
  std::uint64_t paddr = 0;    // translated physical address (when Ok)
  PteFlags flags;             // leaf flags (when Ok or ReservedBit)
  PageSize page_size = PageSize::k4K;
  int levels_fetched = 0;     // table levels the walker had to read (1..4)
  int miss_level = 0;         // level at which NotPresent terminated (1..4)
};

/// A single address space's page tables. Entries are stored sparsely; the
/// class also exposes enumeration used by the KPTI shadow-table builder.
class PageTable {
 public:
  /// Map [vaddr, vaddr+len) to [paddr, ...) with the given flags and page
  /// size. vaddr/paddr/len must be page-aligned for the chosen size.
  /// Throws std::invalid_argument on misalignment or overlap with an
  /// existing mapping of a different geometry.
  void map(std::uint64_t vaddr, std::uint64_t paddr, std::uint64_t len,
           PteFlags flags, PageSize size = PageSize::k4K);

  /// Remove the mapping covering [vaddr, vaddr+len). Silently ignores holes.
  void unmap(std::uint64_t vaddr, std::uint64_t len);

  /// Walk the tables for `vaddr`. `psc_hits` is the number of upper levels
  /// whose entries were served by the paging-structure caches (0..3) — the
  /// walker then fetches only the remaining levels.
  [[nodiscard]] WalkResult walk(std::uint64_t vaddr, int psc_hits = 0) const;

  /// Leaf lookup without timing bookkeeping (for OS-level assertions).
  [[nodiscard]] std::optional<WalkResult> lookup(std::uint64_t vaddr) const;

  /// Visit every mapping as (vaddr, paddr, flags, size). Order: ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [v, e] : entries_)
      fn(v, e.paddr, e.flags, e.size);
  }

  [[nodiscard]] std::size_t mapping_count() const noexcept {
    return entries_.size();
  }

 private:
  struct Entry {
    std::uint64_t paddr = 0;
    PteFlags flags;
    PageSize size = PageSize::k4K;
  };

  /// Find the entry covering vaddr, if any.
  [[nodiscard]] const Entry* find(std::uint64_t vaddr,
                                  std::uint64_t* entry_base) const;

  // Keyed by page-aligned virtual base of each leaf page.
  std::map<std::uint64_t, Entry> entries_;
};

/// Which paging level (1=PML4 .. 4=PT) first diverges between two virtual
/// addresses — used by the paging-structure cache model.
[[nodiscard]] int first_divergent_level(std::uint64_t a,
                                        std::uint64_t b) noexcept;

}  // namespace whisper::mem
