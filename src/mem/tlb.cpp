#include "mem/tlb.h"

#include <bit>
#include <stdexcept>

namespace whisper::mem {

namespace {
constexpr int shift_for(PageSize s) noexcept {
  return s == PageSize::k4K ? 12 : 21;
}
}  // namespace

Tlb::Tlb(std::size_t sets, std::size_t ways) : sets_(sets), ways_(ways) {
  if (sets == 0 || !std::has_single_bit(sets))
    throw std::invalid_argument("Tlb: sets must be a power of two");
  if (ways == 0) throw std::invalid_argument("Tlb: ways must be >= 1");
  ways_storage_.resize(sets_ * ways_);
}

Tlb::Way* Tlb::find(std::uint64_t vaddr) {
  for (PageSize size : {PageSize::k4K, PageSize::k2M}) {
    const std::uint64_t vpn = vaddr >> shift_for(size);
    const std::size_t set = set_index(vpn);
    for (std::size_t w = 0; w < ways_; ++w) {
      Way& way = ways_storage_[set * ways_ + w];
      if (way.valid && way.entry.size == size && way.entry.vpn == vpn)
        return &way;
    }
  }
  return nullptr;
}

const Tlb::Way* Tlb::find(std::uint64_t vaddr) const {
  return const_cast<Tlb*>(this)->find(vaddr);
}

std::optional<TlbEntry> Tlb::lookup(std::uint64_t vaddr) {
  if (Way* way = find(vaddr)) {
    way->lru = ++tick_;
    return way->entry;
  }
  return std::nullopt;
}

const TlbEntry* Tlb::lookup_ref(std::uint64_t vaddr) {
  if (Way* way = find(vaddr)) {
    way->lru = ++tick_;
    return &way->entry;
  }
  return nullptr;
}

bool Tlb::contains(std::uint64_t vaddr) const { return find(vaddr) != nullptr; }

void Tlb::insert(std::uint64_t vaddr, std::uint64_t paddr, PteFlags flags,
                 PageSize size) {
  const int shift = shift_for(size);
  const std::uint64_t vpn = vaddr >> shift;
  if (Way* way = find(vaddr)) {
    way->entry = TlbEntry{vpn, paddr >> shift, flags, size, flags.global};
    way->lru = ++tick_;
    return;
  }
  const std::size_t set = set_index(vpn);
  Way* victim = &ways_storage_[set * ways_];
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[set * ways_ + w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (way.lru < victim->lru) victim = &way;
  }
  touch_set(set);
  victim->valid = true;
  victim->entry = TlbEntry{vpn, paddr >> shift, flags, size, flags.global};
  victim->lru = ++tick_;
}

void Tlb::invalidate_page(std::uint64_t vaddr) {
  while (Way* way = find(vaddr)) way->valid = false;
}

void Tlb::flush_all() {
  for (Way& way : ways_storage_) way.valid = false;
}

void Tlb::flush_non_global() {
  for (Way& way : ways_storage_)
    if (way.valid && !way.entry.global) way.valid = false;
}

void Tlb::touch_set(std::size_t set) {
  if (!has_baseline_ || set_epoch_[set] == epoch_) return;
  set_epoch_[set] = epoch_;
  dirty_sets_.push_back(static_cast<std::uint32_t>(set));
}

void Tlb::snapshot() {
  has_baseline_ = true;
  baseline_tick_ = tick_;
  baseline_ways_.clear();
  for (std::size_t i = 0; i < ways_storage_.size(); ++i) {
    if (ways_storage_[i].valid)
      baseline_ways_.emplace_back(static_cast<std::uint32_t>(i),
                                  ways_storage_[i]);
  }
  set_epoch_.assign(sets_, 0);
  dirty_sets_.clear();
  epoch_ = 1;
}

void Tlb::reset() {
  if (!has_baseline_) throw std::logic_error("Tlb::reset: no snapshot taken");
  for (const std::uint32_t set : dirty_sets_) {
    for (std::size_t w = 0; w < ways_; ++w)
      ways_storage_[set * ways_ + w].valid = false;
  }
  for (const auto& [i, way] : baseline_ways_) ways_storage_[i] = way;
  tick_ = baseline_tick_;
  dirty_sets_.clear();
  ++epoch_;
}

std::size_t Tlb::occupancy() const noexcept {
  std::size_t n = 0;
  for (const Way& way : ways_storage_)
    if (way.valid) ++n;
  return n;
}

}  // namespace whisper::mem
