// Set-associative translation lookaside buffers with LRU replacement.
//
// The crucial policy bit for the paper is *when* the TLB is filled: on the
// modelled Intel parts a permission-faulting access to a *mapped* page still
// installs a translation (section 4.5 / Table 3); the Zen 3 model does not.
// That policy lives in MemorySystem; this class is a plain cache of
// translations.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "mem/page_table.h"

namespace whisper::mem {

struct TlbEntry {
  std::uint64_t vpn = 0;    // virtual page number (vaddr >> page shift)
  std::uint64_t pfn = 0;    // physical frame number
  PteFlags flags;
  PageSize size = PageSize::k4K;
  bool global = false;
};

class Tlb {
 public:
  /// `sets` must be a power of two; `ways` >= 1.
  Tlb(std::size_t sets, std::size_t ways);

  /// Look up a translation; updates LRU on hit.
  [[nodiscard]] std::optional<TlbEntry> lookup(std::uint64_t vaddr);

  /// Hot-path variant of lookup(): same LRU update, but returns a pointer
  /// into the TLB instead of copying the entry (nullptr on miss). The
  /// pointer is invalidated by any subsequent insert/flush/reset.
  [[nodiscard]] const TlbEntry* lookup_ref(std::uint64_t vaddr);

  /// Probe without disturbing LRU (for tests / PMU introspection).
  [[nodiscard]] bool contains(std::uint64_t vaddr) const;

  void insert(std::uint64_t vaddr, std::uint64_t paddr, PteFlags flags,
              PageSize size);

  /// Invalidate the entry covering vaddr (INVLPG).
  void invalidate_page(std::uint64_t vaddr);
  /// Flush everything (MOV CR3 with non-PCID semantics)…
  void flush_all();
  /// …or everything except global entries (kernel text under CR3 switch).
  void flush_non_global();

  /// Capture the current contents as the baseline reset() restores; begins
  /// per-set dirty tracking (same scheme as Cache::snapshot).
  void snapshot();
  /// Invalidate dirty sets, reapply the baseline ways, restore the LRU
  /// clock. Throws std::logic_error without a snapshot.
  void reset();
  [[nodiscard]] bool snapshotted() const noexcept { return has_baseline_; }
  [[nodiscard]] std::size_t dirty_sets() const noexcept {
    return dirty_sets_.size();
  }

  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::size_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::size_t occupancy() const noexcept;

 private:
  struct Way {
    bool valid = false;
    TlbEntry entry;
    std::uint64_t lru = 0;  // larger = more recently used
  };

  [[nodiscard]] std::size_t set_index(std::uint64_t vpn) const noexcept {
    return static_cast<std::size_t>(vpn) & (sets_ - 1);
  }

  // Returns the way holding vaddr's translation, or nullptr.
  [[nodiscard]] Way* find(std::uint64_t vaddr);
  [[nodiscard]] const Way* find(std::uint64_t vaddr) const;

  void touch_set(std::size_t set);

  std::size_t sets_;
  std::size_t ways_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_storage_;  // sets_ * ways_, row-major by set

  // Snapshot/reset state (see Cache): baseline ways reapplied wholesale on
  // reset heal in-place mutations; only new-way installs mark their set.
  bool has_baseline_ = false;
  std::uint64_t baseline_tick_ = 0;
  std::vector<std::pair<std::uint32_t, Way>> baseline_ways_;
  std::uint64_t epoch_ = 1;
  std::vector<std::uint64_t> set_epoch_;
  std::vector<std::uint32_t> dirty_sets_;
};

}  // namespace whisper::mem
