#include "mem/memory_system.h"

#include <algorithm>
#include <stdexcept>

namespace whisper::mem {

MemorySystem::MemorySystem(const MemConfig& cfg)
    : cfg_(cfg),
      dtlb_(cfg.dtlb_sets, cfg.dtlb_ways),
      itlb_(cfg.itlb_sets, cfg.itlb_ways),
      stlb_(cfg.stlb_sets, cfg.stlb_ways),
      l1_(cfg.l1_sets, cfg.l1_ways),
      l2_(cfg.l2_sets, cfg.l2_ways),
      l3_(cfg.l3_sets, cfg.l3_ways),
      rng_(cfg.seed ^ 0x3e3ea11dULL) {}

void MemorySystem::set_page_table(const PageTable* pt) { pt_ = pt; }

int MemorySystem::jitter() {
  if (cfg_.jitter_amp <= 0) return 0;
  return static_cast<int>(
      rng_.next_below(static_cast<std::uint64_t>(cfg_.jitter_amp) + 1));
}

int MemorySystem::psc_lookup_and_fill(std::uint64_t vaddr) {
  int best = 0;
  for (std::size_t i = 0; i < kPscEntries; ++i) {
    if (!psc_valid_[i]) continue;
    // Sharing the top k levels means the walker can skip fetching them.
    const int shared = first_divergent_level(vaddr, psc_[i]) - 1;
    best = std::max(best, std::min(shared, 3));
  }
  psc_[psc_next_] = vaddr;
  psc_valid_[psc_next_] = true;
  psc_next_ = (psc_next_ + 1) % kPscEntries;
  return best;
}

MemorySystem::Translation MemorySystem::translate(std::uint64_t vaddr,
                                                  AccessType type,
                                                  bool user_mode) {
  Translation t;
  if (!pt_) throw std::logic_error("MemorySystem: no page table installed");

  Tlb& first = (type == AccessType::Fetch) ? itlb_ : dtlb_;
  auto classify = [&](const PteFlags& flags) {
    if (user_mode && !flags.user) return Fault::Permission;
    if (type == AccessType::Write && !flags.writable) return Fault::Protection;
    return Fault::None;
  };

  if (const TlbEntry* hit = first.lookup_ref(vaddr)) {
    t.tlb_hit = true;
    const int shift = hit->size == PageSize::k4K ? 12 : 21;
    t.paddr = (hit->pfn << shift) | (vaddr & ((1ull << shift) - 1));
    t.fault = classify(hit->flags);
    return t;
  }
  if (const TlbEntry* hit = stlb_.lookup_ref(vaddr)) {
    t.latency += cfg_.stlb_latency;
    count(MemCounter::kStlbHits);
    const int shift = hit->size == PageSize::k4K ? 12 : 21;
    t.paddr = (hit->pfn << shift) | (vaddr & ((1ull << shift) - 1));
    t.fault = classify(hit->flags);
    // Promote to the first-level TLB. `hit` points into the STLB, which
    // first.insert never touches, so the read below stays valid.
    const std::uint64_t page_mask = ~((1ull << shift) - 1);
    first.insert(vaddr, t.paddr & page_mask, hit->flags, hit->size);
    return t;
  }

  const int psc_hits = psc_lookup_and_fill(vaddr);
  const WalkResult walk = pt_->walk(vaddr, psc_hits);
  t.walk = walk;

  switch (walk.status) {
    case WalkStatus::Ok: {
      t.walks = 1;
      t.walk_cycles = walk.levels_fetched * cfg_.walk_level_cycles + jitter();
      t.paddr = walk.paddr;
      t.fault = classify(walk.flags);
      // Intel policy: a completed walk installs a translation even when the
      // access itself faults on permissions — the TET-KASLR signal.
      const bool fill =
          t.fault == Fault::None ||
          ((t.fault == Fault::Permission || t.fault == Fault::Protection) &&
           cfg_.tlb_fill_on_permission_fault);
      if (fill) {
        const int shift = walk.page_size == PageSize::k4K ? 12 : 21;
        const std::uint64_t page_mask = ~((1ull << shift) - 1);
        first.insert(vaddr, walk.paddr & page_mask, walk.flags,
                     walk.page_size);
        stlb_.insert(vaddr, walk.paddr & page_mask, walk.flags,
                     walk.page_size);
        t.tlb_filled = true;
      }
      break;
    }
    case WalkStatus::NotPresent: {
      // The load is replayed and each replay walks again — Table 3 shows
      // DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK == 2 for unmapped probes, and a
      // much longer WALK_ACTIVE window.
      t.walks = std::max(1, cfg_.not_present_replays);
      t.walk_cycles = 0;
      for (int i = 0; i < t.walks; ++i)
        t.walk_cycles +=
            walk.levels_fetched * cfg_.walk_level_cycles + jitter();
      t.fault = Fault::NotPresent;
      break;
    }
    case WalkStatus::ReservedBit: {
      // FLARE dummy leaf: full-depth walk completes once, access faults,
      // and no TLB entry is installed.
      t.walks = 1;
      t.walk_cycles = walk.levels_fetched * cfg_.walk_level_cycles + jitter();
      t.fault = Fault::ReservedBit;
      break;
    }
  }
  t.latency += t.walk_cycles;
  if (type == AccessType::Fetch) {
    count(MemCounter::kItlbWalkCycles,
          static_cast<std::uint64_t>(t.walk_cycles));
  } else {
    count(MemCounter::kDtlbMissWalks, static_cast<std::uint64_t>(t.walks));
    count(MemCounter::kDtlbWalkCycles,
          static_cast<std::uint64_t>(t.walk_cycles));
  }
  return t;
}

int MemorySystem::cache_access(std::uint64_t paddr, AccessResult& out) {
  if (l1_.access(paddr)) {
    out.cache_level = 1;
    count(MemCounter::kL1Hit);
    return cfg_.l1_latency;
  }
  if (l2_.access(paddr)) {
    out.cache_level = 2;
    count(MemCounter::kL2Hit);
    l1_.fill(paddr);
    return cfg_.l2_latency;
  }
  if (l3_.access(paddr)) {
    out.cache_level = 3;
    count(MemCounter::kL3Hit);
    l2_.fill(paddr);
    l1_.fill(paddr);
    return cfg_.l3_latency;
  }
  out.cache_level = 4;
  count(MemCounter::kDram);
  l3_.fill(paddr);
  l2_.fill(paddr);
  l1_.fill(paddr);
  // A DRAM fill moves the line through the fill buffers; record its data so
  // MDS-style sampling sees realistic in-flight bytes.
  const std::uint64_t line_base = paddr & ~(Cache::kLineBytes - 1);
  std::uint8_t line[LineFillBuffer::kLineBytes];
  for (std::size_t i = 0; i < LineFillBuffer::kLineBytes; ++i)
    line[i] = phys_.read8(line_base + i);
  lfb_.record(line_base, line);
  return cfg_.dram_latency + jitter();
}

AccessResult MemorySystem::access(const AccessRequest& req) {
  AccessResult out = access_impl(req);
  if (noise_) {
    // Interference rides on top of the resolved access; a negative delta
    // (DVFS downclock) can shorten it but never below a single cycle.
    out.latency = std::max(1, out.latency + noise_->on_access(req, out));
  }
  return out;
}

AccessResult MemorySystem::access_impl(const AccessRequest& req) {
  AccessResult out;
  Translation t = translate(req.vaddr, req.type, req.user_mode);
  out.latency = t.latency;
  out.fault = t.fault;
  out.paddr = t.paddr;
  out.tlb_hit = t.tlb_hit;
  out.tlb_filled = t.tlb_filled;
  out.walks = t.walks;
  out.walk_cycles = t.walk_cycles;

  if (t.fault != Fault::None) {
    // The permission/presence check rides the full load pipeline after the
    // translation step — this keeps the transient window open even on a TLB
    // hit, and keeps walk time visible on top of it (TET-KASLR's
    // double-probe separates a TLB hit from a PSC-accelerated walk).
    out.latency += cfg_.fault_confirm_min_cycles;
    switch (t.fault) {
      case Fault::Permission:
      case Fault::Protection:
        if (cfg_.meltdown_forwards_data && req.type != AccessType::Prefetch) {
          // Pre-fix behaviour: the data phase races ahead of the permission
          // check and forwards the real bytes to dependents.
          out.latency += cache_access(t.paddr, out);
          out.data = req.size == 1 ? phys_.read8(t.paddr)
                                   : phys_.read64(t.paddr);
          out.data_forwarded = true;
        }
        break;
      case Fault::NotPresent:
        if (cfg_.lfb_forwards_stale && req.type == AccessType::Read) {
          // Zombieload: the assisted load samples a stale LFB byte.
          const std::size_t off = req.vaddr % LineFillBuffer::kLineBytes;
          if (req.size == 1) {
            if (auto b = lfb_.stale_byte(off)) {
              out.data = *b;
              out.data_forwarded = true;
              out.from_lfb_stale = true;
            }
          } else if (auto q = lfb_.stale_qword(off)) {
            out.data = *q;
            out.data_forwarded = true;
            out.from_lfb_stale = true;
          }
        }
        break;
      default:
        break;
    }
    return out;
  }

  // Non-faulting access.
  if (req.type == AccessType::Prefetch) {
    // The prefetch retires once the translation is known; the line fill
    // proceeds in the background. Its timing therefore exposes the walk —
    // the EntryBleed-style baseline measures exactly this.
    (void)cache_access(t.paddr, out);
    out.latency += 2;
    return out;
  }
  out.latency += cache_access(t.paddr, out);
  if (req.type == AccessType::Write) {
    // Returns the previous value so the pipeline can keep an undo log for
    // squashed (transient) stores.
    if (req.size == 1) {
      out.data = phys_.read8(t.paddr);
      phys_.write8(t.paddr, static_cast<std::uint8_t>(req.store_value));
    } else {
      out.data = phys_.read64(t.paddr);
      phys_.write64(t.paddr, req.store_value);
    }
  } else {
    out.data = req.size == 1 ? phys_.read8(t.paddr) : phys_.read64(t.paddr);
  }
  return out;
}

int MemorySystem::instruction_probe(std::uint64_t vaddr) {
  Translation t = translate(vaddr, AccessType::Fetch, /*user_mode=*/true);
  if (t.fault == Fault::None && !t.tlb_hit && t.walk.status == WalkStatus::Ok)
    itlb_.insert(vaddr, t.paddr & ~0xfffull, t.walk.flags, t.walk.page_size);
  return t.latency;
}

void MemorySystem::clflush(std::uint64_t vaddr) {
  if (!pt_) return;
  if (auto r = pt_->lookup(vaddr)) {
    l1_.flush_line(r->paddr);
    l2_.flush_line(r->paddr);
    l3_.flush_line(r->paddr);
  }
}

void MemorySystem::flush_tlbs() {
  dtlb_.flush_all();
  itlb_.flush_all();
  stlb_.flush_all();
  for (bool& v : psc_valid_) v = false;
}

void MemorySystem::flush_tlbs_non_global() {
  dtlb_.flush_non_global();
  itlb_.flush_non_global();
  stlb_.flush_non_global();
  for (bool& v : psc_valid_) v = false;
}

void MemorySystem::invalidate_tlb_page(std::uint64_t vaddr) {
  dtlb_.invalidate_page(vaddr);
  itlb_.invalidate_page(vaddr);
  stlb_.invalidate_page(vaddr);
}

std::uint64_t MemorySystem::translate_or_throw(std::uint64_t vaddr) const {
  if (!pt_) throw std::logic_error("MemorySystem: no page table installed");
  auto r = pt_->lookup(vaddr);
  if (!r) throw std::runtime_error("MemorySystem: address not mapped");
  return r->paddr;
}

std::uint64_t MemorySystem::debug_read64(std::uint64_t vaddr) const {
  return phys_.read64(translate_or_throw(vaddr));
}
std::uint8_t MemorySystem::debug_read8(std::uint64_t vaddr) const {
  return phys_.read8(translate_or_throw(vaddr));
}
void MemorySystem::debug_write64(std::uint64_t vaddr, std::uint64_t value) {
  phys_.write64(translate_or_throw(vaddr), value);
}
void MemorySystem::debug_write8(std::uint64_t vaddr, std::uint8_t value) {
  phys_.write8(translate_or_throw(vaddr), value);
}

void MemorySystem::victim_touch(std::uint64_t paddr, std::uint64_t value,
                                std::size_t len) {
  lfb_.record_value(paddr, value, len);
}

void MemorySystem::snapshot() {
  phys_.snapshot();
  dtlb_.snapshot();
  itlb_.snapshot();
  stlb_.snapshot();
  l1_.snapshot();
  l2_.snapshot();
  l3_.snapshot();
  lfb_.snapshot();
  std::copy(std::begin(psc_), std::end(psc_), std::begin(psc_base_));
  std::copy(std::begin(psc_valid_), std::end(psc_valid_),
            std::begin(psc_valid_base_));
  psc_next_base_ = psc_next_;
  has_baseline_ = true;
}

void MemorySystem::reset(std::uint64_t seed) {
  if (!has_baseline_)
    throw std::logic_error("MemorySystem::reset: no snapshot taken");
  phys_.reset();
  dtlb_.reset();
  itlb_.reset();
  stlb_.reset();
  l1_.reset();
  l2_.reset();
  l3_.reset();
  lfb_.reset();
  std::copy(std::begin(psc_base_), std::end(psc_base_), std::begin(psc_));
  std::copy(std::begin(psc_valid_base_), std::end(psc_valid_base_),
            std::begin(psc_valid_));
  psc_next_ = psc_next_base_;
  // Re-derive the jitter stream exactly as construction would: the ctor
  // consumes no randomness, so a fresh seed here is fresh-machine-identical.
  cfg_.seed = seed;
  rng_ = stats::Xoshiro256(seed ^ 0x3e3ea11dULL);
}

}  // namespace whisper::mem
