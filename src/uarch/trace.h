// Pipeline trace: structured per-instruction lifecycle events for
// debugging gadgets, for asserting pipeline behaviour in tests ("was this
// instruction fetched but never retired?") and for the obs layer's
// Chrome-trace exporter and top-down attribution (src/obs).
//
// The core emits TraceRecords through the abstract TraceSink; attach one
// with Core::set_trace(). When detached, every hook compiles down to a
// branch on a null pointer, so an untraced run pays nothing beyond that
// test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace whisper::uarch {

enum class TraceEvent : std::uint8_t {
  Fetch,         // entered the IDQ (front-end delivery)
  Alloc,         // entered the ROB
  Issue,         // dispatched to an execution port
  Complete,      // result ready
  Retire,        // architecturally committed
  Squash,        // dropped from the ROB on a wrong path (one per entry)
  Mispredict,    // branch resolved against its prediction
  Resteer,       // front end redirected
  SquashYounger, // wrong-path entries dropped (count in `seq`)
  MachineClear,  // fault reached retirement
  SignalRedirect,// suppressed via signal handler
  TsxAbort,      // suppressed via transaction abort
  WindowOpen,    // a deferred-fault transient window opened (faulting exec)
  WindowClose,   // that window ended (machine clear or opener squashed)
};

[[nodiscard]] std::string to_string(TraceEvent e);

struct TraceRecord {
  std::uint64_t cycle = 0;
  int thread = 0;
  TraceEvent event = TraceEvent::Alloc;
  std::uint64_t seq = 0;   // ROB sequence number (or a count, see event)
  std::int32_t pc = -1;    // instruction index (-1 when n/a)
  isa::Opcode op = isa::Opcode::Nop;

  [[nodiscard]] std::string to_string() const;
};

/// Receiver of pipeline events. Implementations must not mutate any
/// simulated state — tracing is observability-only, and
/// tests/test_obs.cpp asserts that attaching a sink leaves architectural
/// state, PMU counters and retire cycles byte-identical.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& r) = 0;
};

class PipelineTrace final : public TraceSink {
 public:
  explicit PipelineTrace(std::size_t capacity = 4096)
      : capacity_(capacity) {}

  void record(const TraceRecord& r) override {
    if (records_.size() >= capacity_) {
      records_[next_ % capacity_] = r;  // ring overwrite
      ++next_;
      wrapped_ = true;
    } else {
      records_.push_back(r);
      ++next_;
    }
  }

  /// Records in chronological order (oldest first).
  [[nodiscard]] std::vector<TraceRecord> records() const;
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool wrapped() const noexcept { return wrapped_; }
  void clear() {
    records_.clear();
    next_ = 0;
    wrapped_ = false;
  }

  /// Count events of a given kind (optionally at a specific pc).
  [[nodiscard]] std::size_t count(TraceEvent e, std::int32_t pc = -1) const;

  /// Multi-line dump.
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace whisper::uarch
