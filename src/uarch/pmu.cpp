#include "uarch/pmu.h"

namespace whisper::uarch {

std::string to_string(PmuEvent e) {
  switch (e) {
    case PmuEvent::BR_MISP_EXEC_INDIRECT: return "BR_MISP_EXEC.INDIRECT";
    case PmuEvent::BR_MISP_EXEC_ALL_BRANCHES:
      return "BR_MISP_EXEC.ALL_BRANCHES";
    case PmuEvent::BR_MISP_RETIRED_ALL_BRANCHES:
      return "BR_MISP_RETIRED.ALL_BRANCHES";
    case PmuEvent::MACHINE_CLEARS_COUNT: return "MACHINE_CLEARS.COUNT";
    case PmuEvent::INT_MISC_RECOVERY_CYCLES: return "INT_MISC.RECOVERY_CYCLES";
    case PmuEvent::INT_MISC_RECOVERY_CYCLES_ANY:
      return "INT_MISC.RECOVERY_CYCLES_ANY";
    case PmuEvent::INT_MISC_CLEAR_RESTEER_CYCLES:
      return "INT_MISC.CLEAR_RESTEER_CYCLES";
    case PmuEvent::IDQ_DSB_UOPS: return "IDQ.DSB_UOPS";
    case PmuEvent::IDQ_MS_DSB_CYCLES: return "IDQ.MS_DSB_CYCLES";
    case PmuEvent::IDQ_DSB_CYCLES_OK: return "IDQ.DSB_CYCLES_OK";
    case PmuEvent::IDQ_DSB_CYCLES_ANY: return "IDQ.DSB_CYCLES_ANY";
    case PmuEvent::IDQ_MS_MITE_UOPS: return "IDQ.MS_MITE_UOPS";
    case PmuEvent::IDQ_ALL_MITE_CYCLES_ANY_UOPS:
      return "IDQ.ALL_MITE_CYCLES_ANY_UOPS";
    case PmuEvent::IDQ_MS_UOPS: return "IDQ.MS_UOPS";
    case PmuEvent::ICACHE_16B_IFDATA_STALL: return "ICACHE_16B.IFDATA_STALL";
    case PmuEvent::UOPS_ISSUED_ANY: return "UOPS_ISSUED.ANY";
    case PmuEvent::UOPS_ISSUED_STALL_CYCLES: return "UOPS_ISSUED.STALL_CYCLES";
    case PmuEvent::UOPS_EXECUTED_CORE_CYCLES_NONE:
      return "UOPS_EXECUTED.CORE_CYCLES_NONE";
    case PmuEvent::UOPS_EXECUTED_STALL_CYCLES:
      return "UOPS_EXECUTED.STALL_CYCLES";
    case PmuEvent::RESOURCE_STALLS_ANY: return "RESOURCE_STALLS.ANY";
    case PmuEvent::RS_EVENTS_EMPTY_CYCLES: return "RS_EVENTS.EMPTY_CYCLES";
    case PmuEvent::CYCLE_ACTIVITY_STALLS_TOTAL:
      return "CYCLE_ACTIVITY.STALLS_TOTAL";
    case PmuEvent::CYCLE_ACTIVITY_CYCLES_MEM_ANY:
      return "CYCLE_ACTIVITY.CYCLES_MEM_ANY";
    case PmuEvent::UOPS_RETIRED_ALL: return "UOPS_RETIRED.ALL";
    case PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK:
      return "DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK";
    case PmuEvent::DTLB_LOAD_MISSES_WALK_ACTIVE:
      return "DTLB_LOAD_MISSES.WALK_ACTIVE";
    case PmuEvent::ITLB_MISSES_WALK_ACTIVE: return "ITLB_MISSES.WALK_ACTIVE";
    case PmuEvent::DTLB_LOAD_MISSES_STLB_HIT:
      return "DTLB_LOAD_MISSES.STLB_HIT";
    case PmuEvent::MEM_LOAD_RETIRED_L1_HIT: return "MEM_LOAD_RETIRED.L1_HIT";
    case PmuEvent::MEM_LOAD_RETIRED_L2_HIT: return "MEM_LOAD_RETIRED.L2_HIT";
    case PmuEvent::MEM_LOAD_RETIRED_L3_HIT: return "MEM_LOAD_RETIRED.L3_HIT";
    case PmuEvent::MEM_LOAD_RETIRED_DRAM: return "MEM_LOAD_RETIRED.DRAM";
    case PmuEvent::BP_L1_BTB_CORRECT: return "bp_l1_btb_correct";
    case PmuEvent::BP_L1_TLB_FETCH_HIT: return "bp_l1_tlb_fetch_hit";
    case PmuEvent::DE_DIS_UOP_QUEUE_EMPTY_DI0:
      return "de_dis_uop_queue_empty_di0";
    case PmuEvent::DE_DIS_DISPATCH_TOKEN_STALLS2_RETIRE_TOKEN_STALL:
      return "de_dis_dispatch_token_stalls2.retire_token_stall";
    case PmuEvent::IC_FW32: return "ic_fw32";
    case PmuEvent::CORE_CYCLES: return "core_cycles";
    case PmuEvent::Count: break;
  }
  return "unknown_event";
}

Vendor event_vendor(PmuEvent e) {
  switch (e) {
    case PmuEvent::BP_L1_BTB_CORRECT:
    case PmuEvent::BP_L1_TLB_FETCH_HIT:
    case PmuEvent::DE_DIS_UOP_QUEUE_EMPTY_DI0:
    case PmuEvent::DE_DIS_DISPATCH_TOKEN_STALLS2_RETIRE_TOKEN_STALL:
    case PmuEvent::IC_FW32:
      return Vendor::Amd;
    default:
      return Vendor::Intel;
  }
}

PmuSnapshot pmu_delta(const PmuSnapshot& before, const PmuSnapshot& after) {
  PmuSnapshot d{};
  for (std::size_t i = 0; i < kNumPmuEvents; ++i)
    d[i] = after[i] >= before[i] ? after[i] - before[i] : 0;
  return d;
}

}  // namespace whisper::uarch
